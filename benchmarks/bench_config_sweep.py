"""Cross-config sweep vs. the naive per-config loop.

Evaluating a workload on several core configurations (the Section VII-B
fast-bypass study, the contract-synthesis matrix) used to mean running the
whole pipeline once per config.  Most of that work never looks at the
config: assembly, input patching, the functional checkpoint prepass and
the taint witness are all config-invariant.  ``sweep_configs`` pays those
once, and fans every config leg's lane groups into one backend pool — a
lane-batched campaign is a *single* shard per config, so the naive loop
cannot parallelize across configs while the sweep can.

This benchmark runs a 3-config sweep (SmallBoom / MediumBoom / MegaBoom)
of the ``chacha20`` and ``mp-modexp-ct`` workloads against the equivalent
sequential per-config loop sharing one cold cache, asserting:

* every sweep leg's report is **bit-identical** to the loop's standalone
  ``MicroSampler(config).analyze()`` for that config — cold cache and
  warm-cache rerun both;
* the warm rerun replays every run from the cache (no re-simulation);
* with >= 4 CPUs, the sweep is >= ``SWEEP_SPEEDUP_FLOOR`` x faster than
  the naive loop.  On fewer CPUs the cross-config fan-out degenerates to
  serialized shards — a property of the machine, not the engine — so the
  floor is reported but not enforced (same policy as
  ``bench_parallel_scaling``).

Run as a script (``--quick`` for the CI smoke variant: smaller workloads,
no speedup floor) or through pytest.  Results land in
``benchmarks/results/config_sweep.{txt,json}`` with the commit-stamped
provenance block from ``_harness``.
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time

import pytest

from repro.sampler import MicroSampler, TraceCache, report_to_dict, sweep_configs
from repro.uarch import MEDIUM_BOOM, MEGA_BOOM, SMALL_BOOM
from repro.sampler.checkpoint import DEFAULT_WARMUP_INSTS
from repro.workloads.bignum import make_mp_modexp_ct
from repro.workloads.chacha import make_chacha20

from _harness import emit

#: The swept trio — the bundled small/medium/mega BOOM calibrations.
CONFIGS = (SMALL_BOOM, MEDIUM_BOOM, MEGA_BOOM)

#: Required sweep speedup over the naive loop, enforced with >= 4 CPUs.
SWEEP_SPEEDUP_FLOOR = 2.0

#: Both sides get the same backend: enough workers that the sweep's
#: config x lane-group shards can actually overlap.
JOBS = 4


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _workloads(quick: bool) -> dict:
    if quick:
        return {
            "chacha20": make_chacha20(n_keys=2, n_blocks=1, seed=3),
            "mp-modexp-ct": make_mp_modexp_ct(n_keys=2, seed=3),
        }
    return {
        "chacha20": make_chacha20(n_keys=4, n_blocks=2, seed=3),
        "mp-modexp-ct": make_mp_modexp_ct(n_keys=4, seed=3),
    }


def _scrubbed(report) -> dict:
    """Report JSON with the non-deterministic timing keys removed."""
    payload = report_to_dict(report)
    payload.pop("timings_seconds", None)
    payload.pop("profile", None)
    return payload


def _naive_loop(workload, cache_dir, *, jobs=JOBS) -> tuple:
    """Sequential standalone analyze() per config, sharing one cache."""
    cache = TraceCache(cache_dir)
    started = time.perf_counter()
    reports = {}
    for config in CONFIGS:
        sampler = MicroSampler(config, jobs=jobs, cache=cache,
                               warmup_insts=DEFAULT_WARMUP_INSTS, batch_lanes="auto")
        reports[config.name] = sampler.analyze(workload)
    return time.perf_counter() - started, reports


def _sweep(workload, cache_dir, *, jobs=JOBS) -> tuple:
    cache = TraceCache(cache_dir)
    started = time.perf_counter()
    result = sweep_configs(workload, CONFIGS, jobs=jobs, cache=cache,
                           warmup_insts=DEFAULT_WARMUP_INSTS, batch_lanes="auto")
    return time.perf_counter() - started, result


def measure(workload_name: str, workload, root_dir) -> dict:
    """Naive loop vs cold sweep vs warm sweep; bit-identity throughout."""
    naive_dir = tempfile.mkdtemp(prefix="naive-", dir=root_dir)
    sweep_dir = tempfile.mkdtemp(prefix="sweep-", dir=root_dir)

    naive_seconds, naive_reports = _naive_loop(workload, naive_dir)
    cold_seconds, cold = _sweep(workload, sweep_dir)
    warm_seconds, warm = _sweep(workload, sweep_dir)

    identical_cold = all(
        _scrubbed(cold.reports[config.name])
        == _scrubbed(naive_reports[config.name])
        for config in CONFIGS)
    identical_warm = all(
        _scrubbed(warm.reports[config.name])
        == _scrubbed(naive_reports[config.name])
        for config in CONFIGS)
    all_cached_on_replay = all(
        leg.n_cached == leg.n_inputs and leg.n_simulated == 0
        for leg in warm.legs)

    return {
        "workload": workload_name,
        "n_inputs": cold.n_inputs,
        "naive_seconds": naive_seconds,
        "sweep_cold_seconds": cold_seconds,
        "sweep_warm_seconds": warm_seconds,
        "speedup_cold": naive_seconds / cold_seconds,
        "speedup_warm": naive_seconds / warm_seconds,
        "shared_seconds": {key: round(value, 4)
                           for key, value in cold.shared_seconds.items()},
        "legs": {leg.name: {"n_cached": leg.n_cached,
                            "n_simulated": leg.n_simulated}
                 for leg in cold.legs},
        "bit_identical_cold": identical_cold,
        "bit_identical_warm": identical_warm,
        "all_cached_on_replay": all_cached_on_replay,
    }


def _render(results: list, cpus: int) -> str:
    lines = [
        f"Cross-config sweep vs naive per-config loop — "
        f"{len(CONFIGS)} configs ({', '.join(c.name for c in CONFIGS)}), "
        f"jobs={JOBS}, {cpus} CPU(s) available",
        "",
        f"{'workload':<14} {'naive':>8} {'sweep':>8} {'speedup':>8} "
        f"{'warm':>8} {'identical':>10}",
        "-" * 62,
    ]
    for row in results:
        identical = row["bit_identical_cold"] and row["bit_identical_warm"]
        lines.append(
            f"{row['workload']:<14} {row['naive_seconds']:>7.2f}s "
            f"{row['sweep_cold_seconds']:>7.2f}s "
            f"{row['speedup_cold']:>7.2f}x "
            f"{row['sweep_warm_seconds']:>7.2f}s "
            f"{'yes' if identical else 'NO':>10}")
    lines.append("")
    lines.append(f"speedup floor ({SWEEP_SPEEDUP_FLOOR}x) enforced: "
                 + ("yes" if cpus >= 4 else
                    f"no ({cpus} CPU(s) — fan-out has nothing to overlap)"))
    return "\n".join(lines)


def run_benchmark(root_dir, *, quick: bool = False) -> dict:
    cpus = _available_cpus()
    results = [measure(name, workload, root_dir)
               for name, workload in _workloads(quick).items()]
    rounded = [{**row,
                "naive_seconds": round(row["naive_seconds"], 3),
                "sweep_cold_seconds": round(row["sweep_cold_seconds"], 3),
                "sweep_warm_seconds": round(row["sweep_warm_seconds"], 3),
                "speedup_cold": round(row["speedup_cold"], 2),
                "speedup_warm": round(row["speedup_warm"], 2)}
               for row in results]
    emit("config_sweep", _render(results, cpus), {
        "configs": [config.name for config in CONFIGS],
        "jobs": JOBS,
        "quick": quick,
        "cpus_available": cpus,
        "sweep_speedup_floor": SWEEP_SPEEDUP_FLOOR,
        "workloads": rounded,
    })
    return {"cpus_available": cpus, "workloads": results}


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    return run_benchmark(tmp_path_factory.mktemp("bench-config-sweep"),
                         quick=True)


def test_sweep_bit_identical(result):
    for row in result["workloads"]:
        assert row["bit_identical_cold"], row["workload"]
        assert row["bit_identical_warm"], row["workload"]
        assert row["all_cached_on_replay"], row["workload"]


def test_sweep_speedup_floor(result):
    # Cross-config fan-out needs parallel hardware to show.
    if result["cpus_available"] >= 4:
        for row in result["workloads"]:
            assert row["speedup_cold"] >= SWEEP_SPEEDUP_FLOOR, row["workload"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke variant: smaller workloads, "
                             "no speedup floor")
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory() as root_dir:
        result = run_benchmark(root_dir, quick=args.quick)
    failed = False
    for row in result["workloads"]:
        if not (row["bit_identical_cold"] and row["bit_identical_warm"]
                and row["all_cached_on_replay"]):
            print(f"FAIL: {row['workload']} sweep diverged from the "
                  "per-config loop")
            failed = True
    if not args.quick and result["cpus_available"] >= 4:
        for row in result["workloads"]:
            if row["speedup_cold"] < SWEEP_SPEEDUP_FLOOR:
                print(f"FAIL: {row['workload']} sweep below the "
                      f"{SWEEP_SPEEDUP_FLOOR}x floor "
                      f"({row['speedup_cold']:.2f}x)")
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
