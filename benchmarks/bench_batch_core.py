"""Lockstep lane batching through the cycle-accurate OoO core at N=8 lanes.

The acceptance benchmark for the batched core phase
(:mod:`repro.uarch.batch_core`).  A campaign's cycle-accurate phase
simulates the same instruction stream once per input; when the workload is
genuinely constant-time every lane makes identical timing-relevant
decisions, so one fetch/rename/schedule/commit state machine can drive all
lanes with only the architectural values vectorized.  This benchmark times
that phase scalar (:func:`repro.sampler.exec_backend.execute_run` per task)
vs lane-batched (:func:`repro.sampler.exec_backend.execute_task_list` over
one lockstep group) at N=8 on three constant-time workloads, asserts the
traced outputs are bit-identical, and enforces a >= 3x speedup floor.

A fourth, *informational* row runs the leaky ct-mem-cmp variant: its
control-flow consumer branches on per-pair comparison outcomes, so lanes
diverge and fall back to scalar re-simulation.  That row demonstrates the
fallback cost (batching can be slower than scalar there) and that the
divergence events surface — it carries no speedup floor, because a
workload that diverges is precisely one the audit should flag, not one the
batcher should accelerate.

Run as a script (``--quick`` for the CI smoke variant: one repeat, no
floor) or through pytest, where the floor is enforced.
"""

from __future__ import annotations

import argparse
import dataclasses
import time

import pytest

from repro.sampler.exec_backend import execute_run, execute_task_list
from repro.sampler.runner import prepare_campaign
from repro.workloads.bignum import make_mp_modexp_ct
from repro.workloads.chacha import make_chacha20
from repro.workloads.memcmp import make_ct_memcmp, make_ct_memcmp_safe

from _harness import emit

#: Lane width under test (the ISSUE's ">= 8 lanes" acceptance point).
N_LANES = 8

#: Required cycle-accurate-phase speedup on the constant-time workloads.
SPEEDUP_FLOOR = 3.0


def _make_workloads():
    """(workload, floor_enforced) pairs, all sized to N_LANES inputs."""
    return [
        (make_chacha20(n_keys=N_LANES, n_blocks=1), True),
        (make_ct_memcmp_safe(n_pairs=N_LANES, n_runs=N_LANES), True),
        (make_mp_modexp_ct(n_keys=N_LANES), True),
        # Leaky variant: per-pair comparison outcomes differ across lanes,
        # so the consumer branch diverges and the group falls back to
        # scalar re-simulation.  Informational only (no floor).
        (make_ct_memcmp(n_pairs=N_LANES, n_runs=N_LANES), False),
    ]


def _best(fn, repeats: int):
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _identity_view(output):
    """The deterministic simulation payload of a RunOutput.

    Timing observations (``sample_seconds``, ``profile``) and the batched
    group's surfaced ``divergences`` are excluded; everything the tracer
    and core produced must match bit-for-bit.
    """
    return (output.iterations, output.run, output.cycles_sampled,
            output.ff_steps, output.checkpoint_key)


def measure(pairs, repeats: int = 2) -> list[dict]:
    rows = []
    for workload, floored in pairs:
        plan = prepare_campaign(workload, batch_lanes=N_LANES)
        tasks = [plan.tasks[index] for index in plan.to_run]
        scalar_tasks = [dataclasses.replace(task, core_lanes=None)
                        for task in tasks]

        scalar_s, scalar_outputs = _best(
            lambda: [execute_run(task) for task in scalar_tasks], repeats)
        batch_s, batch_outputs = _best(
            lambda: execute_task_list(tasks), repeats)

        identical = all(
            _identity_view(batched) == _identity_view(scalar)
            for batched, scalar in zip(batch_outputs, scalar_outputs)
        )
        divergences = sum(len(output.divergences)
                          for output in batch_outputs)
        rows.append({
            "workload": workload.name,
            "n_lanes": N_LANES,
            "n_inputs": len(tasks),
            "core_scalar_seconds": round(scalar_s, 3),
            "core_batch_seconds": round(batch_s, 3),
            "core_speedup": round(scalar_s / batch_s, 2),
            "divergences": divergences,
            "floor_enforced": floored,
            "outputs_identical": identical,
        })
    return rows


def _render(rows, repeats) -> str:
    lines = [
        f"Lane-batched cycle-accurate core phase at N={N_LANES} lanes "
        f"(best of {repeats})",
        f"{'workload':<18} {'inputs':>6} {'scalar':>8} {'batched':>8} "
        f"{'speedup':>8} {'diverg.':>8} {'floor':>6} {'identical':>10}",
        "-" * 80,
    ]
    for row in rows:
        lines.append(
            f"{row['workload']:<18} {row['n_inputs']:>6} "
            f"{row['core_scalar_seconds']:>7.2f}s "
            f"{row['core_batch_seconds']:>7.2f}s "
            f"{row['core_speedup']:>7.2f}x "
            f"{row['divergences']:>8} "
            f"{'yes' if row['floor_enforced'] else 'info':>6} "
            f"{'yes' if row['outputs_identical'] else 'MISMATCH':>10}"
        )
    return "\n".join(lines)


def run_benchmark(repeats: int = 2) -> list[dict]:
    rows = measure(_make_workloads(), repeats)
    emit("batch_core", _render(rows, repeats), {
        "repeats": repeats,
        "n_lanes": N_LANES,
        "speedup_floor": SPEEDUP_FLOOR,
        "rows": rows,
    })
    return rows


@pytest.fixture(scope="module")
def rows():
    return run_benchmark()


def test_batched_core_speedup_floor(rows):
    floored = [row for row in rows if row["floor_enforced"]]
    assert len(floored) >= 2  # the ISSUE asks for >= 2 CT workloads
    for row in floored:
        assert row["core_speedup"] >= SPEEDUP_FLOOR, (
            f"{row['workload']}: {row['core_speedup']}x cycle-accurate-phase "
            f"throughput at N={N_LANES} is below the {SPEEDUP_FLOOR}x "
            f"acceptance floor"
        )


def test_batched_core_bit_identical(rows):
    for row in rows:
        assert row["outputs_identical"], row


def test_divergent_workload_falls_back_and_surfaces(rows):
    informational = [row for row in rows if not row["floor_enforced"]]
    for row in informational:
        assert row["divergences"] > 0, (
            f"{row['workload']} was expected to diverge under lane batching"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke variant: one repeat, no speedup floor")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per mode "
                             "(default 2, or 1 with --quick)")
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats is not None else (
        1 if args.quick else 2)
    rows = run_benchmark(repeats)
    failed = False
    for row in rows:
        if not row["outputs_identical"]:
            print(f"FAIL: {row['workload']} batched core outputs differ "
                  f"from scalar")
            failed = True
        if (not args.quick and row["floor_enforced"]
                and row["core_speedup"] < SPEEDUP_FLOOR):
            print(f"FAIL: {row['workload']} speedup "
                  f"{row['core_speedup']}x < floor {SPEEDUP_FLOOR}x")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
