"""Ablation: fixed-latency vs early-exit divider (DESIGN.md design choice).

Constant-time principle 3 forbids computing on secrets with variable-timing
arithmetic.  The ``div-timing`` workload divides by a secret-selected
divisor: on the default fixed-latency divider it verifies clean, while on an
early-exit (operand-dependent-latency) divider MicroSampler flags EUU-DIV
and the downstream timing-coupled units — validating both the divider model
and the detection machinery.
"""

import pytest

from repro.sampler import MicroSampler, render_bar_chart
from repro.uarch import MEGA_BOOM
from repro.workloads.modexp import make_div_timing

from _harness import emit, v_series


def _both():
    workload = make_div_timing(n_keys=4, seed=5)
    fixed = MicroSampler(MEGA_BOOM).analyze(workload)
    variable = MicroSampler(
        MEGA_BOOM.with_(variable_div_latency=True)
    ).analyze(workload)
    return fixed, variable


def test_ablation_divider_latency(benchmark):
    fixed, variable = benchmark.pedantic(_both, rounds=1, iterations=1)
    lines = [
        "Ablation — secret-dependent divisor under two divider designs",
        "",
        render_bar_chart(v_series(fixed),
                         title="fixed-latency divider (hardened):"),
        f"verdict: {'LEAK' if fixed.leakage_detected else 'clean'}",
        "",
        render_bar_chart(v_series(variable),
                         title="early-exit divider (operand-dependent):"),
        f"verdict: LEAK in {', '.join(variable.leaky_units)}"
        if variable.leakage_detected else "verdict: clean",
    ]
    emit("ablation_divider", "\n".join(lines))
    assert not fixed.leakage_detected
    assert variable.leakage_detected
    assert "EUU-DIV" in variable.leaky_units
