"""Campaign-service throughput: jobs/sec, 1 vs 8 clients, cold vs warm cache.

The service's pitch is that a fleet of tenants sharing one worker pool
and one trace cache beats everyone running their own one-shot CLI.  This
benchmark quantifies that: batches of analyze jobs (distinct seeds, so
every job is real work) are pushed through a live :class:`ServiceServer`
by one sequential client and by eight concurrent clients, against a cold
cache (every input simulates) and again warm (every input replays).

Asserts that the warm batch beats its cold counterpart for both client
counts — if cache-served jobs are not faster than simulated ones, the
dedup/replay plumbing is broken — and that every job completes.  Run as a
script (``--quick`` for the CI smoke variant: fewer jobs and workers) or
through pytest.  Results land in
``benchmarks/results/service_throughput.{txt,json}``.
"""

from __future__ import annotations

import argparse
import asyncio
import tempfile
import time

import pytest

from repro.sampler.trace_cache import TraceCache
from repro.service import ServiceClient, ServiceServer, submit_and_wait

from _harness import emit

N_JOBS = 8
N_CLIENTS = 8


def _specs(n_jobs: int, seed_base: int) -> list[dict]:
    return [
        {"kind": "analyze", "workload": "sam-ct", "config": "small",
         "inputs": 2, "seed": seed_base + index, "tenant": f"bench-{index}"}
        for index in range(n_jobs)
    ]


async def _serial_batch(server, specs):
    client = ServiceClient(server.host, server.port)
    finals = []
    for spec in specs:
        finals.append(await submit_and_wait(client, spec, timeout=600))
    return finals


async def _concurrent_batch(server, specs, n_clients: int):
    clients = [ServiceClient(server.host, server.port)
               for _ in range(n_clients)]
    return await asyncio.gather(*[
        submit_and_wait(clients[index % n_clients], spec, timeout=600)
        for index, spec in enumerate(specs)
    ])


async def _measure_async(cache_dir, *, n_jobs: int, n_clients: int,
                         workers: int) -> dict:
    rows = []
    async with ServiceServer(port=0, workers=workers,
                             cache=TraceCache(cache_dir),
                             max_active=n_clients) as server:
        for label, runner, specs in (
            ("serial cold", _serial_batch, _specs(n_jobs, 1000)),
            ("serial warm", _serial_batch, _specs(n_jobs, 1000)),
            ("concurrent cold", None, _specs(n_jobs, 2000)),
            ("concurrent warm", None, _specs(n_jobs, 2000)),
        ):
            started = time.perf_counter()
            if runner is not None:
                finals = await runner(server, specs)
            else:
                finals = await _concurrent_batch(server, specs, n_clients)
            seconds = time.perf_counter() - started
            simulated = sum(final["stats"]["shards_simulated"]
                            for final in finals)
            rows.append({
                "batch": label,
                "clients": 1 if "serial" in label else n_clients,
                "jobs": len(finals),
                "seconds": round(seconds, 3),
                "jobs_per_second": round(len(finals) / seconds, 2),
                "inputs_simulated": simulated,
                "all_done": all(final["state"] == "done"
                                for final in finals),
            })
        pool_stats = server.manager.stats()["pool"]
    return {"n_jobs": n_jobs, "n_clients": n_clients, "workers": workers,
            "rows": rows, "pool": pool_stats}


def measure(*, n_jobs: int = N_JOBS, n_clients: int = N_CLIENTS,
            workers: int = 4) -> dict:
    with tempfile.TemporaryDirectory() as cache_dir:
        return asyncio.run(_measure_async(
            cache_dir, n_jobs=n_jobs, n_clients=n_clients, workers=workers))


def _render(result: dict) -> str:
    lines = [
        f"Campaign-service throughput — {result['n_jobs']} analyze jobs "
        f"per batch, {result['workers']} pool workers",
        "",
        f"{'batch':<18} {'clients':>7} {'seconds':>9} {'jobs/s':>8} "
        f"{'simulated':>10}",
        "-" * 56,
    ]
    for row in result["rows"]:
        lines.append(
            f"{row['batch']:<18} {row['clients']:>7} {row['seconds']:>9.2f} "
            f"{row['jobs_per_second']:>8.2f} {row['inputs_simulated']:>10}")
    lines.append("")
    lines.append("warm batches replay from the shared trace cache; their "
                 "simulated-input count must be 0")
    return "\n".join(lines)


def run_benchmark(**kwargs) -> dict:
    result = measure(**kwargs)
    emit("service_throughput", _render(result), result)
    return result


def _by_batch(result: dict) -> dict:
    return {row["batch"]: row for row in result["rows"]}


@pytest.fixture(scope="module")
def result():
    return run_benchmark()


@pytest.mark.slow
def test_all_jobs_complete(result):
    assert all(row["all_done"] for row in result["rows"])
    assert result["pool"]["workers_replaced"] == 0


@pytest.mark.slow
def test_warm_cache_beats_cold(result):
    rows = _by_batch(result)
    for mode in ("serial", "concurrent"):
        cold, warm = rows[f"{mode} cold"], rows[f"{mode} warm"]
        assert warm["inputs_simulated"] == 0
        assert cold["inputs_simulated"] > 0
        assert warm["jobs_per_second"] > cold["jobs_per_second"], (
            f"{mode}: warm {warm['jobs_per_second']} jobs/s not above "
            f"cold {cold['jobs_per_second']} jobs/s")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke variant: fewer jobs and workers")
    args = parser.parse_args(argv)
    if args.quick:
        result = run_benchmark(n_jobs=4, n_clients=4, workers=2)
    else:
        result = run_benchmark()
    rows = _by_batch(result)
    failed = not all(row["all_done"] for row in result["rows"])
    if failed:
        print("FAIL: not every job completed")
    for mode in ("serial", "concurrent"):
        cold, warm = rows[f"{mode} cold"], rows[f"{mode} warm"]
        if warm["inputs_simulated"] != 0:
            print(f"FAIL: {mode} warm batch simulated "
                  f"{warm['inputs_simulated']} inputs")
            failed = True
        if warm["jobs_per_second"] <= cold["jobs_per_second"]:
            print(f"FAIL: {mode} warm throughput not above cold")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
