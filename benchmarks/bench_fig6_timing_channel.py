"""Figure 6: per-iteration execution-cycle distributions for ME-V1-MV.

Paper result: with neither buffer cached (6a), the bit=0 and bit=1
distributions overlap and are indistinguishable from timing alone; with the
``dst`` region resident in the L1D (6b), bit=1 iterations are consistently
faster — the detected address leak becomes a concrete timing channel.
"""

from statistics import mean, stdev

import pytest

from repro.sampler import render_histogram, run_campaign
from repro.uarch import MEGA_BOOM
from repro.workloads.modexp import make_me_v1_mv

from _harness import emit

N_KEYS = 6


def _distributions(warm_dst):
    workload = make_me_v1_mv(n_keys=N_KEYS, seed=3, warm_dst=warm_dst)
    campaign = run_campaign(workload, MEGA_BOOM)
    by_class = {0: [], 1: []}
    for record in campaign.iterations:
        by_class[record.label].append(record.cycles)
    return by_class


def test_fig6_timing_distributions(benchmark):
    cold = benchmark.pedantic(_distributions, args=(False,),
                              rounds=1, iterations=1)
    warm = _distributions(True)
    sections = []
    for title, data in [("(a) no prior access to dst or dummy", cold),
                        ("(b) dst initialized (resident in L1D)", warm)]:
        sections.append(f"Fig. 6{title}")
        for label in (0, 1):
            cycles = data[label]
            sections.append(
                f"  key bit={label}: mean={mean(cycles):.1f} "
                f"sd={stdev(cycles):.1f} n={len(cycles)}"
            )
            sections.append(render_histogram(cycles, bins=10, width=30))
        sections.append("")
    emit("fig6_timing_channel", "\n".join(sections))

    cold0, cold1 = mean(cold[0]), mean(cold[1])
    warm0, warm1 = mean(warm[0]), mean(warm[1])
    # 6a: overlapping distributions (means within 5%).
    assert abs(cold0 - cold1) / max(cold0, cold1) < 0.05
    # 6b: iterations storing to the cached dst are clearly faster.
    assert warm1 < warm0 * 0.7
