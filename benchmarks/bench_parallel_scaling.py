"""Campaign-throughput scaling: serial vs parallel backend vs trace cache.

Simulation dominates MicroSampler's cost (Table VI), and campaigns are
embarrassingly parallel across inputs.  This benchmark runs the Fig. 10
CT-MEM-CMP workload — the paper's most expensive case study per input —
through every execution backend and reports wall-clock speedups, while
asserting that each backend's merged trace matrix is bit-identical to the
serial baseline.

The >= 2x parallel-speedup assertion is gated on the CPUs actually
available to this process: on a single-core runner the parallel backend
degenerates to serialized workers plus pool overhead, which is a property
of the machine, not the backend.  Determinism and the cache speedup are
asserted unconditionally.

Run as a script (``--quick`` for the CI smoke variant: smaller workload,
no speedup floors) or through pytest, where the floors are enforced.
Results land in ``benchmarks/results/parallel_scaling.{txt,json}`` with
the commit-stamped provenance block from ``_harness``.
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time

import pytest

from repro.sampler import TraceCache, run_campaign
from repro.uarch import MEGA_BOOM
from repro.workloads.memcmp import make_ct_memcmp

from _harness import emit

#: Required cache-replay speedup over uncached serial execution.
CACHE_SPEEDUP_FLOOR = 5.0

#: Required jobs=4 speedup, enforced only with >= 4 CPUs available.
PARALLEL_SPEEDUP_FLOOR = 2.0


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _signature(campaign):
    return [
        (record.index, record.label, record.run_index, record.ordinal,
         record.start_cycle, record.end_cycle, record.features)
        for record in campaign.iterations
    ]


def measure(cache_dir, *, n_pairs: int = 8, n_runs: int = 8) -> dict:
    """Time every backend on one workload; verify bit-identity throughout."""
    workload = make_ct_memcmp(n_pairs=n_pairs, seed=2, n_runs=n_runs)

    def _timed(**kwargs):
        started = time.perf_counter()
        campaign = run_campaign(workload, MEGA_BOOM, **kwargs)
        return time.perf_counter() - started, campaign

    serial_seconds, serial = _timed(jobs=1)
    rows = [{"backend": "serial (jobs=1)", "seconds": serial_seconds,
             "speedup": 1.0}]
    identical = True
    parallel_seconds = {}
    for jobs in (2, 4):
        seconds, campaign = _timed(jobs=jobs)
        identical = identical and _signature(campaign) == _signature(serial)
        parallel_seconds[jobs] = seconds
        rows.append({"backend": f"parallel (jobs={jobs})",
                     "seconds": seconds,
                     "speedup": serial_seconds / seconds})

    cache = TraceCache(cache_dir)
    cold_seconds, cold = _timed(jobs=1, cache=cache)
    identical = identical and _signature(cold) == _signature(serial)
    warm_seconds, warm = _timed(jobs=1, cache=cache)
    identical = identical and _signature(warm) == _signature(serial)
    rows.append({"backend": "cache cold (stores)", "seconds": cold_seconds,
                 "speedup": serial_seconds / cold_seconds})
    rows.append({"backend": "cache warm (replay)", "seconds": warm_seconds,
                 "speedup": serial_seconds / warm_seconds})

    return {
        "n_pairs": n_pairs,
        "n_runs": n_runs,
        "cpus_available": _available_cpus(),
        "rows": [{**row, "seconds": round(row["seconds"], 3),
                  "speedup": round(row["speedup"], 2)} for row in rows],
        "serial_seconds": serial_seconds,
        "warm_seconds": warm_seconds,
        "parallel_seconds": parallel_seconds,
        "all_cached_on_replay": warm.n_cached_runs == len(warm.runs),
        "bit_identical": identical,
    }


def _render(result: dict) -> str:
    lines = [
        "Campaign execution backends — Fig. 10 CT-MEM-CMP workload "
        f"({result['n_runs']} inputs, "
        f"{result['cpus_available']} CPU(s) available)",
        "",
        f"{'backend':<22} {'seconds':>9} {'speedup':>9}",
        "-" * 42,
    ]
    for row in result["rows"]:
        lines.append(f"{row['backend']:<22} {row['seconds']:>9.2f} "
                     f"{row['speedup']:>8.1f}x")
    lines.append("")
    lines.append("all backends bit-identical to the serial trace matrix: "
                 + ("yes" if result["bit_identical"] else "NO"))
    return "\n".join(lines)


def run_benchmark(cache_dir, *, n_pairs: int = 8, n_runs: int = 8) -> dict:
    result = measure(cache_dir, n_pairs=n_pairs, n_runs=n_runs)
    emit("parallel_scaling", _render(result), {
        "workload": "ct-mem-cmp",
        "n_pairs": result["n_pairs"],
        "n_runs": result["n_runs"],
        "cpus_available": result["cpus_available"],
        "cache_speedup_floor": CACHE_SPEEDUP_FLOOR,
        "parallel_speedup_floor": PARALLEL_SPEEDUP_FLOOR,
        "rows": result["rows"],
        "bit_identical": result["bit_identical"],
        "all_cached_on_replay": result["all_cached_on_replay"],
    })
    return result


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    return run_benchmark(tmp_path_factory.mktemp("bench-cache"))


def test_backends_bit_identical(result):
    assert result["bit_identical"]
    assert result["all_cached_on_replay"]


def test_parallel_scaling_floors(result):
    # The cache replay must eliminate simulation outright.
    assert result["warm_seconds"] \
        < result["serial_seconds"] / CACHE_SPEEDUP_FLOOR
    # Parallel speedup needs parallel hardware to show.
    if result["cpus_available"] >= 4:
        speedup = result["serial_seconds"] / result["parallel_seconds"][4]
        assert speedup >= PARALLEL_SPEEDUP_FLOOR


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke variant: smaller workload, "
                             "no speedup floors")
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory() as cache_dir:
        if args.quick:
            result = run_benchmark(cache_dir, n_pairs=4, n_runs=4)
        else:
            result = run_benchmark(cache_dir)
    failed = not result["bit_identical"]
    if failed:
        print("FAIL: a backend diverged from the serial trace matrix")
    if not args.quick:
        if result["warm_seconds"] \
                >= result["serial_seconds"] / CACHE_SPEEDUP_FLOOR:
            print("FAIL: cache replay below the speedup floor")
            failed = True
        if result["cpus_available"] >= 4 \
                and (result["serial_seconds"]
                     / result["parallel_seconds"][4]
                     < PARALLEL_SPEEDUP_FLOOR):
            print("FAIL: jobs=4 below the parallel speedup floor")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
