"""Campaign-throughput scaling: serial vs parallel backend vs trace cache.

Simulation dominates MicroSampler's cost (Table VI), and campaigns are
embarrassingly parallel across inputs.  This benchmark runs the Fig. 10
CT-MEM-CMP workload — the paper's most expensive case study per input —
through every execution backend and reports wall-clock speedups, while
asserting that each backend's merged trace matrix is bit-identical to the
serial baseline.

The >= 2x parallel-speedup assertion is gated on the CPUs actually
available to this process: on a single-core runner the parallel backend
degenerates to serialized workers plus pool overhead, which is a property
of the machine, not the backend.  Determinism and the cache speedup are
asserted unconditionally.
"""

import os
import time

from repro.sampler import TraceCache, run_campaign
from repro.uarch import MEGA_BOOM
from repro.workloads.memcmp import make_ct_memcmp

from _harness import emit


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _signature(campaign):
    return [
        (record.index, record.label, record.run_index, record.ordinal,
         record.start_cycle, record.end_cycle, record.features)
        for record in campaign.iterations
    ]


def _timed(**kwargs):
    workload = make_ct_memcmp(n_pairs=8, seed=2, n_runs=8)
    started = time.perf_counter()
    campaign = run_campaign(workload, MEGA_BOOM, **kwargs)
    return time.perf_counter() - started, campaign


def test_parallel_scaling(tmp_path):
    cpus = _available_cpus()
    serial_seconds, serial = _timed(jobs=1)

    rows = [("serial (jobs=1)", serial_seconds, 1.0)]
    parallel_seconds = {}
    for jobs in (2, 4):
        seconds, campaign = _timed(jobs=jobs)
        assert _signature(campaign) == _signature(serial)
        parallel_seconds[jobs] = seconds
        rows.append((f"parallel (jobs={jobs})", seconds,
                     serial_seconds / seconds))

    cache = TraceCache(tmp_path / "bench-cache")
    cold_seconds, cold = _timed(jobs=1, cache=cache)
    assert _signature(cold) == _signature(serial)
    warm_seconds, warm = _timed(jobs=1, cache=cache)
    assert _signature(warm) == _signature(serial)
    assert warm.n_cached_runs == len(warm.runs)
    rows.append(("cache cold (stores)", cold_seconds,
                 serial_seconds / cold_seconds))
    rows.append(("cache warm (replay)", warm_seconds,
                 serial_seconds / warm_seconds))

    lines = [
        "Campaign execution backends — Fig. 10 CT-MEM-CMP workload "
        f"(8 inputs, {_available_cpus()} CPU(s) available)",
        "",
        f"{'backend':<22} {'seconds':>9} {'speedup':>9}",
        "-" * 42,
    ]
    for name, seconds, speedup in rows:
        lines.append(f"{name:<22} {seconds:>9.2f} {speedup:>8.1f}x")
    lines.append("")
    lines.append("all backends bit-identical to the serial trace matrix: yes")
    emit("parallel_scaling", "\n".join(lines))

    # The cache replay must eliminate simulation outright.
    assert warm_seconds < serial_seconds / 5
    # Parallel speedup needs parallel hardware to show.
    if cpus >= 4:
        assert serial_seconds / parallel_seconds[4] >= 2.0
