"""Simulator throughput: cycles/second untraced vs traced, both tracer modes.

Not a paper table, but the number that determines campaign sizing on this
substrate (the analog of the paper's Verilator throughput).  Measures three
configurations per core — no tracer, the default change-detection tracer,
and the naive always-resample tracer (``incremental=False``) — and asserts
the traced throughput against the pre-PR baseline recorded below (the
acceptance floor for the change-detection + hot-loop overhaul).

Run as a script (``--quick`` for the CI smoke variant: one repeat, no
floors) or through pytest, where the floors are enforced.
"""

from __future__ import annotations

import argparse
import time

import pytest

from repro.kernel import ProxyKernel
from repro.sampler.runner import patch_program
from repro.trace import MicroarchTracer
from repro.uarch import MEGA_BOOM, SMALL_BOOM, Core
from repro.workloads.modexp import make_me_v2_safe

from _harness import emit

#: Traced cycles/s on ME-V2-Safe before the change-detection tracer and the
#: core hot-loop overhaul (best of 4, reference machine).  The acceptance
#: floor is 3x these; the same machine now measures ~3.1-3.3x.
BASELINE_TRACED = {"SmallBoom": 10_242, "MegaBoom": 7_805}

#: Required speedup over the recorded pre-PR traced baseline.
SPEEDUP_FLOOR = 3.0

MODES = ("untraced", "incremental", "naive")


def _make_program():
    workload = make_me_v2_safe(n_keys=1, seed=3)
    return patch_program(workload.assemble(), workload.inputs[0])


@pytest.fixture(scope="module")
def program():
    return _make_program()


def _run(program, config, mode):
    """One full simulation; returns (cycles, seconds)."""
    tracer = None
    if mode == "incremental":
        tracer = MicroarchTracer()
    elif mode == "naive":
        tracer = MicroarchTracer(incremental=False)
    core = Core(program, config, kernel=ProxyKernel(), tracer=tracer)
    started = time.perf_counter()
    result = core.run()
    elapsed = time.perf_counter() - started
    return result.stats.cycles, elapsed


def measure(program, repeats: int = 4) -> list[dict]:
    """Best-of-``repeats`` cycles/s for every (config, mode) pair."""
    rows = []
    for config in (SMALL_BOOM, MEGA_BOOM):
        for mode in MODES:
            best_rate, cycles = 0.0, 0
            for _ in range(repeats):
                cycles, elapsed = _run(program, config, mode)
                best_rate = max(best_rate, cycles / elapsed)
            rows.append({
                "config": config.name,
                "mode": mode,
                "cycles": cycles,
                "cycles_per_second": round(best_rate, 1),
            })
    return rows


def _render(rows, repeats) -> str:
    lines = [
        f"Simulator throughput (ME-V2-Safe, one 32-bit key, "
        f"best of {repeats})",
        f"{'config':<12} {'tracer':>12} {'cycles':>8} {'cycles/s':>10} "
        f"{'vs pre-PR':>10}",
        "-" * 58,
    ]
    for row in rows:
        if row["mode"] == "untraced":
            vs = ""
        else:
            ratio = row["cycles_per_second"] / BASELINE_TRACED[row["config"]]
            vs = f"{ratio:.2f}x"
        lines.append(
            f"{row['config']:<12} {row['mode']:>12} {row['cycles']:>8} "
            f"{row['cycles_per_second']:>10,.0f} {vs:>10}"
        )
    return "\n".join(lines)


def run_benchmark(repeats: int = 4) -> list[dict]:
    rows = measure(_make_program(), repeats)
    data = {
        "workload": "me-v2-safe",
        "repeats": repeats,
        "baseline_traced_cycles_per_second": BASELINE_TRACED,
        "speedup_floor": SPEEDUP_FLOOR,
        "rows": rows,
    }
    emit("simulator_throughput", _render(rows, repeats), data)
    return rows


def _rate(rows, config_name, mode) -> float:
    return next(row["cycles_per_second"] for row in rows
                if row["config"] == config_name and row["mode"] == mode)


def test_simulator_throughput(benchmark, program):
    rows = measure(program, repeats=4)
    emit("simulator_throughput", _render(rows, 4), {
        "workload": "me-v2-safe",
        "repeats": 4,
        "baseline_traced_cycles_per_second": BASELINE_TRACED,
        "speedup_floor": SPEEDUP_FLOOR,
        "rows": rows,
    })
    benchmark.pedantic(_run, args=(program, MEGA_BOOM, "incremental"),
                       rounds=1, iterations=1)
    for config_name in ("SmallBoom", "MegaBoom"):
        # Identical simulations: tracer mode must not perturb the model.
        cycle_counts = {row["cycles"] for row in rows
                        if row["config"] == config_name}
        assert len(cycle_counts) == 1, cycle_counts
        # Regression floor: the untraced core must clear 5k cycles/s easily.
        assert _rate(rows, config_name, "untraced") > 5_000
        # Acceptance floor: traced throughput >= 3x the pre-PR baseline.
        incremental = _rate(rows, config_name, "incremental")
        floor = SPEEDUP_FLOOR * BASELINE_TRACED[config_name]
        assert incremental >= floor, (
            f"{config_name}: {incremental:,.0f} cycles/s traced is below "
            f"the {floor:,.0f} acceptance floor "
            f"({SPEEDUP_FLOOR}x pre-PR baseline)"
        )
        # Change detection must not lose to always-resample (small noise
        # tolerance: they share the simulation cost).
        assert incremental >= 0.95 * _rate(rows, config_name, "naive")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke variant: one repeat, no floors")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per configuration "
                             "(default 4, or 1 with --quick)")
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats is not None else (
        1 if args.quick else 4)
    rows = run_benchmark(repeats)
    if args.quick:
        return 0
    failed = False
    for config_name in ("SmallBoom", "MegaBoom"):
        incremental = _rate(rows, config_name, "incremental")
        floor = SPEEDUP_FLOOR * BASELINE_TRACED[config_name]
        if incremental < floor:
            print(f"FAIL: {config_name} traced {incremental:,.0f} cycles/s "
                  f"< floor {floor:,.0f}")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
