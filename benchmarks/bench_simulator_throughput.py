"""Simulator throughput: cycles/second with and without tracing.

Not a paper table, but the number that determines campaign sizing on this
substrate (the analog of the paper's Verilator throughput).  Also guards
against performance regressions in the core loop and the tracer.
"""

import pytest

from repro.kernel import ProxyKernel
from repro.sampler.runner import patch_program
from repro.trace import MicroarchTracer
from repro.uarch import MEGA_BOOM, SMALL_BOOM, Core
from repro.workloads.modexp import make_me_v2_safe

from _harness import emit


@pytest.fixture(scope="module")
def program():
    workload = make_me_v2_safe(n_keys=1, seed=3)
    return patch_program(workload.assemble(), workload.inputs[0])


def _run(program, config, traced):
    tracer = MicroarchTracer() if traced else None
    core = Core(program, config, kernel=ProxyKernel(), tracer=tracer)
    result = core.run()
    return result.stats.cycles


def test_simulator_throughput(benchmark, program):
    import time
    rows = []
    for config in (SMALL_BOOM, MEGA_BOOM):
        for traced in (False, True):
            started = time.perf_counter()
            cycles = _run(program, config, traced)
            elapsed = time.perf_counter() - started
            rows.append((config.name, traced, cycles, cycles / elapsed))
    benchmark.pedantic(_run, args=(program, MEGA_BOOM, True),
                       rounds=1, iterations=1)
    lines = [
        "Simulator throughput (ME-V2-Safe, one 32-bit key)",
        f"{'config':<12} {'tracing':>8} {'cycles':>8} {'cycles/s':>10}",
        "-" * 44,
    ]
    for name, traced, cycles, rate in rows:
        lines.append(f"{name:<12} {'on' if traced else 'off':>8} "
                     f"{cycles:>8} {rate:>10,.0f}")
    emit("simulator_throughput", "\n".join(lines))
    # Regression floor: the untraced core must clear 5k cycles/s easily.
    untraced = [rate for name, traced, _, rate in rows if not traced]
    assert min(untraced) > 5_000
