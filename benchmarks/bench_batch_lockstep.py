"""Lockstep batch execution: functional-phase throughput at N=32 lanes.

The acceptance benchmark for the SIMD-across-inputs batch interpreter.  The
functional phase of a campaign — the fast-forward warm-up to ``roi.begin``
(:func:`repro.sampler.checkpoint.capture_checkpoints_batch`) plus the
DATA-style software baseline (:func:`repro.baselines.data_tool.run_data_tool`)
— executes the same instruction stream once per input.  Batching folds those
N passes into one numpy-vectorized sweep; this benchmark times both phases
scalar vs batched at N=32 on bootstrap-heavy chacha20 and mp-modexp-ct
variants, asserts the captured checkpoints and baseline verdicts are
bit-identical, and enforces a >= 3x combined speedup floor.

Run as a script (``--quick`` for the CI smoke variant: one repeat, a
smaller bootstrap, no floor) or through pytest, where the floor is
enforced.
"""

from __future__ import annotations

import argparse
import time

import pytest

from repro.baselines.data_tool import run_data_tool
from repro.sampler.checkpoint import (
    capture_checkpoint,
    capture_checkpoints_batch,
)
from repro.sampler.runner import patch_program
from repro.workloads.bignum import make_mp_modexp_ct
from repro.workloads.bootstrap import with_bootstrap
from repro.workloads.chacha import make_chacha20

from _harness import emit

#: Lane width under test (the ``--batch-lanes auto`` default).
N_LANES = 32

#: Pre-ROI scrub-loop size modeling a library self-test's bootstrap phase.
BOOTSTRAP_INSTS = 60_000

#: Smaller bootstrap for the CI smoke variant.
QUICK_BOOTSTRAP_INSTS = 8_000

#: Cycle-accurate replay budget (the bundled default).
WARMUP_INSTS = 512

#: Required combined functional-phase (fast-forward + baseline) speedup.
SPEEDUP_FLOOR = 3.0


def _make_pairs(insts: int):
    """(bootstrap variant for fast-forward, base for the DATA baseline)."""
    bases = [
        make_chacha20(n_keys=N_LANES, n_blocks=1),
        make_mp_modexp_ct(n_keys=N_LANES),
    ]
    return [(with_bootstrap(base, insts=insts), base) for base in bases]


def _best(fn, repeats: int):
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def measure(pairs, repeats: int = 2) -> list[dict]:
    rows = []
    for boot, base in pairs:
        program = boot.assemble()
        programs = [patch_program(program, patches)
                    for patches in boot.inputs]

        ff_scalar_s, scalar_ckpts = _best(
            lambda: [capture_checkpoint(p, warmup_insts=WARMUP_INSTS)
                     for p in programs], repeats)
        ff_batch_s, (batch_ckpts, divergences) = _best(
            lambda: capture_checkpoints_batch(
                programs, warmup_insts=WARMUP_INSTS), repeats)
        ckpt_identical = (list(batch_ckpts) == list(scalar_ckpts)
                          and not divergences)

        data_scalar_s, scalar_report = _best(
            lambda: run_data_tool(base), repeats)
        data_batch_s, batch_report = _best(
            lambda: run_data_tool(base, batch_lanes=N_LANES), repeats)
        verdict_identical = (scalar_report.leakage_detected
                             == batch_report.leakage_detected)

        scalar_s = ff_scalar_s + data_scalar_s
        batch_s = ff_batch_s + data_batch_s
        rows.append({
            "workload": boot.name,
            "n_lanes": N_LANES,
            "ff_scalar_seconds": round(ff_scalar_s, 3),
            "ff_batch_seconds": round(ff_batch_s, 3),
            "ff_speedup": round(ff_scalar_s / ff_batch_s, 2),
            "baseline_scalar_seconds": round(data_scalar_s, 3),
            "baseline_batch_seconds": round(data_batch_s, 3),
            "baseline_speedup": round(data_scalar_s / data_batch_s, 2),
            "combined_speedup": round(scalar_s / batch_s, 2),
            "checkpoints_identical": ckpt_identical,
            "verdicts_identical": verdict_identical,
        })
    return rows


def _render(rows, insts, repeats) -> str:
    lines = [
        f"Lockstep batch execution at N={N_LANES} lanes "
        f"(+{insts:,} bootstrap insts, best of {repeats})",
        f"{'workload':<22} {'ff scalar':>10} {'ff batch':>9} "
        f"{'data scalar':>12} {'data batch':>11} {'combined':>9} "
        f"{'identical':>10}",
        "-" * 90,
    ]
    for row in rows:
        identical = (row["checkpoints_identical"]
                     and row["verdicts_identical"])
        lines.append(
            f"{row['workload']:<22} {row['ff_scalar_seconds']:>9.2f}s "
            f"{row['ff_batch_seconds']:>8.2f}s "
            f"{row['baseline_scalar_seconds']:>11.2f}s "
            f"{row['baseline_batch_seconds']:>10.2f}s "
            f"{row['combined_speedup']:>8.2f}x "
            f"{'yes' if identical else 'MISMATCH':>10}"
        )
    return "\n".join(lines)


def run_benchmark(insts: int = BOOTSTRAP_INSTS,
                  repeats: int = 2) -> list[dict]:
    rows = measure(_make_pairs(insts), repeats)
    emit("batch_lockstep", _render(rows, insts, repeats), {
        "bootstrap_insts": insts,
        "repeats": repeats,
        "n_lanes": N_LANES,
        "warmup_insts": WARMUP_INSTS,
        "speedup_floor": SPEEDUP_FLOOR,
        "rows": rows,
    })
    return rows


@pytest.fixture(scope="module")
def rows():
    return run_benchmark()


def test_batch_functional_phase_speedup_floor(rows):
    for row in rows:
        assert row["combined_speedup"] >= SPEEDUP_FLOOR, (
            f"{row['workload']}: {row['combined_speedup']}x functional-phase "
            f"throughput at N={N_LANES} is below the {SPEEDUP_FLOOR}x "
            f"acceptance floor"
        )


def test_batch_results_bit_identical(rows):
    for row in rows:
        assert row["checkpoints_identical"], row
        assert row["verdicts_identical"], row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke variant: one repeat, smaller "
                             "bootstrap, no speedup floor")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per mode "
                             "(default 2, or 1 with --quick)")
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats is not None else (
        1 if args.quick else 2)
    insts = QUICK_BOOTSTRAP_INSTS if args.quick else BOOTSTRAP_INSTS
    rows = run_benchmark(insts, repeats)
    failed = False
    for row in rows:
        if not (row["checkpoints_identical"] and row["verdicts_identical"]):
            print(f"FAIL: {row['workload']} batched results differ from "
                  f"scalar")
            failed = True
        if not args.quick and row["combined_speedup"] < SPEEDUP_FLOOR:
            print(f"FAIL: {row['workload']} speedup "
                  f"{row['combined_speedup']}x < floor {SPEEDUP_FLOOR}x")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
