"""Figure 3: Cramér's V for all tracked units while running ME-V1-CV.

Paper result: the compiler-introduced secret-dependent control flow
(Listing 4 preloads ``dst`` before checking ``ctl``) correlates almost every
microarchitectural unit with the key bits — high V across the board.
"""

import pytest

from repro.sampler import MicroSampler, render_bar_chart
from repro.uarch import MEGA_BOOM
from repro.workloads.modexp import make_me_v1_cv

from _harness import emit, v_series

N_KEYS = 6


@pytest.fixture(scope="module")
def workload():
    return make_me_v1_cv(n_keys=N_KEYS, seed=3)


def test_fig3_me_v1_cv(benchmark, workload):
    sampler = MicroSampler(MEGA_BOOM)
    report = benchmark.pedantic(sampler.analyze, args=(workload,),
                                rounds=1, iterations=1)
    chart = render_bar_chart(
        v_series(report),
        title=f"Fig. 3 — ME-V1-CV on MegaBoom ({report.n_iterations} "
              f"iterations): Cramér's V per unit",
    )
    chart += f"\n\nflagged units: {', '.join(report.leaky_units)}"
    emit("fig3_me_v1_cv", chart)
    # Shape assertions: broad, strong correlation.
    assert len(report.leaky_units) >= 10
    assert "ROB-PC" in report.leaky_units
    assert "EUU-ALU" in report.leaky_units
