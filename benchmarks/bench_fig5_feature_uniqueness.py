"""Figure 5: SQ-ADDR feature uniqueness for ME-V1-MV.

Paper result: the store addresses unique to each key-bit class are exactly
the ``memmove`` destinations — ``dst`` for bit=1 and ``dummy`` for bit=0
(the red/blue dots of the figure).
"""

import pytest

from repro.sampler import MicroSampler
from repro.uarch import MEGA_BOOM
from repro.workloads.modexp import make_me_v1_mv

from _harness import emit


@pytest.fixture(scope="module")
def workload():
    return make_me_v1_mv(n_keys=6, seed=3)


def test_fig5_sq_addr_uniqueness(benchmark, workload):
    sampler = MicroSampler(MEGA_BOOM)
    report = benchmark.pedantic(sampler.analyze, args=(workload,),
                                rounds=1, iterations=1)
    program = workload.assemble()
    dst = program.symbols["dst_buf"]
    dummy = program.symbols["dummy_buf"]
    cause = report.units["SQ-ADDR"].root_cause
    lines = [
        "Fig. 5 — SQ-ADDR feature uniqueness for ME-V1-MV",
        f"(dst_buf at {dst:#x}, dummy_buf at {dummy:#x})",
        "",
    ]
    for label in sorted(cause.uniqueness.unique_values):
        values = sorted(cause.uniqueness.unique_values[label])
        rendered = ", ".join(f"{v:#x}" for v in values)
        lines.append(f"key bit = {label}: unique store addresses: {rendered}")
    lines.append("")
    lines.append(f"addresses common to both classes: "
                 f"{len(cause.uniqueness.common_values)}")
    emit("fig5_feature_uniqueness", "\n".join(lines))

    unique1 = cause.uniqueness.unique_values[1]
    unique0 = cause.uniqueness.unique_values[0]
    assert unique1 and all(dst <= v < dst + 64 for v in unique1)
    assert unique0 and all(dummy <= v < dummy + 64 for v in unique0)
