"""Figure 10: CT-MEM-CMP — CRYPTO_memcmp plus its return-value consumer.

Paper result: the constant-time comparison itself is data-oblivious, but the
ROB reveals transient calls to ``equal``/``inequal`` driven by speculative
premature returns from the comparison loop; with timing effects removed, the
ROB stands out while address-based units collapse.  The call patterns
(speculative call, then architectural call) match Section VII-C1.
"""

from collections import Counter

import pytest

from repro.sampler import MicroSampler, render_bar_chart, run_campaign
from repro.uarch import MEGA_BOOM
from repro.workloads.memcmp import make_ct_memcmp

from _harness import emit, v_series


@pytest.fixture(scope="module")
def workload():
    return make_ct_memcmp(n_pairs=32, seed=2, n_runs=2)


def test_fig10_memcmp(benchmark, workload):
    sampler = MicroSampler(MEGA_BOOM)
    report = benchmark.pedantic(sampler.analyze, args=(workload,),
                                rounds=1, iterations=1)
    campaign = run_campaign(workload, MEGA_BOOM)
    program = workload.assemble()
    eq = program.symbols["equal"]
    ineq = program.symbols["inequal"]
    patterns = Counter()
    for record in campaign.iterations:
        order = record.features["ROB-PC"].order
        calls = []
        for value in order:
            if eq <= value < eq + 12 and "equal" not in calls:
                calls.append("equal")
            if ineq <= value < ineq + 12 and "inequal" not in calls:
                calls.append("inequal")
        patterns[(record.label, tuple(calls))] += 1

    lines = [
        "Fig. 10 — CT-MEM-CMP: Cramér's V per unit "
        f"({report.n_iterations} runs)",
        "",
        render_bar_chart(v_series(report), title="with timing:"),
        "",
        render_bar_chart(v_series(report, notiming=True),
                         title="timing removed (ROB stands out):"),
        "",
        "ROB call patterns (class, calls observed in ROB, count):",
    ]
    for (label, calls), count in sorted(patterns.items()):
        lines.append(f"  label={label} calls={list(calls)}: {count}")
    emit("fig10_memcmp", "\n".join(lines))

    v_nt = v_series(report, notiming=True)
    assert "ROB-PC" in report.leaky_units
    assert v_nt["ROB-PC"] > 0.9
    assert v_nt["SQ-ADDR"] < 0.3
    assert v_nt["LFB-ADDR"] < 0.3
    # Speculative double-call pattern present (equal then inequal, or
    # inequal then equal) in at least some runs.
    double = sum(c for (label, calls), c in patterns.items() if len(calls) == 2)
    assert double > 0
