"""Input-coverage convergence study (Section VII-D).

For a real leak, growing the input set drives the chi-squared p-value to
zero while Cramér's V stays high; for sound constant-time code the measured
association never becomes significant no matter how many inputs are added —
the framework's false-positive control.
"""

import pytest

from repro.sampler.sweep import significance_sweep
from repro.uarch import MEGA_BOOM
from repro.workloads.modexp import make_me_v2_safe, make_sam_leaky

from _harness import emit

UNITS = ["EUU-MUL", "ROB-PC"]


def _sweeps():
    leaky = significance_sweep(
        lambda n, seed: make_sam_leaky(n_keys=n, seed=seed),
        sizes=(1, 2, 4, 8), feature_ids=UNITS,
    )
    safe = significance_sweep(
        lambda n, seed: make_me_v2_safe(n_keys=n, seed=seed),
        sizes=(1, 2, 4, 8), feature_ids=UNITS,
    )
    return leaky, safe


def test_convergence_sweep(benchmark):
    leaky, safe = benchmark.pedantic(_sweeps, rounds=1, iterations=1)
    lines = [
        "Input-coverage convergence (Section VII-D)",
        "",
        leaky.render(UNITS),
        "",
        safe.render(UNITS),
        "",
        f"sam-leaky EUU-MUL significant from: "
        f"{leaky.first_significant('EUU-MUL')} keys",
        f"me-v2-safe EUU-MUL significant from: "
        f"{safe.first_significant('EUU-MUL')}",
    ]
    emit("convergence", "\n".join(lines))
    # The real leak converges to significance within a handful of keys...
    threshold = leaky.first_significant("EUU-MUL")
    assert threshold is not None and threshold <= 8
    # ...and the p-value improves (weakly) as inputs grow.
    p_values = [point.units["EUU-MUL"][1] for point in leaky.points]
    assert p_values[-1] < 1e-6
    # Safe code never reaches significance at any size.
    assert safe.first_significant("EUU-MUL") is None
    assert safe.first_significant("ROB-PC") is None
