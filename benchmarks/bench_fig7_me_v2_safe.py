"""Figure 7: Cramér's V per unit for ME-V2-Safe.

Paper result: BearSSL's branchless conditional copy shows no statistically
significant correlation on any tracked unit — the implementation is sound on
this microarchitecture.
"""

import pytest

from repro.sampler import MicroSampler, render_bar_chart
from repro.uarch import MEGA_BOOM
from repro.workloads.modexp import make_me_v2_safe

from _harness import emit, v_series


@pytest.fixture(scope="module")
def workload():
    return make_me_v2_safe(n_keys=6, seed=3)


def test_fig7_me_v2_safe(benchmark, workload):
    sampler = MicroSampler(MEGA_BOOM)
    report = benchmark.pedantic(sampler.analyze, args=(workload,),
                                rounds=1, iterations=1)
    series = v_series(report)
    chart = render_bar_chart(
        series,
        title=f"Fig. 7 — ME-V2-Safe on MegaBoom ({report.n_iterations} "
              f"iterations): Cramér's V per unit",
    )
    verdict = ("no statistically significant correlation"
               if not report.leakage_detected else
               f"UNEXPECTED leakage: {report.leaky_units}")
    emit("fig7_me_v2_safe", chart + f"\n\nverdict: {verdict}")
    assert not report.leakage_detected
    assert max(series.values()) < 0.5
