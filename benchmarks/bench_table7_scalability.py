"""Table VII: MicroSampler scalability versus formal verification.

Paper result: MicroSampler analysis time grows roughly linearly with design
size (SmallBoom -> MegaBoom: ~4x the state bits, ~2x the time), whereas the
XENON formal two-safety approach blows up (8x the design, 336x the time).
This benchmark measures both on our substrates: the same campaign on both
core configurations, and the exhaustive product-machine checker on two
netlists of different sizes.
"""

import time

import pytest

from repro.baselines import build_serial_alu, check_two_safety
from repro.sampler import MicroSampler
from repro.uarch import MEDIUM_BOOM, MEGA_BOOM, SMALL_BOOM
from repro.workloads.modexp import make_me_v1_cv

from _harness import emit


def _microsampler_times():
    workload = make_me_v1_cv(n_keys=3, seed=3)
    times = {}
    for config in (SMALL_BOOM, MEDIUM_BOOM, MEGA_BOOM):
        started = time.perf_counter()
        MicroSampler(config).analyze(workload)
        times[config.name] = time.perf_counter() - started
    return times


def _formal_times():
    results = {}
    for width in (4, 7):
        outcome = check_two_safety(build_serial_alu(width))
        results[outcome.design] = (outcome.state_bits,
                                   outcome.analysis_seconds)
    return results


def test_table7_scalability(benchmark):
    ms_times = benchmark.pedantic(_microsampler_times, rounds=1, iterations=1)
    formal = _formal_times()

    small_bits = SMALL_BOOM.core_structure_bits()
    mega_bits = MEGA_BOOM.core_structure_bits()
    size_ratio = mega_bits / small_bits
    time_ratio = ms_times["MegaBoom"] / ms_times["SmallBoom"]

    (f_small, (f_small_bits, f_small_t)), (f_large, (f_large_bits, f_large_t)) = \
        sorted(formal.items(), key=lambda kv: kv[1][0])
    f_size_ratio = f_large_bits / f_small_bits
    f_time_ratio = f_large_t / max(f_small_t, 1e-9)

    lines = [
        "Table VII — scalability: MicroSampler vs formal two-safety checking",
        "",
        f"{'tool':<18} {'design':<16} {'state bits':>11} {'time':>10}",
        "-" * 58,
        f"{'MicroSampler':<18} {'SmallBoom':<16} {small_bits:>11,} "
        f"{ms_times['SmallBoom']:>9.2f}s",
        f"{'MicroSampler':<18} {'MediumBoom':<16} "
        f"{MEDIUM_BOOM.core_structure_bits():>11,} "
        f"{ms_times['MediumBoom']:>9.2f}s",
        f"{'MicroSampler':<18} {'MegaBoom':<16} {mega_bits:>11,} "
        f"{ms_times['MegaBoom']:>9.2f}s",
        f"{'formal (2-safety)':<18} {f_small:<16} {f_small_bits:>11,} "
        f"{f_small_t:>9.3f}s",
        f"{'formal (2-safety)':<18} {f_large:<16} {f_large_bits:>11,} "
        f"{f_large_t:>9.3f}s",
        "",
        f"MicroSampler: {size_ratio:.1f}x design size -> "
        f"{time_ratio:.1f}x analysis time  (paper: 4x size / 2x time)",
        f"formal:       {f_size_ratio:.1f}x state bits -> "
        f"{f_time_ratio:.0f}x analysis time  (paper/XENON: 8x size / 336x time)",
    ]
    emit("table7_scalability", "\n".join(lines))

    # Shape: near-linear for MicroSampler, super-linear blow-up for formal.
    assert time_ratio < size_ratio * 1.5
    assert f_time_ratio > f_size_ratio * 4
