"""Table VI: execution-time breakdown of the MicroSampler stages.

Paper result (ME-V1-CV, 4 x 1024-bit keys on MegaBoom): ~35 min simulating,
~51 min parsing/snapshotting, ~30 min statistics, ~13 min feature
extraction — 129 minutes total.  Our substrate is a Python model running a
scaled-down campaign, so absolute numbers differ; the benchmark reports the
same four-stage breakdown, with simulation + trace parsing dominating.
"""

import pytest

from repro.sampler import MicroSampler
from repro.uarch import MEGA_BOOM
from repro.workloads.modexp import make_me_v1_cv

from _harness import emit

PAPER_MINUTES = {"simulate": 35, "parse": 51, "stats": 30, "extract": 13}


def test_table6_stage_breakdown(benchmark):
    sampler = MicroSampler(MEGA_BOOM)
    workload = make_me_v1_cv(n_keys=6, seed=3)
    report = benchmark.pedantic(sampler.analyze, args=(workload,),
                                rounds=1, iterations=1)
    t = report.timings
    rows = [
        ("1- Execute program on the cycle-accurate simulator",
         t.simulate_seconds, PAPER_MINUTES["simulate"]),
        ("2- Parse traces into microarchitectural iteration snapshots",
         t.parse_seconds, PAPER_MINUTES["parse"]),
        ("3- Calculate Cramér's V for all tracked structures",
         t.stats_seconds, PAPER_MINUTES["stats"]),
        ("4- Extract features responsible for high correlation",
         t.extract_seconds, PAPER_MINUTES["extract"]),
    ]
    lines = [
        "Table VI — MicroSampler stage breakdown (ME-V1-CV on MegaBoom)",
        f"{'stage':<62} {'measured':>10} {'paper':>8}",
        "-" * 84,
    ]
    for label, seconds, paper_min in rows:
        lines.append(f"{label:<62} {seconds:>9.2f}s {paper_min:>6}min")
    lines.append("-" * 84)
    lines.append(f"{'Total analysis time':<62} "
                 f"{t.total_seconds:>9.2f}s {sum(PAPER_MINUTES.values()):>6}min")
    emit("table6_breakdown", "\n".join(lines))

    assert t.total_seconds > 0
    # Shape: simulation + trace processing dominate the analysis stages.
    assert (t.simulate_seconds + t.parse_seconds
            > t.stats_seconds + t.extract_seconds)
