"""Analysis-stage throughput: scalar vs vectorized statistics engine.

PR 1 parallelized simulation; this benchmark measures the other half of the
pipeline.  A synthetic 1k-run campaign (Table IV units, hundreds of snapshot
categories per unit — the regime where per-cell Python loops hurt) is scored
by both engines, the verdicts are cross-checked, and the stats-stage
wall-clock ratio is reported.  Run as a script (``--quick`` for the CI smoke
variant) or through pytest, where the >= 5x speedup is asserted.
"""

from __future__ import annotations

import argparse
import random
import time

from repro.sampler import MicroSampler
from repro.sampler.runner import CampaignResult, Workload
from repro.trace.features import FEATURE_ORDER
from repro.trace.tracer import FeatureIteration, IterationRecord, MicroarchTracer
from repro.uarch import MEGA_BOOM

from _harness import emit

#: Units given a class-correlated snapshot distribution (must flag LEAK).
LEAKY_UNITS = frozenset({"EUU-MUL", "SQ-ADDR", "ROB-PC"})


def synthetic_campaign(n_runs: int, *, iterations_per_run: int = 4,
                       n_categories: int = 512,
                       seed: int = 7) -> CampaignResult:
    """A campaign of ``n_runs`` runs with random snapshot hashes.

    Mirrors the shape of the real case studies (several algorithmic
    iterations per simulated input).  Clean units draw hashes from one
    shared pool; leaky units draw from disjoint per-class pools, so the
    expected verdict per unit is known.
    """
    rng = random.Random(seed)
    tracer = MicroarchTracer()
    for run_index in range(n_runs):
        label = run_index % 2
        for ordinal in range(iterations_per_run):
            record = IterationRecord(index=0, label=label, start_cycle=0,
                                     end_cycle=100, run_index=run_index,
                                     ordinal=ordinal)
            for feature_id in FEATURE_ORDER:
                offset = (label * n_categories
                          if feature_id in LEAKY_UNITS else 0)
                record.features[feature_id] = FeatureIteration(
                    snapshot_hash=offset + rng.randrange(n_categories),
                    snapshot_hash_notiming=offset + rng.randrange(n_categories),
                    values=frozenset(),
                    order=(),
                )
            tracer.append_record(record)
    workload = Workload(name=f"synthetic-{n_runs}", source="",
                        inputs=[{}] * n_runs)
    return CampaignResult(workload=workload, config=MEGA_BOOM, tracer=tracer,
                          runs=[], simulate_seconds=0.0, parse_seconds=0.0)


def _time_engine(campaign: CampaignResult, engine: str,
                 repeats: int = 3):
    sampler = MicroSampler(MEGA_BOOM, engine=engine,
                           extract_root_causes_for_leaky=False)
    best_seconds = float("inf")
    report = None
    for _ in range(repeats):
        started = time.perf_counter()
        report = sampler.analyze_campaign(campaign)
        elapsed = time.perf_counter() - started
        best_seconds = min(best_seconds, elapsed)
    return best_seconds, report


def _check_agreement(scalar, vectorized, tolerance: float = 1e-9) -> float:
    """Assert verdict equality and return the worst statistic deviation."""
    assert scalar.leaky_units == vectorized.leaky_units
    worst = 0.0
    for feature_id, unit in scalar.units.items():
        other = vectorized.units[feature_id]
        for a, b in ((unit.association, other.association),
                     (unit.association_notiming, other.association_notiming)):
            assert a.dof == b.dof
            for field in ("chi_squared", "p_value", "cramers_v",
                          "cramers_v_corrected"):
                worst = max(worst, abs(getattr(a, field) - getattr(b, field)))
    assert worst < tolerance
    return worst


def run_benchmark(n_runs: int = 1000, *, n_categories: int = 512,
                  repeats: int = 3):
    campaign = synthetic_campaign(n_runs, n_categories=n_categories)
    scalar_seconds, scalar = _time_engine(campaign, "python", repeats)
    vector_seconds, vectorized = _time_engine(campaign, "numpy", repeats)
    worst = _check_agreement(scalar, vectorized)
    assert set(scalar.leaky_units) == LEAKY_UNITS, scalar.leaky_units
    speedup = scalar_seconds / vector_seconds
    n_iterations = len(campaign.iterations)
    lines = [
        f"analysis-stage engines, synthetic campaign "
        f"({n_runs} runs, {n_iterations} iterations, "
        f"{len(FEATURE_ORDER)} units, "
        f"~{n_categories} categories/unit/class)",
        f"{'engine':<10} {'stats time':>12} {'speedup':>9}",
        "-" * 34,
        f"{'python':<10} {scalar_seconds * 1e3:>10.1f}ms {1.0:>8.1f}x",
        f"{'numpy':<10} {vector_seconds * 1e3:>10.1f}ms {speedup:>8.1f}x",
        "",
        f"verdicts identical ({sorted(scalar.leaky_units)}), "
        f"max statistic deviation {worst:.3g}",
    ]
    emit("analysis_engine", "\n".join(lines))
    return speedup


def test_analysis_engine_speedup():
    """Acceptance gate: >= 5x on the 1k-run synthetic campaign."""
    speedup = run_benchmark(1000)
    assert speedup >= 5.0, f"vectorized engine only {speedup:.1f}x faster"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke variant: a small campaign, "
                             "agreement checked, no speedup floor")
    parser.add_argument("--runs", type=int, default=None,
                        help="synthetic campaign size (default 1000, "
                             "or 200 with --quick)")
    args = parser.parse_args(argv)
    n_runs = args.runs if args.runs is not None else (
        200 if args.quick else 1000)
    speedup = run_benchmark(n_runs, n_categories=64 if args.quick else 512)
    if not args.quick and speedup < 5.0:
        print(f"FAIL: expected >= 5x, measured {speedup:.1f}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
