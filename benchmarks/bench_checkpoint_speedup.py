"""Fast-forward checkpointing: end-to-end campaign speedup vs full simulation.

The acceptance benchmark for the checkpointing PR.  Three bootstrap-heavy
workloads (:func:`repro.workloads.bootstrap.with_bootstrap` splices a
60k-instruction pre-ROI scrub loop into chacha20, mp-modexp-ct and the
OpenSSL ``constant_time_select`` harness) are analyzed twice end-to-end:
with full cycle-accurate simulation (``warmup_insts=None``) and with the
default fast-forward budget (functional warm-up to 512 instructions before
``roi.begin``).  Asserts a >= 2x wall-clock speedup per workload and that
the verdict — leak/clean plus the flagged unit list — is unchanged.

Run as a script (``--quick`` for the CI smoke variant: one repeat, a
smaller bootstrap, no floors) or through pytest, where the floors are
enforced.
"""

from __future__ import annotations

import argparse
import time

import pytest

from repro.sampler.checkpoint import DEFAULT_WARMUP_INSTS
from repro.sampler.pipeline import MicroSampler
from repro.workloads.bignum import make_mp_modexp_ct
from repro.workloads.bootstrap import with_bootstrap
from repro.workloads.chacha import make_chacha20
from repro.workloads.openssl import make_primitive_workload

from _harness import emit

#: Pre-ROI scrub-loop size modeling a library self-test's bootstrap phase.
BOOTSTRAP_INSTS = 60_000

#: Smaller bootstrap for the CI smoke variant.
QUICK_BOOTSTRAP_INSTS = 8_000

#: Required end-to-end campaign speedup at the default warm-up budget.
SPEEDUP_FLOOR = 2.0


def _make_workloads(insts: int):
    return [
        with_bootstrap(base, insts=insts)
        for base in (
            make_chacha20(n_keys=4),
            make_mp_modexp_ct(),
            make_primitive_workload("constant_time_select"),
        )
    ]


def _analyze(workload, warmup_insts):
    """One uncached end-to-end analysis; returns (report, seconds)."""
    sampler = MicroSampler(jobs=1, cache=None, warmup_insts=warmup_insts)
    started = time.perf_counter()
    report = sampler.analyze(workload)
    return report, time.perf_counter() - started


def measure(workloads, repeats: int = 2) -> list[dict]:
    """Best-of-``repeats`` full vs checkpointed times per workload."""
    rows = []
    for workload in workloads:
        best = {}
        reports = {}
        for warmup, tag in ((None, "full"), (DEFAULT_WARMUP_INSTS, "ckpt")):
            best[tag] = float("inf")
            for _ in range(repeats):
                report, elapsed = _analyze(workload, warmup)
                best[tag] = min(best[tag], elapsed)
            reports[tag] = report
        rows.append({
            "workload": workload.name,
            "full_seconds": round(best["full"], 3),
            "checkpoint_seconds": round(best["ckpt"], 3),
            "speedup": round(best["full"] / best["ckpt"], 2),
            "full_verdict": reports["full"].leakage_detected,
            "checkpoint_verdict": reports["ckpt"].leakage_detected,
            "full_leaky_units": sorted(reports["full"].leaky_units),
            "checkpoint_leaky_units": sorted(reports["ckpt"].leaky_units),
        })
    return rows


def _render(rows, insts, repeats) -> str:
    lines = [
        f"Fast-forward checkpointing speedup "
        f"(+{insts:,} bootstrap insts, best of {repeats})",
        f"{'workload':<30} {'full':>8} {'ckpt':>8} {'speedup':>8} "
        f"{'verdicts':>10}",
        "-" * 70,
    ]
    for row in rows:
        same = (row["full_verdict"] == row["checkpoint_verdict"]
                and row["full_leaky_units"] == row["checkpoint_leaky_units"])
        verdict = "LEAK" if row["full_verdict"] else "clean"
        status = verdict if same else "MISMATCH"
        lines.append(
            f"{row['workload']:<30} {row['full_seconds']:>7.2f}s "
            f"{row['checkpoint_seconds']:>7.2f}s {row['speedup']:>7.2f}x "
            f"{status:>10}"
        )
    return "\n".join(lines)


def run_benchmark(insts: int = BOOTSTRAP_INSTS, repeats: int = 2) -> list[dict]:
    rows = measure(_make_workloads(insts), repeats)
    emit("checkpoint_speedup", _render(rows, insts, repeats), {
        "bootstrap_insts": insts,
        "repeats": repeats,
        "warmup_insts": DEFAULT_WARMUP_INSTS,
        "speedup_floor": SPEEDUP_FLOOR,
        "rows": rows,
    })
    return rows


@pytest.fixture(scope="module")
def rows():
    return run_benchmark()


def test_checkpoint_speedup_floor(benchmark, rows):
    benchmark.pedantic(
        _analyze,
        args=(_make_workloads(BOOTSTRAP_INSTS)[0], DEFAULT_WARMUP_INSTS),
        rounds=1, iterations=1,
    )
    for row in rows:
        assert row["speedup"] >= SPEEDUP_FLOOR, (
            f"{row['workload']}: {row['speedup']}x end-to-end is below the "
            f"{SPEEDUP_FLOOR}x acceptance floor "
            f"(full {row['full_seconds']}s vs "
            f"checkpointed {row['checkpoint_seconds']}s)"
        )


def test_checkpoint_verdicts_unchanged(rows):
    for row in rows:
        assert row["full_verdict"] == row["checkpoint_verdict"], row
        assert row["full_leaky_units"] == row["checkpoint_leaky_units"], row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke variant: one repeat, smaller "
                             "bootstrap, no speedup floor")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per mode "
                             "(default 2, or 1 with --quick)")
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats is not None else (
        1 if args.quick else 2)
    insts = QUICK_BOOTSTRAP_INSTS if args.quick else BOOTSTRAP_INSTS
    rows = run_benchmark(insts, repeats)
    failed = False
    for row in rows:
        if (row["full_verdict"] != row["checkpoint_verdict"]
                or row["full_leaky_units"] != row["checkpoint_leaky_units"]):
            print(f"FAIL: {row['workload']} verdict changed under "
                  f"checkpointing")
            failed = True
        if not args.quick and row["speedup"] < SPEEDUP_FLOOR:
            print(f"FAIL: {row['workload']} speedup {row['speedup']}x "
                  f"< floor {SPEEDUP_FLOOR}x")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
