"""Figure 9: ME-V2-FB — the safe code on a fast-bypass core.

Paper result: the trivial-computation bypass makes the previously clean
ME-V2-Safe leak on many units.  Re-hashing the snapshots with timing
information removed (consolidating consecutive identical values per entry)
drops SQ-ADDR/SQ-PC to insignificance — their correlation was purely timing —
while the ALU (the AND only executes for key bit 1) and the ROB (the
bypassed AND shares its host's entry) remain perfectly correlated.
"""

import pytest

from repro.sampler import MicroSampler, render_bar_chart
from repro.uarch import MEGA_BOOM
from repro.workloads.modexp import make_me_v2_safe

from _harness import emit, v_series


@pytest.fixture(scope="module")
def workload():
    return make_me_v2_safe(n_keys=6, seed=3)


def test_fig9_fast_bypass(benchmark, workload):
    sampler = MicroSampler(MEGA_BOOM.with_(fast_bypass=True))
    report = benchmark.pedantic(sampler.analyze, args=(workload,),
                                rounds=1, iterations=1)
    with_timing = v_series(report)
    without_timing = v_series(report, notiming=True)
    lines = [
        "Fig. 9 — ME-V2-FB (fast-bypass MegaBoom): Cramér's V with and",
        "without timing information (paper's blue and orange bars)",
        "",
        render_bar_chart(with_timing, title="with timing:"),
        "",
        render_bar_chart(without_timing, title="timing removed:"),
    ]
    alu_cause = report.units["EUU-ALU"].root_cause
    if alu_cause:
        lines += ["", "EUU-ALU root cause:", alu_cause.summary()]
    rob_cause = report.units["ROB-PC"].root_cause
    if rob_cause:
        lines += ["", "ROB-PC root cause:", rob_cause.summary()]
    emit("fig9_fast_bypass", "\n".join(lines))

    assert report.leakage_detected
    assert without_timing["SQ-ADDR"] < 0.1        # timing-only correlation
    assert without_timing["EUU-ALU"] > 0.9        # skipped AND
    assert without_timing["ROB-PC"] > 0.9         # shared ROB entry
    # The ALU uniqueness isolates the AND inside ccopy_bear for key bit 1.
    program = workload.assemble()
    start = program.symbols["ccopy_bear"]
    unique1 = alu_cause.uniqueness.unique_values[1]
    assert any(start <= pc < start + 64 for pc in unique1)
