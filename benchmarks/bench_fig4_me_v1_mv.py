"""Figure 4: Cramér's V per unit for ME-V1-MV.

Paper result: the branchless conditional copy confines the correlation to
memory-access units (store-queue addresses, prefetcher, cache request, TLB,
MSHR); roughly half the units show V below 0.2.
"""

import pytest

from repro.sampler import MicroSampler, render_bar_chart
from repro.uarch import MEGA_BOOM
from repro.workloads.modexp import make_me_v1_mv

from _harness import emit, v_series

MEMORY_UNITS = {"SQ-ADDR", "NLP-ADDR", "Cache-ADDR", "TLB-ADDR", "MSHR-ADDR"}


@pytest.fixture(scope="module")
def workload():
    return make_me_v1_mv(n_keys=6, seed=3)


def test_fig4_me_v1_mv(benchmark, workload):
    sampler = MicroSampler(MEGA_BOOM)
    report = benchmark.pedantic(sampler.analyze, args=(workload,),
                                rounds=1, iterations=1)
    chart = render_bar_chart(
        v_series(report),
        title=f"Fig. 4 — ME-V1-MV on MegaBoom ({report.n_iterations} "
              f"iterations): Cramér's V per unit",
    )
    chart += f"\n\nflagged units: {', '.join(report.leaky_units)}"
    emit("fig4_me_v1_mv", chart)
    flagged = set(report.leaky_units)
    assert flagged == MEMORY_UNITS
    low = [fid for fid, v in v_series(report).items() if v < 0.3]
    assert len(low) >= 8  # non-memory units stay low
