"""Taint-pruned tracing: end-to-end campaign speedup vs full tracing.

The acceptance benchmark for the secret-taint publicness engine's *prune*
tier.  chacha20 is the showcase: data-only secret flow (no escalation, no
transient shadow hits), so the reachability table prunes every non-data-
carrying unit and the tracer skips their per-cycle digesting entirely.
Early-exit memcmp rides along as the escalation control — its secret-
dependent branch voids pruning, so taint-on must cost (slightly) more than
off while landing on the identical verdict.

Both modes are asserted verdict-bit-identical (leakage flag plus the
sorted leaky-unit list); the pruning workload must clear the wall-clock
speedup floor.

Run as a script (``--quick`` for the CI smoke variant: one repeat, fewer
keys, no floors) or through pytest, where the floors are enforced.
"""

from __future__ import annotations

import argparse
import time

import pytest

from repro.sampler.pipeline import MicroSampler
from repro.workloads.chacha import make_chacha20
from repro.workloads.memcmp import make_early_exit_memcmp

from _harness import emit

#: Required end-to-end speedup on the pruning workload.  15 of 16 units
#: skip per-cycle digesting, but the cycle-accurate core loop itself is
#: untouched and the taint prepass is a fixed cost, so the measured
#: end-to-end gain sits around 1.2x at the full size — the floor leaves
#: margin for CI noise.
SPEEDUP_FLOOR = 1.1

#: Campaign sizes for the full and CI smoke variants.
N_KEYS, N_BLOCKS = 8, 4
QUICK_N_KEYS, QUICK_N_BLOCKS = 4, 1


def _make_workloads(n_keys: int, n_blocks: int = N_BLOCKS):
    """(workload, expects_pruning) pairs."""
    return [
        (make_chacha20(n_keys=n_keys, n_blocks=n_blocks, seed=3), True),
        (make_early_exit_memcmp(n_pairs=16, seed=2, n_runs=2), False),
    ]


def _analyze(workload, taint: bool):
    """One uncached end-to-end analysis; returns (report, seconds)."""
    sampler = MicroSampler(jobs=1, cache=None, taint=taint)
    started = time.perf_counter()
    report = sampler.analyze(workload)
    return report, time.perf_counter() - started


def measure(workloads, repeats: int = 2) -> list[dict]:
    """Best-of-``repeats`` taint-off vs taint-on times per workload."""
    rows = []
    for workload, expects_pruning in workloads:
        best = {}
        reports = {}
        for taint, tag in ((False, "off"), (True, "on")):
            best[tag] = float("inf")
            for _ in range(repeats):
                report, elapsed = _analyze(workload, taint)
                best[tag] = min(best[tag], elapsed)
            reports[tag] = report
        taint_summary = reports["on"].taint
        rows.append({
            "workload": workload.name,
            "expects_pruning": expects_pruning,
            "off_seconds": round(best["off"], 3),
            "on_seconds": round(best["on"], 3),
            "speedup": round(best["off"] / best["on"], 2),
            "pruned_units": sorted(taint_summary.pruned),
            "escalated": taint_summary.escalated,
            "off_verdict": reports["off"].leakage_detected,
            "on_verdict": reports["on"].leakage_detected,
            "off_leaky_units": sorted(reports["off"].leaky_units),
            "on_leaky_units": sorted(reports["on"].leaky_units),
        })
    return rows


def _render(rows, n_keys, repeats) -> str:
    lines = [
        f"Taint-pruned tracing speedup (chacha20 n_keys={n_keys}, "
        f"best of {repeats})",
        f"{'workload':<22} {'off':>8} {'on':>8} {'speedup':>8} "
        f"{'pruned':>7} {'verdicts':>10}",
        "-" * 70,
    ]
    for row in rows:
        same = (row["off_verdict"] == row["on_verdict"]
                and row["off_leaky_units"] == row["on_leaky_units"])
        verdict = "LEAK" if row["off_verdict"] else "clean"
        status = verdict if same else "MISMATCH"
        lines.append(
            f"{row['workload']:<22} {row['off_seconds']:>7.2f}s "
            f"{row['on_seconds']:>7.2f}s {row['speedup']:>7.2f}x "
            f"{len(row['pruned_units']):>7} {status:>10}"
        )
    return "\n".join(lines)


def run_benchmark(n_keys: int = N_KEYS, repeats: int = 2,
                  n_blocks: int = N_BLOCKS) -> list[dict]:
    rows = measure(_make_workloads(n_keys, n_blocks), repeats)
    emit("taint_prune", _render(rows, n_keys, repeats), {
        "n_keys": n_keys,
        "repeats": repeats,
        "speedup_floor": SPEEDUP_FLOOR,
        "rows": rows,
    })
    return rows


@pytest.fixture(scope="module")
def rows():
    return run_benchmark()


def test_taint_prune_speedup_floor(benchmark, rows):
    benchmark.pedantic(
        _analyze,
        args=(_make_workloads(N_KEYS)[0][0], True),
        rounds=1, iterations=1,
    )
    for row in rows:
        if not row["expects_pruning"]:
            continue
        assert row["pruned_units"], (
            f"{row['workload']}: expected pruning but the taint engine "
            f"pruned nothing (escalated={row['escalated']})")
        assert row["speedup"] >= SPEEDUP_FLOOR, (
            f"{row['workload']}: {row['speedup']}x end-to-end is below the "
            f"{SPEEDUP_FLOOR}x acceptance floor "
            f"(off {row['off_seconds']}s vs on {row['on_seconds']}s)"
        )


def test_taint_verdicts_unchanged(rows):
    for row in rows:
        assert row["off_verdict"] == row["on_verdict"], row
        assert row["off_leaky_units"] == row["on_leaky_units"], row
        if not row["expects_pruning"]:
            assert row["escalated"] and not row["pruned_units"], row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke variant: one repeat, fewer keys, "
                             "no speedup floor")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per mode "
                             "(default 2, or 1 with --quick)")
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats is not None else (
        1 if args.quick else 2)
    n_keys = QUICK_N_KEYS if args.quick else N_KEYS
    n_blocks = QUICK_N_BLOCKS if args.quick else N_BLOCKS
    rows = run_benchmark(n_keys, repeats, n_blocks)
    failed = False
    for row in rows:
        if (row["off_verdict"] != row["on_verdict"]
                or row["off_leaky_units"] != row["on_leaky_units"]):
            print(f"FAIL: {row['workload']} verdict changed under taint "
                  f"pruning")
            failed = True
        if (not args.quick and row["expects_pruning"]
                and row["speedup"] < SPEEDUP_FLOOR):
            print(f"FAIL: {row['workload']} speedup {row['speedup']}x "
                  f"< floor {SPEEDUP_FLOOR}x")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
