"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure from the paper's evaluation
and both prints it and writes it to ``benchmarks/results/<name>.txt`` so the
series survive pytest's output capturing.  Benchmarks that also pass
machine-readable ``data`` get a ``results/<name>.json`` twin, so trend
tracking across commits does not have to re-parse the ASCII tables.

Every JSON twin carries a ``meta`` block recording the repo commit the
numbers were measured at and content digests of the bundled core configs,
so a series archived from CI is attributable: a drift in the numbers can be
told apart from a deliberate core-parameter change by comparing digests.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import subprocess

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _repo_commit() -> str | None:
    """Current repo HEAD SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def _config_digests() -> dict:
    """Content digests of the bundled core configurations."""
    from repro.uarch.config import MEDIUM_BOOM, MEGA_BOOM, SMALL_BOOM
    from repro.util.hashing import stable_hex_digest

    return {
        config.name: stable_hex_digest(dataclasses.asdict(config))
        for config in (SMALL_BOOM, MEDIUM_BOOM, MEGA_BOOM)
    }


def result_meta() -> dict:
    """Provenance block stamped into every results JSON."""
    return {
        "commit": _repo_commit(),
        "core_config_digests": _config_digests(),
    }


def emit(name: str, text: str, data=None) -> None:
    """Print a figure/table reproduction and persist it to results/.

    ``data`` (any JSON-serializable value) additionally lands in
    ``results/<name>.json`` with stable key order for clean diffs, wrapped
    as ``{"meta": ..., "results": data}`` unless the caller already
    supplied its own top-level ``meta``.
    """
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        if not (isinstance(data, dict) and "meta" in data):
            data = {"meta": result_meta(), "results": data}
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )


def v_series(report, notiming: bool = False) -> dict:
    """Per-unit Cramér's V series from a LeakageReport."""
    if notiming:
        return report.cramers_v_by_unit_notiming()
    return report.cramers_v_by_unit()
