"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure from the paper's evaluation
and both prints it and writes it to ``benchmarks/results/<name>.txt`` so the
series survive pytest's output capturing.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a figure/table reproduction and persist it to results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def v_series(report, notiming: bool = False) -> dict:
    """Per-unit Cramér's V series from a LeakageReport."""
    if notiming:
        return report.cramers_v_by_unit_notiming()
    return report.cramers_v_by_unit()
