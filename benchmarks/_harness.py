"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure from the paper's evaluation
and both prints it and writes it to ``benchmarks/results/<name>.txt`` so the
series survive pytest's output capturing.  Benchmarks that also pass
machine-readable ``data`` get a ``results/<name>.json`` twin, so trend
tracking across commits does not have to re-parse the ASCII tables.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str, data=None) -> None:
    """Print a figure/table reproduction and persist it to results/.

    ``data`` (any JSON-serializable value) additionally lands in
    ``results/<name>.json``, with stable key order for clean diffs.
    """
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )


def v_series(report, notiming: bool = False) -> dict:
    """Per-unit Cramér's V series from a LeakageReport."""
    if notiming:
        return report.cramers_v_by_unit_notiming()
    return report.cramers_v_by_unit()
