"""Table V: the 28 OpenSSL constant-time primitives.

Paper result: no statistically significant correlation for any primitive
except the constant-time memory comparison ``CRYPTO_memcmp`` (whose leak is
demonstrated in the CT-MEM-CMP case study / Figure 10 benchmark).
"""

import pytest

from repro.sampler import MicroSampler
from repro.uarch import MEGA_BOOM
from repro.workloads.memcmp import make_ct_memcmp
from repro.workloads.openssl import make_primitive_workload, primitive_names

from _harness import emit


def _sweep():
    sampler = MicroSampler(MEGA_BOOM)
    rows = []
    for name in primitive_names():
        workload = make_primitive_workload(name, n_sets=12, n_runs=2, seed=11)
        report = sampler.analyze(workload)
        rows.append((name, report.leakage_detected,
                     max(report.cramers_v_by_unit().values())))
    memcmp_report = sampler.analyze(make_ct_memcmp(n_pairs=24, seed=2,
                                                   n_runs=2))
    rows.append(("CRYPTO_memcmp", memcmp_report.leakage_detected,
                 max(memcmp_report.cramers_v_by_unit().values())))
    return rows


def test_table5_openssl_primitives(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [
        "Table V — OpenSSL constant-time primitives",
        f"{'primitive':<34} {'max V':>7} {'leakage identified':>20}",
        "-" * 63,
    ]
    for name, leaky, max_v in rows:
        lines.append(f"{name:<34} {max_v:>7.3f} "
                     f"{'YES' if leaky else 'no':>20}")
    emit("table5_openssl", "\n".join(lines))

    verdicts = {name: leaky for name, leaky, _ in rows}
    assert verdicts.pop("CRYPTO_memcmp") is True
    assert not any(verdicts.values())  # all 27 others clean
    assert len(verdicts) == 27
