"""Extension: transient-execution and cache-channel litmus coverage.

Beyond the paper's case studies, these benches show the framework
generalizing to two canonical leak families:

* **Spectre-PHT** — architecturally nothing secret-dependent executes (the
  bounds check fails), yet the transient probe access imprints the planted
  secret on the D-cache request stream; a DATA-style software tool sees two
  identical traces.
* **S-box substitution** — the textbook table-lookup cache channel versus
  its constant-time scan replacement.
"""

import pytest

from repro.baselines import run_data_tool
from repro.sampler import MicroSampler, render_bar_chart
from repro.uarch import MEGA_BOOM
from repro.workloads.bignum import make_mp_modexp_ct, make_mp_modexp_leaky
from repro.workloads.chacha import make_chacha20
from repro.workloads.cipher import make_sbox_ct, make_sbox_lookup
from repro.workloads.spectre import make_spectre_v1

from _harness import emit, v_series


def test_ext_spectre_v1(benchmark):
    workload = make_spectre_v1(n_iters=16, n_runs=4)
    sampler = MicroSampler(MEGA_BOOM)
    report = benchmark.pedantic(sampler.analyze, args=(workload,),
                                rounds=1, iterations=1)
    data_report = run_data_tool(make_spectre_v1(n_iters=16, n_runs=2))
    probe = workload.assemble().symbols["probe"]
    cause = report.units["Cache-ADDR"].root_cause
    lines = [
        "Extension — Spectre-PHT litmus",
        "",
        render_bar_chart(v_series(report), title="Cramér's V per unit:"),
        "",
        f"software-level (DATA) verdict: "
        f"{'DETECTED' if data_report.leakage_detected else 'clean'}",
        f"MicroSampler verdict: LEAK in {', '.join(report.leaky_units)}",
        "",
        "Cache-ADDR uniqueness (transient probe lines):",
        cause.summary() if cause else "(none)",
        f"(probe array at {probe:#x}; secret 8 -> {probe + 512:#x}, "
        f"secret 9 -> {probe + 576:#x})",
    ]
    emit("ext_spectre_v1", "\n".join(lines))
    assert not data_report.leakage_detected
    assert "Cache-ADDR" in report.leaky_units
    unique0 = cause.uniqueness.unique_values[0]
    unique1 = cause.uniqueness.unique_values[1]
    assert probe + 512 in unique0 and probe + 576 in unique1


def test_ext_sbox(benchmark):
    sampler = MicroSampler(MEGA_BOOM)
    lookup = benchmark.pedantic(
        sampler.analyze, args=(make_sbox_lookup(n_sets=16, n_runs=4),),
        rounds=1, iterations=1)
    ct = sampler.analyze(make_sbox_ct(n_sets=16, n_runs=4))
    lines = [
        "Extension — S-box substitution (table lookup vs constant-time scan)",
        "",
        render_bar_chart(v_series(lookup), title="table lookup:"),
        f"verdict: LEAK in {', '.join(lookup.leaky_units)}",
        "",
        render_bar_chart(v_series(ct), title="constant-time scan:"),
        f"verdict: {'LEAK' if ct.leakage_detected else 'clean'}",
    ]
    emit("ext_sbox", "\n".join(lines))
    assert {"LQ-ADDR", "Cache-ADDR"} <= set(lookup.leaky_units)
    assert not ct.leakage_detected


def test_ext_real_crypto(benchmark):
    """ChaCha20 (RFC-validated) and 2-limb bignum modexp under verification."""
    sampler = MicroSampler(MEGA_BOOM)
    chacha = benchmark.pedantic(
        sampler.analyze, args=(make_chacha20(n_keys=6, n_blocks=1, seed=6),),
        rounds=1, iterations=1)
    mp_ct = sampler.analyze(make_mp_modexp_ct(n_keys=4, seed=2))
    mp_leaky = sampler.analyze(make_mp_modexp_leaky(n_keys=4, seed=2))
    lines = [
        "Extension — real cryptographic kernels",
        "",
        f"chacha20 (ARX block function):   max V = "
        f"{max(v_series(chacha).values()):.3f}  "
        f"({'LEAK' if chacha.leakage_detected else 'clean'})",
        f"mp-modexp-ct (2-limb Mersenne):  max V = "
        f"{max(v_series(mp_ct).values()):.3f}  "
        f"({'LEAK' if mp_ct.leakage_detected else 'clean'})",
        f"mp-modexp-leaky (secret branch): flagged "
        f"{len(mp_leaky.leaky_units)} units incl. EUU-MUL",
    ]
    emit("ext_real_crypto", "\n".join(lines))
    assert not chacha.leakage_detected
    assert max(v_series(chacha).values()) == 0.0
    assert not mp_ct.leakage_detected
    assert "EUU-MUL" in mp_leaky.leaky_units
