# Convenience targets for the MicroSampler reproduction.

PYTHON ?= python

.PHONY: install test bench audit examples results clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

audit:
	$(PYTHON) -m repro.cli audit

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/fast_bypass_study.py
	$(PYTHON) examples/software_tool_coverage.py
	$(PYTHON) examples/verify_custom_primitive.py
	$(PYTHON) examples/timing_attack_demo.py
	$(PYTHON) examples/flush_reload_attack.py
	$(PYTHON) examples/trace_archive_workflow.py

results: test bench
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache benchmarks/results test_output.txt bench_output.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
