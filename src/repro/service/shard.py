"""Cache-aware shard placement for prepared campaigns.

A campaign's inputs fall into three buckets once
:func:`~repro.sampler.runner.prepare_campaign` has consulted the
content-addressed trace cache:

* **cached** — an identical (program, input, config) triple was simulated
  before, by any backend, any tenant.  The stored payload replays on the
  event loop; it must *never* occupy a simulation slot.
* **duplicates** — identical to an earlier input of the same campaign;
  replayed from that input's freshly stored entry at merge time.
* **fresh** — needs real simulation.  These are grouped into shards and
  dispatched to the persistent worker pool.

The shard is also the unit of fault recovery: when a worker dies
mid-shard the pool re-dispatches that shard, so smaller shards bound the
re-simulated work, while larger shards amortize task pickling.  The
default splits fresh work into at most ``2 × workers`` shards (keeping
every worker busy with some slack for uneven run times) and never exceeds
``max_shard_tasks``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Upper bound on tasks per shard regardless of pool width: bounds the
#: work lost to one crashed worker and the latency of one progress event.
DEFAULT_MAX_SHARD_TASKS = 8


def shard_size_for(n_pending: int, workers: int, *,
                   max_shard_tasks: int = DEFAULT_MAX_SHARD_TASKS) -> int:
    """Tasks per shard for ``n_pending`` fresh inputs on ``workers`` slots."""
    if n_pending <= 0:
        return 1
    balanced = math.ceil(n_pending / max(1, workers * 2))
    return max(1, min(balanced, max_shard_tasks))


@dataclass(frozen=True)
class ShardPlacement:
    """Where every input of one campaign executes."""

    #: Inputs replayed from the trace cache during planning (no slot).
    cached: tuple[int, ...]
    #: Inputs identical to an earlier input of this campaign (no slot).
    duplicates: tuple[int, ...]
    #: Fresh inputs grouped into pool shards, input order preserved.
    shards: tuple[tuple[int, ...], ...]

    @property
    def n_inputs(self) -> int:
        return (len(self.cached) + len(self.duplicates)
                + sum(len(shard) for shard in self.shards))


def place_shards(plan, *, workers: int = 1,
                 shard_size: int | None = None) -> ShardPlacement:
    """Compute the :class:`ShardPlacement` for a prepared campaign.

    ``plan`` is a :class:`~repro.sampler.runner.CampaignPlan`.  Cache hits
    and in-campaign duplicates are taken from the plan; the remaining
    ``to_run`` indices are grouped into shards of ``shard_size`` (default:
    :func:`shard_size_for` of the pool width), preserving input order so a
    shard's outputs slot straight back into the deterministic merge.
    """
    cached = tuple(
        index for index, output in enumerate(plan.outputs)
        if output is not None
    )
    duplicates = tuple(sorted(plan.duplicate_of))
    size = shard_size or shard_size_for(len(plan.to_run), workers)
    shards = tuple(
        tuple(plan.to_run[start:start + size])
        for start in range(0, len(plan.to_run), size)
    )
    return ShardPlacement(cached=cached, duplicates=duplicates,
                          shards=shards)
