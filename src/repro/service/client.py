"""Asyncio client for the campaign service.

Used by the test suite (many concurrent clients against one server) and
by ``microsampler submit``.  Matches the server's transport: one
connection per request, JSON bodies, chunked NDJSON for event streams.
"""

from __future__ import annotations

import asyncio
import json


class ServiceError(RuntimeError):
    """Non-2xx response from the service."""

    def __init__(self, status: int, payload):
        detail = payload.get("error") if isinstance(payload, dict) \
            else payload
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Thin async HTTP client bound to one service endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765, *,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    async def request(self, method: str, path: str,
                      payload: dict | None = None):
        """One request → (status, decoded JSON body)."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            body = b"" if payload is None else json.dumps(payload).encode()
            head = (f"{method} {path} HTTP/1.1\r\n"
                    f"Host: {self.host}:{self.port}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n")
            writer.write(head.encode() + body)
            await writer.drain()
            status, headers = await asyncio.wait_for(
                self._read_head(reader), timeout=self.timeout)
            raw = await asyncio.wait_for(
                self._read_body(reader, headers), timeout=self.timeout)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass
        decoded = json.loads(raw) if raw else None
        return status, decoded

    async def call(self, method: str, path: str,
                   payload: dict | None = None, *, expect=(200, 202)):
        status, decoded = await self.request(method, path, payload)
        if status not in expect:
            raise ServiceError(status, decoded)
        return decoded

    @staticmethod
    async def _read_head(reader: asyncio.StreamReader):
        head = await reader.readuntil(b"\r\n\r\n")
        status_line, *header_lines = head.decode("latin-1").split("\r\n")
        status = int(status_line.split(" ")[1])
        headers = {}
        for line in header_lines:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        return status, headers

    @staticmethod
    async def _read_body(reader: asyncio.StreamReader,
                         headers: dict) -> bytes:
        if headers.get("transfer-encoding", "").lower() == "chunked":
            chunks = []
            while True:
                size = int((await reader.readuntil(b"\r\n"))[:-2], 16)
                if size == 0:
                    await reader.readuntil(b"\r\n")
                    return b"".join(chunks)
                chunks.append(await reader.readexactly(size))
                await reader.readexactly(2)  # trailing CRLF
        length = int(headers.get("content-length", 0) or 0)
        if length:
            return await reader.readexactly(length)
        return await reader.read()

    # -- API ----------------------------------------------------------------

    async def health(self) -> dict:
        return await self.call("GET", "/health")

    async def stats(self) -> dict:
        return await self.call("GET", "/stats")

    async def workloads(self) -> dict:
        return await self.call("GET", "/workloads")

    async def submit(self, spec: dict) -> dict:
        """Submit a job spec; returns the queued job summary (202)."""
        return await self.call("POST", "/jobs", spec)

    async def job(self, job_id: str) -> dict:
        return await self.call("GET", f"/jobs/{job_id}")

    async def jobs(self) -> list:
        return (await self.call("GET", "/jobs"))["jobs"]

    async def cancel(self, job_id: str) -> dict:
        return await self.call("POST", f"/jobs/{job_id}/cancel")

    async def events(self, job_id: str, start: int = 0):
        """Yield job events from the chunked stream until terminal."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(
                f"GET /jobs/{job_id}/events?start={start} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Connection: close\r\n\r\n".encode())
            await writer.drain()
            status, headers = await self._read_head(reader)
            if status != 200:
                raw = await self._read_body(reader, headers)
                raise ServiceError(status,
                                   json.loads(raw) if raw else None)
            buffer = b""
            while True:
                size = int((await reader.readuntil(b"\r\n"))[:-2], 16)
                if size == 0:
                    break
                buffer += await reader.readexactly(size)
                await reader.readexactly(2)
                while b"\n" in buffer:
                    line, _, buffer = buffer.partition(b"\n")
                    if line.strip():
                        yield json.loads(line)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def wait(self, job_id: str, *, poll: float = 0.05,
                   timeout: float | None = None) -> dict:
        """Poll until the job is terminal; returns the final job dict."""
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        while True:
            job = await self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if deadline is not None and loop.time() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout}s")
            await asyncio.sleep(poll)


async def submit_and_wait(client: ServiceClient, spec: dict, *,
                          poll: float = 0.05,
                          timeout: float | None = None) -> dict:
    """Submit a spec and block until the job is terminal.

    Raises :class:`ServiceError` if the job *failed*; returns the final
    job dict (including ``result``) for done/cancelled jobs.
    """
    job = await client.submit(spec)
    final = await client.wait(job["id"], poll=poll, timeout=timeout)
    if final["state"] == "failed":
        raise ServiceError(500, {"error": final.get("error"),
                                 "id": final["id"]})
    return final
