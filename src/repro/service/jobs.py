"""Job model and orchestration for the campaign service.

A *job* is one analyze/localize/audit request from one tenant.  The
:class:`JobManager` owns the lifecycle: validated submission → priority
queue → campaign preparation → shard dispatch on the persistent worker
pool → verdict computation → result.

Consistency contract
--------------------
A job's result is **bit-identical** to the equivalent one-shot CLI
invocation (``microsampler analyze/localize/audit ... --json``), modulo
wall-clock fields (scrub with :func:`strip_volatile`).  The mechanism:
shards simulate on the pool and their outputs land in the shared
content-addressed trace cache; the final verdict is then computed by the
*same library entry points the CLI uses* (``MicroSampler.analyze``,
``repro.localize.localize``, ``run_audit``), which replay those cache
entries through the deterministic input-order merge.  The service adds
placement and scheduling, never a second result path.

Cross-tenant dedup
------------------
Identical (program, input, config) work anywhere in the fleet is one
simulation.  Three tiers, counted separately in ``job.stats``:

* ``shards_cached`` — the trace cache already held the input (any earlier
  job, any backend, even a one-shot CLI run against the same cache dir).
* ``shards_deduped`` — another *in-flight* job claimed the identical
  input first; this job awaits that shard and replays the stored result.
* ``shards_simulated`` — fresh work this job dispatched to the pool.

Cache-served inputs never occupy a simulation slot.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, fields

from repro.sampler.exec_backend import _lane_groups
from repro.sampler.runner import prepare_campaign
from repro.service.queue import PriorityJobQueue
from repro.service.shard import shard_size_for


def _plan_shards(claimed: list, tasks: list, size: int) -> list[list]:
    """Pack claimed task indices into shards without splitting lane groups.

    Tasks stamped with ``core_lanes`` must reach one worker together to
    simulate as a lockstep batch (their cache keys promise lane-batched
    outputs), so shards are built from whole lane groups; a group larger
    than the target shard size becomes its own oversized shard.
    """
    index_groups: list[list] = []
    cursor = 0
    for lane_group in _lane_groups([tasks[index] for index in claimed]):
        index_groups.append(claimed[cursor:cursor + len(lane_group)])
        cursor += len(lane_group)
    shards: list[list] = []
    current: list = []
    for group in index_groups:
        if current and len(current) + len(group) > size:
            shards.append(current)
            current = []
        current.extend(group)
    if current:
        shards.append(current)
    return shards

JOB_KINDS = ("analyze", "localize", "audit")
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Result keys that vary run-to-run (wall clock, profiler output) and are
#: excluded from bit-identity comparisons between service and one-shot
#: results.  ``seconds`` is the per-entry audit timing.
VOLATILE_KEYS = frozenset({"timings_seconds", "profile", "seconds"})


def strip_volatile(value):
    """Recursively drop wall-clock/profiling keys from a result payload."""
    if isinstance(value, dict):
        return {key: strip_volatile(item) for key, item in value.items()
                if key not in VOLATILE_KEYS}
    if isinstance(value, list):
        return [strip_volatile(item) for item in value]
    return value


class JobSpecError(ValueError):
    """A submission payload failed validation (HTTP 400)."""


@dataclass(frozen=True)
class JobSpec:
    """Validated description of one job, mirroring the CLI's knobs.

    Defaults match the corresponding ``microsampler`` subcommand defaults,
    so an empty-field submission behaves exactly like the bare CLI verb.
    """

    kind: str = "analyze"
    #: target workload (analyze/localize).
    workload: str | None = None
    #: audit suite (empty = the full built-in expectation suite).
    workloads: tuple = ()
    config: str = "mega"
    fast_bypass: bool = False
    variable_div: bool = False
    inputs: int = 8
    seed: int = 3
    engine: str = "numpy"
    #: higher runs first; FIFO within a priority level.
    priority: int = 0
    tenant: str = ""
    #: attribution permutations (localize); None = CLI default.
    permutations: int | None = None
    #: fast-forward budget; "default" = the CLI default (512), accepts the
    #: CLI's ``none``/``full``/int forms.
    warmup_insts: object = "default"
    #: lockstep lane batching (functional prepass + lane-batched
    #: cycle-accurate core).  Joins every task's trace-cache key via
    #: ``core_lanes``, so shard planning must keep lane groups whole —
    #: see :meth:`JobManager._warm_campaign`.
    batch_lanes: object = "auto"
    no_timing_removed: bool = False
    #: secret-taint publicness prescreen (``--taint on``): prune tracing,
    #: restrict attribution, cross-check verdicts.  Verdict-neutral.
    taint: bool = False

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        if not isinstance(payload, dict):
            raise JobSpecError("job spec must be a JSON object")
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise JobSpecError(f"unknown job spec field(s): {unknown}")
        merged = {**{f.name: getattr(cls, f.name) for f in fields(cls)},
                  **payload}
        if isinstance(merged.get("workloads"), list):
            merged["workloads"] = tuple(merged["workloads"])
        spec = cls(**merged)
        spec.validate()
        return spec

    def validate(self) -> None:
        from repro.cli import known_workloads
        from repro.sampler.pipeline import MicroSampler

        if self.kind not in JOB_KINDS:
            raise JobSpecError(
                f"unknown job kind {self.kind!r}; choose from {JOB_KINDS}")
        if self.engine not in MicroSampler.ENGINES:
            raise JobSpecError(
                f"unknown engine {self.engine!r}; choose from "
                f"{MicroSampler.ENGINES}")
        if self.config not in ("mega", "medium", "small"):
            raise JobSpecError(
                f"unknown config {self.config!r}; choose 'mega', "
                "'medium' or 'small'")
        if not isinstance(self.inputs, int) or self.inputs < 1:
            raise JobSpecError("inputs must be a positive integer")
        if not isinstance(self.priority, int):
            raise JobSpecError("priority must be an integer")
        if not isinstance(self.taint, bool):
            raise JobSpecError("taint must be a boolean")
        names = known_workloads()
        if self.kind in ("analyze", "localize"):
            if not self.workload:
                raise JobSpecError(f"{self.kind} jobs need a 'workload'")
            if self.workload not in names:
                raise JobSpecError(f"unknown workload {self.workload!r}")
        else:
            for name in self.workloads:
                if name not in names:
                    raise JobSpecError(f"unknown workload {name!r}")
        self.resolve_warmup_insts()  # raises JobSpecError on bad values

    def resolve_warmup_insts(self) -> int | None:
        """The spec's fast-forward budget as the library's int-or-None."""
        from repro.sampler.checkpoint import DEFAULT_WARMUP_INSTS, parse_warmup

        value = self.warmup_insts
        if value == "default":
            return DEFAULT_WARMUP_INSTS
        if value is None or isinstance(value, int):
            return value
        try:
            return parse_warmup(str(value))
        except ValueError as error:
            raise JobSpecError(f"invalid warmup_insts {value!r}: {error}")

    def to_dict(self) -> dict:
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["workloads"] = list(self.workloads)
        return payload


class Job:
    """One submission: state machine, progress events, stats, result."""

    def __init__(self, job_id: str, spec: JobSpec):
        self.id = job_id
        self.spec = spec
        self.state = "queued"
        self.error: str | None = None
        self.result: dict | None = None
        self.stats = {
            "campaigns": 0,
            "inputs_total": 0,
            "shards_dispatched": 0,
            "shards_cached": 0,
            "shards_deduped": 0,
            "shards_simulated": 0,
        }
        self.events: list[dict] = []
        self.task: asyncio.Task | None = None
        #: Global start ordinal (scheduler dequeue order); None until run.
        self.start_seq: int | None = None
        self._change = asyncio.Event()

    @property
    def priority(self) -> int:
        return self.spec.priority

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def emit(self, event_type: str, **payload) -> None:
        event = {"seq": len(self.events), "type": event_type,
                 "state": self.state, **payload}
        self.events.append(event)
        change, self._change = self._change, asyncio.Event()
        change.set()

    async def stream(self, start: int = 0):
        """Yield events from ``start`` onward until the job is terminal."""
        index = start
        while True:
            while index < len(self.events):
                yield self.events[index]
                index += 1
            if self.terminal:
                return
            await self._change.wait()

    def to_dict(self, *, include_result: bool = True) -> dict:
        payload = {
            "id": self.id,
            "kind": self.spec.kind,
            "state": self.state,
            "priority": self.spec.priority,
            "tenant": self.spec.tenant,
            "spec": self.spec.to_dict(),
            "stats": dict(self.stats),
            "n_events": len(self.events),
            "error": self.error,
        }
        if include_result and self.result is not None:
            payload["result"] = self.result
        return payload


class JobManager:
    """Schedules jobs over one worker pool and one shared trace cache."""

    def __init__(self, *, pool, cache, max_active: int = 2,
                 shard_size: int | None = None):
        if cache is None:
            raise ValueError(
                "the campaign service requires a trace cache: it is the "
                "dedup index and the shard-result transport")
        self.pool = pool
        self.cache = cache
        self.shard_size = shard_size
        self._jobs: dict[str, Job] = {}
        self._queue = PriorityJobQueue()
        self._active = asyncio.Semaphore(max_active)
        self._counter = itertools.count(1)
        self._start_counter = itertools.count(1)
        #: cache key -> asyncio.Future resolved when the claiming job has
        #: stored that input's output (the cross-job dedup registry).
        self._inflight: dict[str, asyncio.Future] = {}
        self.dedup_inflight_hits = 0
        self._scheduler_task: asyncio.Task | None = None
        self._closing = False

    # -- submission & lifecycle --------------------------------------------

    def submit(self, spec) -> Job:
        """Validate, enqueue, and return the new job (call on the loop)."""
        if self._closing:
            raise RuntimeError("job manager is closing")
        if not isinstance(spec, JobSpec):
            spec = JobSpec.from_dict(spec)
        job = Job(f"job-{next(self._counter):06d}", spec)
        self._jobs[job.id] = job
        self._queue.push(job)
        job.emit("queued", priority=spec.priority)
        self._ensure_scheduler()
        return job

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        return list(self._jobs.values())

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued or running job; False if unknown/terminal."""
        job = self._jobs.get(job_id)
        if job is None or job.terminal:
            return False
        if self._queue.remove(job_id):
            job.state = "cancelled"
            job.emit("cancelled", reason="cancelled while queued")
            return True
        if job.task is not None and not job.task.done():
            job.task.cancel()
            return True
        return False

    def stats(self) -> dict:
        states = {state: 0 for state in JOB_STATES}
        for job in self._jobs.values():
            states[job.state] += 1
        return {
            "jobs": {"total": len(self._jobs), **states},
            "queue_depth": len(self._queue),
            "inflight_keys": len(self._inflight),
            "dedup_inflight_hits": self.dedup_inflight_hits,
            "pool": self.pool.stats(),
            "cache": {"hits": self.cache.hits, "misses": self.cache.misses,
                      "stores": self.cache.stores,
                      "root": str(self.cache.root)},
        }

    async def close(self) -> None:
        """Cancel running jobs, drain the scheduler, leave the pool alone."""
        self._closing = True
        pending = [job.task for job in self._jobs.values()
                   if job.task is not None and not job.task.done()]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._queue.close()
        if self._scheduler_task is not None:
            await self._scheduler_task
            self._scheduler_task = None

    def _ensure_scheduler(self) -> None:
        if self._scheduler_task is None or self._scheduler_task.done():
            self._scheduler_task = asyncio.get_running_loop().create_task(
                self._scheduler(), name="microsampler-job-scheduler")

    async def _scheduler(self) -> None:
        # Acquire the slot *before* popping: jobs stay in the queue (and
        # cancellable, and overtakable by higher priorities) until the
        # moment a slot is actually free for them.
        while True:
            await self._active.acquire()
            job = await self._queue.pop()
            if job is None:
                self._active.release()
                return
            if job.state != "queued":  # cancelled while queued
                self._active.release()
                continue
            job.start_seq = next(self._start_counter)
            job.task = asyncio.get_running_loop().create_task(
                self._run_job(job), name=f"microsampler-{job.id}")
            job.task.add_done_callback(lambda _task: self._active.release())

    async def _run_job(self, job: Job) -> None:
        job.state = "running"
        job.emit("started", start_seq=job.start_seq)
        try:
            job.result = await self._execute(job)
        except asyncio.CancelledError:
            job.state = "cancelled"
            job.emit("cancelled", reason="cancelled while running")
            return
        except Exception as exc:  # noqa: BLE001 - reported on the job
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            job.emit("failed", error=job.error)
            return
        job.state = "done"
        job.emit("done", stats=dict(job.stats))

    # -- execution ----------------------------------------------------------

    def _resolve_config(self, spec: JobSpec):
        from repro.uarch.config import MEDIUM_BOOM, MEGA_BOOM, SMALL_BOOM

        config = {"mega": MEGA_BOOM, "medium": MEDIUM_BOOM,
                  "small": SMALL_BOOM}[spec.config]
        overrides = {}
        if spec.fast_bypass:
            overrides["fast_bypass"] = True
        if spec.variable_div:
            overrides["variable_div_latency"] = True
        return config.with_(**overrides) if overrides else config

    def _make_sampler(self, spec: JobSpec):
        from repro.sampler.pipeline import MicroSampler

        return MicroSampler(
            self._resolve_config(spec),
            warmup_iterations=0,
            analyze_timing_removed=not spec.no_timing_removed,
            jobs=1,
            cache=self.cache,
            warmup_insts=spec.resolve_warmup_insts(),
            batch_lanes=spec.batch_lanes,
            engine=spec.engine,
            taint=spec.taint,
        )

    async def _execute(self, job: Job) -> dict:
        spec = job.spec
        sampler = self._make_sampler(spec)
        if spec.kind == "analyze":
            return await self._execute_analyze(job, sampler)
        if spec.kind == "localize":
            return await self._execute_localize(job, sampler)
        return await self._execute_audit(job, sampler)

    async def _pruned_for(self, sampler, workload) -> tuple:
        """The taint prescreen's pruned-unit set for one campaign.

        With taint on, ``sampler.analyze`` prunes those units' tracing —
        which changes the trace-cache keys, so the warm campaign must be
        planned with the identical pruned set or every shard misses.
        """
        if not getattr(sampler, "taint", False):
            return ()
        summary = await self._in_thread(sampler.compute_taint, workload)
        return summary.pruned

    async def _execute_analyze(self, job: Job, sampler) -> dict:
        from repro.cli import build_workload
        from repro.sampler.report import report_to_dict

        workload = build_workload(job.spec.workload, inputs=job.spec.inputs,
                                  seed=job.spec.seed)
        await self._warm_campaign(job, workload, sampler,
                                  features=sampler.features,
                                  pruned=await self._pruned_for(sampler,
                                                                workload))
        report = await self._in_thread(sampler.analyze, workload)
        return report_to_dict(report)

    async def _execute_localize(self, job: Job, sampler) -> dict:
        from repro.cli import build_workload
        from repro.localize import localization_to_dict, localize
        from repro.localize.attribution import DEFAULT_PERMUTATIONS

        workload = build_workload(job.spec.workload, inputs=job.spec.inputs,
                                  seed=job.spec.seed)
        # Phase 1 (detection) — same campaign shape as an analyze job.
        await self._warm_campaign(job, workload, sampler,
                                  features=sampler.features,
                                  pruned=await self._pruned_for(sampler,
                                                                workload))
        report = await self._in_thread(sampler.analyze, workload)
        targets = tuple(report.leaky_units)
        job.emit("phase", phase="detect", leaky_units=list(targets))
        if targets:
            # Phase 2 — the localization campaign localize() will replay:
            # flagged units only, raw rows + commit logs retained.
            await self._warm_campaign(job, workload, sampler,
                                      features=targets, keep_raw=True,
                                      log_commits=True)
        localization = await self._in_thread(
            lambda: localize(
                workload, sampler=sampler, report=report,
                permutations=(job.spec.permutations
                              if job.spec.permutations is not None
                              else DEFAULT_PERMUTATIONS),
            ))
        return localization_to_dict(localization)

    async def _execute_audit(self, job: Job, sampler) -> dict:
        from repro.cli import (
            AUDIT_EXPECTATIONS,
            AUDIT_TAINT_EXPECTATIONS,
            build_workload,
        )
        from repro.sampler.audit import audit_to_dict, run_audit

        names = list(job.spec.workloads) or list(AUDIT_EXPECTATIONS)
        workloads = [build_workload(name, inputs=job.spec.inputs,
                                    seed=job.spec.seed) for name in names]
        expectations = {name: AUDIT_EXPECTATIONS[name]
                        for name in names if name in AUDIT_EXPECTATIONS}
        taint_expectations = ({name: AUDIT_TAINT_EXPECTATIONS[name]
                               for name in names
                               if name in AUDIT_TAINT_EXPECTATIONS}
                              if job.spec.taint else {})
        for workload in workloads:
            await self._warm_campaign(job, workload, sampler,
                                      features=sampler.features,
                                      pruned=await self._pruned_for(
                                          sampler, workload))
            job.emit("workload", name=workload.name)
        result = await self._in_thread(
            lambda: run_audit(workloads, config=sampler.config,
                              expectations=expectations, sampler=sampler,
                              taint_expectations=taint_expectations))
        return audit_to_dict(result)

    # -- sharded campaign execution ----------------------------------------

    async def _warm_campaign(self, job: Job, workload, sampler, *,
                             features, keep_raw=(),
                             log_commits: bool = False,
                             pruned=()) -> None:
        """Simulate one campaign's fresh inputs on the pool, into the cache.

        Mirrors exactly the campaign ``run_campaign`` will replay when the
        verdict is computed: same features/raw/commit-log settings, same
        fast-forward and batching knobs, same cache.  Cache hits are left
        where they are (no slot), in-flight twins are awaited (dedup), and
        only genuinely fresh inputs become pool shards.

        Shard planning is lane-aware: tasks stamped with ``core_lanes``
        simulate as one lockstep :class:`~repro.uarch.batch_core.BatchCore`
        group, so a shard boundary must never split a lane group — the
        worker batches whatever whole groups land in its shard, and the
        cached outputs stay bit-identical to the one-shot CLI run (the
        consistency contract).
        """
        plan = await self._in_thread(
            lambda: prepare_campaign(
                workload, sampler.config, features=features,
                keep_raw=keep_raw, log_commits=log_commits,
                cache=self.cache, warmup_insts=sampler.warmup_insts,
                batch_lanes=sampler.batch_lanes, pruned=pruned,
            ))
        job.stats["campaigns"] += 1
        job.stats["inputs_total"] += len(plan.tasks)
        job.stats["shards_cached"] += (plan.n_cached
                                       + len(plan.duplicate_of))
        if not plan.to_run:
            job.emit("progress", workload=workload.name,
                     stats=dict(job.stats))
            return

        # Partition fresh work: inputs claimed by another in-flight job are
        # awaited instead of re-simulated.  Claim ours atomically (no await
        # between check and registration — we are single-threaded here).
        loop = asyncio.get_running_loop()
        claimed: list[int] = []
        waiting: list[tuple[int, str, asyncio.Future]] = []
        registered: dict[str, asyncio.Future] = {}
        for index in plan.to_run:
            key = plan.keys[index] if plan.keys is not None else None
            if key is not None and key in self._inflight:
                waiting.append((index, key, self._inflight[key]))
                continue
            if key is not None:
                # Re-check the cache: another job may have stored this key
                # after our prepare's lookup missed but before we claimed.
                late_hit = self.cache.load(key)
                if late_hit is not None:
                    plan.outputs[index] = late_hit
                    job.stats["shards_cached"] += 1
                    continue
                future = loop.create_future()
                self._inflight[key] = future
                registered[key] = future
            claimed.append(index)

        def _release(key: str) -> None:
            future = registered.get(key)
            if future is None:
                return
            if self._inflight.get(key) is future:
                del self._inflight[key]
            if not future.done():
                future.set_result(True)

        try:
            size = self.shard_size or shard_size_for(
                len(claimed), self.pool.n_workers)
            groups = _plan_shards(claimed, plan.tasks, size)
            shard_futures = [
                (group, asyncio.wrap_future(
                    self.pool.submit([plan.tasks[index]
                                      for index in group])))
                for group in groups
            ]
            job.stats["shards_dispatched"] += len(groups)
            for group, future in shard_futures:
                outputs = await future
                for index, output in zip(group, outputs):
                    plan.fill(index, output)  # stores into the cache
                    if plan.keys is not None:
                        _release(plan.keys[index])
                job.stats["shards_simulated"] += len(group)
                job.emit("progress", workload=workload.name,
                         stats=dict(job.stats))
            for index, key, future in waiting:
                await future
                output = self.cache.load(key)
                if output is None:
                    # The claiming job failed or its store did not land:
                    # simulate this input ourselves rather than failing.
                    outputs = await asyncio.wrap_future(
                        self.pool.submit([plan.tasks[index]]))
                    plan.fill(index, outputs[0])
                    job.stats["shards_dispatched"] += 1
                    job.stats["shards_simulated"] += 1
                else:
                    plan.outputs[index] = output
                    job.stats["shards_deduped"] += 1
                    self.dedup_inflight_hits += 1
            job.emit("progress", workload=workload.name,
                     stats=dict(job.stats))
        finally:
            # Resolve whatever we still hold so dedup waiters in other jobs
            # fall back to simulating instead of hanging (failure/cancel).
            for key in registered:
                _release(key)

    @staticmethod
    async def _in_thread(func, *args):
        """Run blocking pipeline work off the event loop."""
        return await asyncio.get_running_loop().run_in_executor(
            None, lambda: func(*args))
