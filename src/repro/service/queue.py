"""Priority job queue for the campaign service.

A single-consumer asyncio queue ordered by ``(priority desc, arrival
asc)``: a tenant's urgent re-audit of a patched primitive overtakes a
bulk background sweep, while equal-priority jobs stay strictly FIFO so no
tenant can starve another by resubmitting.  Cancellation of queued jobs
is lazy — the entry is tombstoned in place and skipped at pop time —
which keeps both ``push`` and ``cancel`` O(log n) worst case.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools


class PriorityJobQueue:
    """Unbounded priority queue; higher ``priority`` pops first.

    ``push`` is synchronous (the queue is unbounded); ``pop`` awaits until
    an entry is available or the queue is closed, in which case it returns
    ``None``.  Designed for one consumer (the scheduler task) and many
    producers on the same event loop.
    """

    def __init__(self):
        self._heap: list[list] = []  # [-priority, seq, job_id, job-or-None]
        self._entries: dict[str, list] = {}
        self._seq = itertools.count()
        self._event = asyncio.Event()
        self._closed = False

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, job) -> None:
        """Enqueue ``job`` (must expose ``id`` and ``priority``)."""
        if self._closed:
            raise RuntimeError("job queue is closed")
        entry = [-int(job.priority), next(self._seq), job.id, job]
        self._entries[job.id] = entry
        heapq.heappush(self._heap, entry)
        self._event.set()

    def remove(self, job_id: str) -> bool:
        """Tombstone a queued job; True if it was still queued."""
        entry = self._entries.pop(job_id, None)
        if entry is None:
            return False
        entry[3] = None
        return True

    async def pop(self):
        """Next job by priority, or ``None`` once closed and drained."""
        while True:
            while self._heap:
                entry = heapq.heappop(self._heap)
                job = entry[3]
                if job is None:
                    continue  # tombstoned by remove()
                del self._entries[job.id]
                return job
            if self._closed:
                return None
            self._event.clear()
            await self._event.wait()

    def close(self) -> None:
        """Stop accepting jobs and wake the consumer to drain and exit."""
        self._closed = True
        self._event.set()
