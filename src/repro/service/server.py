"""Minimal asyncio HTTP/1.1 server exposing the campaign-service job API.

Stdlib only — the transport is hand-rolled on ``asyncio.start_server``
rather than pulling in an HTTP framework, because the protocol surface is
tiny: JSON request bodies, JSON responses, and one chunked event stream.
Connections are single-request (``Connection: close``); clients open a
fresh connection per call, which keeps the parser trivial and is cheap at
the request rates a simulation service sees.

Routes
------
``GET  /health``                liveness probe.
``GET  /stats``                 service/pool/cache/queue counters.
``GET  /workloads``             submittable workload names + audit suite.
``GET  /jobs``                  all jobs, summaries only.
``POST /jobs``                  submit a job spec; 202 + job summary.
``GET  /jobs/<id>``             job detail (result included once done).
``GET  /jobs/<id>/events``      chunked stream, one JSON event per line.
``POST /jobs/<id>/cancel``      cancel a queued or running job.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse

from repro.service.jobs import JobManager, JobSpecError

#: Request head (request line + headers) size cap; bodies are bounded by
#: Content-Length below.
MAX_HEAD_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 500: "Internal Server Error",
}


class ServiceServer:
    """One campaign service: HTTP front end + job manager + worker pool."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 workers: int | None = None, cache=None,
                 cache_dir=None, max_active: int = 2,
                 shard_size: int | None = None,
                 max_redispatch: int = 2):
        self.host = host
        self.port = port
        self._workers = workers
        self._cache = cache
        self._cache_dir = cache_dir
        self._max_active = max_active
        self._shard_size = shard_size
        self._max_redispatch = max_redispatch
        self.pool = None
        self.manager: JobManager | None = None
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker pool and start accepting connections."""
        from repro.sampler.exec_backend import WorkerPool

        if self._cache is None:
            from repro.sampler.trace_cache import TraceCache

            self._cache = TraceCache(self._cache_dir)
        # Fork the pool before any executor threads exist.
        self.pool = WorkerPool(self._workers,
                               max_redispatch=self._max_redispatch)
        self.manager = JobManager(pool=self.pool, cache=self._cache,
                                  max_active=self._max_active,
                                  shard_size=self._shard_size)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.manager is not None:
            await self.manager.close()
            self.manager = None
        if self.pool is not None:
            self.pool.close()
            self.pool = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def __aenter__(self) -> "ServiceServer":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                await self._route(writer, *request)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # client went away mid-request/response
        except asyncio.LimitOverrunError:
            await self._respond(writer, 400,
                                {"error": "request head too large"})
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            try:
                await self._respond(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"})
            except (ConnectionResetError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        """Parse one HTTP/1.1 request → (method, path, query, body|None)."""
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=30)
        except asyncio.IncompleteReadError:
            return None  # connection closed before a full request
        if len(head) > MAX_HEAD_BYTES:
            raise asyncio.LimitOverrunError("request head too large", 0)
        request_line, *header_lines = head.decode(
            "latin-1").split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers = {}
        for line in header_lines:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        parsed = urllib.parse.urlsplit(target)
        query = dict(urllib.parse.parse_qsl(parsed.query))
        body = None
        length = int(headers.get("content-length", 0) or 0)
        if length:
            if length > MAX_BODY_BYTES:
                raise asyncio.LimitOverrunError("body too large", 0)
            body = await reader.readexactly(length)
        return method.upper(), parsed.path, query, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode()
        writer.write(
            f"HTTP/1.1 {status} {_STATUS_TEXT[status]}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body)
        await writer.drain()

    # -- routing ------------------------------------------------------------

    async def _route(self, writer, method: str, path: str, query: dict,
                     body: bytes | None) -> None:
        manager = self.manager
        if manager is None:
            await self._respond(writer, 500,
                                {"error": "service is shutting down"})
            return
        if path == "/health":
            await self._respond(writer, 200, {"status": "ok"})
            return
        if path == "/stats" and method == "GET":
            await self._respond(writer, 200, manager.stats())
            return
        if path == "/workloads" and method == "GET":
            from repro.cli import AUDIT_EXPECTATIONS, known_workloads

            await self._respond(writer, 200, {
                "workloads": list(known_workloads()),
                "audit_suite": list(AUDIT_EXPECTATIONS),
            })
            return
        if path == "/jobs":
            if method == "POST":
                await self._submit(writer, body)
            elif method == "GET":
                await self._respond(writer, 200, {
                    "jobs": [job.to_dict(include_result=False)
                             for job in manager.jobs()],
                })
            else:
                await self._respond(writer, 405,
                                    {"error": f"{method} not allowed"})
            return
        if path.startswith("/jobs/"):
            await self._job_route(writer, method, path, query)
            return
        await self._respond(writer, 404, {"error": f"no route for {path}"})

    async def _submit(self, writer, body: bytes | None) -> None:
        try:
            payload = json.loads(body or b"")
        except json.JSONDecodeError as error:
            await self._respond(writer, 400,
                                {"error": f"invalid JSON body: {error}"})
            return
        try:
            job = self.manager.submit(payload)
        except JobSpecError as error:
            await self._respond(writer, 400, {"error": str(error)})
            return
        await self._respond(writer, 202, job.to_dict(include_result=False))

    async def _job_route(self, writer, method: str, path: str,
                         query: dict) -> None:
        segments = path.strip("/").split("/")
        job = self.manager.get(segments[1])
        if job is None:
            await self._respond(writer, 404,
                                {"error": f"unknown job {segments[1]!r}"})
            return
        if len(segments) == 2 and method == "GET":
            await self._respond(writer, 200, job.to_dict())
            return
        if len(segments) == 3 and segments[2] == "cancel" \
                and method == "POST":
            cancelled = self.manager.cancel(job.id)
            await self._respond(writer, 200,
                                {"id": job.id, "cancelled": cancelled,
                                 "state": job.state})
            return
        if len(segments) == 3 and segments[2] == "events" \
                and method == "GET":
            await self._stream_events(writer, job, query)
            return
        await self._respond(writer, 404, {"error": f"no route for {path}"})

    async def _stream_events(self, writer, job, query: dict) -> None:
        """Chunked stream of job events, one JSON object per line.

        The stream starts at event ``?start=N`` (default 0, so reconnecting
        clients can resume) and terminates — with the usual zero-length
        chunk — once the job reaches a terminal state.
        """
        try:
            start = int(query.get("start", 0))
        except ValueError:
            start = 0
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Transfer-Encoding: chunked\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        async for event in job.stream(start):
            line = (json.dumps(event) + "\n").encode()
            writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()


async def run_service(**kwargs) -> None:
    """Start a server and serve until cancelled (``microsampler serve``)."""
    server = ServiceServer(**kwargs)
    await server.start()
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()
