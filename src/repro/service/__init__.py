"""Campaign service: a long-running job API over the MicroSampler pipeline.

Everything before this package was a one-shot CLI: assemble, simulate,
analyze, exit.  The service turns the same pipeline into shared
infrastructure — ``microsampler serve`` runs an asyncio HTTP/JSON API
(stdlib only, no new runtime dependencies) that accepts
analyze/audit/localize job submissions from many concurrent clients,
orders them on a priority queue, splits each campaign into input shards
dispatched to a persistent crash-tolerant worker pool
(:class:`~repro.sampler.exec_backend.WorkerPool`), and streams progress
and results per job.

The design constraint carried over from every prior backend is
**bit-identity**: a job's report/localization JSON is exactly what the
equivalent one-shot CLI invocation prints.  The mechanism is the
content-addressed trace cache — shards simulate on the pool and land in
the cache, then the final verdict is computed by the very same library
entry points the CLI uses, replaying those entries.  The same cache
deduplicates identical program×input×config work *across* tenants:
shards already cached (or in flight for another job) are served without
ever occupying a simulation slot.

Modules
-------
``queue``   priority job queue (higher priority first, FIFO within).
``shard``   cache-aware shard placement for a prepared campaign.
``jobs``    job model, lifecycle, and the :class:`JobManager` orchestrator.
``server``  minimal asyncio HTTP/1.1 server exposing the job API.
``client``  asyncio client used by tests and ``microsampler submit``.
"""

from repro.service.client import ServiceClient, ServiceError, submit_and_wait
from repro.service.jobs import (
    Job,
    JobManager,
    JobSpec,
    JobSpecError,
    strip_volatile,
)
from repro.service.queue import PriorityJobQueue
from repro.service.server import ServiceServer
from repro.service.shard import ShardPlacement, place_shards

__all__ = [
    "Job",
    "JobManager",
    "JobSpec",
    "JobSpecError",
    "PriorityJobQueue",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ShardPlacement",
    "place_shards",
    "strip_volatile",
    "submit_and_wait",
]
