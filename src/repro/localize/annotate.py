"""Rendering of localization results: timelines and annotated disassembly.

Text output is fixed-width ASCII in the style of
:mod:`repro.sampler.report`; JSON output mirrors ``report_to_dict`` so CI
can archive localized findings next to detection verdicts.
"""

from __future__ import annotations

from repro.isa.disasm import format_instruction
from repro.localize.localize import LOCALIZATION_ALPHA, LocalizationReport

#: Glyph ramp for the per-cycle leakage timeline (V in [0, 1]).
_RAMP = " .:-=+*#@"


def render_timeline(scan, *, width: int = 64) -> str:
    """One-line sparkline of per-offset Cramér's V (max-pooled buckets)."""
    if scan.n_offsets == 0:
        return "(no sampled cycles)"
    values = [s.association.cramers_v for s in scan.offsets]
    width = min(width, len(values))
    buckets = []
    for b in range(width):
        lo = b * len(values) // width
        hi = max((b + 1) * len(values) // width, lo + 1)
        buckets.append(max(values[lo:hi]))
    glyphs = "".join(
        _RAMP[min(int(v * (len(_RAMP) - 1)), len(_RAMP) - 1)]
        for b in buckets for v in [min(max(b, 0.0), 1.0)]
    )
    return f"|{glyphs}| offsets 0..{scan.n_offsets - 1}"


def _window_line(unit) -> str:
    scan = unit.scan
    if scan.window is None:
        return (f"{unit.feature_id}: no localized window "
                f"({scan.n_offsets} offsets scanned, none flagged)")
    peak = scan.peak
    return (
        f"{unit.feature_id}: window [{scan.window.start}, "
        f"{scan.window.end}] of {scan.n_offsets} offsets "
        f"({scan.window.cycles} cycles, {len(scan.flagged_offsets)} "
        f"flagged), peak V={peak.association.cramers_v:.3f} "
        f"p={peak.association.p_value:.3g} @ offset {peak.offset}"
    )


def render_localization(report: LocalizationReport, *, program=None,
                        top: int = 5, alpha: float = LOCALIZATION_ALPHA,
                        timeline_width: int = 64) -> str:
    """Render a :class:`LocalizationReport` as a fixed-width text listing.

    ``program`` (an assembled :class:`~repro.isa.assembler.Program`)
    enables the annotated disassembly section; without it only the per-unit
    windows, timelines and ranked instruction tables are shown.
    """
    lines = [
        f"Leakage localization — workload={report.workload_name} "
        f"core={report.config_name}",
        f"iterations={report.n_iterations} classes={report.n_classes} "
        f"engine={report.engine} "
        f"targets={', '.join(report.target_units) or '(none)'}",
        "",
    ]
    if not report.units:
        lines.append("No leaky units to localize.")
        return "\n".join(lines)

    annotations: dict[int, list[str]] = {}
    for unit in report.units.values():
        lines.append(_window_line(unit))
        lines.append(f"  timeline {render_timeline(unit.scan, width=timeline_width)}")
        if unit.attribution is None:
            lines.append("")
            continue
        significant = unit.attribution.significant(alpha=alpha)
        shown = significant[:top] if significant else unit.attribution.scores[:top]
        qualifier = "" if significant else " (none significant; best effort)"
        if unit.attribution.pre_excluded:
            lines.append(
                f"  taint prescreen: {len(unit.attribution.pre_excluded)} "
                f"in-window PC(s) proven secret-free, skipped "
                f"(permutation tests spent on "
                f"{len(unit.attribution.scores)} PC(s))")
        lines.append(f"  ranked instructions (MI bits, permutation p)"
                     f"{qualifier}:")
        for rank, score in enumerate(shown, start=1):
            lines.append(
                f"   #{rank} {score.pc:#010x} {score.mnemonic:<8} "
                f"MI={score.mi_bits:.3f}b p={score.p_value:.3g} "
                f"commits={score.commits_in_window} "
                f"iterations={score.iterations_active}/"
                f"{unit.attribution.n_iterations}"
            )
        for rank, score in enumerate(significant, start=1):
            annotations.setdefault(score.pc, []).append(
                (unit.feature_id, rank, score.mi_bits, score.p_value))
        lines.append("")

    if program is not None and annotations:
        lines.append("annotated disassembly (flagged instructions marked):")
        for inst in program.instructions:
            text = f"{inst.pc:#010x}:  {format_instruction(inst)}"
            marks = annotations.get(inst.pc)
            if marks:
                unit_name, rank, mi_bits, p_value = max(
                    marks, key=lambda m: (m[2], -m[3]))
                text = (f"{text:<44} <== leaks {len(marks)} unit(s); "
                        f"best {unit_name} #{rank} MI={mi_bits:.2f}b "
                        f"p={p_value:.3g}")
            lines.append(text)
        lines.append("")

    if report.leakage_localized:
        lines.append(
            f"LEAKAGE LOCALIZED in: {', '.join(report.localized_units)}")
    else:
        lines.append("No cycle window passed the localization gate.")
    lines.append(
        f"stage times: simulate={report.simulate_seconds:.2f}s "
        f"scan={report.scan_seconds:.2f}s "
        f"attribute={report.attribute_seconds:.2f}s"
    )
    if report.profile is not None:
        lines.append("")
        lines.append(report.profile.render())
    return "\n".join(lines)


def localization_to_dict(report: LocalizationReport, *,
                         alpha: float = LOCALIZATION_ALPHA) -> dict:
    """Serialize a :class:`LocalizationReport` to JSON-compatible data."""
    units = {}
    for feature_id, unit in report.units.items():
        scan = unit.scan
        entry = {
            "n_offsets": scan.n_offsets,
            "flagged_offsets": list(scan.flagged_offsets),
            "window": (
                {"start": scan.window.start, "end": scan.window.end,
                 "cycles": scan.window.cycles}
                if scan.window is not None else None
            ),
            "offsets": [
                {
                    "offset": s.offset,
                    "cramers_v": s.association.cramers_v,
                    "p_value": s.association.p_value,
                    "n_categories": s.association.n_categories,
                }
                for s in scan.offsets
            ],
            "instructions": [],
        }
        if unit.attribution is not None:
            entry["instructions"] = [
                {
                    "pc": score.pc,
                    "mnemonic": score.mnemonic,
                    "mi_bits": score.mi_bits,
                    "p_value": score.p_value,
                    "leakage_fraction": score.mi.leakage_fraction,
                    "commits_in_window": score.commits_in_window,
                    "iterations_active": score.iterations_active,
                    "significant": score.p_value < alpha,
                }
                for score in unit.attribution.scores
            ]
            if unit.attribution.pre_excluded:
                # Key present only when the rank tier actually excluded
                # something, so taint-off and taint-on localization dicts
                # stay byte-identical whenever the restriction is a no-op
                # (all bundled leaky workloads escalate).
                entry["pre_excluded"] = [
                    {"pc": pc, "mnemonic": mnemonic}
                    for pc, mnemonic in unit.attribution.pre_excluded
                ]
        units[feature_id] = entry
    return {
        "workload": report.workload_name,
        "config": report.config_name,
        "engine": report.engine,
        "n_iterations": report.n_iterations,
        "n_classes": report.n_classes,
        "target_units": list(report.target_units),
        "localized_units": report.localized_units,
        "leakage_localized": report.leakage_localized,
        "alpha": alpha,
        "units": units,
        "timings_seconds": {
            "simulate": report.simulate_seconds,
            "scan": report.scan_seconds,
            "attribute": report.attribute_seconds,
        },
        "profile": (report.profile.to_dict()
                    if report.profile is not None else None),
    }
