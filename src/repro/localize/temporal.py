"""Temporal scan: locate the cycle window of a leaking iteration snapshot.

The detection phase scores one hash per (iteration, unit) — the whole 2D
state matrix of Figure 2 collapsed to a single value — so a leaky verdict
says nothing about *when* inside the iteration the state diverged.  This
module re-keys the retained per-cycle row digests by **cycle offset from
the iteration start**: offset ``t`` yields one column of digests across all
iterations, which is exactly the shape the association machinery already
scores.  Every offset is tested with the same chi-squared / Cramér's V gate
as the per-unit verdicts (batched through
:mod:`repro.sampler.stats_vec` on the numpy engine), and the *leaking
window* is the minimal contiguous offset range covering every flagged
offset.

Alignment caveat: iterations of one workload need not be equally long (an
early-exit ``memcmp`` ends sooner on a mismatch).  Offsets past an
iteration's end are filled with a sentinel "ended" category, so a
class-correlated iteration *length* shows up as leakage at the tail offsets
rather than silently shrinking the sample — see ``docs/localization.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sampler.stats import (
    SIGNIFICANCE_ALPHA,
    STRONG_ASSOCIATION_THRESHOLD,
    AssociationResult,
)

#: Category standing in for "this iteration already ended" at offsets past
#: an iteration's last sampled cycle.  Real categories are 64-bit unsigned
#: row digests, so a negative value can never collide with one.
ITERATION_ENDED = -1


class LocalizationError(RuntimeError):
    """Raised when localization inputs are missing or malformed."""


@dataclass(frozen=True)
class CycleWindow:
    """A contiguous range of cycle offsets, both ends inclusive."""

    start: int
    end: int

    def __post_init__(self):
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid window [{self.start}, {self.end}]")

    @property
    def cycles(self) -> int:
        return self.end - self.start + 1

    def contains(self, offset: int) -> bool:
        return self.start <= offset <= self.end


@dataclass(frozen=True)
class OffsetScore:
    """Association verdict for one cycle offset of one unit."""

    offset: int
    association: AssociationResult

    @property
    def flagged(self) -> bool:
        # Recomputed by the scan against its own thresholds; this property
        # reflects the paper's defaults only.
        return self.association.leaky


@dataclass(frozen=True)
class TemporalScan:
    """Per-offset association scores plus the derived leaking window."""

    feature_id: str
    n_iterations: int
    n_offsets: int
    offsets: tuple  # OffsetScore per cycle offset, in offset order
    flagged_offsets: tuple  # offsets passing the V/p gate
    window: CycleWindow | None  # None when no offset is flagged

    @property
    def peak(self) -> OffsetScore | None:
        """The flagged offset with the strongest association, if any."""
        candidates = [self.offsets[i] for i in self.flagged_offsets]
        if not candidates:
            return None
        return max(candidates, key=lambda s: (s.association.cramers_v,
                                              -s.association.p_value))


def offset_columns(iterations, feature_id: str):
    """Re-key per-cycle digests into aligned cycle-offset columns.

    Returns ``(labels, columns)`` where ``columns[t][i]`` is iteration
    ``i``'s row digest at cycle offset ``t`` (or :data:`ITERATION_ENDED`
    once iteration ``i`` is over).
    """
    labels = []
    digest_rows = []
    for record in iterations:
        feature = record.features.get(feature_id)
        if feature is None or feature.cycle_digests is None:
            raise LocalizationError(
                f"iteration {record.index} has no retained per-cycle "
                f"digests for {feature_id!r}; re-run the campaign with "
                f"keep_raw enabled for localization"
            )
        labels.append(record.label)
        digest_rows.append(feature.cycle_digests)
    n_offsets = max((len(row) for row in digest_rows), default=0)
    columns = [
        [row[t] if t < len(row) else ITERATION_ENDED for row in digest_rows]
        for t in range(n_offsets)
    ]
    return labels, columns


def _score_offsets_python(labels, columns) -> list[AssociationResult]:
    from repro.sampler.contingency import build_contingency_table
    from repro.sampler.stats import measure_association

    return [measure_association(build_contingency_table(labels, column))
            for column in columns]


def _score_offsets_numpy(labels, columns) -> list[AssociationResult]:
    from repro.sampler.matrix import TraceMatrix
    from repro.sampler.stats_vec import batched_association

    matrix = TraceMatrix.from_observations(
        labels, {offset: column for offset, column in enumerate(columns)},
    )
    associations = batched_association(matrix)
    return [associations[offset] for offset in range(len(columns))]


def temporal_scan(iterations, feature_id: str, *,
                  v_threshold: float = STRONG_ASSOCIATION_THRESHOLD,
                  alpha: float = SIGNIFICANCE_ALPHA,
                  engine: str = "numpy") -> TemporalScan:
    """Score every cycle offset of one unit and derive the leaking window.

    ``engine`` selects the association implementation exactly as the
    detection pipeline does: ``"numpy"`` scores all offsets through the
    batched columnar kernels, ``"python"`` through the scalar reference
    path; both agree to within 1e-9.
    """
    iterations = list(iterations)
    labels, columns = offset_columns(iterations, feature_id)
    if engine == "numpy":
        associations = _score_offsets_numpy(labels, columns)
    elif engine == "python":
        associations = _score_offsets_python(labels, columns)
    else:
        raise ValueError(f"unknown engine {engine!r}")
    scores = tuple(OffsetScore(offset=t, association=a)
                   for t, a in enumerate(associations))
    flagged = tuple(
        s.offset for s in scores
        if s.association.cramers_v > v_threshold
        and s.association.p_value < alpha
    )
    window = (CycleWindow(start=flagged[0], end=flagged[-1])
              if flagged else None)
    return TemporalScan(
        feature_id=feature_id,
        n_iterations=len(iterations),
        n_offsets=len(columns),
        offsets=scores,
        flagged_offsets=flagged,
        window=window,
    )
