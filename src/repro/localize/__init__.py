"""Leakage localization: temporal scan + instruction-level attribution.

Second-phase subsystem turning a per-unit leaky verdict into a minimal
leaking cycle window and a ranked, annotated list of the committed
instructions whose activity explains it.  See ``docs/localization.md``.
"""

from repro.localize.annotate import (
    localization_to_dict,
    render_localization,
    render_timeline,
)
from repro.localize.attribution import (
    DEFAULT_PERMUTATIONS,
    AttributionResult,
    InstructionScore,
    attribute_window,
    commit_offsets,
)
from repro.localize.localize import (
    LOCALIZATION_ALPHA,
    LocalizationReport,
    UnitLocalization,
    localize,
    localize_campaign,
)
from repro.localize.temporal import (
    ITERATION_ENDED,
    CycleWindow,
    LocalizationError,
    OffsetScore,
    TemporalScan,
    offset_columns,
    temporal_scan,
)

__all__ = [
    "DEFAULT_PERMUTATIONS",
    "ITERATION_ENDED",
    "LOCALIZATION_ALPHA",
    "AttributionResult",
    "CycleWindow",
    "InstructionScore",
    "LocalizationError",
    "LocalizationReport",
    "OffsetScore",
    "TemporalScan",
    "UnitLocalization",
    "attribute_window",
    "commit_offsets",
    "localization_to_dict",
    "localize",
    "localize_campaign",
    "offset_columns",
    "render_localization",
    "render_timeline",
    "temporal_scan",
]
