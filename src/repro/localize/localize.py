"""Two-phase leakage localization: detection verdicts -> annotated causes.

Phase 1 is the ordinary MicroSampler pipeline: a campaign without raw-row
retention, scored per unit.  Phase 2 re-runs (or cache-replays) the
campaign **only for the flagged units**, with per-cycle digest retention
and the commit log enabled, then runs the temporal scan and instruction
attribution per unit.  Keeping the phases separate means the common
no-leak path never pays the localization memory cost, while the
content-addressed trace cache makes the second simulation a replay whenever
a localization campaign ran before.

The cache interaction is defensive on top of content addressing: a replay
that somehow lacks per-cycle digests or commit logs (a poisoned or
pre-versioning entry) is transparently re-simulated with the cache bypassed
rather than crashing the scan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.localize.attribution import (
    DEFAULT_PERMUTATIONS,
    AttributionResult,
    attribute_window,
)
from repro.localize.temporal import TemporalScan, temporal_scan
from repro.sampler.runner import Workload, run_campaign

#: Significance gate for localized findings (acceptance: p < 0.01 on the
#: secret-dependent instructions).  Stricter than the detection alpha
#: because phase 2 tests many offsets/instructions per unit.
LOCALIZATION_ALPHA = 0.01


@dataclass
class UnitLocalization:
    """Localization outcome for one leaky unit."""

    feature_id: str
    scan: TemporalScan
    attribution: AttributionResult | None = None

    @property
    def localized(self) -> bool:
        return self.scan.window is not None


@dataclass
class LocalizationReport:
    """Phase-2 verdicts: one :class:`UnitLocalization` per flagged unit."""

    workload_name: str
    config_name: str
    n_iterations: int
    n_classes: int
    engine: str = "numpy"
    #: units that phase 1 flagged (the localization targets).
    target_units: tuple = ()
    units: dict[str, UnitLocalization] = field(default_factory=dict)
    simulate_seconds: float = 0.0
    scan_seconds: float = 0.0
    attribute_seconds: float = 0.0
    #: Merged per-stage simulator time across both phases when the sampler
    #: was profiling (:class:`repro.util.profiling.StageProfile`), else None.
    profile: object | None = None

    @property
    def localized_units(self) -> list[str]:
        return [fid for fid, unit in self.units.items() if unit.localized]

    @property
    def leakage_localized(self) -> bool:
        return bool(self.localized_units)


def localize_campaign(campaign, feature_ids, *,
                      v_threshold: float | None = None,
                      alpha: float | None = None,
                      engine: str = "numpy",
                      warmup_iterations: int = 0,
                      permutations: int = DEFAULT_PERMUTATIONS,
                      seed: int = 0,
                      taint=None) -> LocalizationReport:
    """Run temporal scan + attribution over an existing campaign.

    The campaign must have been run with ``keep_raw`` covering
    ``feature_ids`` and ``log_commits=True`` (see :func:`localize`).

    ``taint`` (a :class:`~repro.sampler.pipeline.TaintSummary`) enables the
    rank tier: permutation tests run only on PCs the taint engine saw
    touch secret data, the rest are reported as pre-excluded.  An
    escalated map (secret-dependent control or address flow) voids the
    per-PC exoneration, so no restriction is applied then — which is why
    the bundled leaky workloads localize bit-identically with taint on.
    """
    from repro.sampler.stats import (
        SIGNIFICANCE_ALPHA,
        STRONG_ASSOCIATION_THRESHOLD,
    )

    v_threshold = (STRONG_ASSOCIATION_THRESHOLD if v_threshold is None
                   else v_threshold)
    alpha = SIGNIFICANCE_ALPHA if alpha is None else alpha
    allowed_pcs = None
    if taint is not None and not taint.escalated:
        merged = taint.merged
        allowed_pcs = frozenset(
            merged.tainted_pcs | merged.tainted_mem_pcs
            | merged.tainted_branch_pcs | merged.transient_mem_pcs)
    iterations = [r for r in campaign.iterations
                  if r.ordinal >= warmup_iterations]
    report = LocalizationReport(
        workload_name=campaign.workload.name,
        config_name=campaign.config.name,
        n_iterations=len(iterations),
        n_classes=len({r.label for r in iterations}),
        engine=engine,
        target_units=tuple(feature_ids),
        simulate_seconds=campaign.simulate_seconds,
    )
    for feature_id in feature_ids:
        started = time.perf_counter()
        scan = temporal_scan(iterations, feature_id,
                             v_threshold=v_threshold, alpha=alpha,
                             engine=engine)
        report.scan_seconds += time.perf_counter() - started
        unit = UnitLocalization(feature_id=feature_id, scan=scan)
        if scan.window is not None:
            started = time.perf_counter()
            unit.attribution = attribute_window(
                iterations, feature_id, scan.window,
                permutations=permutations, seed=seed,
                allowed_pcs=allowed_pcs,
            )
            report.attribute_seconds += time.perf_counter() - started
        report.units[feature_id] = unit
    return report


def _missing_localization_inputs(campaign, feature_ids) -> bool:
    """True when any record lacks per-cycle digests or a commit log."""
    for record in campaign.iterations:
        if record.commits is None:
            return True
        for feature_id in feature_ids:
            feature = record.features.get(feature_id)
            if feature is None or feature.cycle_digests is None:
                return True
    return False


def localize(workload: Workload, *, sampler=None, report=None,
             features=None, permutations: int = DEFAULT_PERMUTATIONS,
             seed: int = 0,
             max_cycles_per_run: int = 5_000_000) -> LocalizationReport:
    """The full two-phase flow: detect, then localize every flagged unit.

    ``sampler`` supplies the core configuration, thresholds, engine and
    simulation backend (jobs/cache); ``report`` is an existing phase-1
    :class:`~repro.sampler.pipeline.LeakageReport` to reuse (one is
    computed when omitted).  ``features`` overrides the localization
    targets — by default, the report's leaky units.
    """
    from repro.sampler.pipeline import MicroSampler

    sampler = sampler or MicroSampler()
    if report is None and features is None:
        report = sampler.analyze(workload,
                                 max_cycles_per_run=max_cycles_per_run)
    taint = None
    if getattr(sampler, "taint", False):
        # Reuse the phase-1 prescreen when available; the map is a pure
        # function of the workload so recomputing is equivalent.
        if report is not None and report.taint is not None:
            taint = report.taint
        else:
            taint = sampler.compute_taint(workload)
    if features is not None:
        targets = tuple(features)
    else:
        targets = tuple(report.leaky_units)
    if not targets:
        return LocalizationReport(
            workload_name=workload.name,
            config_name=sampler.config.name,
            n_iterations=report.n_iterations if report is not None else 0,
            n_classes=report.n_classes if report is not None else 0,
            engine=sampler.engine,
            profile=report.profile if report is not None else None,
        )
    campaign_kwargs = dict(
        features=targets, keep_raw=True, log_commits=True,
        max_cycles_per_run=max_cycles_per_run, jobs=sampler.jobs,
        warmup_insts=getattr(sampler, "warmup_insts", None),
        batch_lanes=getattr(sampler, "batch_lanes", None),
        profile=sampler.profile,
    )
    campaign = run_campaign(workload, sampler.config,
                            cache=sampler.cache, **campaign_kwargs)
    if _missing_localization_inputs(campaign, targets):
        # Stale or pre-versioning cache entries replayed without the
        # localization inputs: re-simulate instead of crashing the scan.
        campaign = run_campaign(workload, sampler.config, cache=None,
                                **campaign_kwargs)
    result = localize_campaign(
        campaign, targets,
        v_threshold=sampler.v_threshold, alpha=sampler.alpha,
        engine=sampler.engine,
        warmup_iterations=sampler.warmup_iterations,
        permutations=permutations, seed=seed,
        taint=taint,
    )
    if sampler.profile:
        from repro.util.profiling import merge_profiles

        result.profile = merge_profiles([
            report.profile if report is not None else None,
            campaign.profile,
        ])
    return result
