"""Instruction-level attribution: map a leaking cycle window onto code.

Given the temporal scan's window, attribution asks *which instructions were
architecturally active in it, and does their activity pattern depend on the
secret class?*  For each PC that commits inside the window in any
iteration, the per-iteration observation is the tuple of in-window cycle
offsets at which that PC committed — capturing both *whether* the
instruction ran (an early exit skips it) and *when* (a stall or mispredict
shifts it).  Each PC is then scored with the mutual information between the
secret class and that observation (MicroWalk's leakage measure, reusing
:mod:`repro.sampler.mutual_information`), with a label-permutation test
supplying the significance level.

Attribution sees the *committed* stream only: wrong-path instructions never
commit, so a purely transient leak (the CT-MEM-CMP case) is attributed to
the committed instructions whose timing or presence co-varies with the
transient activity — typically the mispredicting branch and its
architectural successors.  The temporal window itself is derived from the
full speculative per-cycle state, so it is not similarly limited.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.localize.temporal import CycleWindow, LocalizationError
from repro.sampler.mutual_information import (
    MutualInformationResult,
    measure_mutual_information,
)

#: Permutation count for the attribution significance test.  199 keeps the
#: test cheap while allowing p-values down to 1/200 = 0.005 — below the
#: 0.01 gate used for localized findings.
DEFAULT_PERMUTATIONS = 199


@dataclass(frozen=True)
class InstructionScore:
    """Leakage attribution for one committed instruction."""

    pc: int
    mnemonic: str
    #: total commits of this PC inside the window, across all iterations.
    commits_in_window: int
    #: iterations in which this PC committed inside the window at least once.
    iterations_active: int
    mi: MutualInformationResult

    @property
    def mi_bits(self) -> float:
        return self.mi.mutual_information_bits

    @property
    def p_value(self) -> float:
        return self.mi.p_value


@dataclass(frozen=True)
class AttributionResult:
    """Ranked instruction scores for one unit's leaking window."""

    feature_id: str
    window: CycleWindow
    n_iterations: int
    #: InstructionScore tuples, strongest leak first.
    scores: tuple
    #: (pc, mnemonic) tuples the taint prescreen proved secret-free: they
    #: committed inside the window but never touched tainted data, so no
    #: permutation test was spent on them.  Empty when attribution ran
    #: unrestricted (no taint, or the taint engine escalated).
    pre_excluded: tuple = ()

    def significant(self, *, alpha: float = 0.01,
                    min_bits: float = 0.0) -> tuple:
        """Scores passing the localization gate (p < alpha, MI > min_bits)."""
        return tuple(s for s in self.scores
                     if s.p_value < alpha and s.mi_bits > min_bits)


def commit_offsets(record):
    """One iteration's commit log as (offset, pc, mnemonic) tuples."""
    if record.commits is None:
        raise LocalizationError(
            f"iteration {record.index} has no commit log; re-run the "
            f"campaign with log_commits=True for localization"
        )
    start = record.start_cycle
    return [(cycle - start, pc, mnemonic)
            for cycle, pc, mnemonic in record.commits]


def attribute_window(iterations, feature_id: str, window: CycleWindow, *,
                     permutations: int = DEFAULT_PERMUTATIONS,
                     seed: int = 0,
                     allowed_pcs=None) -> AttributionResult:
    """Score every PC committing inside ``window`` against the labels.

    Deterministic: the permutation RNG is seeded per call and instructions
    are ranked by (MI desc, p asc, pc asc), so parallel and cached replays
    reproduce the ranking bit-identically.

    ``allowed_pcs`` (the taint prescreen's rank tier) restricts the
    permutation tests to PCs the taint engine saw reach secret data;
    everything else is reported as ``pre_excluded`` instead of scored.
    ``None`` means no restriction.
    """
    iterations = list(iterations)
    labels = [record.label for record in iterations]
    # Per-iteration, per-PC in-window commit offset signatures.
    signatures: dict[int, list[tuple]] = {}
    mnemonics: dict[int, str] = {}
    totals: dict[int, int] = {}
    per_iteration: list[dict[int, list[int]]] = []
    for record in iterations:
        active: dict[int, list[int]] = {}
        for offset, pc, mnemonic in commit_offsets(record):
            if not window.contains(offset):
                continue
            active.setdefault(pc, []).append(offset)
            mnemonics.setdefault(pc, mnemonic)
            totals[pc] = totals.get(pc, 0) + 1
        per_iteration.append(active)
    for pc in mnemonics:
        signatures[pc] = [tuple(active.get(pc, ())) for active in per_iteration]

    scores = []
    pre_excluded = []
    for pc in sorted(signatures):
        if allowed_pcs is not None and pc not in allowed_pcs:
            pre_excluded.append((pc, mnemonics[pc]))
            continue
        mi = measure_mutual_information(
            labels, signatures[pc], permutations=permutations, seed=seed,
        )
        scores.append(InstructionScore(
            pc=pc,
            mnemonic=mnemonics[pc],
            commits_in_window=totals[pc],
            iterations_active=sum(1 for sig in signatures[pc] if sig),
            mi=mi,
        ))
    scores.sort(key=lambda s: (-s.mi_bits, s.p_value, s.pc))
    return AttributionResult(
        feature_id=feature_id,
        window=window,
        n_iterations=len(iterations),
        scores=tuple(scores),
        pre_excluded=tuple(pre_excluded),
    )
