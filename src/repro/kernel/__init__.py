"""Minimal proxy kernel (riscv-pk analog): loading, memory map, syscalls."""

from repro.kernel.memory_map import MemoryMap
from repro.kernel.proxy_kernel import (
    SYS_BRK,
    SYS_EXIT,
    SYS_WRITE,
    CpuView,
    ProxyKernel,
    SyscallError,
)

__all__ = [
    "CpuView",
    "MemoryMap",
    "ProxyKernel",
    "SYS_BRK",
    "SYS_EXIT",
    "SYS_WRITE",
    "SyscallError",
]
