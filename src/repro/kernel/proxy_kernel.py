"""A minimal proxy kernel, in the spirit of riscv-pk.

The proxy kernel gives simulated programs just enough of an environment to
run: it loads the program image, establishes the stack, and services
``ecall``s by proxying a small syscall set to the host (exit, console write).
Both the functional interpreter and the out-of-order core delegate their
``ecall`` handling here, so syscall behaviour cannot diverge between the two
simulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.isa.semantics import to_signed
from repro.kernel.memory_map import MemoryMap

SYS_EXIT = 93
SYS_WRITE = 64
SYS_BRK = 214

_REG_A0 = 10
_REG_A1 = 11
_REG_A2 = 12
_REG_A7 = 17


class CpuView(Protocol):
    """The architectural interface the kernel needs from a simulator."""

    def read_reg(self, num: int) -> int: ...

    def write_reg(self, num: int, value: int) -> None: ...

    memory: object  # must expose read_bytes/write_bytes


class SyscallError(RuntimeError):
    """Raised for syscalls the proxy kernel does not implement."""


@dataclass
class ProxyKernel:
    """Services ``ecall``s and records program console output.

    ``handle_ecall`` returns True to continue execution, False to halt.
    """

    memory_map: MemoryMap = field(default_factory=MemoryMap)
    console: bytearray = field(default_factory=bytearray)
    exit_code: int = 0
    exited: bool = False
    _brk: int = 0

    def __post_init__(self):
        self._brk = self.memory_map.heap_base

    def handle_ecall(self, cpu: CpuView) -> bool:
        syscall = cpu.read_reg(_REG_A7)
        if syscall == SYS_EXIT:
            self.exit_code = to_signed(cpu.read_reg(_REG_A0))
            self.exited = True
            return False
        if syscall == SYS_WRITE:
            address = cpu.read_reg(_REG_A1)
            length = cpu.read_reg(_REG_A2)
            self.console.extend(cpu.memory.read_bytes(address, length))
            cpu.write_reg(_REG_A0, length)
            return True
        if syscall == SYS_BRK:
            requested = cpu.read_reg(_REG_A0)
            if requested:
                if not (self.memory_map.heap_base <= requested
                        < self.memory_map.stack_top):
                    raise SyscallError(f"brk out of heap range: {requested:#x}")
                self._brk = requested
            cpu.write_reg(_REG_A0, self._brk)
            return True
        raise SyscallError(f"unhandled syscall {syscall}")

    @property
    def console_text(self) -> str:
        return self.console.decode("latin-1")

    # -- lockstep batching support -------------------------------------------

    def lockstep_signature(self, cpu: CpuView) -> tuple:
        """The register tuple that must agree across batched lanes.

        Two lanes may service an ``ecall`` in lockstep iff this tuple
        matches: the kernel's *behaviour* (which syscall, which addresses,
        whether execution continues) is a function of exactly these
        registers.  Registers that are data rather than behaviour — the
        exit code, the bytes a ``write`` reads — are deliberately excluded,
        since per-lane kernels capture per-lane state.
        """
        syscall = cpu.read_reg(_REG_A7)
        if syscall == SYS_WRITE:
            return (syscall, cpu.read_reg(_REG_A1), cpu.read_reg(_REG_A2))
        if syscall == SYS_BRK:
            return (syscall, cpu.read_reg(_REG_A0))
        return (syscall,)

    # -- checkpoint support --------------------------------------------------

    def checkpoint_state(self) -> tuple[bytes, int]:
        """Snapshot of the kernel-side architectural state (console, brk)."""
        return bytes(self.console), self._brk

    def restore_state(self, state: tuple[bytes, int]) -> None:
        """Restore a snapshot taken by :meth:`checkpoint_state`."""
        console, brk = state
        self.console = bytearray(console)
        self._brk = brk
        self.exit_code = 0
        self.exited = False
