"""Physical memory map used by the proxy kernel and both simulators."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryMap:
    """Flat physical memory layout for simulated programs.

    Mirrors the simple layout riscv-pk establishes: text low, static data
    above it, a heap region, and a stack growing down from the top.
    """

    text_base: int = 0x0001_0000
    data_base: int = 0x0004_0000
    heap_base: int = 0x0010_0000
    stack_top: int = 0x003F_FF00
    memory_size: int = 1 << 22  # 4 MiB
    page_size: int = 4096

    def page_of(self, address: int) -> int:
        """Virtual page number containing ``address``."""
        return address // self.page_size

    def validate(self) -> None:
        if not (self.text_base < self.data_base < self.heap_base
                < self.stack_top <= self.memory_size):
            raise ValueError("memory map regions must be ordered and in range")
