"""Deterministic hashing utilities.

The paper hashes each microarchitectural iteration snapshot to a 64-bit
scalar using Python's default SipHash.  Python's own ``hash()`` over bytes is
salted per process, so this module provides an explicit, keyed SipHash-2-4
implementation whose output is stable across runs and machines.

For speed, per-cycle state rows are first reduced with :func:`row_digest`
(CPython's deterministic tuple-of-ints hash, computed in C) and the final
per-iteration hash is SipHash-2-4 over the packed row digests.
"""

from __future__ import annotations

import struct

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Fixed 128-bit SipHash key: the analysis must be reproducible run to run.
DEFAULT_KEY = (0x0706050403020100, 0x0F0E0D0C0B0A0908)


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (64 - amount))) & _MASK64


def _siprounds(n: int, v0: int, v1: int, v2: int, v3: int,
               _M: int = _MASK64) -> tuple[int, int, int, int]:
    """``n`` SipRounds with the rotations inlined (cold path helper)."""
    for _ in range(n):
        v0 = (v0 + v1) & _M
        v1 = (((v1 << 13) | (v1 >> 51)) & _M) ^ v0
        v0 = ((v0 << 32) | (v0 >> 32)) & _M
        v2 = (v2 + v3) & _M
        v3 = (((v3 << 16) | (v3 >> 48)) & _M) ^ v2
        v0 = (v0 + v3) & _M
        v3 = (((v3 << 21) | (v3 >> 43)) & _M) ^ v0
        v2 = (v2 + v1) & _M
        v1 = (((v1 << 17) | (v1 >> 47)) & _M) ^ v2
        v2 = ((v2 << 32) | (v2 >> 32)) & _M
    return v0, v1, v2, v3


def siphash24(data: bytes, key: tuple[int, int] = DEFAULT_KEY) -> int:
    """SipHash-2-4 of ``data`` with a 128-bit ``key``; returns a 64-bit int.

    This is the innermost hash of every finalized snapshot, so the word loop
    decodes all message words with one ``struct.unpack_from`` and runs its
    two SipRounds inline — no per-rotation function calls.
    """
    k0, k1 = key
    _M = _MASK64
    v0 = k0 ^ 0x736F6D6570736575
    v1 = k1 ^ 0x646F72616E646F6D
    v2 = k0 ^ 0x6C7967656E657261
    v3 = k1 ^ 0x7465646279746573

    length = len(data)
    nwords = length >> 3
    if nwords:
        for m in struct.unpack_from(f"<{nwords}Q", data):
            v3 ^= m
            # SipRound x2, inlined.
            v0 = (v0 + v1) & _M
            v1 = (((v1 << 13) | (v1 >> 51)) & _M) ^ v0
            v0 = ((v0 << 32) | (v0 >> 32)) & _M
            v2 = (v2 + v3) & _M
            v3 = (((v3 << 16) | (v3 >> 48)) & _M) ^ v2
            v0 = (v0 + v3) & _M
            v3 = (((v3 << 21) | (v3 >> 43)) & _M) ^ v0
            v2 = (v2 + v1) & _M
            v1 = (((v1 << 17) | (v1 >> 47)) & _M) ^ v2
            v2 = ((v2 << 32) | (v2 >> 32)) & _M
            v0 = (v0 + v1) & _M
            v1 = (((v1 << 13) | (v1 >> 51)) & _M) ^ v0
            v0 = ((v0 << 32) | (v0 >> 32)) & _M
            v2 = (v2 + v3) & _M
            v3 = (((v3 << 16) | (v3 >> 48)) & _M) ^ v2
            v0 = (v0 + v3) & _M
            v3 = (((v3 << 21) | (v3 >> 43)) & _M) ^ v0
            v2 = (v2 + v1) & _M
            v1 = (((v1 << 17) | (v1 >> 47)) & _M) ^ v2
            v2 = ((v2 << 32) | (v2 >> 32)) & _M
            v0 ^= m
    tail = data[nwords << 3:]
    m = (length & 0xFF) << 56
    m |= int.from_bytes(tail, "little")
    v3 ^= m
    v0, v1, v2, v3 = _siprounds(2, v0, v1, v2, v3)
    v0 ^= m
    v2 ^= 0xFF
    v0, v1, v2, v3 = _siprounds(4, v0, v1, v2, v3)
    return (v0 ^ v1 ^ v2 ^ v3) & _M


def row_digest(row: tuple) -> int:
    """Deterministic 64-bit digest of one state row (a tuple of ints).

    CPython's tuple hash over ints does not depend on ``PYTHONHASHSEED``
    (only str/bytes hashing is salted), so this is stable across runs while
    running at C speed.
    """
    return hash(row) & _MASK64


def pack_digests(digests) -> bytes:
    """Pack a sequence of 64-bit digests into their SipHash input bytes.

    One ``struct.pack`` call per iteration snapshot.  The packed form
    doubles as an exact memo key for :func:`combine_digests` results (the
    tracer's snapshot-level hash cache).
    """
    return struct.pack(f"<{len(digests)}Q", *digests)


def combine_digests(digests, key: tuple[int, int] = DEFAULT_KEY) -> int:
    """SipHash-2-4 over a sequence of 64-bit row digests."""
    return siphash24(struct.pack(f"<{len(digests)}Q", *digests), key)


# -- content addressing -------------------------------------------------------
#
# The trace cache (repro.sampler.trace_cache) keys simulation outputs by
# *content*: the assembled program, the per-run input patches and the core
# configuration.  These helpers canonicalize arbitrary nestings of the plain
# values those objects are made of into a type-tagged byte stream, so that
# e.g. the int 1 and the bytes b"\x01" can never collide, and dict ordering
# never matters.


def _canonical_bytes(value, out: list) -> None:
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1,
                             "little", signed=True)
        out.append(b"i" + len(raw).to_bytes(4, "little") + raw)
    elif isinstance(value, float):
        out.append(b"f" + struct.pack("<d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(b"s" + len(raw).to_bytes(8, "little") + raw)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(b"b" + len(raw).to_bytes(8, "little") + raw)
    elif isinstance(value, (tuple, list)):
        out.append(b"(" + len(value).to_bytes(8, "little"))
        for item in value:
            _canonical_bytes(item, out)
        out.append(b")")
    elif isinstance(value, (frozenset, set)):
        encoded = []
        for item in value:
            chunk: list = []
            _canonical_bytes(item, chunk)
            encoded.append(b"".join(chunk))
        out.append(b"{" + len(encoded).to_bytes(8, "little"))
        out.extend(sorted(encoded))
        out.append(b"}")
    elif isinstance(value, dict):
        encoded = []
        for key, item in value.items():
            chunk = []
            _canonical_bytes(key, chunk)
            _canonical_bytes(item, chunk)
            encoded.append(b"".join(chunk))
        out.append(b"d" + len(encoded).to_bytes(8, "little"))
        out.extend(sorted(encoded))
        out.append(b"e")
    else:
        raise TypeError(
            f"cannot canonicalize {type(value).__name__!r} for hashing"
        )


def stable_digest(value, key: tuple[int, int] = DEFAULT_KEY) -> int:
    """Deterministic 64-bit digest of a nesting of plain Python values.

    Supports None/bool/int/float/str/bytes and tuples/lists/sets/dicts
    thereof.  Unlike :func:`row_digest` this is independent of CPython's
    hash implementation and safe to persist across interpreter versions.
    """
    out: list = []
    _canonical_bytes(value, out)
    return siphash24(b"".join(out), key)


def stable_hex_digest(value, key: tuple[int, int] = DEFAULT_KEY) -> str:
    """:func:`stable_digest` rendered as a fixed-width hex string."""
    return f"{stable_digest(value, key):016x}"
