"""Deterministic hashing utilities.

The paper hashes each microarchitectural iteration snapshot to a 64-bit
scalar using Python's default SipHash.  Python's own ``hash()`` over bytes is
salted per process, so this module provides an explicit, keyed SipHash-2-4
implementation whose output is stable across runs and machines.

For speed, per-cycle state rows are first reduced with :func:`row_digest`
(CPython's deterministic tuple-of-ints hash, computed in C) and the final
per-iteration hash is SipHash-2-4 over the packed row digests.
"""

from __future__ import annotations

import struct

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Fixed 128-bit SipHash key: the analysis must be reproducible run to run.
DEFAULT_KEY = (0x0706050403020100, 0x0F0E0D0C0B0A0908)


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (64 - amount))) & _MASK64


def siphash24(data: bytes, key: tuple[int, int] = DEFAULT_KEY) -> int:
    """SipHash-2-4 of ``data`` with a 128-bit ``key``; returns a 64-bit int."""
    k0, k1 = key
    v0 = k0 ^ 0x736F6D6570736575
    v1 = k1 ^ 0x646F72616E646F6D
    v2 = k0 ^ 0x6C7967656E657261
    v3 = k1 ^ 0x7465646279746573

    def rounds(n, a, b, c, d):
        for _ in range(n):
            a = (a + b) & _MASK64
            b = _rotl(b, 13) ^ a
            a = _rotl(a, 32)
            c = (c + d) & _MASK64
            d = _rotl(d, 16) ^ c
            a = (a + d) & _MASK64
            d = _rotl(d, 21) ^ a
            c = (c + b) & _MASK64
            b = _rotl(b, 17) ^ c
            c = _rotl(c, 32)
        return a, b, c, d

    length = len(data)
    end = length - (length % 8)
    for offset in range(0, end, 8):
        m = int.from_bytes(data[offset:offset + 8], "little")
        v3 ^= m
        v0, v1, v2, v3 = rounds(2, v0, v1, v2, v3)
        v0 ^= m
    tail = data[end:]
    m = (length & 0xFF) << 56
    m |= int.from_bytes(tail, "little")
    v3 ^= m
    v0, v1, v2, v3 = rounds(2, v0, v1, v2, v3)
    v0 ^= m
    v2 ^= 0xFF
    v0, v1, v2, v3 = rounds(4, v0, v1, v2, v3)
    return (v0 ^ v1 ^ v2 ^ v3) & _MASK64


def row_digest(row: tuple) -> int:
    """Deterministic 64-bit digest of one state row (a tuple of ints).

    CPython's tuple hash over ints does not depend on ``PYTHONHASHSEED``
    (only str/bytes hashing is salted), so this is stable across runs while
    running at C speed.
    """
    return hash(row) & _MASK64


def combine_digests(digests: list[int], key: tuple[int, int] = DEFAULT_KEY) -> int:
    """SipHash-2-4 over a sequence of 64-bit row digests."""
    return siphash24(struct.pack(f"<{len(digests)}Q", *digests), key)


# -- content addressing -------------------------------------------------------
#
# The trace cache (repro.sampler.trace_cache) keys simulation outputs by
# *content*: the assembled program, the per-run input patches and the core
# configuration.  These helpers canonicalize arbitrary nestings of the plain
# values those objects are made of into a type-tagged byte stream, so that
# e.g. the int 1 and the bytes b"\x01" can never collide, and dict ordering
# never matters.


def _canonical_bytes(value, out: list) -> None:
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1,
                             "little", signed=True)
        out.append(b"i" + len(raw).to_bytes(4, "little") + raw)
    elif isinstance(value, float):
        out.append(b"f" + struct.pack("<d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(b"s" + len(raw).to_bytes(8, "little") + raw)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(b"b" + len(raw).to_bytes(8, "little") + raw)
    elif isinstance(value, (tuple, list)):
        out.append(b"(" + len(value).to_bytes(8, "little"))
        for item in value:
            _canonical_bytes(item, out)
        out.append(b")")
    elif isinstance(value, (frozenset, set)):
        encoded = []
        for item in value:
            chunk: list = []
            _canonical_bytes(item, chunk)
            encoded.append(b"".join(chunk))
        out.append(b"{" + len(encoded).to_bytes(8, "little"))
        out.extend(sorted(encoded))
        out.append(b"}")
    elif isinstance(value, dict):
        encoded = []
        for key, item in value.items():
            chunk = []
            _canonical_bytes(key, chunk)
            _canonical_bytes(item, chunk)
            encoded.append(b"".join(chunk))
        out.append(b"d" + len(encoded).to_bytes(8, "little"))
        out.extend(sorted(encoded))
        out.append(b"e")
    else:
        raise TypeError(
            f"cannot canonicalize {type(value).__name__!r} for hashing"
        )


def stable_digest(value, key: tuple[int, int] = DEFAULT_KEY) -> int:
    """Deterministic 64-bit digest of a nesting of plain Python values.

    Supports None/bool/int/float/str/bytes and tuples/lists/sets/dicts
    thereof.  Unlike :func:`row_digest` this is independent of CPython's
    hash implementation and safe to persist across interpreter versions.
    """
    out: list = []
    _canonical_bytes(value, out)
    return siphash24(b"".join(out), key)


def stable_hex_digest(value, key: tuple[int, int] = DEFAULT_KEY) -> str:
    """:func:`stable_digest` rendered as a fixed-width hex string."""
    return f"{stable_digest(value, key):016x}"
