"""Per-stage wall-clock profiling for the simulator (``--profile``).

A :class:`StageProfile` accumulates how much host time each pipeline stage
of :class:`~repro.uarch.core.Core` consumed over a run.  When attached to a
core (``core.profiler = StageProfile()``), ``Core.step`` routes through an
instrumented variant that brackets each stage with ``perf_counter`` reads.

Profiling is strictly observational: the instrumented step executes the
exact same guarded stage sequence as the fast path, so simulated behaviour
(and therefore every snapshot hash) is unchanged — only host wall-clock is
recorded.  The overhead of the bracketing itself (~10 timer reads per
cycle) is why profiling is opt-in rather than always-on.

Profiles from the runs of one campaign are merged with :meth:`merge` and
surface in :class:`~repro.sampler.pipeline.LeakageReport` and the report
JSON (``report_to_dict``) under ``"profile"``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


#: Stage attribute -> human-readable label, in pipeline order (commit first,
#: matching the reverse-pipeline stage sequence the core steps through).
STAGE_LABELS: tuple[tuple[str, str], ...] = (
    ("commit_seconds", "commit"),
    ("memsys_seconds", "memory system"),
    ("writeback_seconds", "writeback"),
    ("issue_seconds", "issue"),
    ("rename_seconds", "rename/dispatch"),
    ("fetch_seconds", "fetch"),
    ("tracer_seconds", "tracer"),
)


@dataclass
class StageProfile:
    """Accumulated host seconds per simulator stage for one or more runs."""

    fetch_seconds: float = 0.0
    rename_seconds: float = 0.0
    issue_seconds: float = 0.0
    writeback_seconds: float = 0.0
    commit_seconds: float = 0.0
    memsys_seconds: float = 0.0
    tracer_seconds: float = 0.0
    cycles: int = 0
    #: Fast-forward phase: functional interpreter passes plus the
    #: checkpoint capture/restore work (``sampler/checkpoint.py``).  Not a
    #: pipeline stage — reported as a separate phase, outside the per-stage
    #: attribution above.
    fastforward_seconds: float = 0.0
    #: Instructions skipped by the functional fast-forward.
    ff_steps: int = 0
    #: Pre-ROI cycle-accurate simulation (the warm-up replay, or the whole
    #: prologue when checkpointing is off).  Overlaps the per-stage times —
    #: it is a phase of the same simulated cycles, not extra work.
    warmup_seconds: float = 0.0
    #: Lane-batched cycle-accurate phase (``--batch-lanes``): wall time the
    #: shared :class:`~repro.uarch.batch_core.BatchCore` loop spent carrying
    #: several inputs at once, and how many lockstep group runs completed.
    #: Overlaps the per-stage times, like ``warmup_seconds``.
    batchcore_seconds: float = 0.0
    batchcore_runs: int = 0
    #: Scalar re-simulation forced by cross-lane divergence: the time spent
    #: re-running diverged lane groups from scratch.  The smaller this is
    #: relative to ``batchcore_seconds``, the more of the campaign stayed
    #: lockstep.
    fallback_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (self.fetch_seconds + self.rename_seconds + self.issue_seconds
                + self.writeback_seconds + self.commit_seconds
                + self.memsys_seconds + self.tracer_seconds)

    def merge(self, other: "StageProfile") -> None:
        """Fold ``other`` into this profile (campaign-level aggregation)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def to_dict(self) -> dict:
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["total_seconds"] = self.total_seconds
        return data

    def render(self) -> str:
        """Human-readable per-stage breakdown table."""
        total = self.total_seconds
        lines = ["Per-stage simulator time"
                 f" ({self.cycles:,} cycles, {total:.3f} s attributed):"]
        for attr, label in STAGE_LABELS:
            seconds = getattr(self, attr)
            share = 100.0 * seconds / total if total > 0 else 0.0
            per_cycle = 1e6 * seconds / self.cycles if self.cycles else 0.0
            lines.append(
                f"  {label:<16s} {seconds:8.3f} s  {share:5.1f}%"
                f"  {per_cycle:7.2f} us/cycle"
            )
        if self.fastforward_seconds or self.warmup_seconds or self.ff_steps:
            lines.append(
                "Fast-forward phases (not per-stage attributed):"
            )
            lines.append(
                f"  fast-forward     {self.fastforward_seconds:8.3f} s"
                f"  ({self.ff_steps:,} insts skipped functionally)"
            )
            lines.append(
                f"  pre-ROI warm-up  {self.warmup_seconds:8.3f} s"
                "  (cycle-accurate, untraced)"
            )
        if self.batchcore_runs or self.fallback_seconds:
            lanes_note = (f"  ({self.batchcore_runs} lockstep group run(s))"
                          if self.batchcore_runs else "")
            lines.append(
                "Lane-batched core phase (overlaps per-stage times):"
            )
            lines.append(
                f"  batch-core       {self.batchcore_seconds:8.3f} s"
                + lanes_note
            )
            lines.append(
                f"  scalar fallback  {self.fallback_seconds:8.3f} s"
                "  (diverged lanes re-simulated)"
            )
        return "\n".join(lines)


def merge_profiles(profiles) -> StageProfile | None:
    """Merge an iterable of ``StageProfile | None`` into one (or ``None``).

    Runs replayed from the trace cache carry no profile (no simulation work
    happened for them); they simply contribute nothing to the aggregate.
    """
    merged: StageProfile | None = None
    for profile in profiles:
        if profile is None:
            continue
        if merged is None:
            merged = StageProfile()
        merged.merge(profile)
    return merged
