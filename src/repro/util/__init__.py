"""Shared utilities (deterministic hashing)."""

from repro.util.hashing import DEFAULT_KEY, combine_digests, row_digest, siphash24

__all__ = ["DEFAULT_KEY", "combine_digests", "row_digest", "siphash24"]
