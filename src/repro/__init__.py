"""MicroSampler reproduction: microarchitecture-level leakage detection.

Reproduction of "MicroSampler: A Framework for Microarchitecture-Level
Leakage Detection in Constant Time Execution" (DSN 2025), built on a
from-scratch cycle-accurate out-of-order RISC-V core model.

Quickstart::

    from repro import MicroSampler, MEGA_BOOM, make_me_v1_cv, render_report

    report = MicroSampler(MEGA_BOOM).analyze(make_me_v1_cv(n_keys=8))
    print(render_report(report))
"""

from repro.sampler import (
    AssociationResult,
    CampaignResult,
    ContingencyTable,
    LeakageReport,
    MicroSampler,
    RootCauseReport,
    StageTimings,
    UnitResult,
    Workload,
    adaptive_analyze,
    build_contingency_table,
    cramers_v,
    extract_root_causes,
    feature_ordering,
    feature_uniqueness,
    measure_association,
    render_bar_chart,
    render_histogram,
    render_report,
    run_campaign,
)
from repro.trace import FEATURE_ORDER, FEATURES, IterationRecord, MicroarchTracer
from repro.uarch import MEGA_BOOM, SMALL_BOOM, Core, CoreConfig
from repro.localize import (
    LocalizationReport,
    localization_to_dict,
    localize,
    render_localization,
)
from repro.workloads import (
    make_ct_memcmp,
    make_ct_memcmp_safe,
    make_early_exit_memcmp,
    make_me_v1_cv,
    make_me_v1_mv,
    make_me_v2_safe,
    make_primitive_workload,
    make_sam_ct,
    make_sam_leaky,
    primitive_names,
)

__version__ = "1.0.0"

__all__ = [
    "AssociationResult",
    "CampaignResult",
    "ContingencyTable",
    "Core",
    "CoreConfig",
    "FEATURES",
    "FEATURE_ORDER",
    "IterationRecord",
    "LeakageReport",
    "LocalizationReport",
    "MEGA_BOOM",
    "MicroSampler",
    "MicroarchTracer",
    "RootCauseReport",
    "SMALL_BOOM",
    "StageTimings",
    "UnitResult",
    "Workload",
    "adaptive_analyze",
    "build_contingency_table",
    "cramers_v",
    "extract_root_causes",
    "feature_ordering",
    "feature_uniqueness",
    "localization_to_dict",
    "localize",
    "make_ct_memcmp",
    "make_ct_memcmp_safe",
    "make_early_exit_memcmp",
    "make_me_v1_cv",
    "make_me_v1_mv",
    "make_me_v2_safe",
    "make_primitive_workload",
    "make_sam_ct",
    "make_sam_leaky",
    "measure_association",
    "primitive_names",
    "render_bar_chart",
    "render_histogram",
    "render_localization",
    "render_report",
    "run_campaign",
]
