"""S-box substitution case study: table lookup vs constant-time scan.

The motivating domain of the paper is applied cryptography; the classic
cache leak there is the table-driven S-box (T-table AES being the canonical
victim).  Two implementations of the same 64-entry S-box substitution:

``sbox-lookup``
    Direct indexed load ``sbox[x ^ k]`` — the load address is a function of
    the secret, the textbook cache side channel.
``sbox-ct``
    Constant-time scan: reads *all* 64 entries and mask-selects the right
    one (`constant_time_lookup` style) — address stream independent of the
    secret.

The iteration label is one bit of the secret index, so the lookup version
must flag the address-carrying units while the scan version verifies clean.
"""

from __future__ import annotations

import random

from repro.sampler.runner import Workload

SBOX_SIZE = 64


def sbox_table(seed: int = 99) -> list[int]:
    """A fixed pseudo-random 6-bit S-box permutation."""
    rng = random.Random(seed)
    table = list(range(SBOX_SIZE))
    rng.shuffle(table)
    return table


_TEMPLATE = """
.data
sbox:     .word {table}
inputs:   .zero {arr}
keys:     .zero {arr}
labels:   .zero {arr}
results:  .zero {arr}

.text
main:
    li   s6, 0
    la   s1, inputs
    la   s2, keys
    la   s3, labels
    la   s4, results
    la   s5, sbox
    roi.begin
driver:
    slli s7, s6, 3
    add  t0, s1, s7
    ld   a0, 0(t0)
    add  t0, s2, s7
    ld   a1, 0(t0)
    add  t0, s3, s7
    ld   s9, 0(t0)
    iter.begin s9
    call substitute
    iter.end
    add  t0, s4, s7
    sd   a0, 0(t0)
    addi s6, s6, 1
    li   t0, {n_sets}
    blt  s6, t0, driver
    roi.end
    li   a0, 0
    li   a7, 93
    ecall

{body}
"""

_LOOKUP_BODY = """
substitute:                  # a0 = state byte, a1 = key byte
    xor  t0, a0, a1
    andi t0, t0, 63          # secret index
    slli t0, t0, 2           # word-sized entries: the table spans 4 lines
    add  t0, t0, s5
    lwu  a0, 0(t0)           # secret-dependent load address
    ret
"""

_CT_BODY = """
substitute:                  # a0 = state byte, a1 = key byte
    xor  t0, a0, a1
    andi t0, t0, 63          # secret index
    li   t1, 0               # i
    li   t2, 0               # acc
    mv   t3, s5
    li   t4, 64
1:
    xor  t5, t1, t0
    sltiu t5, t5, 1
    neg  t5, t5              # mask = (i == index)
    lwu  t6, 0(t3)           # every entry is read, every time
    and  t6, t6, t5
    or   t2, t2, t6
    addi t3, t3, 4
    addi t1, t1, 1
    blt  t1, t4, 1b
    mv   a0, t2
    ret
"""


def _make(name: str, body: str, *, n_sets: int, n_runs: int,
          seed: int) -> Workload:
    table = sbox_table()
    source = _TEMPLATE.format(
        table=", ".join(str(v) for v in table),
        arr=8 * n_sets, n_sets=n_sets, body=body,
    )
    inputs = []
    for run_index in range(n_runs):
        rng = random.Random(seed + 53 * run_index)
        states, keys, labels = [], [], []
        for _ in range(n_sets):
            state = rng.randrange(SBOX_SIZE)
            key = rng.randrange(SBOX_SIZE)
            states.append(state)
            keys.append(key)
            # label: the top bit of the secret index (which table half the
            # lookup touches — the granularity a cache attacker resolves).
            labels.append(((state ^ key) >> 5) & 1)
        pack = lambda xs: b"".join(x.to_bytes(8, "little") for x in xs)
        inputs.append({"inputs": pack(states), "keys": pack(keys),
                       "labels": pack(labels)})
    workload = Workload(name=name, source=source, inputs=inputs,
                        description="6-bit S-box substitution",
                        secret_regions=["keys"])
    workload.sbox = table
    return workload


def make_sbox_lookup(n_sets: int = 16, n_runs: int = 4,
                     seed: int = 77) -> Workload:
    """Table-lookup S-box: the textbook cache side channel."""
    return _make("sbox-lookup", _LOOKUP_BODY, n_sets=n_sets, n_runs=n_runs,
                 seed=seed)


def make_sbox_ct(n_sets: int = 16, n_runs: int = 4,
                 seed: int = 77) -> Workload:
    """Constant-time scan S-box: data-oblivious replacement."""
    return _make("sbox-ct", _CT_BODY, n_sets=n_sets, n_runs=n_runs,
                 seed=seed)


def expected_sbox_results(workload: Workload) -> list[list[int]]:
    """Reference substitution outputs, one list per run."""
    table = workload.sbox
    out = []
    for patches in workload.inputs:
        states = [int.from_bytes(patches["inputs"][i:i + 8], "little")
                  for i in range(0, len(patches["inputs"]), 8)]
        keys = [int.from_bytes(patches["keys"][i:i + 8], "little")
                for i in range(0, len(patches["keys"]), 8)]
        out.append([table[(s ^ k) & 63] for s, k in zip(states, keys)])
    return out
