"""Spectre-PHT (bounds-check-bypass) litmus workload.

MicroSampler's related work (IntroSpectre [21], SpecDoctor [25]) hunts
transient-execution vulnerabilities with dedicated fuzzers; the paper argues
its statistical machinery catches transient secret flows as microarchitectural
state correlations.  This litmus implements the canonical Spectre v1 gadget:

    if (idx < len)                  // len arrives late (slow dependency)
        y = probe[array1[idx] << 6];

Each iteration mistrains the bounds check with in-bounds accesses, then
calls the gadget with an out-of-bounds ``idx`` whose target is a planted
secret byte.  Architecturally nothing secret-dependent ever executes (the
bounds check fails and the access is skipped), so software-level tools see
identical traces for every secret; transiently, the wrong path loads
``probe[secret << 6]`` — and the D-cache request stream, MSHRs and
prefetcher state correlate perfectly with the secret bit.

The bounds length is routed through two divisions so its value resolves
~25 cycles late, giving the transient window room — the same role the
attacker's "flush the length variable" plays in real exploits.
"""

from __future__ import annotations

import random

from repro.sampler.runner import Workload

_SOURCE = """
.data
array1:    .byte 0, 1, 2, 3, 4, 5, 6, 7   # in-bounds training values
secret:    .byte 0                        # planted at array1 + 8
pad:       .zero 7
len_var:   .dword 8
labels:    .zero {labels_bytes}
sink:      .dword 0
.align 12
probe:     .zero 8192                     # 2 pages of probe lines

.text
main:
    li   s6, 0                 # iteration index
    la   s1, labels
    roi.begin
driver:
    slli t0, s6, 3
    add  t0, t0, s1
    ld   s9, 0(t0)             # secret bit planted this iteration
    iter.begin s9
    la   t0, secret
    addi t1, s9, 8             # planted byte is 8 or 9: the transient
    sb   t1, 0(t0)             # probe lines sit beyond the training range
    # Mistrain: five in-bounds calls so the bounds check predicts taken.
    li   s7, 5
train:
    andi a0, s7, 7
    call gadget
    addi s7, s7, -1
    bgtz s7, train
    # Scramble global branch history with the (public) iteration index,
    # modeling the varied caller paths of a real victim: it steers the
    # attack's bounds check to an untrained predictor entry, so the
    # transient window reopens every episode instead of the predictor
    # learning the attack context after the first one.
    li   t5, 2654435761
    mul  t5, t5, s6
    xori t5, t5, 1365
    li   t6, 11
hist:
    andi t4, t5, 1
    srli t5, t5, 1
    beqz t4, 8f
    addi t4, t4, 0
8:
    addi t6, t6, -1
    bgtz t6, hist
    # Attack: out-of-bounds index 8 points at the planted secret byte.
    li   a0, 8
    call gadget
    iter.end
    la   t0, sink
    sd   a0, 0(t0)
    addi s6, s6, 1
    li   t0, {n_iters}
    blt  s6, t0, driver
    roi.end
    li   a0, 0
    li   a7, 93
    ecall

gadget:                        # a0 = idx; returns probe value or 0
    la   t0, len_var
    ld   t1, 0(t0)
    # Delay the bound: len = (len * 1) / 1 twice through the divider, so
    # the branch below resolves late and the wrong path runs transiently.
    li   t2, 1
    divu t1, t1, t2
    divu t1, t1, t2
    bgeu a0, t1, 9f            # bounds check (predicted not-taken after training)
    la   t3, array1
    add  t3, t3, a0
    lbu  t4, 0(t3)             # array1[idx] -- the secret, transiently
    slli t4, t4, 6             # one probe cache line per value
    la   t5, probe
    add  t5, t5, t4
    ld   a0, 0(t5)             # transmits through the cache state
    ret
9:
    li   a0, 0
    ret
"""


def make_spectre_v1(n_iters: int = 16, n_runs: int = 4,
                    seed: int = 23) -> Workload:
    """Build the Spectre v1 litmus.

    Each iteration's planted secret byte is 0 or 1, so the transient probe
    access touches ``probe[0]`` or ``probe[64]`` — one cache line apart.
    """
    inputs = []
    for run_index in range(n_runs):
        rng = random.Random(seed + 31 * run_index)
        bits = [rng.randrange(2) for _ in range(n_iters)]
        # The label array doubles as the planted secret: the driver writes
        # labels[i] into the byte at array1 + 8 before each attack call.
        inputs.append({
            "labels": b"".join(b.to_bytes(8, "little") for b in bits),
        })
    workload = Workload(
        name="spectre-v1",
        source=_SOURCE.format(labels_bytes=8 * n_iters, n_iters=n_iters),
        inputs=inputs,
        description="Spectre-PHT bounds-check-bypass litmus",
        # The label array doubles as the planted secret byte (see above).
        secret_regions=["labels"],
    )
    return workload
