"""ChaCha20 block function: a real constant-time cipher under verification.

ChaCha20 (RFC 7539) is the poster child of constant-time design: pure
add-rotate-xor on a 16-word state, no tables, no secret-dependent branches.
The assembly here is generated quarter-round by quarter-round (RV64 has no
rotate instruction, so each rotate is the canonical 3-op shift/shift/or
sequence) and validated against the RFC 7539 §2.3.2 test vector.

The verification campaign runs the block function over random 256-bit keys,
one iteration per block, labeled with a key bit — MicroSampler should find
no unit whose state correlates with the key beyond its (uniform) data
values.
"""

from __future__ import annotations

import random
import struct

from repro.sampler.runner import Workload

_ROUNDS = 20  # ten double-rounds

#: Quarter-round word indices for one double round (column + diagonal).
_QUARTER_ROUNDS = [
    (0, 4, 8, 12), (1, 5, 9, 13), (2, 6, 10, 14), (3, 7, 11, 15),
    (0, 5, 10, 15), (1, 6, 11, 12), (2, 7, 8, 13), (3, 4, 9, 14),
]

_SIGMA = b"expand 32-byte k"


# -- Python reference (RFC 7539) -----------------------------------------------

def _rotl32(value: int, amount: int) -> int:
    value &= 0xFFFFFFFF
    return ((value << amount) | (value >> (32 - amount))) & 0xFFFFFFFF


def _quarter_round(state, a, b, c, d):
    state[a] = (state[a] + state[b]) & 0xFFFFFFFF
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & 0xFFFFFFFF
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & 0xFFFFFFFF
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & 0xFFFFFFFF
    state[b] = _rotl32(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """RFC 7539 ChaCha20 block function (the golden model)."""
    if len(key) != 32 or len(nonce) != 12:
        raise ValueError("key must be 32 bytes and nonce 12 bytes")
    state = list(struct.unpack("<4I", _SIGMA))
    state += list(struct.unpack("<8I", key))
    state.append(counter & 0xFFFFFFFF)
    state += list(struct.unpack("<3I", nonce))
    working = list(state)
    for _ in range(_ROUNDS // 2):
        for a, b, c, d in _QUARTER_ROUNDS:
            _quarter_round(working, a, b, c, d)
    out = [(w + s) & 0xFFFFFFFF for w, s in zip(working, state)]
    return struct.pack("<16I", *out)


# -- assembly generation --------------------------------------------------------

def _emit_rotl(lines, reg, amount, tmp="t4", tmp2="t5"):
    lines.append(f"    slliw {tmp}, {reg}, {amount}")
    lines.append(f"    srliw {tmp2}, {reg}, {32 - amount}")
    lines.append(f"    or   {reg}, {tmp}, {tmp2}")


def _emit_quarter_round(lines, a, b, c, d):
    """One quarter round over the working-state buffer (s1 = &ws)."""
    ra, rb, rc, rd = "t0", "t1", "t2", "t3"
    for reg, idx in ((ra, a), (rb, b), (rc, c), (rd, d)):
        lines.append(f"    lw   {reg}, {4 * idx}(s1)")
    lines.append(f"    addw {ra}, {ra}, {rb}")
    lines.append(f"    xor  {rd}, {rd}, {ra}")
    _emit_rotl(lines, rd, 16)
    lines.append(f"    addw {rc}, {rc}, {rd}")
    lines.append(f"    xor  {rb}, {rb}, {rc}")
    _emit_rotl(lines, rb, 12)
    lines.append(f"    addw {ra}, {ra}, {rb}")
    lines.append(f"    xor  {rd}, {rd}, {ra}")
    _emit_rotl(lines, rd, 8)
    lines.append(f"    addw {rc}, {rc}, {rd}")
    lines.append(f"    xor  {rb}, {rb}, {rc}")
    _emit_rotl(lines, rb, 7)
    for reg, idx in ((ra, a), (rb, b), (rc, c), (rd, d)):
        lines.append(f"    sw   {reg}, {4 * idx}(s1)")


def generate_chacha_source(n_blocks: int = 1) -> str:
    """Generate the full ChaCha20 block-function program.

    The state buffer is patched per run (sigma + key + counter + nonce);
    each of the ``n_blocks`` iterations processes one block with an
    incremented counter and stores the keystream to ``out``.
    """
    lines = [
        ".data",
        "state:  .zero 64",
        "ws:     .zero 64",
        f"out:    .zero {64 * n_blocks}",
        "label_val: .dword 0",
        "",
        ".text",
        "main:",
        "    la   s0, state",
        "    la   s1, ws",
        "    la   s2, out",
        "    la   t0, label_val",
        "    ld   s9, 0(t0)",
        "    li   s6, 0               # block index",
        "    roi.begin",
        "block_loop:",
        "    # working state <- input state",
        "    li   t5, 16",
        "    mv   t1, s0",
        "    mv   t2, s1",
        "copy:",
        "    lw   t3, 0(t1)",
        "    sw   t3, 0(t2)",
        "    addi t1, t1, 4",
        "    addi t2, t2, 4",
        "    addi t5, t5, -1",
        "    bgtz t5, copy",
        "    iter.begin s9",
    ]
    for round_index in range(_ROUNDS // 2):
        lines.append(f"    # double round {round_index}")
        for a, b, c, d in _QUARTER_ROUNDS:
            _emit_quarter_round(lines, a, b, c, d)
    lines += [
        "    iter.end",
        "    # out[block] = working + input; then counter += 1",
        "    li   t5, 16",
        "    mv   t1, s0",
        "    mv   t2, s1",
        "    slli t3, s6, 6",
        "    add  t3, t3, s2",
        "addback:",
        "    lw   t4, 0(t1)",
        "    lw   t6, 0(t2)",
        "    addw t4, t4, t6",
        "    sw   t4, 0(t3)",
        "    addi t1, t1, 4",
        "    addi t2, t2, 4",
        "    addi t3, t3, 4",
        "    addi t5, t5, -1",
        "    bgtz t5, addback",
        "    lw   t0, 48(s0)          # counter word",
        "    addiw t0, t0, 1",
        "    sw   t0, 48(s0)",
        "    addi s6, s6, 1",
        f"    li   t0, {n_blocks}",
        "    blt  s6, t0, block_loop",
        "    roi.end",
        "    li   a0, 0",
        "    li   a7, 93",
        "    ecall",
    ]
    return "\n".join(lines)


def _pack_state(key: bytes, counter: int, nonce: bytes) -> bytes:
    return (_SIGMA + key + struct.pack("<I", counter & 0xFFFFFFFF) + nonce)


def make_chacha20(n_keys: int = 8, n_blocks: int = 2,
                  seed: int = 6) -> Workload:
    """ChaCha20 verification campaign over random keys.

    The iteration label is key bit 0 (any fixed secret predicate works for
    a cipher whose execution must be wholly key-independent).
    """
    rng = random.Random(seed)
    inputs = []
    for _ in range(n_keys):
        key = bytes(rng.randrange(256) for _ in range(32))
        nonce = bytes(rng.randrange(256) for _ in range(12))
        label = key[0] & 1
        inputs.append({
            "state": _pack_state(key, 0, nonce),
            "label_val": label.to_bytes(8, "little"),
            "__key__": key,
            "__nonce__": nonce,
        })
    workload = Workload(
        name="chacha20",
        source=generate_chacha_source(n_blocks),
        inputs=[{k: v for k, v in patch.items() if not k.startswith("__")}
                for patch in inputs],
        description="RFC 7539 ChaCha20 block function (ARX, constant-time)",
        # The key words: state[4..11], i.e. bytes 16..47 of the packed state.
        secret_regions=[("state", 16, 32)],
    )
    workload.key_nonces = [(p["__key__"], p["__nonce__"]) for p in inputs]
    workload.n_blocks = n_blocks
    return workload


def expected_keystreams(workload: Workload) -> list[bytes]:
    """Reference keystream (all blocks concatenated) per run."""
    out = []
    for key, nonce in workload.key_nonces:
        blocks = b"".join(
            chacha20_block(key, counter, nonce)
            for counter in range(workload.n_blocks)
        )
        out.append(blocks)
    return out
