"""Bootstrap-heavy workload variants for the fast-forward benchmarks.

The bundled workloads deliberately keep their pre-ROI prologue tiny (a
dozen instructions of register setup), which is the *opposite* of the
deployment scenario that motivates fast-forward checkpointing: a real
library self-test reaches its constant-time kernel only after relocation,
allocator warm-up, key-schedule expansion and self-check loops — millions
of instructions whose cycle-accurate simulation contributes nothing to the
verdict because the tracer only samples inside the ROI.

:func:`with_bootstrap` models that shape without touching the workload's
measured region: it splices a store/load scrub loop over a private scratch
buffer directly after the entry label, before any original instruction.
The loop uses only ``t``-registers (dead at entry, and re-initialised by
every bundled workload before use) and its own ``.data`` symbol, so every
register and memory location the workload observes at ``roi.begin`` is
identical to the unmodified workload's.  Only the *time to get there*
changes, which is exactly the cost fast-forward checkpointing is meant to
delete.
"""

from __future__ import annotations

import dataclasses
import re

from repro.sampler.runner import Workload

#: Bytes of private scratch the scrub loop walks (64 doublewords).
SCRATCH_BYTES = 512

#: Instructions per scrub-loop trip: andi/slli/add/sd/ld/addi/bgtz.
_INSTS_PER_TRIP = 7

#: Setup instructions ahead of the loop (la + li).
_SETUP_INSTS = 2

_BOOTSTRAP_TEMPLATE = """\
    la   t0, __bootstrap_scratch
    li   t1, {trips}
__bootstrap_loop:
    andi t2, t1, 63
    slli t2, t2, 3
    add  t3, t0, t2
    sd   t1, 0(t3)
    ld   t4, 0(t3)
    addi t1, t1, -1
    bgtz t1, __bootstrap_loop
"""

_SCRATCH_SECTION = f"""
.data
__bootstrap_scratch: .zero {SCRATCH_BYTES}
"""


def bootstrap_insts(trips: int) -> int:
    """Dynamic instruction count of a ``trips``-trip bootstrap loop."""
    return _SETUP_INSTS + _INSTS_PER_TRIP * trips


def inject_bootstrap(source: str, *, insts: int, entry: str = "main") -> str:
    """Splice a ``>= insts``-instruction scrub loop after ``entry:``.

    Raises :class:`ValueError` when the entry label is missing or the
    source already carries a bootstrap loop (double injection would clash
    on the loop label and skew instruction accounting).
    """
    if "__bootstrap_loop" in source:
        raise ValueError("source already contains a bootstrap loop")
    if insts < _SETUP_INSTS + _INSTS_PER_TRIP:
        raise ValueError(f"insts must be at least "
                         f"{_SETUP_INSTS + _INSTS_PER_TRIP}, got {insts}")
    trips = -(-(insts - _SETUP_INSTS) // _INSTS_PER_TRIP)
    pattern = re.compile(rf"^([ \t]*){re.escape(entry)}:[ \t]*$",
                         flags=re.MULTILINE)
    match = pattern.search(source)
    if match is None:
        raise ValueError(f"entry label {entry!r} not found in source")
    insertion = match.end()
    loop = _BOOTSTRAP_TEMPLATE.format(trips=trips)
    return (source[:insertion] + "\n" + loop.rstrip("\n")
            + source[insertion:] + _SCRATCH_SECTION)


def with_bootstrap(workload: Workload, *, insts: int = 20_000) -> Workload:
    """A copy of ``workload`` that executes ``>= insts`` extra pre-ROI
    instructions; everything from ``roi.begin`` on is unchanged."""
    return dataclasses.replace(
        workload,
        name=f"{workload.name}+boot",
        source=inject_bootstrap(workload.source, insts=insts,
                                entry=workload.entry),
        description=(f"{workload.description} "
                     f"[+{insts} bootstrap insts]").strip(),
    )
