"""The 28 OpenSSL constant-time primitives of Table V.

Each primitive is a small branchless RISC-V routine mirroring OpenSSL's
``constant_time_*`` helpers.  A driver loop feeds it a sequence of operand
sets through fixed-address buffers; the iteration label is the secret
predicate of the operands (equality, mask bit, comparison outcome...).
Per the paper, none of these should exhibit statistically significant
correlation — only ``CRYPTO_memcmp`` (the separate :mod:`.memcmp` workload)
leaks, through its speculative consumer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.sampler.runner import Workload

_M64 = 0xFFFFFFFFFFFFFFFF


def _mask(bit: int) -> int:
    return _M64 if bit else 0


@dataclass(frozen=True)
class PrimitiveSpec:
    """One constant-time primitive under test."""

    name: str
    #: assembly for the routine; must define the label ``prim:`` and return
    #: its result in a0.  Scalar operands arrive in a0, a1, a2; big-number
    #: operands arrive as fixed buffer pointers in a0, a1 with mask in a2.
    asm: str
    #: "scalar" (three 64-bit operands) or "bn" (two 32-byte operands + mask).
    kind: str
    #: reference(a, b, c) -> expected result (int), operands as ints/bytes.
    reference: Callable
    #: label(a, b, c) -> secret class in {0, 1}.
    label: Callable
    #: generate(rng) -> (a, b, c) with both classes roughly balanced.
    generate: Callable


def _gen_eq(width_bytes):
    def gen(rng):
        a = rng.getrandbits(8 * width_bytes)
        b = a if rng.random() < 0.5 else rng.getrandbits(8 * width_bytes)
        return a, b, 0
    return gen


def _gen_pair(width_bits=64):
    def gen(rng):
        return rng.getrandbits(width_bits), rng.getrandbits(width_bits), 0
    return gen


def _gen_masked(width_bits=64):
    def gen(rng):
        return (rng.getrandbits(width_bits), rng.getrandbits(width_bits),
                _mask(rng.randrange(2)))
    return gen


def _gen_zero(width_bytes):
    def gen(rng):
        value = 0 if rng.random() < 0.5 else (rng.getrandbits(8 * width_bytes)
                                              or 1)
        return value, 0, 0
    return gen


def _gen_bn(rng):
    a = bytes(rng.randrange(256) for _ in range(32))
    b = a if rng.random() < 0.5 else bytes(rng.randrange(256)
                                           for _ in range(32))
    return a, b, 0


def _gen_bn_masked(rng):
    a = bytes(rng.randrange(256) for _ in range(32))
    b = bytes(rng.randrange(256) for _ in range(32))
    return a, b, _mask(rng.randrange(2))


def _signed(value, bits=64):
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


# -- assembly bodies ----------------------------------------------------------

_EQ_64 = """
prim:
    xor  t0, a0, a1
    sltiu t0, t0, 1
    neg  a0, t0
    ret
"""

_EQ_8 = """
prim:
    andi a0, a0, 0xff
    andi a1, a1, 0xff
    xor  t0, a0, a1
    sltiu t0, t0, 1
    neg  t0, t0
    andi a0, t0, 0xff
    ret
"""

_EQ_INT = """
prim:
    sext.w a0, a0
    sext.w a1, a1
    xor  t0, a0, a1
    sltiu t0, t0, 1
    negw a0, t0
    ret
"""

_EQ_INT_8 = """
prim:
    sext.w a0, a0
    sext.w a1, a1
    xor  t0, a0, a1
    sltiu t0, t0, 1
    neg  t0, t0
    andi a0, t0, 0xff
    ret
"""

_EQ_BN = """
prim:                        # a0=&x[4], a1=&y[4]
    li   t0, 0
    li   t3, 4
1:
    ld   t1, 0(a0)
    ld   t2, 0(a1)
    xor  t1, t1, t2
    or   t0, t0, t1
    addi a0, a0, 8
    addi a1, a1, 8
    addi t3, t3, -1
    bgtz t3, 1b
    sltiu t0, t0, 1
    neg  a0, t0
    ret
"""

_SELECT_64 = """
prim:                        # a0=mask, a1=a, a2=b -> (mask&a)|(~mask&b)
    and  t0, a1, a0
    not  t1, a0
    and  t1, a2, t1
    or   a0, t0, t1
    ret
"""

_SELECT_8 = """
prim:
    and  t0, a1, a0
    not  t1, a0
    and  t1, a2, t1
    or   a0, t0, t1
    andi a0, a0, 0xff
    ret
"""

_SELECT_32 = """
prim:
    and  t0, a1, a0
    not  t1, a0
    and  t1, a2, t1
    or   a0, t0, t1
    sext.w a0, a0
    ret
"""

_GE_U = """
prim:                        # mask = (a >= b), unsigned
    sltu t0, a0, a1
    addi a0, t0, -1
    ret
"""

_GE_S = """
prim:
    slt  t0, a0, a1
    addi a0, t0, -1
    ret
"""

_GE_8_S = """
prim:                        # signed byte compare
    slli a0, a0, 56
    srai a0, a0, 56
    slli a1, a1, 56
    srai a1, a1, 56
    slt  t0, a0, a1
    addi t0, t0, -1
    andi a0, t0, 0xff
    ret
"""

_LT_U = """
prim:
    sltu t0, a0, a1
    neg  a0, t0
    ret
"""

_LT_S = """
prim:
    slt  t0, a0, a1
    neg  a0, t0
    ret
"""

_LT_32 = """
prim:                        # 32-bit unsigned less-than
    slli a0, a0, 32
    srli a0, a0, 32
    slli a1, a1, 32
    srli a1, a1, 32
    sltu t0, a0, a1
    negw a0, t0
    ret
"""

_LT_BN = """
prim:                        # lexicographic little-endian limb compare
    li   t0, 0               # lt so far
    li   t4, 4
1:
    ld   t1, 0(a0)
    ld   t2, 0(a1)
    sltu t3, t1, t2          # this limb <
    xor  t5, t1, t2
    sltiu t5, t5, 1          # this limb ==
    neg  t5, t5
    and  t0, t0, t5          # keep lower-limb verdict only if equal here
    or   t0, t0, t3
    addi a0, a0, 8
    addi a1, a1, 8
    addi t4, t4, -1
    bgtz t4, 1b
    neg  a0, t0
    ret
"""

_COND_SWAP = """
prim:                        # a0=mask, a1=a, a2=b -> returns a' ^ rotl(b',1)
    xor  t0, a1, a2
    and  t0, t0, a0
    xor  a1, a1, t0          # a'
    xor  a2, a2, t0          # b'
    slli t1, a2, 1
    srli t2, a2, 63
    or   t1, t1, t2
    xor  a0, a1, t1
    ret
"""

_COND_SWAP_32 = """
prim:
    xor  t0, a1, a2
    and  t0, t0, a0
    xor  a1, a1, t0
    xor  a2, a2, t0
    sext.w a1, a1
    sext.w a2, a2
    slliw t1, a2, 1
    xor  a0, a1, t1
    sext.w a0, a0
    ret
"""

_COND_SWAP_BUFF = """
prim:                        # a0=&x[4], a1=&y[4], a2=mask; returns xor-digest
    li   t4, 4
    li   t5, 0
1:
    ld   t1, 0(a0)
    ld   t2, 0(a1)
    xor  t0, t1, t2
    and  t0, t0, a2
    xor  t1, t1, t0
    xor  t2, t2, t0
    sd   t1, 0(a0)
    sd   t2, 0(a1)
    xor  t5, t5, t1
    slli t3, t2, 1
    srli t6, t2, 63
    or   t3, t3, t6
    xor  t5, t5, t3
    addi a0, a0, 8
    addi a1, a1, 8
    addi t4, t4, -1
    bgtz t4, 1b
    mv   a0, t5
    ret
"""

_LOOKUP = """
prim:                        # a0=secret index (0..7) -> table[index]
    la   t0, lut_table
    li   t1, 0               # i
    li   t2, 0               # acc
    li   t5, 8
1:
    xor  t3, t1, a0
    sltiu t3, t3, 1
    neg  t3, t3              # mask = (i == index)
    ld   t4, 0(t0)
    and  t4, t4, t3
    or   t2, t2, t4
    addi t0, t0, 8
    addi t1, t1, 1
    blt  t1, t5, 1b
    mv   a0, t2
    ret
"""

_IS_ZERO = """
prim:
    sltiu t0, a0, 1
    neg  a0, t0
    ret
"""

_IS_ZERO_S = """
prim:
    sltiu t0, a0, 1
    neg  t0, t0
    mv   a0, t0
    ret
"""

_IS_ZERO_8 = """
prim:
    andi a0, a0, 0xff
    sltiu t0, a0, 1
    neg  t0, t0
    andi a0, t0, 0xff
    ret
"""

_IS_ZERO_32 = """
prim:
    slli a0, a0, 32
    srli a0, a0, 32
    sltiu t0, a0, 1
    negw a0, t0
    ret
"""

_IS_ZERO_64 = """
prim:
    sltiu t0, a0, 1
    sub  a0, zero, t0
    ret
"""

#: Fixed public lookup table contents.
_LUT_VALUES = [0x1111 * (i + 1) for i in range(8)]


def _ref_cond_swap(width):
    def ref(a, b, c):
        # operand order matches the asm: a=mask, b=first value, c=second.
        m, a, b = a, b, c
        t = (a ^ b) & m
        a2, b2 = (a ^ t) & _M64, (b ^ t) & _M64
        if width == 32:
            a2 &= 0xFFFFFFFF
            b2 &= 0xFFFFFFFF
            rot = (b2 << 1) & 0xFFFFFFFF
            return _sext32(a2 ^ rot)
        rot = ((b2 << 1) | (b2 >> 63)) & _M64
        return a2 ^ rot
    return ref


def _sext32(v):
    return ((v & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000 & _M64


def _ref_swap_buff(a, b, c):
    xs = [int.from_bytes(a[i:i + 8], "little") for i in range(0, 32, 8)]
    ys = [int.from_bytes(b[i:i + 8], "little") for i in range(0, 32, 8)]
    acc = 0
    for x, y in zip(xs, ys):
        t = (x ^ y) & c
        x2, y2 = x ^ t, y ^ t
        acc ^= x2
        acc ^= ((y2 << 1) | (y2 >> 63)) & _M64
    return acc & _M64


def _ref_lt_bn(a, b, c):
    lt = 0
    for i in range(0, 32, 8):
        x = int.from_bytes(a[i:i + 8], "little")
        y = int.from_bytes(b[i:i + 8], "little")
        if x != y:
            lt = int(x < y)
    return _mask(lt)


def _gen_select(rng):
    return (_mask(rng.randrange(2)), rng.getrandbits(64),
            rng.getrandbits(64))


def _gen_swap(rng):
    return (_mask(rng.randrange(2)), rng.getrandbits(64),
            rng.getrandbits(64))


def _gen_lookup(rng):
    return rng.randrange(8), 0, 0


PRIMITIVES: dict[str, PrimitiveSpec] = {
    spec.name: spec
    for spec in [
        PrimitiveSpec("constant_time_eq", _EQ_64, "scalar",
                      lambda a, b, c: _mask(a == b),
                      lambda a, b, c: int(a == b), _gen_eq(8)),
        PrimitiveSpec("constant_time_eq_8", _EQ_8, "scalar",
                      lambda a, b, c: 0xFF if (a & 0xFF) == (b & 0xFF) else 0,
                      lambda a, b, c: int((a & 0xFF) == (b & 0xFF)),
                      _gen_eq(1)),
        PrimitiveSpec("constant_time_eq_int", _EQ_INT, "scalar",
                      lambda a, b, c: _mask(_signed(a, 32) == _signed(b, 32))
                      if (a & 0xFFFFFFFF) == (b & 0xFFFFFFFF) else 0,
                      lambda a, b, c: int((a & 0xFFFFFFFF) == (b & 0xFFFFFFFF)),
                      _gen_eq(4)),
        PrimitiveSpec("constant_time_eq_int_8", _EQ_INT_8, "scalar",
                      lambda a, b, c: 0xFF
                      if (a & 0xFFFFFFFF) == (b & 0xFFFFFFFF) else 0,
                      lambda a, b, c: int((a & 0xFFFFFFFF) == (b & 0xFFFFFFFF)),
                      _gen_eq(4)),
        PrimitiveSpec("constant_time_eq_bn", _EQ_BN, "bn",
                      lambda a, b, c: _mask(a == b),
                      lambda a, b, c: int(a == b), _gen_bn),
        PrimitiveSpec("constant_time_select", _SELECT_64, "scalar",
                      lambda a, b, c: ((a & b) | (~a & c)) & _M64,
                      lambda a, b, c: a & 1, _gen_select),
        PrimitiveSpec("constant_time_select_8", _SELECT_8, "scalar",
                      lambda a, b, c: (((a & b) | (~a & c)) & 0xFF),
                      lambda a, b, c: a & 1, _gen_select),
        PrimitiveSpec("constant_time_select_32", _SELECT_32, "scalar",
                      lambda a, b, c: _sext32((a & b) | (~a & c)),
                      lambda a, b, c: a & 1, _gen_select),
        PrimitiveSpec("constant_time_select_64", _SELECT_64, "scalar",
                      lambda a, b, c: ((a & b) | (~a & c)) & _M64,
                      lambda a, b, c: a & 1, _gen_select),
        PrimitiveSpec("constant_time_ge", _GE_U, "scalar",
                      lambda a, b, c: _mask(a >= b),
                      lambda a, b, c: int(a >= b), _gen_pair()),
        PrimitiveSpec("constant_time_ge_s", _GE_S, "scalar",
                      lambda a, b, c: _mask(_signed(a) >= _signed(b)),
                      lambda a, b, c: int(_signed(a) >= _signed(b)),
                      _gen_pair()),
        PrimitiveSpec("constant_time_ge_8_s", _GE_8_S, "scalar",
                      lambda a, b, c: 0xFF
                      if _signed(a, 8) >= _signed(b, 8) else 0,
                      lambda a, b, c: int(_signed(a & 0xFF, 8)
                                          >= _signed(b & 0xFF, 8)),
                      _gen_pair(8)),
        PrimitiveSpec("constant_time_lt", _LT_U, "scalar",
                      lambda a, b, c: _mask(a < b),
                      lambda a, b, c: int(a < b), _gen_pair()),
        PrimitiveSpec("constant_time_lt_s", _LT_S, "scalar",
                      lambda a, b, c: _mask(_signed(a) < _signed(b)),
                      lambda a, b, c: int(_signed(a) < _signed(b)),
                      _gen_pair()),
        PrimitiveSpec("constant_time_lt_32", _LT_32, "scalar",
                      lambda a, b, c: _sext32(0xFFFFFFFF)
                      if (a & 0xFFFFFFFF) < (b & 0xFFFFFFFF) else 0,
                      lambda a, b, c: int((a & 0xFFFFFFFF) < (b & 0xFFFFFFFF)),
                      _gen_pair(32)),
        PrimitiveSpec("constant_time_lt_64", _LT_U, "scalar",
                      lambda a, b, c: _mask(a < b),
                      lambda a, b, c: int(a < b), _gen_pair()),
        PrimitiveSpec("constant_time_lt_bn", _LT_BN, "bn",
                      _ref_lt_bn,
                      lambda a, b, c: int(_ref_lt_bn(a, b, c) != 0),
                      _gen_bn_masked),
        PrimitiveSpec("constant_time_cond_swap", _COND_SWAP, "scalar",
                      _ref_cond_swap(64),
                      lambda a, b, c: a & 1, _gen_swap),
        PrimitiveSpec("constant_time_cond_swap_32", _COND_SWAP_32, "scalar",
                      _ref_cond_swap(32),
                      lambda a, b, c: a & 1, _gen_swap),
        PrimitiveSpec("constant_time_cond_swap_64", _COND_SWAP, "scalar",
                      _ref_cond_swap(64),
                      lambda a, b, c: a & 1, _gen_swap),
        PrimitiveSpec("constant_time_cond_swap_buff", _COND_SWAP_BUFF, "bn",
                      _ref_swap_buff,
                      lambda a, b, c: c & 1, _gen_bn_masked),
        PrimitiveSpec("constant_time_lookup", _LOOKUP, "scalar",
                      lambda a, b, c: _LUT_VALUES[a & 7],
                      lambda a, b, c: a & 1, _gen_lookup),
        PrimitiveSpec("constant_time_is_zero", _IS_ZERO, "scalar",
                      lambda a, b, c: _mask(a == 0),
                      lambda a, b, c: int(a == 0), _gen_zero(8)),
        PrimitiveSpec("constant_time_is_zero_s", _IS_ZERO_S, "scalar",
                      lambda a, b, c: _mask(a == 0),
                      lambda a, b, c: int(a == 0), _gen_zero(8)),
        PrimitiveSpec("constant_time_is_zero_8", _IS_ZERO_8, "scalar",
                      lambda a, b, c: 0xFF if (a & 0xFF) == 0 else 0,
                      lambda a, b, c: int((a & 0xFF) == 0), _gen_zero(1)),
        PrimitiveSpec("constant_time_is_zero_32", _IS_ZERO_32, "scalar",
                      lambda a, b, c: _sext32(0xFFFFFFFF)
                      if (a & 0xFFFFFFFF) == 0 else 0,
                      lambda a, b, c: int((a & 0xFFFFFFFF) == 0), _gen_zero(4)),
        PrimitiveSpec("constant_time_is_zero_64", _IS_ZERO_64, "scalar",
                      lambda a, b, c: _mask(a == 0),
                      lambda a, b, c: int(a == 0), _gen_zero(8)),
    ]
}

#: Table V counts CRYPTO_memcmp as the 28th primitive (see workloads.memcmp).
N_PRIMITIVES_TOTAL = len(PRIMITIVES) + 1


_SCALAR_TEMPLATE = """
.data
ops_a:      .zero {arr_bytes}
ops_b:      .zero {arr_bytes}
ops_c:      .zero {arr_bytes}
labels:     .zero {arr_bytes}
results:    .zero {arr_bytes}
lut_table:  .dword {lut}

.text
main:
    li   s6, 0
    la   s1, ops_a
    la   s2, ops_b
    la   s3, ops_c
    la   s4, labels
    la   s5, results
    roi.begin
driver:
    slli s7, s6, 3
    add  t0, s1, s7
    ld   a0, 0(t0)
    add  t0, s2, s7
    ld   a1, 0(t0)
    add  t0, s3, s7
    ld   a2, 0(t0)
    add  t0, s4, s7
    ld   s9, 0(t0)
    iter.begin s9
    call prim
    iter.end
    add  t0, s5, s7
    sd   a0, 0(t0)
    addi s6, s6, 1
    li   t0, {n_sets}
    blt  s6, t0, driver
    roi.end
    li   a0, 0
    li   a7, 93
    ecall
{prim_asm}
"""

_BN_TEMPLATE = """
.data
ops_a:      .zero {bn_arr_bytes}
ops_b:      .zero {bn_arr_bytes}
ops_c:      .zero {arr_bytes}
labels:     .zero {arr_bytes}
results:    .zero {arr_bytes}
bn_x:       .zero 32
bn_y:       .zero 32

.text
main:
    li   s6, 0
    la   s1, ops_a
    la   s2, ops_b
    la   s3, ops_c
    la   s4, labels
    la   s5, results
    roi.begin
driver:
    # copy 32-byte operands into the fixed buffers (outside the window)
    li   t0, 32
    mul  t0, t0, s6
    add  t1, s1, t0
    add  t2, s2, t0
    la   t3, bn_x
    la   t4, bn_y
    li   t5, 4
7:
    ld   t6, 0(t1)
    sd   t6, 0(t3)
    ld   t6, 0(t2)
    sd   t6, 0(t4)
    addi t1, t1, 8
    addi t2, t2, 8
    addi t3, t3, 8
    addi t4, t4, 8
    addi t5, t5, -1
    bgtz t5, 7b
    slli s7, s6, 3
    add  t0, s3, s7
    ld   a2, 0(t0)
    add  t0, s4, s7
    ld   s9, 0(t0)
    la   a0, bn_x
    la   a1, bn_y
    iter.begin s9
    call prim
    iter.end
    add  t0, s5, s7
    sd   a0, 0(t0)
    addi s6, s6, 1
    li   t0, {n_sets}
    blt  s6, t0, driver
    roi.end
    li   a0, 0
    li   a7, 93
    ecall
{prim_asm}
"""


def make_primitive_workload(name: str, *, n_sets: int = 16, n_runs: int = 4,
                            seed: int = 11) -> Workload:
    """Build the verification workload for one Table V primitive."""
    spec = PRIMITIVES[name]
    lut = ", ".join(str(v) for v in _LUT_VALUES)
    if spec.kind == "scalar":
        source = _SCALAR_TEMPLATE.format(
            arr_bytes=8 * n_sets, n_sets=n_sets, lut=lut,
            prim_asm=spec.asm,
        )
    else:
        source = _BN_TEMPLATE.format(
            bn_arr_bytes=32 * n_sets, arr_bytes=8 * n_sets,
            n_sets=n_sets, prim_asm=spec.asm,
        )
    inputs = []
    for run_index in range(n_runs):
        rng = random.Random(seed + 977 * run_index)
        operand_sets = [spec.generate(rng) for _ in range(n_sets)]
        patches = _pack_inputs(spec, operand_sets)
        patches["__operand_sets__"] = operand_sets  # kept for testing
        inputs.append(patches)
    workload = Workload(
        name=name,
        source=source,
        entry="main",
        inputs=[{k: v for k, v in p.items() if not k.startswith("__")}
                for p in inputs],
        description=f"OpenSSL {name} (Table V)",
        # Operands are the secrets; ``labels`` is the public class oracle.
        secret_regions=["ops_a", "ops_b", "ops_c"],
    )
    workload.operand_sets = [p["__operand_sets__"] for p in inputs]
    return workload


def _pack_inputs(spec: PrimitiveSpec, operand_sets) -> dict:
    labels = b"".join(
        spec.label(a, b, c).to_bytes(8, "little") for a, b, c in operand_sets
    )
    if spec.kind == "scalar":
        pack = lambda vals: b"".join((v & _M64).to_bytes(8, "little")
                                     for v in vals)
        return {
            "ops_a": pack([a for a, _, _ in operand_sets]),
            "ops_b": pack([b for _, b, _ in operand_sets]),
            "ops_c": pack([c for _, _, c in operand_sets]),
            "labels": labels,
        }
    return {
        "ops_a": b"".join(a for a, _, _ in operand_sets),
        "ops_b": b"".join(b for _, b, _ in operand_sets),
        "ops_c": b"".join((c & _M64).to_bytes(8, "little")
                          for _, _, c in operand_sets),
        "labels": labels,
    }


def expected_primitive_results(name: str, operand_sets) -> list[int]:
    """Reference results for one run's operand sets."""
    spec = PRIMITIVES[name]
    return [spec.reference(a, b, c) & _M64 for a, b, c in operand_sets]


def primitive_names() -> list[str]:
    """All Table V primitive names implemented here (CRYPTO_memcmp aside)."""
    return list(PRIMITIVES)
