"""CT-MEM-CMP: OpenSSL's constant-time memory compare under speculation
(Section VII-C1, Listings 7 and 8).

``CRYPTO_memcmp`` itself is data-oblivious, but callers immediately branch on
its return value.  When the loop-back branch inside ``CRYPTO_memcmp``
mispredicts, the function *speculatively returns prematurely* and the partial
comparison result transiently drives the caller's branch — so the wrong-path
``equal``/``inequal`` call pattern visible in the ROB depends on the secret
byte comparison.  The paper disclosed this to OpenSSL as a previously
unreported vulnerability.

As in the paper, all input pairs are processed by a single simulation: a
driver loop copies each pair into fixed comparison buffers and invokes the
``run`` consumer (Listing 8).  Branch-predictor and cache state evolve across
invocations, providing natural within-class variation; the sampling window
covers ``CRYPTO_memcmp`` plus a few instructions consuming its return value.
"""

from __future__ import annotations

from repro.sampler.runner import Workload
from repro.workloads.keygen import memcmp_input_pairs

_SOURCE_TEMPLATE = """
.data
pairs:      .zero {pairs_bytes}
labels:     .zero {labels_bytes}
cur_a:      .zero {length}
cur_b:      .zero {length}
result_out: .zero {labels_bytes}

.text
main:
    # Warm the consumer functions once, as in a steady-state victim.
    li   a0, 0
    call equal
    li   a0, 1
    call inequal
    li   s6, 0               # pair index
    la   s1, pairs
    la   s2, labels
    la   s3, result_out
    roi.begin
driver:
    # Copy pair s6 into the fixed comparison buffers (outside the window).
    li   t0, {pair_stride}
    mul  t0, t0, s6
    add  t0, t0, s1          # &pairs[s6]
    la   t1, cur_a
    li   t2, {length}
7:
    lbu  t3, 0(t0)
    sb   t3, 0(t1)
    lbu  t4, {length}(t0)
    sb   t4, {length}(t1)
    addi t0, t0, 1
    addi t1, t1, 1
    addi t2, t2, -1
    bgtz t2, 7b
    slli t0, s6, 3
    add  t0, t0, s2
    ld   s9, 0(t0)           # label for this pair
    iter.begin s9
    la   a0, cur_a
    la   a1, cur_b
    li   a2, {length}
    call run
    slli t0, s6, 3
    add  t0, t0, s3
    sd   a0, 0(t0)
    addi s6, s6, 1
    li   t0, {n_pairs}
    blt  s6, t0, driver
    roi.end
    li   a0, 0
    li   a7, 93
    ecall

run:                         # Listing 8: branch on CRYPTO_memcmp's result
    addi sp, sp, -16
    sd   ra, 8(sp)
    call CRYPTO_memcmp
    beqz a0, 5f
    li   a0, 1
    # The sampling window extends a few instructions past CRYPTO_memcmp's
    # return-value consumer (Section VII-C1).  The (in)equal bodies commit
    # architecturally outside the window, but their transiently and
    # run-ahead fetched PCs are resident in the ROB within it.
    iter.end
    call inequal
    j    6f
5:
    li   a0, 0
    iter.end
    call equal
6:
    ld   ra, 8(sp)
    addi sp, sp, 16
    ret

CRYPTO_memcmp:               # Listing 7: OpenSSL constant-time memcmp
    li   t0, 0               # x = 0
    beqz a2, 2f
1:
    lbu  t1, 0(a0)
    lbu  t2, 0(a1)
    addi a0, a0, 1
    addi a1, a1, 1
    addi a2, a2, -1
    xor  t1, t1, t2
    or   t0, t0, t1
    bgtz a2, 1b
2:
    mv   a0, t0
    ret

equal:                       # consumers with distinct instruction streams
    slli a0, a0, 1
    addi a0, a0, 100
    ret

inequal:
    slli a0, a0, 2
    addi a0, a0, 200
    ret
"""


def make_ct_memcmp(n_pairs: int = 32, length: int = 32, seed: int = 2,
                   n_runs: int = 2) -> Workload:
    """Build the CT-MEM-CMP workload.

    Each of the ``n_runs`` simulations processes ``n_pairs`` input pairs
    through one driver loop (the paper uses a single 32-pair campaign).
    """
    source = _SOURCE_TEMPLATE.format(
        pairs_bytes=n_pairs * 2 * length,
        labels_bytes=8 * n_pairs,
        length=length,
        pair_stride=2 * length,
        n_pairs=n_pairs,
    )
    inputs = []
    for run_index in range(n_runs):
        pairs = memcmp_input_pairs(n_pairs, length, seed + 101 * run_index)
        blob = b"".join(a + b for a, b in pairs)
        labels = b"".join(
            (1 if a == b else 0).to_bytes(8, "little") for a, b in pairs
        )
        inputs.append({"pairs": blob, "labels": labels})
    return Workload(
        name="ct-mem-cmp",
        source=source,
        entry="main",
        inputs=inputs,
        description="OpenSSL CRYPTO_memcmp + control-flow consumer "
                    "(Listings 7-8)",
        secret_regions=["pairs"],
    )


def reference_results(pairs: list[tuple[bytes, bytes]]) -> list[int]:
    """Architectural result of run() per pair: equal->100, inequal->204."""
    return [100 if a == b else 204 for a, b in pairs]


# The early-exit and safe variants reuse the exact CT-MEM-CMP driver (data
# layout, warm-up, per-pair copy loop and iteration markers) and differ only
# in the compare routine / consumer, so localization differences between the
# three are attributable to the compared code alone.
_DRIVER_PRELUDE = _SOURCE_TEMPLATE[:_SOURCE_TEMPLATE.index("run:")]

_EARLY_EXIT_BODY = """
run:                         # branchless consumer: the leak is memcmp's own
    addi sp, sp, -16
    sd   ra, 8(sp)
    call memcmp_ee
    snez a0, a0
    addi a0, a0, 100
    iter.end
    ld   ra, 8(sp)
    addi sp, sp, 16
    ret

memcmp_ee:                   # classic early-exit memcmp (the textbook leak)
    li   t0, 0
    beqz a2, 2f
1:
    lbu  t1, 0(a0)
    lbu  t2, 0(a1)
    sub  t3, t1, t2
    bnez t3, 3f              # secret-dependent early exit
    addi a0, a0, 1
    addi a1, a1, 1
    addi a2, a2, -1
    bgtz a2, 1b
2:
    mv   a0, zero
    ret
3:
    mv   a0, t3
    ret

equal:                       # kept for driver warm-up parity
    slli a0, a0, 1
    addi a0, a0, 100
    ret

inequal:
    slli a0, a0, 2
    addi a0, a0, 200
    ret
"""

_SAFE_BODY = """
run:                         # Listing 7 with a *branchless* consumer
    addi sp, sp, -16
    sd   ra, 8(sp)
    call CRYPTO_memcmp
    snez a0, a0              # no secret-dependent control flow anywhere
    slli t1, a0, 2
    add  a0, a0, t1
    addi a0, a0, 100
    iter.end
    ld   ra, 8(sp)
    addi sp, sp, 16
    ret

CRYPTO_memcmp:               # Listing 7: OpenSSL constant-time memcmp
    li   t0, 0
    beqz a2, 2f
1:
    lbu  t1, 0(a0)
    lbu  t2, 0(a1)
    addi a0, a0, 1
    addi a1, a1, 1
    addi a2, a2, -1
    xor  t1, t1, t2
    or   t0, t0, t1
    bgtz a2, 1b
2:
    mv   a0, t0
    ret

equal:                       # kept for driver warm-up parity
    slli a0, a0, 1
    addi a0, a0, 100
    ret

inequal:
    slli a0, a0, 2
    addi a0, a0, 200
    ret
"""


def _memcmp_variant(name: str, body: str, description: str, n_pairs: int,
                    length: int, seed: int, n_runs: int) -> Workload:
    source = (_DRIVER_PRELUDE + body).format(
        pairs_bytes=n_pairs * 2 * length,
        labels_bytes=8 * n_pairs,
        length=length,
        pair_stride=2 * length,
        n_pairs=n_pairs,
    )
    inputs = []
    for run_index in range(n_runs):
        pairs = memcmp_input_pairs(n_pairs, length, seed + 101 * run_index)
        blob = b"".join(a + b for a, b in pairs)
        labels = b"".join(
            (1 if a == b else 0).to_bytes(8, "little") for a, b in pairs
        )
        inputs.append({"pairs": blob, "labels": labels})
    return Workload(
        name=name,
        source=source,
        entry="main",
        inputs=inputs,
        description=description,
        secret_regions=["pairs"],
    )


def make_early_exit_memcmp(n_pairs: int = 32, length: int = 32,
                           seed: int = 2, n_runs: int = 2) -> Workload:
    """Classic early-exit memcmp: the canonical localization case study.

    Unequal pairs (random bytes) almost surely mismatch at byte 0, so the
    early exit fires at a stable point in the loop — the temporal scan
    should pin the leak to a window starting at the divergence and the
    attribution should rank the compare/early-exit-branch PCs first.
    """
    return _memcmp_variant(
        "ee-mem-cmp", _EARLY_EXIT_BODY,
        "classic early-exit memcmp (localization case study)",
        n_pairs, length, seed, n_runs,
    )


def make_ct_memcmp_safe(n_pairs: int = 32, length: int = 32,
                        seed: int = 2, n_runs: int = 2) -> Workload:
    """CRYPTO_memcmp with a branchless consumer: the fixed baseline.

    Removing the caller's branch on the comparison result removes the
    speculative leak of Listings 7-8; detection and localization should
    both come back clean.
    """
    return _memcmp_variant(
        "ct-mem-cmp-safe", _SAFE_BODY,
        "CRYPTO_memcmp + branchless consumer (fixed baseline)",
        n_pairs, length, seed, n_runs,
    )
