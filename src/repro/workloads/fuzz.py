"""Random program generation for differential testing (Cascade-style).

Generates seeded, always-terminating RV64IM programs that mix ALU
arithmetic, M-extension ops, memory traffic within a scratch buffer, bounded
data-dependent branches and leaf calls.  Used by the co-simulation test
suite to check the out-of-order core against the golden-model interpreter,
the same methodology CPU fuzzers like Cascade [45] apply to RTL.
"""

from __future__ import annotations

import random

from repro.isa.assembler import Program, assemble

_ALU_RR = ["add", "sub", "and", "or", "xor", "sll", "srl", "sra",
           "slt", "sltu", "addw", "subw", "mul", "mulh", "mulhu",
           "div", "divu", "rem", "remu", "mulw", "divw", "remw"]
_ALU_RI = ["addi", "andi", "ori", "xori", "slti", "sltiu", "addiw"]
_SHIFT_RI = ["slli", "srli", "srai"]
_LOADS = ["lb", "lbu", "lh", "lhu", "lw", "lwu", "ld"]
_STORES = ["sb", "sh", "sw", "sd"]
_BRANCHES = ["beq", "bne", "blt", "bge", "bltu", "bgeu"]

#: Registers the generator is allowed to clobber freely.
_WORK_REGS = ["t0", "t1", "t2", "t3", "t4", "t5", "t6",
              "a1", "a2", "a3", "a4", "a5", "a6"]
_SCRATCH_BYTES = 256


def generate_program(seed: int, *, blocks: int = 6,
                     block_len: int = 8) -> str:
    """Generate random assembly text; deterministic per seed."""
    rng = random.Random(seed)
    lines = [
        ".data",
        f"scratch: .zero {_SCRATCH_BYTES}",
        "out: .zero 8",
        ".text",
        "main:",
        "    la   s0, scratch",
    ]
    for i, reg in enumerate(_WORK_REGS):
        lines.append(f"    li   {reg}, {rng.getrandbits(32) - (1 << 31)}")
    for block in range(blocks):
        lines.extend(_block(rng, block, block_len))
    # Checksum every work register and the scratch buffer.
    lines.extend([
        "    li   a0, 0",
    ])
    for reg in _WORK_REGS:
        lines.append(f"    xor  a0, a0, {reg}")
    lines.extend([
        "    li   t0, 0",
        f"    li   t1, {_SCRATCH_BYTES // 8}",
        "    mv   t2, s0",
        "csum:",
        "    ld   t3, 0(t2)",
        "    xor  t0, t0, t3",
        "    addi t2, t2, 8",
        "    addi t1, t1, -1",
        "    bgtz t1, csum",
        "    xor  a0, a0, t0",
        "    la   t4, out",
        "    sd   a0, 0(t4)",
        "    li   a0, 0",
        "    li   a7, 93",
        "    ecall",
        "leaf:",
        "    xor  a1, a1, a2",
        "    addi a1, a1, 17",
        "    ret",
    ])
    return "\n".join(lines)


def _block(rng: random.Random, block: int, block_len: int) -> list:
    """One basic block wrapped in a bounded loop with a branchy body."""
    loop_reg = "s2"
    trips = rng.randint(1, 4)
    lines = [f"    li   {loop_reg}, {trips}", f"block{block}:"]
    for _ in range(block_len):
        lines.append("    " + _instruction(rng))
    # A data-dependent forward branch inside the block.
    skip = f"skip{block}"
    reg_a, reg_b = rng.sample(_WORK_REGS, 2)
    lines.append(f"    {rng.choice(_BRANCHES)} {reg_a}, {reg_b}, {skip}")
    lines.append("    " + _instruction(rng))
    if rng.random() < 0.5:
        lines.append("    call leaf")
    lines.append(f"{skip}:")
    lines.append(f"    addi {loop_reg}, {loop_reg}, -1")
    lines.append(f"    bgtz {loop_reg}, block{block}")
    return lines


def _instruction(rng: random.Random) -> str:
    kind = rng.random()
    rd = rng.choice(_WORK_REGS)
    rs1 = rng.choice(_WORK_REGS)
    rs2 = rng.choice(_WORK_REGS)
    if kind < 0.45:
        return f"{rng.choice(_ALU_RR)} {rd}, {rs1}, {rs2}"
    if kind < 0.6:
        return f"{rng.choice(_ALU_RI)} {rd}, {rs1}, {rng.randint(-2048, 2047)}"
    if kind < 0.7:
        return f"{rng.choice(_SHIFT_RI)} {rd}, {rs1}, {rng.randint(0, 63)}"
    offset = rng.randrange(0, _SCRATCH_BYTES - 8, 8)
    if kind < 0.85:
        return f"{rng.choice(_LOADS)} {rd}, {offset}(s0)"
    return f"{rng.choice(_STORES)} {rs1}, {offset}(s0)"


def generate(seed: int, **kwargs) -> Program:
    """Generate and assemble a random program."""
    return assemble(generate_program(seed, **kwargs), entry="main")


def generate_memory_torture(seed: int, *, operations: int = 60) -> str:
    """Dense mixed-size loads/stores over a tiny region.

    Targets the load/store unit's hardest corners: store-to-load forwarding
    at every containment relation, partial overlaps that must stall, and
    rapid-fire drains — all within a 24-byte window so nearly every access
    conflicts with an in-flight neighbour.
    """
    rng = random.Random(seed)
    lines = [
        ".data",
        "window: .zero 32",
        "out:    .zero 8",
        ".text",
        "main:",
        "    la   s0, window",
        "    li   t1, 0x0123456789abcdef",
        "    sd   t1, 0(s0)",
        "    sd   t1, 8(s0)",
        "    sd   t1, 16(s0)",
    ]
    sizes = [("sb", "lb", 1), ("sb", "lbu", 1), ("sh", "lhu", 2),
             ("sw", "lw", 4), ("sd", "ld", 8)]
    for index in range(operations):
        store_m, load_m, size = rng.choice(sizes)
        offset = rng.randrange(0, 24 - size + 1)
        if rng.random() < 0.55:
            source = rng.choice(["t1", "t2", "t3"])
            lines.append(f"    addi {source}, {source}, {rng.randint(-64, 63)}")
            lines.append(f"    {store_m} {source}, {offset}(s0)")
        else:
            dest = rng.choice(["t1", "t2", "t3"])
            lines.append(f"    {load_m} {dest}, {offset}(s0)")
    lines += [
        "    # checksum the window",
        "    li   t4, 0",
        "    li   t5, 3",
        "    mv   t6, s0",
        "csum:",
        "    ld   t0, 0(t6)",
        "    xor  t4, t4, t0",
        "    addi t6, t6, 8",
        "    addi t5, t5, -1",
        "    bgtz t5, csum",
        "    la   t6, out",
        "    sd   t4, 0(t6)",
        "    li   a0, 0",
        "    li   a7, 93",
        "    ecall",
    ]
    return "\n".join(lines)


def generate_torture(seed: int, **kwargs) -> Program:
    """Generate and assemble a memory-torture program."""
    return assemble(generate_memory_torture(seed, **kwargs), entry="main")


_STRAIGHTLINE_SCRATCH = 64


def generate_straightline_program(seed: int, *, length: int = 40) -> str:
    """Random straight-line program: no branches, no calls, one exit.

    With control flow removed, any architectural divergence between the
    interpreter and the out-of-order core isolates to data-path semantics —
    ALU/M-extension results, memory ordering, store-to-load forwarding —
    which makes these programs the sharpest differential oracle per
    instruction executed.  The scratch checksum is fully unrolled to keep
    the program branch-free end to end.
    """
    rng = random.Random(seed)
    lines = [
        ".data",
        f"scratch: .zero {_STRAIGHTLINE_SCRATCH}",
        "out: .zero 8",
        ".text",
        "main:",
        "    la   s0, scratch",
    ]
    for reg in _WORK_REGS:
        lines.append(f"    li   {reg}, {rng.getrandbits(32) - (1 << 31)}")
    for _ in range(length):
        lines.append("    " + _straightline_instruction(rng))
    lines.append("    li   a0, 0")
    for reg in _WORK_REGS:
        lines.append(f"    xor  a0, a0, {reg}")
    for offset in range(0, _STRAIGHTLINE_SCRATCH, 8):
        lines.append(f"    ld   t0, {offset}(s0)")
        lines.append("    xor  a0, a0, t0")
    lines.extend([
        "    la   t1, out",
        "    sd   a0, 0(t1)",
        "    li   a0, 0",
        "    li   a7, 93",
        "    ecall",
    ])
    return "\n".join(lines)


def _straightline_instruction(rng: random.Random) -> str:
    kind = rng.random()
    rd = rng.choice(_WORK_REGS)
    rs1 = rng.choice(_WORK_REGS)
    rs2 = rng.choice(_WORK_REGS)
    if kind < 0.5:
        return f"{rng.choice(_ALU_RR)} {rd}, {rs1}, {rs2}"
    if kind < 0.65:
        return f"{rng.choice(_ALU_RI)} {rd}, {rs1}, {rng.randint(-2048, 2047)}"
    if kind < 0.75:
        return f"{rng.choice(_SHIFT_RI)} {rd}, {rs1}, {rng.randint(0, 63)}"
    offset = rng.randrange(0, _STRAIGHTLINE_SCRATCH - 8, 8)
    if kind < 0.9:
        return f"{rng.choice(_LOADS)} {rd}, {offset}(s0)"
    return f"{rng.choice(_STORES)} {rs1}, {offset}(s0)"


def generate_straightline(seed: int, **kwargs) -> Program:
    """Generate and assemble a straight-line differential-test program."""
    return assemble(generate_straightline_program(seed, **kwargs),
                    entry="main")
