"""Deterministic generation of secret inputs for verification campaigns."""

from __future__ import annotations

import random


def random_keys(n_keys: int, key_bytes: int = 4, seed: int = 1) -> list[bytes]:
    """Generate ``n_keys`` uniformly random keys of ``key_bytes`` bytes."""
    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(key_bytes))
            for _ in range(n_keys)]


def balanced_keys(n_keys: int, key_bytes: int = 4, seed: int = 1) -> list[bytes]:
    """Random keys filtered to have a roughly balanced 0/1 bit mix.

    Ensures both classes get enough samples even for small campaigns.
    """
    rng = random.Random(seed)
    total_bits = 8 * key_bytes
    keys = []
    while len(keys) < n_keys:
        key = rng.getrandbits(total_bits)
        ones = bin(key).count("1")
        if abs(ones - total_bits // 2) <= total_bits // 4:
            keys.append(key.to_bytes(key_bytes, "little"))
    return keys


def memcmp_input_pairs(n_pairs: int, length: int = 32,
                       seed: int = 2) -> list[tuple[bytes, bytes]]:
    """Input pairs with varying distributions of (in)equal bytes (Sec VII-C1).

    Roughly half the pairs are fully equal; the rest differ first at a
    varying byte position, increasing coverage of the comparison loop.
    """
    rng = random.Random(seed)
    pairs = []
    for index in range(n_pairs):
        a = bytes(rng.randrange(256) for _ in range(length))
        if index % 2 == 0:
            pairs.append((a, a))
        else:
            b = bytearray(a)
            first_diff = rng.randrange(length)
            for position in range(first_diff, length):
                if rng.random() < 0.5 or position == first_diff:
                    b[position] = (b[position] + 1 + rng.randrange(255)) % 256
            pairs.append((a, bytes(b)))
    rng.shuffle(pairs)  # avoid a strictly alternating class sequence
    return pairs
