"""Modular exponentiation case studies (Sections II, VII-A, VII-B).

Five workload variants are provided, mirroring the paper's listings:

``sam-leaky``
    Classic square-and-multiply with a secret-dependent branch (Listing 1).
``sam-ct``
    Constant-time square-and-multiply with a register cmov (Listing 2).
``me-v1-cv``
    libgcrypt-style conditional copy with a branch; the assembly mirrors the
    compiler output of Listing 4 where ``dst`` is preloaded before ``ctl`` is
    checked, leaking through two extra instructions on the ctl==0 path.
``me-v1-mv``
    Branchless conditional copy (Listing 5) whose ``memmove`` destination
    address is still secret-selected between ``dst`` and ``dummy``.
``me-v2-safe``
    BearSSL's byte-wise branchless conditional copy (Listing 6), which is
    constant-time on the baseline core — and the victim of the fast-bypass
    optimization in case ME-V2-FB.

All variants scan a 32-bit exponent MSB-first, one ``iter.begin``/``iter.end``
pair per key bit, labeling each iteration with the bit value.
"""

from __future__ import annotations

from repro.sampler.runner import Workload
from repro.workloads.keygen import balanced_keys

#: Fixed public parameters: a Mersenne-prime modulus and a fixed base.
DEFAULT_MODULUS = 2147483647  # 2^31 - 1
DEFAULT_BASE = 0x12345


def modexp_reference(base: int, exponent_bytes: bytes, modulus: int) -> int:
    """Golden-model result of the assembly workloads."""
    exponent = int.from_bytes(exponent_bytes, "little")
    return pow(base, exponent, modulus)


_DATA_SECTION = """
.data
base_val:  .dword {base}
mod_val:   .dword {modulus}
key:       .byte 0, 0, 0, 0
result:    .dword 0
t_buf:     .zero 64
r_local:   .zero 8
.align 12
dst_buf:   .zero 64
.align 12
dummy_buf: .zero 64
"""

_PROLOGUE = """
.text
main:
    la   s1, key
    la   t0, base_val
    ld   s4, 0(t0)
    la   t0, mod_val
    ld   s5, 0(t0)
    li   s2, 1              # r = 1
    li   s6, 3              # i = 3 (MSB byte first)
    roi.begin
outer:
    add  t0, s1, s6
    lbu  s7, 0(t0)          # exp[i]
    li   s8, 7              # j = 7
inner:
    srl  t0, s7, s8
    andi s9, t0, 1          # bit = (exp[i] >> j) & 1
    iter.begin s9
{body}
    iter.end
    addi s8, s8, -1
    bgez s8, inner
    addi s6, s6, -1
    bgez s6, outer
    roi.end
{epilogue}
    la   t0, result
    sd   s2, 0(t0)
    li   a0, 0
    li   a7, 93
    ecall
"""

#: Shared square step: r = r*r % mod ; t = a*r % mod  (r in s2, t in s3).
_SQUARE_AND_MULT = """
    mul  t0, s2, s2
    remu s2, t0, s5
    mul  t0, s4, s2
    remu s3, t0, s5
"""

#: Branchless register cmov: r = bit ? t : r (Listing 2 / Equation 1).
_REGISTER_CMOV = """
    neg  t1, s9
    xor  t2, s2, s3
    and  t2, t2, t1
    xor  s2, s2, t2
"""

#: Commit the candidate result to memory through the conditional copy under
#: test: t is written to t_buf (uniform addresses), then CCOPY moves it to
#: dst_buf or dummy_buf depending on ctl.
_STORE_T_AND_CCOPY = """
    la   t3, t_buf
    sd   s3, 0(t3)
    sd   s3, 8(t3)
    sd   s3, 16(t3)
    sd   s3, 24(t3)
    mv   a0, s9
    la   a1, dst_buf
    la   a2, dummy_buf
    la   a3, t_buf
    li   a4, 32
    call {ccopy}
"""

_MEMMOVE = """
memmove:                     # a0=dst, a1=src, a2=len (multiple of 8)
    beqz a2, 2f
1:
    ld   t2, 0(a1)
    sd   t2, 0(a0)
    addi a1, a1, 8
    addi a0, a0, 8
    addi a2, a2, -8
    bgtz a2, 1b
2:
    ret
"""

#: Listing 4: the compiler preloads dst into a0 *before* checking ctl, so the
#: ctl==0 path executes two extra instructions (mv + j).
_CCOPY_V1_BRANCHY = """
ccopy_v1:                    # a0=ctl, a1=dst, a2=dummy, a3=src, a4=len
    mv   a6, a0
    mv   a5, a2
    mv   a0, a1              # preload dst as memmove's first argument
    mv   a2, a4
    mv   a1, a3
    beqz a6, 2f
1:
    j    memmove
2:
    mv   a0, a5              # correct the destination to dummy
    j    1b
"""

#: Listing 5: branchless destination select -> secret-dependent address.
_CCOPY_V2_BRANCHLESS = """
ccopy_v2:                    # a0=ctl, a1=dst, a2=dummy, a3=src, a4=len
    neg  a0, a0              # mask = -ctl
    and  a1, a1, a0
    not  a0, a0
    and  a2, a2, a0
    or   a0, a1, a2          # dst if ctl else dummy
    mv   a1, a3
    mv   a2, a4
    j    memmove
"""

#: Listing 6: BearSSL byte-wise branchless conditional copy.
_CCOPY_BEARSSL = """
ccopy_bear:                  # a0=ctl, a1=dst, a2=src, a3=len
    add  a3, a3, a2
    negw a0, a0
1:
    bne  a2, a3, 2f
    ret
2:
    lbu  a4, 0(a1)
    lbu  a5, 0(a2)
    addi a2, a2, 1
    addi a1, a1, 1
    xor  a5, a5, a4
    and  a5, a5, a0
    xor  a5, a5, a4
    sb   a5, -1(a1)
    j    1b
"""


def _key_inputs(n_keys: int, seed: int) -> list[dict]:
    return [{"key": key} for key in balanced_keys(n_keys, 4, seed)]


def _build(name: str, body: str, functions: str, *, epilogue: str = "",
           n_keys: int, seed: int, description: str,
           base: int = DEFAULT_BASE, modulus: int = DEFAULT_MODULUS,
           warm_regions=()) -> Workload:
    source = (
        _DATA_SECTION.format(base=base, modulus=modulus)
        + _PROLOGUE.format(body=body, epilogue=epilogue)
        + functions
    )
    return Workload(
        name=name,
        source=source,
        entry="main",
        inputs=_key_inputs(n_keys, seed),
        description=description,
        warm_regions=list(warm_regions),
        secret_regions=["key"],
    )


#: Listing 1 iteration body: the multiply happens only when the bit is set.
_SQUARE_BODY_LEAKY = """
    mul  t0, s2, s2
    remu s2, t0, s5
    beqz s9, 3f
    mul  t0, s4, s2
    remu s2, t0, s5
3:
    addi t0, zero, 0
"""


def make_sam_leaky(n_keys: int = 8, seed: int = 1) -> Workload:
    """Listing 1: square-and-multiply with a secret-dependent branch."""
    return _build(
        "sam-leaky", _SQUARE_BODY_LEAKY, "", n_keys=n_keys, seed=seed,
        description="Square-and-multiply with secret-dependent control flow",
    )


def make_sam_ct(n_keys: int = 8, seed: int = 1) -> Workload:
    """Listing 2: constant-time square-and-multiply with a register cmov."""
    return _build(
        "sam-ct", _SQUARE_AND_MULT + _REGISTER_CMOV, "",
        n_keys=n_keys, seed=seed,
        description="Constant-time square-and-multiply (register cmov)",
    )


def make_me_v1_cv(n_keys: int = 8, seed: int = 1) -> Workload:
    """Case ME-V1-CV: branchy conditional copy, compiler preloads dst."""
    body = (_SQUARE_AND_MULT + _REGISTER_CMOV
            + _STORE_T_AND_CCOPY.format(ccopy="ccopy_v1"))
    return _build(
        "me-v1-cv", body, _CCOPY_V1_BRANCHY + _MEMMOVE,
        n_keys=n_keys, seed=seed,
        description="libgcrypt-style CCOPY with compiler-introduced "
                    "secret-dependent control flow (Listing 4)",
    )


def make_me_v1_mv(n_keys: int = 8, seed: int = 1, *,
                  warm_dst: bool = False) -> Workload:
    """Case ME-V1-MV: branchless ctl, secret-dependent memmove destination.

    ``warm_dst=True`` reproduces the Figure 6b experiment: the ``dst`` region
    is present in the L1D before each run, so bit==1 iterations' stores hit
    while bit==0 iterations keep missing on ``dummy``.
    """
    body = (_SQUARE_AND_MULT + _REGISTER_CMOV
            + _STORE_T_AND_CCOPY.format(ccopy="ccopy_v2"))
    warm = [("dst_buf", 64)] if warm_dst else []
    return _build(
        "me-v1-mv" + ("-warm" if warm_dst else ""),
        body, _CCOPY_V2_BRANCHLESS + _MEMMOVE,
        n_keys=n_keys, seed=seed,
        description="Branchless CCOPY with secret-dependent store addresses "
                    "(Listing 5)",
        warm_regions=warm,
    )


def make_me_v2_safe(n_keys: int = 8, seed: int = 1) -> Workload:
    """Case ME-V2-Safe: BearSSL branchless byte-wise conditional copy.

    The accumulator ``r`` lives in memory (``r_local``); each iteration
    stores the candidate ``t`` to ``t_buf`` and conditionally copies it into
    ``r_local`` with the Listing 6 routine.  Run on a fast-bypass core
    (``CoreConfig.fast_bypass``) this same workload is case ME-V2-FB.
    """
    body = """
    la   t3, r_local
    ld   s2, 0(t3)
""" + _SQUARE_AND_MULT + """
    la   t3, r_local
    sd   s2, 0(t3)           # commit the unconditional squaring
    la   t3, t_buf
    sd   s3, 0(t3)
    mv   a0, s9
    la   a1, r_local
    la   a2, t_buf
    li   a3, 8
    call ccopy_bear
"""
    epilogue = """
    la   t3, r_local
    ld   s2, 0(t3)
"""
    workload = _build(
        "me-v2-safe", body, _CCOPY_BEARSSL,
        epilogue=epilogue, n_keys=n_keys, seed=seed,
        description="BearSSL constant-time conditional copy (Listing 6)",
    )
    # r_local starts at 0 but r must start at 1: patch the initial value.
    for patches in workload.inputs:
        patches["r_local"] = (1).to_bytes(8, "little")
    return workload


def expected_results(workload: Workload, *, base: int = DEFAULT_BASE,
                     modulus: int = DEFAULT_MODULUS) -> list[int]:
    """Reference modexp result for each of the workload's runs."""
    return [modexp_reference(base, patches["key"], modulus)
            for patches in workload.inputs]


_WINDOWED_SOURCE = """
.data
base_val:  .dword {base}
mod_val:   .dword {modulus}
key:       .byte 0, 0, 0, 0
result:    .dword 0
pow_table: .zero 32

.text
main:
    la   s1, key
    la   t0, base_val
    ld   s4, 0(t0)
    la   t0, mod_val
    ld   s5, 0(t0)
    # Precompute base^0..base^3 mod m (public values).
    la   s0, pow_table
    li   t1, 1
    sd   t1, 0(s0)
    sd   s4, 8(s0)
    mul  t0, s4, s4
    remu t1, t0, s5
    sd   t1, 16(s0)
    mul  t0, t1, s4
    remu t1, t0, s5
    sd   t1, 24(s0)
    li   s2, 1              # r = 1
    li   s6, 15             # window index, MSB window first
    roi.begin
wloop:
    slli t0, s6, 1          # bit position = 2*window
    srl  t1, zero, zero     # (placeholder, keeps alignment)
    la   t2, key
    lwu  t3, 0(t2)          # whole 32-bit exponent
    srl  t3, t3, t0
    andi s9, t3, 3          # window value: the 4-way class label
    iter.begin s9
    # r = r^4 mod m  (two squarings, unconditionally)
    mul  t0, s2, s2
    remu s2, t0, s5
    mul  t0, s2, s2
    remu s2, t0, s5
    # t = constant-time table lookup of base^w
    li   t1, 0              # i
    li   t4, 0              # acc
    la   t5, pow_table
    li   t6, 4
1:
    xor  t0, t1, s9
    sltiu t0, t0, 1
    neg  t0, t0             # mask = (i == w)
    ld   t3, 0(t5)
    and  t3, t3, t0
    or   t4, t4, t3
    addi t5, t5, 8
    addi t1, t1, 1
    blt  t1, t6, 1b
    # r = r * t mod m (multiply by base^0 = 1 when the window is 0)
    mul  t0, s2, t4
    remu s2, t0, s5
    iter.end
    addi s6, s6, -1
    bgez s6, wloop
    roi.end
    la   t0, result
    sd   s2, 0(t0)
    li   a0, 0
    li   a7, 93
    ecall
"""


def make_sam_ct_window(n_keys: int = 8, seed: int = 1) -> Workload:
    """Windowed constant-time exponentiation with a CT table lookup.

    Processes the exponent in 2-bit windows, so iterations carry a 4-way
    class label — exercising the contingency analysis beyond binary classes
    (the paper notes many algorithms operate on secrets in windows of bits).
    Should verify clean: squarings, lookup and multiply are unconditional.
    """
    return Workload(
        name="sam-ct-window",
        source=_WINDOWED_SOURCE.format(base=DEFAULT_BASE,
                                       modulus=DEFAULT_MODULUS),
        entry="main",
        inputs=_key_inputs(n_keys, seed),
        secret_regions=["key"],
        description="2-bit-window constant-time exponentiation "
                    "(constant_time_lookup based)",
    )


_DIV_TIMING_SOURCE = """
.data
key:      .byte 0, 0, 0, 0
result:   .dword 0
numer:    .dword 0x7fffffffffffffff

.text
main:
    la   s1, key
    la   t0, numer
    ld   s4, 0(t0)
    li   s2, 0              # accumulator
    li   s6, 3
    roi.begin
outer:
    add  t0, s1, s6
    lbu  s7, 0(t0)
    li   s8, 7
inner:
    srl  t0, s7, s8
    andi s9, t0, 1
    iter.begin s9
    # Branchless select of the divisor: small when bit=0, huge when bit=1.
    neg  t1, s9
    li   t2, 0x0fffffffffff0000
    and  t2, t2, t1
    ori  t3, t2, 3          # divisor = 3 or 0x0fffffffffff0003
    divu t4, s4, t3         # quotient width depends on the secret bit
    add  s2, s2, t4
    iter.end
    addi s8, s8, -1
    bgez s8, inner
    addi s6, s6, -1
    bgez s6, outer
    roi.end
    la   t0, result
    sd   s2, 0(t0)
    li   a0, 0
    li   a7, 93
    ecall
"""


def make_div_timing(n_keys: int = 8, seed: int = 1) -> Workload:
    """Secret-dependent divisor magnitude (constant-time principle 3).

    The code is branchless with fixed addresses, but it divides by a
    secret-selected divisor.  On a core with an early-exit divider
    (``CoreConfig.variable_div_latency``) the operation's latency depends on
    the quotient width and MicroSampler flags EUU-DIV; on a fixed-latency
    divider the same code verifies clean — an ablation of the paper's
    "no secrets in variable-timing arithmetic" principle.
    """
    return Workload(
        name="div-timing",
        source=_DIV_TIMING_SOURCE,
        entry="main",
        inputs=_key_inputs(n_keys, seed),
        description="secret-dependent divisor on an early-exit divider",
        secret_regions=["key"],
    )


def expected_div_timing_results(workload: Workload) -> list[int]:
    """Reference accumulator value for each div-timing run."""
    numer = 0x7FFFFFFFFFFFFFFF
    out = []
    for patches in workload.inputs:
        key = int.from_bytes(patches["key"], "little")
        total = 0
        for bit_index in range(31, -1, -1):
            bit = (key >> bit_index) & 1
            divisor = 0x0FFFFFFFFFFF0003 if bit else 3
            total = (total + numer // divisor) & 0xFFFFFFFFFFFFFFFF
        out.append(total)
    return out
