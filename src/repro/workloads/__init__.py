"""Verification workloads: the paper's case studies as assembly programs."""

from repro.workloads.bignum import (
    MERSENNE_127,
    expected_mp_results,
    make_mp_modexp_ct,
    make_mp_modexp_leaky,
    make_mulmod_selftest,
    mp_modexp_reference,
)
from repro.workloads.chacha import (
    chacha20_block,
    expected_keystreams,
    generate_chacha_source,
    make_chacha20,
)
from repro.workloads.cipher import (
    expected_sbox_results,
    make_sbox_ct,
    make_sbox_lookup,
    sbox_table,
)
from repro.workloads.keygen import balanced_keys, memcmp_input_pairs, random_keys
from repro.workloads.memcmp import (
    make_ct_memcmp,
    make_ct_memcmp_safe,
    make_early_exit_memcmp,
    reference_results,
)
from repro.workloads.modexp import (
    DEFAULT_BASE,
    DEFAULT_MODULUS,
    expected_results,
    make_me_v1_cv,
    make_me_v1_mv,
    make_div_timing,
    make_me_v2_safe,
    make_sam_ct,
    make_sam_ct_window,
    make_sam_leaky,
    modexp_reference,
)
from repro.workloads.spectre import make_spectre_v1
from repro.workloads.openssl import (
    N_PRIMITIVES_TOTAL,
    PRIMITIVES,
    PrimitiveSpec,
    expected_primitive_results,
    make_primitive_workload,
    primitive_names,
)

__all__ = [
    "DEFAULT_BASE",
    "DEFAULT_MODULUS",
    "N_PRIMITIVES_TOTAL",
    "PRIMITIVES",
    "PrimitiveSpec",
    "balanced_keys",
    "chacha20_block",
    "expected_primitive_results",
    "expected_results",
    "expected_keystreams",
    "generate_chacha_source",
    "make_chacha20",
    "make_ct_memcmp",
    "make_ct_memcmp_safe",
    "make_early_exit_memcmp",
    "make_me_v1_cv",
    "make_me_v1_mv",
    "make_div_timing",
    "MERSENNE_127",
    "make_me_v2_safe",
    "make_primitive_workload",
    "make_mp_modexp_ct",
    "make_mp_modexp_leaky",
    "make_mulmod_selftest",
    "mp_modexp_reference",
    "expected_mp_results",
    "make_sbox_ct",
    "make_sbox_lookup",
    "make_spectre_v1",
    "make_sam_ct",
    "make_sam_ct_window",
    "make_sam_leaky",
    "memcmp_input_pairs",
    "modexp_reference",
    "primitive_names",
    "random_keys",
    "sbox_table",
    "expected_sbox_results",
    "reference_results",
]
