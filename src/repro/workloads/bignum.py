"""Multi-limb (128-bit) modular exponentiation workloads.

The paper's case studies run libgcrypt/BearSSL on 1024-bit keys, where every
algorithmic iteration is hundreds of instructions of multi-precision
arithmetic.  This module provides a faithful scaled-down analog: 2-limb
(128-bit) arithmetic modulo the Mersenne prime 2^127 - 1, whose reduction is
cheap enough to simulate while keeping the multi-limb carry/fold structure
of real bignum code.

``mp_mulmod`` is a fully branchless 128x128 -> 128-bit modular multiply
(schoolbook product, two Mersenne folds, branchless final conditional
subtract).  On top of it:

``mp-modexp-ct``
    Constant-time square-and-multiply with a branchless 2-limb cmov.
``mp-modexp-leaky``
    The classic version that multiplies only when the key bit is set.

Exponents are 16 bits, so each key contributes 16 long iterations —
each one several hundred instructions, within an order of magnitude of the
paper's per-bit workload shape.
"""

from __future__ import annotations

from repro.sampler.runner import Workload
from repro.workloads.keygen import balanced_keys

#: The Mersenne prime 2^127 - 1.
MERSENNE_127 = (1 << 127) - 1

#: Fixed public base (two limbs worth of entropy).
DEFAULT_MP_BASE = 0x0123456789ABCDEF0FEDCBA987654321


def mp_modexp_reference(base: int, exponent_bytes: bytes) -> int:
    """Golden-model result: base^exponent mod 2^127 - 1."""
    exponent = int.from_bytes(exponent_bytes, "little")
    return pow(base, exponent, MERSENNE_127)


_MP_MULMOD = """
# mp_mulmod: (a0,a1) * (a2,a3) mod 2^127-1 -> (a0,a1).  Branchless.
mp_mulmod:
    # 256-bit schoolbook product into t0..t3 (c0..c3).
    mul   t0, a0, a2
    mulhu t4, a0, a2
    mul   t5, a0, a3
    mulhu t6, a0, a3
    mul   a4, a1, a2
    mulhu a5, a1, a2
    mul   a6, a1, a3
    mulhu a7, a1, a3
    # c1 = hi(a0b0) + lo(a0b1) + lo(a1b0), carries into c2.
    add   t1, t4, t5
    sltu  t4, t1, t5
    add   t1, t1, a4
    sltu  t5, t1, a4
    add   t4, t4, t5
    # c2 = hi(a0b1) + hi(a1b0) + lo(a1b1) + carries.
    add   t2, t6, a5
    sltu  t5, t2, a5
    add   t2, t2, a6
    sltu  t6, t2, a6
    add   t5, t5, t6
    add   t2, t2, t4
    sltu  t6, t2, t4
    add   t5, t5, t6
    # c3 = hi(a1b1) + carries (cannot overflow: product < 2^254).
    add   t3, a7, t5
    # Mersenne fold 1: x = (x & (2^127-1)) + (x >> 127).
    srli  a4, t1, 63
    slli  a5, t2, 1
    or    a4, a4, a5          # hi limb 0
    srli  a5, t2, 63
    slli  a6, t3, 1
    or    a5, a5, a6          # hi limb 1
    li    a6, 0x7fffffffffffffff
    and   t1, t1, a6          # lo limb 1
    add   a0, t0, a4
    sltu  t4, a0, a4
    add   a1, t1, a5
    add   a1, a1, t4
    # Fold 2: sum < 2^128, so sum>>127 is bit 63 of the high limb.
    srli  t4, a1, 63
    and   a1, a1, a6
    add   a0, a0, t4
    sltu  t5, a0, t4
    add   a1, a1, t5
    # Fold 3: absorb a possible carry back into bit 127.
    srli  t4, a1, 63
    and   a1, a1, a6
    add   a0, a0, t4
    # Final branchless correction: subtract p iff sum >= p.
    # p = (0xFFFF..FF, 0x7FFF..FF); sum >= p iff a1 == p1 and a0 == p0
    # (a1 > p1 is impossible after the folds).
    xor   t4, a1, a6
    sltiu t4, t4, 1
    not   t5, a0
    sltiu t5, t5, 1
    and   t4, t4, t5
    neg   t4, t4              # mask
    sub   a0, a0, t4          # a0 - mask (mask == p0 when set)
    and   t5, a6, t4
    sub   a1, a1, t5
    ret
"""

_MP_PROLOGUE = """
.data
base_lo:   .dword {base_lo}
base_hi:   .dword {base_hi}
key:       .byte 0, 0
result_lo: .dword 0
result_hi: .dword 0

.text
main:
    la   t0, base_lo
    ld   s4, 0(t0)
    la   t0, base_hi
    ld   s5, 0(t0)
    la   s1, key
    li   s2, 1               # r = (1, 0)
    li   s3, 0
    li   s6, 1               # byte index, MSB byte first
    roi.begin
outer:
    add  t0, s1, s6
    lbu  s7, 0(t0)
    li   s8, 7
inner:
    srl  t0, s7, s8
    andi s9, t0, 1
    iter.begin s9
{body}
    iter.end
    addi s8, s8, -1
    bgez s8, inner
    addi s6, s6, -1
    bgez s6, outer
    roi.end
    la   t0, result_lo
    sd   s2, 0(t0)
    la   t0, result_hi
    sd   s3, 0(t0)
    li   a0, 0
    li   a7, 93
    ecall
"""

#: Constant-time body: square, multiply, branchless 2-limb cmov.
_CT_BODY = """
    mv   a0, s2
    mv   a1, s3
    mv   a2, s2
    mv   a3, s3
    call mp_mulmod           # r = r^2 mod p
    mv   s2, a0
    mv   s3, a1
    mv   a2, s4
    mv   a3, s5
    call mp_mulmod           # t = r * base mod p
    mv   s10, a0
    mv   s11, a1
    neg  t4, s9              # mask from the key bit
    xor  t5, s2, s10
    and  t5, t5, t4
    xor  s2, s2, t5
    xor  t5, s3, s11
    and  t5, t5, t4
    xor  s3, s3, t5
"""

#: Leaky body: the multiply happens only when the key bit is set.
_LEAKY_BODY = """
    mv   a0, s2
    mv   a1, s3
    mv   a2, s2
    mv   a3, s3
    call mp_mulmod           # r = r^2 mod p
    mv   s2, a0
    mv   s3, a1
    beqz s9, 3f
    mv   a0, s2
    mv   a1, s3
    mv   a2, s4
    mv   a3, s5
    call mp_mulmod           # r = r * base mod p (secret-gated!)
    mv   s2, a0
    mv   s3, a1
3:
    addi t0, zero, 0
"""


def _build(name: str, body: str, *, n_keys: int, seed: int,
           description: str) -> Workload:
    base = DEFAULT_MP_BASE % MERSENNE_127
    source = _MP_PROLOGUE.format(
        base_lo=base & 0xFFFFFFFFFFFFFFFF,
        base_hi=base >> 64,
        body=body,
    ) + _MP_MULMOD
    inputs = [{"key": key} for key in balanced_keys(n_keys, 2, seed)]
    return Workload(name=name, source=source, entry="main", inputs=inputs,
                    description=description, secret_regions=["key"])


def make_mp_modexp_ct(n_keys: int = 6, seed: int = 2) -> Workload:
    """Constant-time 128-bit modular exponentiation (2-limb cmov)."""
    return _build(
        "mp-modexp-ct", _CT_BODY, n_keys=n_keys, seed=seed,
        description="branchless 2-limb modexp mod 2^127-1",
    )


def make_mp_modexp_leaky(n_keys: int = 6, seed: int = 2) -> Workload:
    """Square-and-multiply over 128-bit limbs with a secret branch."""
    return _build(
        "mp-modexp-leaky", _LEAKY_BODY, n_keys=n_keys, seed=seed,
        description="secret-gated multiply over 2-limb arithmetic",
    )


def expected_mp_results(workload: Workload) -> list[int]:
    """Reference results for each run's key."""
    base = DEFAULT_MP_BASE % MERSENNE_127
    return [mp_modexp_reference(base, patches["key"])
            for patches in workload.inputs]


_MULMOD_SELFTEST = """
.data
ops:      .zero {ops_bytes}     # n_sets * 4 dwords: a_lo, a_hi, b_lo, b_hi
results:  .zero {res_bytes}     # n_sets * 2 dwords

.text
main:
    li   s6, 0
    la   s1, ops
    la   s2, results
loop:
    slli t0, s6, 5
    add  t0, t0, s1
    ld   a0, 0(t0)
    ld   a1, 8(t0)
    ld   a2, 16(t0)
    ld   a3, 24(t0)
    call mp_mulmod
    slli t0, s6, 4
    add  t0, t0, s2
    sd   a0, 0(t0)
    sd   a1, 8(t0)
    addi s6, s6, 1
    li   t0, {n_sets}
    blt  s6, t0, loop
    li   a0, 0
    li   a7, 93
    ecall
""" + _MP_MULMOD


def make_mulmod_selftest(operand_pairs) -> Workload:
    """A program that runs ``mp_mulmod`` over explicit operand pairs.

    Used by the test suite to fuzz the branchless multiply against Python's
    big integers, including the Mersenne fold edge cases.
    """
    n_sets = len(operand_pairs)
    blob = bytearray()
    for a, b in operand_pairs:
        for value in (a & ((1 << 64) - 1), a >> 64,
                      b & ((1 << 64) - 1), b >> 64):
            blob += value.to_bytes(8, "little")
    source = _MULMOD_SELFTEST.format(
        ops_bytes=32 * n_sets, res_bytes=16 * n_sets, n_sets=n_sets,
    )
    return Workload(name="mp-mulmod-selftest", source=source,
                    inputs=[{"ops": bytes(blob)}],
                    description="mp_mulmod fuzz harness",
                    secret_regions=["ops"])
