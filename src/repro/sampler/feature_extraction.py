"""Correlation root-cause extraction (Section V-C3).

Once a unit shows high Cramér's V, two criteria isolate the responsible
microarchitectural features:

*feature uniqueness* — values (addresses, PCs, activity) present in one class
but absent from every other class;

*feature ordering* — first-occurrence orderings of the values *common to all
classes* that appear exclusively in one class, revealing scheduling or
allocation differences even when the value sets are identical.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.trace.tracer import IterationRecord


@dataclass
class UniquenessReport:
    """Per-class unique values for one feature."""

    feature_id: str
    #: class label -> values observed only under that label.
    unique_values: dict = field(default_factory=dict)
    #: values observed under every label.
    common_values: frozenset = frozenset()

    @property
    def has_unique_features(self) -> bool:
        return any(self.unique_values.values())


@dataclass
class OrderingReport:
    """Per-class exclusive orderings for one feature."""

    feature_id: str
    #: class label -> Counter of restricted orderings seen only in that class.
    exclusive_orderings: dict = field(default_factory=dict)

    @property
    def has_ordering_mismatch(self) -> bool:
        return any(self.exclusive_orderings.values())


def _values_by_class(iterations: list[IterationRecord], feature_id: str) -> dict:
    by_class: dict = {}
    for record in iterations:
        data = record.features[feature_id]
        by_class.setdefault(record.label, set()).update(data.values)
    return by_class


def feature_uniqueness(iterations: list[IterationRecord],
                       feature_id: str) -> UniquenessReport:
    """Values present in exactly one class (Section V-C3, criterion 1)."""
    by_class = _values_by_class(iterations, feature_id)
    if not by_class:
        return UniquenessReport(feature_id=feature_id)
    labels = sorted(by_class)
    common = set.intersection(*(by_class[label] for label in labels))
    unique = {}
    for label in labels:
        if len(labels) < 2:
            # Uniqueness is a between-class notion; with a single class
            # there is nothing to contrast against.
            unique[label] = frozenset()
            continue
        others = set().union(
            *(by_class[other] for other in labels if other != label)
        )
        unique[label] = frozenset(by_class[label] - others)
    return UniquenessReport(
        feature_id=feature_id,
        unique_values=unique,
        common_values=frozenset(common),
    )


def feature_ordering(iterations: list[IterationRecord],
                     feature_id: str) -> OrderingReport:
    """Orderings of common values exclusive to one class (criterion 2).

    Each iteration contributes the first-occurrence order of the feature's
    values, restricted to values common to all classes so that pure ordering
    differences are separated from uniqueness differences.  Orderings that
    occur in exactly one class are reported.
    """
    uniqueness = feature_uniqueness(iterations, feature_id)
    common = uniqueness.common_values
    orderings_by_class: dict = {}
    for record in iterations:
        data = record.features[feature_id]
        restricted = tuple(v for v in data.order if v in common)
        orderings_by_class.setdefault(record.label, Counter())[restricted] += 1
    labels = sorted(orderings_by_class)
    exclusive = {}
    for label in labels:
        if len(labels) < 2:
            # Like uniqueness, exclusivity is a between-class notion.
            exclusive[label] = Counter()
            continue
        others = set().union(
            *(orderings_by_class[other].keys() for other in labels
              if other != label)
        )
        exclusive[label] = Counter({
            ordering: count
            for ordering, count in orderings_by_class[label].items()
            if ordering not in others
        })
    return OrderingReport(feature_id=feature_id, exclusive_orderings=exclusive)


@dataclass
class RootCauseReport:
    """Combined uniqueness + ordering extraction for one flagged unit."""

    feature_id: str
    uniqueness: UniquenessReport
    ordering: OrderingReport

    def summary(self) -> str:
        lines = [f"[{self.feature_id}]"]
        for label, values in sorted(self.uniqueness.unique_values.items()):
            if values:
                rendered = ", ".join(f"{v:#x}" for v in sorted(values)[:8])
                extra = "" if len(values) <= 8 else f" (+{len(values) - 8} more)"
                lines.append(f"  class {label}: unique features {rendered}{extra}")
        for label, orderings in sorted(self.ordering.exclusive_orderings.items()):
            if orderings:
                lines.append(
                    f"  class {label}: {sum(orderings.values())} iterations with "
                    f"{len(orderings)} class-exclusive ordering(s)"
                )
        if len(lines) == 1:
            lines.append("  no unique features or ordering mismatches")
        return "\n".join(lines)


def extract_root_causes(iterations: list[IterationRecord],
                        feature_id: str) -> RootCauseReport:
    """Run both extraction criteria for one flagged feature."""
    return RootCauseReport(
        feature_id=feature_id,
        uniqueness=feature_uniqueness(iterations, feature_id),
        ordering=feature_ordering(iterations, feature_id),
    )
