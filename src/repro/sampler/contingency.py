"""Contingency tables over iteration-snapshot hashes (Section V-C1).

Rows are output classes (e.g. key bit 0/1); columns are the unique snapshot
hashes observed for one microarchitectural feature; cells count how often
each hash occurred for each class — exactly Table II of the paper.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass


@dataclass(frozen=True)
class ContingencyTable:
    """Class-by-hash frequency table."""

    classes: tuple
    hashes: tuple
    counts: tuple  # counts[i][j] = occurrences of hashes[j] in classes[i]

    @property
    def n_rows(self) -> int:
        return len(self.classes)

    @property
    def n_cols(self) -> int:
        return len(self.hashes)

    @property
    def total(self) -> int:
        return sum(sum(row) for row in self.counts)

    def row_totals(self) -> tuple:
        return tuple(sum(row) for row in self.counts)

    def column_totals(self) -> tuple:
        return tuple(
            sum(self.counts[i][j] for i in range(self.n_rows))
            for j in range(self.n_cols)
        )

    def is_degenerate(self) -> bool:
        """True when association is undefined (one class or one hash)."""
        return self.n_rows < 2 or self.n_cols < 2

    def render(self, max_columns: int = 8) -> str:
        """Human-readable rendering (for reports and examples)."""
        shown = min(self.n_cols, max_columns)
        header = ["class \\ hash"] + [
            f"{self.hashes[j]:#018x}"[:10] for j in range(shown)
        ]
        if shown < self.n_cols:
            header.append(f"... (+{self.n_cols - shown})")
        lines = ["  ".join(header)]
        for i, cls in enumerate(self.classes):
            row = [f"{cls!s:>12}"] + [f"{self.counts[i][j]:>10}" for j in range(shown)]
            lines.append("  ".join(row))
        return "\n".join(lines)


def build_contingency_table(labels, hashes) -> ContingencyTable:
    """Build a contingency table from parallel (label, hash) observations."""
    if len(labels) != len(hashes):
        raise ValueError("labels and hashes must have equal length")
    class_values = sorted(set(labels))
    hash_values = sorted(set(hashes))
    hash_index = {h: j for j, h in enumerate(hash_values)}
    class_index = {c: i for i, c in enumerate(class_values)}
    counts = [[0] * len(hash_values) for _ in class_values]
    for label, snapshot_hash in zip(labels, hashes):
        counts[class_index[label]][hash_index[snapshot_hash]] += 1
    return ContingencyTable(
        classes=tuple(class_values),
        hashes=tuple(hash_values),
        counts=tuple(tuple(row) for row in counts),
    )


def hash_frequency(labels, hashes) -> dict:
    """Per-class Counter of hash frequencies (diagnostic helper)."""
    out: dict = {}
    for label, snapshot_hash in zip(labels, hashes):
        out.setdefault(label, Counter())[snapshot_hash] += 1
    return out
