"""Fast-forward checkpointing: functional warm-up to ``roi.begin``.

Campaign analysis only consumes the ``roi.begin``/``roi.end`` window, yet
every run used to pay full cycle-accurate simulation for the program's
bootstrap — key and buffer setup, copy loops, library-style initialisation.
This module runs that prefix on the fast functional interpreter instead,
captures the architectural state just before the ROI, and lets the
out-of-order core start from there (``Core.restore_architectural_state``).

Because the checkpoint is purely architectural, restoring it discards the
microarchitectural residue the skipped instructions would have left (D-cache
and TLB residency, predictor training, L2 contents).  The *warm-up budget*
controls how much of that residue is reconstructed: the last
``warmup_insts`` pre-ROI instructions are excluded from the checkpoint and
replayed cycle-accurately — and untraced, since the tracer samples nothing
outside an open iteration window — before the ROI begins.

* ``warmup_insts=None`` ("full"): no checkpointing at all; today's behaviour,
  bit-identical by construction.
* ``warmup_insts=0`` ("none"): jump straight to ``roi.begin`` on a cold
  core.  Fastest, but verdicts can shift for workloads whose first
  iterations measurably depend on bootstrap-warmed state.
* ``warmup_insts=N``: checkpoint ``N`` instructions short of ``roi.begin``.
  When ``N`` covers the whole prologue the checkpoint degenerates to step 0
  and the run is bit-identical to full simulation (the default setting does
  exactly this for every bundled workload).

Checkpoints are content-addressed over the patched program image, the
memory map and the warm-up budget — the core configuration is irrelevant to
an architectural checkpoint, so every core config shares the same entry —
and stored alongside the trace cache so reruns and ``--jobs`` workers reuse
them.  The cross-config sweep engine (:mod:`repro.sampler.sweep`) leans on
that sharing directly: the first config leg captures, every later leg's
prepass degenerates to store loads.  The behaviour is pinned by
``tests/test_config_sweep.py`` (capture under one config, hit under
another), so changing :func:`checkpoint_key` to include configuration
state is a breaking change, not a cleanup.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path

import repro
from repro.isa.assembler import Program
from repro.isa.interpreter import ExecutionError, Interpreter
from repro.kernel.memory_map import MemoryMap
from repro.kernel.proxy_kernel import ProxyKernel, SyscallError
from repro.util.hashing import stable_hex_digest

#: Bump when the checkpoint payload layout or key canonicalization changes.
#: Version history: 1 = original layout; 2 = lockstep batch capture
#: (``batch_lanes`` joined the key material, so batched and per-input
#: captures — bit-identical by the differential test battery, but produced
#: by different code paths — never share an entry).
CHECKPOINT_FORMAT_VERSION = 2

#: Default warm-up budget (instructions replayed cycle-accurately before the
#: ROI).  Generous enough to cover every bundled workload's prologue, so the
#: default is bit-identical to full simulation while still fast-forwarding
#: bootstrap-heavy programs.
DEFAULT_WARMUP_INSTS = 512

#: Guard for the functional passes: a program that cannot reach
#: ``roi.begin`` within this many steps is simulated in full instead.
MAX_CAPTURE_STEPS = 10_000_000


def parse_warmup(text: str) -> int | None:
    """Parse a ``--warmup-insts`` value: ``full`` | ``none`` | N."""
    lowered = text.strip().lower()
    if lowered == "full":
        return None
    if lowered == "none":
        return 0
    value = int(lowered)  # ValueError propagates (argparse renders it)
    if value < 0:
        raise ValueError(f"warm-up budget must be >= 0, got {value}")
    return value


def describe_warmup(warmup_insts: int | None) -> str:
    if warmup_insts is None:
        return "full"
    if warmup_insts == 0:
        return "none"
    return f"{warmup_insts} insts"


@dataclass(frozen=True)
class Checkpoint:
    """Architectural state at a pre-ROI program point.

    ``steps`` is how many instructions the functional interpreter executed
    to reach this state; ``pre_roi_steps`` is the full distance to
    ``roi.begin`` (so ``pre_roi_steps - steps`` instructions remain for the
    cycle-accurate warm-up replay).  ``pages`` holds only the pages the
    program dirtied relative to the pristine image, as ``(base, bytes)``.
    """

    pc: int
    regs: tuple  # 32 architectural registers (x0 included, always 0)
    pages: tuple  # ((page_base, payload), ...) sorted by base
    console: bytes
    brk: int
    steps: int
    pre_roi_steps: int


def checkpoint_key(program: Program, memory_map: MemoryMap | None,
                   warmup_insts: int,
                   batch_lanes: int | None = None) -> str:
    """Content-addressed key for a (program, memory map, warm-up) triple.

    ``batch_lanes`` records which execution mode produced the entry
    (``None`` = scalar per-input capture, ``N`` = lockstep batch capture at
    that width).  Captures are bit-identical across modes — the batch
    differential tests enforce that — but the producing code paths differ,
    so they deliberately do not share cache entries.
    """
    # Imported lazily: trace_cache imports exec_backend at module scope, and
    # exec_backend reaches back into this module from its worker path.
    from repro.sampler.trace_cache import program_fingerprint

    material = (
        CHECKPOINT_FORMAT_VERSION,
        getattr(repro, "__version__", "0"),
        program_fingerprint(program),
        dataclasses.asdict(memory_map) if memory_map else None,
        warmup_insts,
        batch_lanes,
    )
    return stable_hex_digest(material)


def capture_checkpoint(program: Program, *,
                       memory_map: MemoryMap | None = None,
                       warmup_insts: int = 0,
                       max_steps: int = MAX_CAPTURE_STEPS) -> Checkpoint | None:
    """Functionally execute ``program`` and checkpoint it before the ROI.

    Returns None when fast-forwarding is not applicable: the program emits
    no ``roi.begin``, halts first, traps, or exceeds ``max_steps``.  Callers
    fall back to full cycle-accurate simulation in that case.
    """
    mm = memory_map or MemoryMap()

    # Pass A: locate roi.begin (first marker wins, matching the tracer's
    # roi_seen latch).  The scout run needs no dirty-page tracking.
    scout_kernel = ProxyKernel(memory_map=mm)
    scout = Interpreter(program, memory_map=mm,
                        syscall_handler=scout_kernel.handle_ecall)
    try:
        while not scout.halted and scout.steps < max_steps:
            inst = program.instruction_at(scout.pc)
            if inst is not None and inst.mnemonic == "roi.begin":
                break
            scout.step()
        else:
            return None  # halted or budget exceeded before any roi.begin
    except (ExecutionError, SyscallError):
        return None
    pre_roi_steps = scout.steps
    target = max(0, pre_roi_steps - warmup_insts)

    # Pass B: re-execute to the checkpoint point with dirty-page tracking
    # and kernel state capture.  Deterministic, so no surprises vs pass A.
    kernel = ProxyKernel(memory_map=mm)
    interp = Interpreter(program, memory_map=mm,
                         syscall_handler=kernel.handle_ecall,
                         track_dirty_pages=True)
    interp.run_until(target)
    console, brk = kernel.checkpoint_state()
    page_size = mm.page_size
    pages = tuple(
        (base, interp.memory.read_bytes(base, page_size))
        for base in sorted(interp.memory.dirty_pages)
    )
    return Checkpoint(
        pc=interp.pc,
        regs=tuple(interp.read_reg(i) for i in range(32)),
        pages=pages,
        console=console,
        brk=brk,
        steps=interp.steps,
        pre_roi_steps=pre_roi_steps,
    )


def capture_checkpoints_batch(programs: list[Program], *,
                              memory_map: MemoryMap | None = None,
                              warmup_insts: int = 0,
                              max_steps: int = MAX_CAPTURE_STEPS) -> tuple:
    """Capture all N lanes' checkpoints in one lockstep pass.

    The batched equivalent of calling :func:`capture_checkpoint` once per
    program: returns ``(checkpoints, divergences)`` where ``checkpoints[i]``
    is bit-identical to the per-input capture for ``programs[i]`` (or None
    when fast-forwarding is not applicable to that lane).  Lanes whose
    prologue diverges from lane 0's — a data-dependent bootstrap, itself
    worth surfacing — fall back to scalar capture individually and the
    :class:`~repro.isa.batch_interpreter.DivergenceEvent`\\ s are returned.

    ``programs`` must share one instruction stream (``patch_program``
    copies of a single assembled program).
    """
    from repro.isa.batch_interpreter import BatchInterpreter

    results: list[Checkpoint | None] = [None] * len(programs)
    if not programs:
        return results, []
    mm = memory_map or MemoryMap()

    def scalar(lane: int) -> Checkpoint | None:
        return capture_checkpoint(programs[lane], memory_map=mm,
                                  warmup_insts=warmup_insts,
                                  max_steps=max_steps)

    # Pass A: batched scout to the first roi.begin.
    scout = BatchInterpreter(programs, memory_map=mm,
                             kernels=[ProxyKernel(memory_map=mm)
                                      for _ in programs])
    try:
        found = scout.run_to_marker("roi.begin", max_steps)
    except (ExecutionError, SyscallError):
        # A lockstep trap hits every batched lane identically; re-derive
        # each lane's outcome through the scalar path (split lanes may
        # still checkpoint fine).
        return [scalar(lane) for lane in range(len(programs))], \
            list(scout.divergences)
    divergences = list(scout.divergences)
    for lane in scout.scalar_lanes:
        results[lane] = scalar(lane)
    if not found:
        return results, divergences  # batched lanes halted before roi.begin
    pre_roi_steps = scout.steps
    target = max(0, pre_roi_steps - warmup_insts)

    # Pass B: batched re-execution to the checkpoint point with dirty-page
    # tracking and per-lane kernel state capture.  The replay covers a
    # prefix of the scout's lockstep execution over exactly the lanes that
    # stayed batched, so it cannot diverge; the lane accessors below would
    # remain correct even if it somehow did.
    batched = [lane for lane in range(len(programs))
               if lane not in scout.scalar_lanes]
    kernels = [ProxyKernel(memory_map=mm) for _ in batched]
    replay = BatchInterpreter([programs[lane] for lane in batched],
                              memory_map=mm, kernels=kernels,
                              track_dirty_pages=True)
    try:
        replay.run_until(target)
    except (ExecutionError, SyscallError):  # pragma: no cover - scout ran it
        for lane in batched:
            results[lane] = scalar(lane)
        return results, divergences
    page_size = mm.page_size
    for local, lane in enumerate(batched):
        interp = replay.lane_interpreter(local)
        kernel_state = (kernels[local].checkpoint_state()
                        if interp is None else None)
        if interp is not None:  # pragma: no cover - replay cannot diverge
            results[lane] = scalar(lane)
            continue
        console, brk = kernel_state
        results[lane] = Checkpoint(
            pc=replay.lane_pc(local),
            regs=replay.lane_regs(local),
            pages=tuple(
                (base, replay.lane_read_bytes(local, base, page_size))
                for base in sorted(replay.lane_dirty_pages(local))
            ),
            console=console,
            brk=brk,
            steps=replay.lane_steps(local),
            pre_roi_steps=pre_roi_steps,
        )
    return results, divergences


def _checkpoint_to_payload(checkpoint: Checkpoint) -> tuple:
    return (
        CHECKPOINT_FORMAT_VERSION,
        checkpoint.pc,
        checkpoint.regs,
        checkpoint.pages,
        checkpoint.console,
        checkpoint.brk,
        checkpoint.steps,
        checkpoint.pre_roi_steps,
    )


def _checkpoint_from_payload(payload: tuple) -> Checkpoint | None:
    if not isinstance(payload, tuple) or len(payload) != 8:
        return None
    if payload[0] != CHECKPOINT_FORMAT_VERSION:
        return None
    _, pc, regs, pages, console, brk, steps, pre_roi_steps = payload
    return Checkpoint(pc=pc, regs=regs, pages=pages, console=console,
                      brk=brk, steps=steps, pre_roi_steps=pre_roi_steps)


class CheckpointStore:
    """Filesystem-backed checkpoint cache, sharing the trace-cache root.

    Same contract as :class:`~repro.sampler.trace_cache.TraceCache`: lookups
    and stores never raise on I/O problems, and any unreadable, corrupt or
    version-mismatched entry is a miss.  Entries live one file per key under
    ``root/<key[:2]>/<key>.ckpt``.
    """

    SUBDIR = "checkpoints"

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @classmethod
    def for_cache_root(cls, cache_root: str | Path) -> "CheckpointStore":
        return cls(Path(cache_root) / cls.SUBDIR)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.ckpt"

    def load(self, key: str) -> Checkpoint | None:
        try:
            raw = self._path(key).read_bytes()
            checkpoint = _checkpoint_from_payload(pickle.loads(raw))
        except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                TypeError, AttributeError, ImportError, IndexError):
            checkpoint = None
        if checkpoint is None:
            self.misses += 1
        else:
            self.hits += 1
        return checkpoint

    def store(self, key: str, checkpoint: Checkpoint) -> bool:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = pickle.dumps(_checkpoint_to_payload(checkpoint),
                                   protocol=pickle.HIGHEST_PROTOCOL)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                            prefix=f".{key}.")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        self.stores += 1
        return True


def load_or_capture(program: Program, *,
                    memory_map: MemoryMap | None = None,
                    warmup_insts: int = 0,
                    store: CheckpointStore | None = None,
                    batch_lanes: int | None = None,
                    max_steps: int = MAX_CAPTURE_STEPS) -> Checkpoint | None:
    """Fetch a checkpoint from ``store`` or capture (and persist) one.

    A missing ``roi.begin`` is not cached as a negative entry: programs
    without markers re-run the (cheap, aborted) scout pass each time.
    ``batch_lanes`` only keys the lookup (a worker falling back after the
    batch prepass skipped a lane must address the same entry the prepass
    would have written); the capture itself is always scalar here.
    """
    key = None
    if store is not None:
        key = checkpoint_key(program, memory_map, warmup_insts,
                             batch_lanes=batch_lanes)
        cached = store.load(key)
        if cached is not None:
            return cached
    checkpoint = capture_checkpoint(program, memory_map=memory_map,
                                    warmup_insts=warmup_insts,
                                    max_steps=max_steps)
    if checkpoint is not None and store is not None:
        store.store(key, checkpoint)
    return checkpoint
