"""Fast-forward checkpointing: functional warm-up to ``roi.begin``.

Campaign analysis only consumes the ``roi.begin``/``roi.end`` window, yet
every run used to pay full cycle-accurate simulation for the program's
bootstrap — key and buffer setup, copy loops, library-style initialisation.
This module runs that prefix on the fast functional interpreter instead,
captures the architectural state just before the ROI, and lets the
out-of-order core start from there (``Core.restore_architectural_state``).

Because the checkpoint is purely architectural, restoring it discards the
microarchitectural residue the skipped instructions would have left (D-cache
and TLB residency, predictor training, L2 contents).  The *warm-up budget*
controls how much of that residue is reconstructed: the last
``warmup_insts`` pre-ROI instructions are excluded from the checkpoint and
replayed cycle-accurately — and untraced, since the tracer samples nothing
outside an open iteration window — before the ROI begins.

* ``warmup_insts=None`` ("full"): no checkpointing at all; today's behaviour,
  bit-identical by construction.
* ``warmup_insts=0`` ("none"): jump straight to ``roi.begin`` on a cold
  core.  Fastest, but verdicts can shift for workloads whose first
  iterations measurably depend on bootstrap-warmed state.
* ``warmup_insts=N``: checkpoint ``N`` instructions short of ``roi.begin``.
  When ``N`` covers the whole prologue the checkpoint degenerates to step 0
  and the run is bit-identical to full simulation (the default setting does
  exactly this for every bundled workload).

Checkpoints are content-addressed over the patched program image, the
memory map and the warm-up budget — the core configuration is irrelevant to
an architectural checkpoint, so every core config shares the same entry —
and stored alongside the trace cache so reruns and ``--jobs`` workers reuse
them.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path

import repro
from repro.isa.assembler import Program
from repro.isa.interpreter import ExecutionError, Interpreter
from repro.kernel.memory_map import MemoryMap
from repro.kernel.proxy_kernel import ProxyKernel, SyscallError
from repro.util.hashing import stable_hex_digest

#: Bump when the checkpoint payload layout or key canonicalization changes.
CHECKPOINT_FORMAT_VERSION = 1

#: Default warm-up budget (instructions replayed cycle-accurately before the
#: ROI).  Generous enough to cover every bundled workload's prologue, so the
#: default is bit-identical to full simulation while still fast-forwarding
#: bootstrap-heavy programs.
DEFAULT_WARMUP_INSTS = 512

#: Guard for the functional passes: a program that cannot reach
#: ``roi.begin`` within this many steps is simulated in full instead.
MAX_CAPTURE_STEPS = 10_000_000


def parse_warmup(text: str) -> int | None:
    """Parse a ``--warmup-insts`` value: ``full`` | ``none`` | N."""
    lowered = text.strip().lower()
    if lowered == "full":
        return None
    if lowered == "none":
        return 0
    value = int(lowered)  # ValueError propagates (argparse renders it)
    if value < 0:
        raise ValueError(f"warm-up budget must be >= 0, got {value}")
    return value


def describe_warmup(warmup_insts: int | None) -> str:
    if warmup_insts is None:
        return "full"
    if warmup_insts == 0:
        return "none"
    return f"{warmup_insts} insts"


@dataclass(frozen=True)
class Checkpoint:
    """Architectural state at a pre-ROI program point.

    ``steps`` is how many instructions the functional interpreter executed
    to reach this state; ``pre_roi_steps`` is the full distance to
    ``roi.begin`` (so ``pre_roi_steps - steps`` instructions remain for the
    cycle-accurate warm-up replay).  ``pages`` holds only the pages the
    program dirtied relative to the pristine image, as ``(base, bytes)``.
    """

    pc: int
    regs: tuple  # 32 architectural registers (x0 included, always 0)
    pages: tuple  # ((page_base, payload), ...) sorted by base
    console: bytes
    brk: int
    steps: int
    pre_roi_steps: int


def checkpoint_key(program: Program, memory_map: MemoryMap | None,
                   warmup_insts: int) -> str:
    """Content-addressed key for a (program, memory map, warm-up) triple."""
    # Imported lazily: trace_cache imports exec_backend at module scope, and
    # exec_backend reaches back into this module from its worker path.
    from repro.sampler.trace_cache import program_fingerprint

    material = (
        CHECKPOINT_FORMAT_VERSION,
        getattr(repro, "__version__", "0"),
        program_fingerprint(program),
        dataclasses.asdict(memory_map) if memory_map else None,
        warmup_insts,
    )
    return stable_hex_digest(material)


def capture_checkpoint(program: Program, *,
                       memory_map: MemoryMap | None = None,
                       warmup_insts: int = 0,
                       max_steps: int = MAX_CAPTURE_STEPS) -> Checkpoint | None:
    """Functionally execute ``program`` and checkpoint it before the ROI.

    Returns None when fast-forwarding is not applicable: the program emits
    no ``roi.begin``, halts first, traps, or exceeds ``max_steps``.  Callers
    fall back to full cycle-accurate simulation in that case.
    """
    mm = memory_map or MemoryMap()

    # Pass A: locate roi.begin (first marker wins, matching the tracer's
    # roi_seen latch).  The scout run needs no dirty-page tracking.
    scout_kernel = ProxyKernel(memory_map=mm)
    scout = Interpreter(program, memory_map=mm,
                        syscall_handler=scout_kernel.handle_ecall)
    try:
        while not scout.halted and scout.steps < max_steps:
            inst = program.instruction_at(scout.pc)
            if inst is not None and inst.mnemonic == "roi.begin":
                break
            scout.step()
        else:
            return None  # halted or budget exceeded before any roi.begin
    except (ExecutionError, SyscallError):
        return None
    pre_roi_steps = scout.steps
    target = max(0, pre_roi_steps - warmup_insts)

    # Pass B: re-execute to the checkpoint point with dirty-page tracking
    # and kernel state capture.  Deterministic, so no surprises vs pass A.
    kernel = ProxyKernel(memory_map=mm)
    interp = Interpreter(program, memory_map=mm,
                         syscall_handler=kernel.handle_ecall,
                         track_dirty_pages=True)
    interp.run_until(target)
    console, brk = kernel.checkpoint_state()
    page_size = mm.page_size
    pages = tuple(
        (base, interp.memory.read_bytes(base, page_size))
        for base in sorted(interp.memory.dirty_pages)
    )
    return Checkpoint(
        pc=interp.pc,
        regs=tuple(interp.read_reg(i) for i in range(32)),
        pages=pages,
        console=console,
        brk=brk,
        steps=interp.steps,
        pre_roi_steps=pre_roi_steps,
    )


def _checkpoint_to_payload(checkpoint: Checkpoint) -> tuple:
    return (
        CHECKPOINT_FORMAT_VERSION,
        checkpoint.pc,
        checkpoint.regs,
        checkpoint.pages,
        checkpoint.console,
        checkpoint.brk,
        checkpoint.steps,
        checkpoint.pre_roi_steps,
    )


def _checkpoint_from_payload(payload: tuple) -> Checkpoint | None:
    if not isinstance(payload, tuple) or len(payload) != 8:
        return None
    if payload[0] != CHECKPOINT_FORMAT_VERSION:
        return None
    _, pc, regs, pages, console, brk, steps, pre_roi_steps = payload
    return Checkpoint(pc=pc, regs=regs, pages=pages, console=console,
                      brk=brk, steps=steps, pre_roi_steps=pre_roi_steps)


class CheckpointStore:
    """Filesystem-backed checkpoint cache, sharing the trace-cache root.

    Same contract as :class:`~repro.sampler.trace_cache.TraceCache`: lookups
    and stores never raise on I/O problems, and any unreadable, corrupt or
    version-mismatched entry is a miss.  Entries live one file per key under
    ``root/<key[:2]>/<key>.ckpt``.
    """

    SUBDIR = "checkpoints"

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @classmethod
    def for_cache_root(cls, cache_root: str | Path) -> "CheckpointStore":
        return cls(Path(cache_root) / cls.SUBDIR)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.ckpt"

    def load(self, key: str) -> Checkpoint | None:
        try:
            raw = self._path(key).read_bytes()
            checkpoint = _checkpoint_from_payload(pickle.loads(raw))
        except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                TypeError, AttributeError, ImportError, IndexError):
            checkpoint = None
        if checkpoint is None:
            self.misses += 1
        else:
            self.hits += 1
        return checkpoint

    def store(self, key: str, checkpoint: Checkpoint) -> bool:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = pickle.dumps(_checkpoint_to_payload(checkpoint),
                                   protocol=pickle.HIGHEST_PROTOCOL)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                            prefix=f".{key}.")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        self.stores += 1
        return True


def load_or_capture(program: Program, *,
                    memory_map: MemoryMap | None = None,
                    warmup_insts: int = 0,
                    store: CheckpointStore | None = None,
                    max_steps: int = MAX_CAPTURE_STEPS) -> Checkpoint | None:
    """Fetch a checkpoint from ``store`` or capture (and persist) one.

    A missing ``roi.begin`` is not cached as a negative entry: programs
    without markers re-run the (cheap, aborted) scout pass each time.
    """
    key = None
    if store is not None:
        key = checkpoint_key(program, memory_map, warmup_insts)
        cached = store.load(key)
        if cached is not None:
            return cached
    checkpoint = capture_checkpoint(program, memory_map=memory_map,
                                    warmup_insts=warmup_insts,
                                    max_steps=max_steps)
    if checkpoint is not None and store is not None:
        store.store(key, checkpoint)
    return checkpoint
