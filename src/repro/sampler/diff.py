"""Differential verification: compare verdicts across two core designs.

The fast-bypass case study's workflow — "this code was clean on design A;
does optimization B break it?" — generalizes to any pair of configurations.
:func:`diff_configs` runs one workload on both designs and reports, per
unit, how the measured association moved and which units' verdicts flipped,
so a hardware change's leakage impact is a single readable table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sampler.pipeline import MicroSampler
from repro.uarch.config import CoreConfig


@dataclass
class UnitDelta:
    """Per-unit association change between two designs."""

    feature_id: str
    v_baseline: float
    v_candidate: float
    leaky_baseline: bool
    leaky_candidate: bool

    @property
    def regressed(self) -> bool:
        return self.leaky_candidate and not self.leaky_baseline

    @property
    def improved(self) -> bool:
        return self.leaky_baseline and not self.leaky_candidate


@dataclass
class ConfigDiff:
    """Full differential verdict for one workload across two designs."""

    workload_name: str
    baseline_name: str
    candidate_name: str
    deltas: list = field(default_factory=list)

    @property
    def regressions(self) -> list:
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> list:
        return [d for d in self.deltas if d.improved]

    @property
    def candidate_safe(self) -> bool:
        """True when the candidate design introduces no new leaky unit."""
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"Differential verification of {self.workload_name!r}:",
            f"  baseline  = {self.baseline_name}",
            f"  candidate = {self.candidate_name}",
            "",
            f"{'unit':<14} {'V base':>7} {'V cand':>7}  change",
            "-" * 52,
        ]
        for delta in self.deltas:
            if delta.regressed:
                change = "REGRESSION (now leaks)"
            elif delta.improved:
                change = "improved (no longer leaks)"
            elif delta.leaky_candidate:
                change = "leaks on both"
            else:
                change = ""
            lines.append(f"{delta.feature_id:<14} {delta.v_baseline:>7.3f} "
                         f"{delta.v_candidate:>7.3f}  {change}")
        lines.append("-" * 52)
        if self.candidate_safe:
            lines.append("VERDICT: the candidate design introduces no new "
                         "secret-correlated unit")
        else:
            names = ", ".join(d.feature_id for d in self.regressions)
            lines.append(f"VERDICT: candidate design REGRESSES constant-time "
                         f"behaviour ({names})")
        return "\n".join(lines)


def diff_configs(workload, baseline: CoreConfig, candidate: CoreConfig, *,
                 sampler_kwargs: dict | None = None) -> ConfigDiff:
    """Analyze ``workload`` on both designs and diff the verdicts."""
    kwargs = sampler_kwargs or {}
    base_report = MicroSampler(baseline, **kwargs).analyze(workload)
    cand_report = MicroSampler(candidate, **kwargs).analyze(workload)
    diff = ConfigDiff(
        workload_name=workload.name,
        baseline_name=baseline.name + (" +fb" if baseline.fast_bypass else ""),
        candidate_name=candidate.name + (" +fb" if candidate.fast_bypass
                                         else ""),
    )
    for feature_id, base_unit in base_report.units.items():
        cand_unit = cand_report.units[feature_id]
        diff.deltas.append(UnitDelta(
            feature_id=feature_id,
            v_baseline=base_unit.association.cramers_v,
            v_candidate=cand_unit.association.cramers_v,
            leaky_baseline=base_unit.leaky,
            leaky_candidate=cand_unit.leaky,
        ))
    return diff
