"""MicroSampler: statistical microarchitecture-level leakage detection.

The paper's core contribution (Figure 1): run constant-time code on the
cycle-accurate core, hash per-iteration microarchitectural snapshots, build
contingency tables against secret classes, measure association with
chi-squared / Cramér's V, and extract root-cause features for flagged units.
"""

from repro.sampler.audit import (
    AuditEntry,
    AuditResult,
    audit_to_dict,
    run_audit,
)
from repro.sampler.batch import (
    DEFAULT_MAX_LANES,
    attach_batch_checkpoints,
    describe_batch_lanes,
    parse_batch_lanes,
    resolve_batch_lanes,
)
from repro.sampler.contingency import (
    ContingencyTable,
    build_contingency_table,
    hash_frequency,
)
from repro.sampler.diff import ConfigDiff, UnitDelta, diff_configs
from repro.sampler.exec_backend import (
    RunOutput,
    RunTask,
    execute_run,
    execute_tasks,
    resolve_jobs,
)
from repro.sampler.matrix import TraceMatrix, encode_column
from repro.sampler.stats_vec import (
    batched_association,
    chi_squared_from_counts,
    measure_association_counts,
)
from repro.sampler.feature_extraction import (
    OrderingReport,
    RootCauseReport,
    UniquenessReport,
    extract_root_causes,
    feature_ordering,
    feature_uniqueness,
)
from repro.sampler.mutual_information import (
    MutualInformationResult,
    measure_mutual_information,
    mutual_information,
    mutual_information_by_unit,
)
from repro.sampler.pipeline import (
    LeakageReport,
    MicroSampler,
    StageTimings,
    UnitResult,
    adaptive_analyze,
)
from repro.sampler.report import (
    render_bar_chart,
    render_histogram,
    render_report,
    report_to_dict,
)
from repro.sampler.sweep import (
    ConvergencePoint,
    ConvergenceSweep,
    SweepLeg,
    SweepPoint,
    SweepResult,
    significance_sweep,
    sweep_configs,
    sweep_to_dict,
)
from repro.sampler.runner import (
    CampaignResult,
    Workload,
    WorkloadError,
    patch_program,
    run_campaign,
)
from repro.sampler.trace_cache import TraceCache, task_key
from repro.sampler.stats import (
    SIGNIFICANCE_ALPHA,
    STRONG_ASSOCIATION_THRESHOLD,
    AssociationResult,
    chi_squared_p_value,
    chi_squared_statistic,
    cramers_v,
    cramers_v_corrected,
    measure_association,
)

__all__ = [
    "AssociationResult",
    "AuditEntry",
    "AuditResult",
    "audit_to_dict",
    "CampaignResult",
    "ConfigDiff",
    "DEFAULT_MAX_LANES",
    "ContingencyTable",
    "LeakageReport",
    "MicroSampler",
    "MutualInformationResult",
    "OrderingReport",
    "RootCauseReport",
    "SIGNIFICANCE_ALPHA",
    "STRONG_ASSOCIATION_THRESHOLD",
    "StageTimings",
    "UniquenessReport",
    "UnitResult",
    "Workload",
    "WorkloadError",
    "TraceMatrix",
    "adaptive_analyze",
    "attach_batch_checkpoints",
    "batched_association",
    "describe_batch_lanes",
    "parse_batch_lanes",
    "resolve_batch_lanes",
    "build_contingency_table",
    "chi_squared_from_counts",
    "encode_column",
    "measure_association_counts",
    "UnitDelta",
    "chi_squared_p_value",
    "chi_squared_statistic",
    "cramers_v",
    "cramers_v_corrected",
    "diff_configs",
    "extract_root_causes",
    "feature_ordering",
    "feature_uniqueness",
    "hash_frequency",
    "measure_association",
    "measure_mutual_information",
    "mutual_information",
    "mutual_information_by_unit",
    "patch_program",
    "render_bar_chart",
    "render_histogram",
    "render_report",
    "report_to_dict",
    "RunOutput",
    "RunTask",
    "ConvergencePoint",
    "ConvergenceSweep",
    "SweepLeg",
    "SweepPoint",
    "SweepResult",
    "sweep_configs",
    "sweep_to_dict",
    "TraceCache",
    "execute_run",
    "execute_tasks",
    "resolve_jobs",
    "significance_sweep",
    "run_audit",
    "run_campaign",
    "task_key",
]
