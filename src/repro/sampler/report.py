"""Rendering of analysis results: verdict tables and ASCII bar charts.

The benchmarks use :func:`render_bar_chart` to print the same per-unit
Cramér's V series the paper plots in Figures 3, 4, 7, 9 and 10.
"""

from __future__ import annotations

from repro.sampler.pipeline import LeakageReport


def render_report(report: LeakageReport, *, show_notiming: bool = False) -> str:
    """Render one campaign's verdicts as a fixed-width table."""
    lines = [
        f"MicroSampler report — workload={report.workload_name} "
        f"core={report.config_name}",
        f"iterations={report.n_iterations} classes={report.n_classes} "
        f"engine={report.engine}",
        "",
    ]
    show_mi = any(unit.mi is not None for unit in report.units.values())
    header = f"{'unit':<12} {'V':>6} {'p-value':>10} {'hashes':>7} {'flag':>6}"
    if show_notiming:
        header += f" {'V(no-t)':>8}"
    if show_mi:
        header += f" {'MI bits':>8} {'MI p':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for feature_id, unit in report.units.items():
        a = unit.association
        row = (f"{feature_id:<12} {a.cramers_v:>6.3f} {a.p_value:>10.3g} "
               f"{a.n_categories:>7} {'LEAK' if unit.leaky else '-':>6}")
        if show_notiming and unit.association_notiming is not None:
            row += f" {unit.association_notiming.cramers_v:>8.3f}"
        if show_mi:
            if unit.mi is not None:
                row += (f" {unit.mi.mutual_information_bits:>8.3f}"
                        f" {unit.mi.p_value:>8.3g}")
            else:
                row += f" {'-':>8} {'-':>8}"
        lines.append(row)
    lines.append("")
    if report.divergences:
        # Pre-ROI lockstep divergences are leak signals in their own right:
        # the bootstrap executed differently depending on the input.
        lines.append(f"DIVERGENT PROLOGUE ({len(report.divergences)} "
                     "lockstep divergence(s) before roi.begin):")
        for event in report.divergences:
            lines.append(f"  {event.describe()}")
        lines.append("")
    if report.taint is not None:
        lines.extend(_render_taint(report))
    if report.leakage_detected:
        lines.append(f"LEAKAGE DETECTED in: {', '.join(report.leaky_units)}")
    else:
        lines.append("No statistically significant correlation found.")
    if report.timings is not None:
        t = report.timings
        lines.append(
            f"stage times: simulate={t.simulate_seconds:.2f}s "
            f"parse={t.parse_seconds:.2f}s stats={t.stats_seconds:.2f}s "
            f"extract={t.extract_seconds:.2f}s"
        )
    if report.profile is not None:
        lines.append("")
        lines.append(report.profile.render())
    root_causes = [u.root_cause for u in report.units.values() if u.root_cause]
    if root_causes:
        lines.append("")
        lines.append("root-cause extraction:")
        for cause in root_causes:
            lines.append(cause.summary())
    return "\n".join(lines)


def _render_taint(report: LeakageReport) -> list[str]:
    """Taint-vs-statistics agreement block for :func:`render_report`."""
    taint = report.taint
    merged = taint.merged
    lines = ["taint prescreen (secret-taint publicness engine):"]
    lines.append(
        f"  seeded {taint.publicness.seed_bytes} secret byte(s) across "
        f"{len(taint.publicness.maps)} input(s); "
        f"{len(merged.tainted_pcs)}/{len(merged.executed_pcs)} executed "
        f"PC(s) touch secret data"
    )
    if merged.escalated:
        kinds = ", ".join(f"{kind}@pc={pc:#x}"
                          for pc, kind in merged.escalations)
        lines.append(f"  ESCALATED (secret-dependent control/address flow): "
                     f"{kinds}")
    else:
        lines.append("  no escalation: secret data never steered a branch, "
                     "address or syscall")
    if taint.pruned:
        lines.append(f"  pruned {len(taint.pruned)} unreachable unit(s): "
                     f"{', '.join(taint.pruned)}")
    if taint.agreement:
        lines.append(f"  {'unit':<12} {'taint-vs-stats':>14}")
        for feature_id, status in taint.agreement.items():
            marker = " <-- investigate" if status == "TAINT-DISAGREE" else ""
            lines.append(f"  {feature_id:<12} {status:>14}{marker}")
        if taint.disagreements:
            lines.append(
                f"  TAINT-DISAGREE on {len(taint.disagreements)} unit(s): "
                "statistics flagged a unit the taint engine proved "
                "secret-free — suspect the reachability table or the stats."
            )
    lines.append("")
    return lines


def taint_to_dict(taint) -> dict:
    """Serialize a :class:`~repro.sampler.pipeline.TaintSummary`."""
    merged = taint.merged
    return {
        "escalated": merged.escalated,
        "escalations": [[pc, kind] for pc, kind in merged.escalations],
        "seed_bytes": taint.publicness.seed_bytes,
        "steps": merged.steps,
        "n_executed_pcs": len(merged.executed_pcs),
        "n_tainted_pcs": len(merged.tainted_pcs),
        "n_tainted_mem_pcs": len(merged.tainted_mem_pcs),
        "n_tainted_branch_pcs": len(merged.tainted_branch_pcs),
        "n_tainted_div_pcs": len(merged.tainted_div_pcs),
        "n_transient_mem_pcs": len(merged.transient_mem_pcs),
        "pruned": sorted(taint.pruned),
        "reachable": sorted(taint.reachable),
        "agreement": dict(taint.agreement),
    }


def report_to_dict(report: LeakageReport) -> dict:
    """Serialize a :class:`LeakageReport` to plain JSON-compatible data.

    Intended for CI integration (``microsampler analyze --json``) and for
    archiving verdicts next to trace logs.
    """
    def association(a):
        if a is None:
            return None
        return {
            "cramers_v": a.cramers_v,
            "cramers_v_corrected": a.cramers_v_corrected,
            "chi_squared": a.chi_squared,
            "dof": a.dof,
            "p_value": a.p_value,
            "n_observations": a.n_observations,
            "n_categories": a.n_categories,
            "significant": a.significant,
            "leaky": a.leaky,
        }

    units = {}
    for feature_id, unit in report.units.items():
        entry = {
            "association": association(unit.association),
            "association_notiming": association(unit.association_notiming),
            "leaky": unit.leaky,
        }
        if unit.mi is not None:
            entry["mi"] = {
                "mutual_information_bits": unit.mi.mutual_information_bits,
                "label_entropy_bits": unit.mi.label_entropy_bits,
                "leakage_fraction": unit.mi.leakage_fraction,
                "p_value": unit.mi.p_value,
                "leaky": unit.mi.leaky,
            }
        if unit.root_cause is not None:
            entry["root_cause"] = {
                "unique_values": {
                    str(label): sorted(values)
                    for label, values in
                    unit.root_cause.uniqueness.unique_values.items()
                },
                "n_common_values":
                    len(unit.root_cause.uniqueness.common_values),
                "exclusive_ordering_counts": {
                    str(label): sum(counter.values())
                    for label, counter in
                    unit.root_cause.ordering.exclusive_orderings.items()
                },
            }
        units[feature_id] = entry
    payload = {
        "workload": report.workload_name,
        "config": report.config_name,
        "engine": report.engine,
        "n_iterations": report.n_iterations,
        "n_classes": report.n_classes,
        "leakage_detected": report.leakage_detected,
        "leaky_units": report.leaky_units,
        # Always present (empty when batching is off or lockstep held), so
        # batched and scalar runs of a lockstep workload serialize
        # identically — the campaign-differential tests compare these dicts.
        "divergences": [
            {
                "pc": event.pc,
                "step": event.step,
                "kind": event.kind,
                "mnemonic": event.mnemonic,
                "lanes": list(event.lanes),
            }
            for event in report.divergences
        ],
        "units": units,
    }
    if report.timings is not None:
        payload["timings_seconds"] = {
            "simulate": report.timings.simulate_seconds,
            "parse": report.timings.parse_seconds,
            "stats": report.timings.stats_seconds,
            "extract": report.timings.extract_seconds,
            "total": report.timings.total_seconds,
        }
    if report.profile is not None:
        payload["profile"] = report.profile.to_dict()
    if report.taint is not None:
        # Only present with --taint on, so off-mode JSON stays byte-stable;
        # the differential tests strip this key before comparing.
        payload["taint"] = taint_to_dict(report.taint)
    return payload


def render_bar_chart(values: dict[str, float], *, title: str = "",
                     width: int = 40, vmax: float = 1.0) -> str:
    """Render a horizontal ASCII bar chart (one bar per unit)."""
    lines = []
    if title:
        lines.append(title)
    for name, value in values.items():
        filled = int(round(min(max(value, 0.0), vmax) / vmax * width))
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"{name:<12} |{bar}| {value:.3f}")
    return "\n".join(lines)


def render_histogram(samples, *, bins: int = 12, title: str = "",
                     width: int = 40) -> str:
    """ASCII histogram of a numeric sample (used for Figure 6)."""
    values = list(samples)
    lines = []
    if title:
        lines.append(title)
    if not values:
        lines.append("(no samples)")
        return "\n".join(lines)
    low, high = min(values), max(values)
    if low == high:
        lines.append(f"{low:>8}  all {len(values)} samples identical")
        return "\n".join(lines)
    span = (high - low) / bins
    counts = [0] * bins
    for value in values:
        index = min(int((value - low) / span), bins - 1)
        counts[index] += 1
    peak = max(counts)
    for i, count in enumerate(counts):
        left = low + i * span
        bar = "#" * int(round(count / peak * width))
        lines.append(f"{left:>9.1f}  {bar} {count}")
    return "\n".join(lines)
