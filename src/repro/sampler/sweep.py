"""Input-coverage sweeps: p-value convergence vs. campaign size.

Section VII-D describes the framework's false-positive control: a high
Cramér's V with an insufficient sample count is not trusted; "we increase
the number of inputs to the simulation until the p-value falls below a
threshold".  This module measures that convergence explicitly — for a real
leak the p-value collapses as inputs grow (V stays high), while for safe
code no amount of input makes the association significant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sampler.pipeline import MicroSampler
from repro.sampler.stats import SIGNIFICANCE_ALPHA
from repro.uarch.config import CoreConfig, MEGA_BOOM


@dataclass
class SweepPoint:
    """Measurement for one campaign size."""

    n_inputs: int
    n_iterations: int
    #: feature id -> (cramers_v, p_value)
    units: dict = field(default_factory=dict)


@dataclass
class SweepResult:
    """Full convergence sweep for one workload family."""

    workload_name: str
    points: list = field(default_factory=list)

    def first_significant(self, feature_id: str,
                          alpha: float = SIGNIFICANCE_ALPHA):
        """Smallest input count at which ``feature_id`` reached significance,
        or None if it never did."""
        for point in self.points:
            v, p = point.units[feature_id]
            if p < alpha:
                return point.n_inputs
        return None

    def render(self, feature_ids=None) -> str:
        ids = list(feature_ids) if feature_ids else \
            sorted(self.points[0].units) if self.points else []
        lines = [f"p-value convergence for {self.workload_name!r}"]
        header = f"{'inputs':>7} {'iters':>6}"
        for feature_id in ids:
            header += f" | {feature_id:>12}: {'V':>5} {'p':>9}"
        lines.append(header)
        lines.append("-" * len(header))
        for point in self.points:
            row = f"{point.n_inputs:>7} {point.n_iterations:>6}"
            for feature_id in ids:
                v, p = point.units[feature_id]
                row += f" | {'':>12}  {v:>5.2f} {p:>9.2g}"
            lines.append(row)
        return "\n".join(lines)


def significance_sweep(workload_factory, *, sizes=(1, 2, 4, 8),
                       feature_ids=None, config: CoreConfig = MEGA_BOOM,
                       seed: int = 3, jobs: int | None = 1,
                       cache=None, engine: str = "numpy") -> SweepResult:
    """Run the analysis at increasing campaign sizes.

    ``workload_factory(n_inputs, seed)`` builds the workload for each size.
    Sweeps re-simulate every smaller campaign's inputs, so passing a
    ``cache`` (see :class:`~repro.sampler.trace_cache.TraceCache`) makes
    each point pay only for its newly added inputs; ``jobs`` parallelizes
    the rest and ``engine`` selects the statistics implementation (sweeps
    score many (unit, size) cells, so the vectorized default matters here).
    """
    result = None
    points = []
    for n_inputs in sizes:
        workload = workload_factory(n_inputs, seed)
        if result is None:
            result = SweepResult(workload_name=workload.name)
        ids = tuple(feature_ids) if feature_ids else None
        sampler = MicroSampler(config, features=ids,
                               analyze_timing_removed=False,
                               extract_root_causes_for_leaky=False,
                               jobs=jobs, cache=cache, engine=engine)
        report = sampler.analyze(workload)
        point = SweepPoint(n_inputs=n_inputs,
                           n_iterations=report.n_iterations)
        for feature_id, unit in report.units.items():
            point.units[feature_id] = (unit.association.cramers_v,
                                       unit.association.p_value)
        points.append(point)
    result.points = points
    return result
