"""Campaign sweeps: across input counts, and across core configurations.

Two sweep families live here:

* **Convergence sweeps** (:func:`significance_sweep`): Section VII-D's
  false-positive control measured explicitly — p-value vs. campaign size
  for one workload on one core config.

* **Cross-config sweeps** (:func:`sweep_configs`): one workload campaign
  run across N :class:`~repro.uarch.config.CoreConfig`\\ s as a *single
  planned job*.  The config-invariant phases — assemble/decode, input
  patching, the batched functional prepass with fast-forward checkpoint
  capture, and the taint/publicness maps — execute exactly once and are
  handed (not re-derived) to every config leg; only the cycle-accurate
  simulation and the reachability projection are per-config.  Pending lane
  groups from all legs fan out together over the process-pool or
  :class:`~repro.sampler.exec_backend.WorkerPool` backends (``config ×
  lane-group`` shards), and trace-cache hits never occupy a slot.  Each
  leg's :class:`~repro.sampler.pipeline.LeakageReport` is bit-identical to
  running ``MicroSampler(config).analyze(workload)`` standalone with the
  same cache state — pinned by ``tests/test_config_sweep.py`` and
  ``benchmarks/bench_config_sweep.py``.

One bookkeeping asymmetry is inherited from checkpoint reuse: prologue
*divergence events* are recorded by whichever leg actually captures the
checkpoints.  In a sweep the first leg captures and later legs load — the
same shape as a naive sequential per-config loop sharing one cache, which
is the equivalence the differential suite asserts exactly.  Lockstep
workloads (no prologue divergence) are bit-identical under every pairing.
"""

from __future__ import annotations

import subprocess
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import repro
from repro.sampler.exec_backend import (
    _lane_groups,
    _pool_context,
    execute_run_batch,
    resolve_jobs,
)
from repro.sampler.pipeline import LeakageReport, MicroSampler
from repro.sampler.report import report_to_dict
from repro.sampler.runner import (
    Workload,
    finalize_campaign,
    patch_program,
    prepare_campaign,
)
from repro.sampler.stats import (
    SIGNIFICANCE_ALPHA,
    STRONG_ASSOCIATION_THRESHOLD,
)
from repro.uarch.config import CoreConfig, MEGA_BOOM


# -- convergence sweeps (Section VII-D) --------------------------------------


@dataclass
class ConvergencePoint:
    """Measurement for one campaign size."""

    n_inputs: int
    n_iterations: int
    #: feature id -> (cramers_v, p_value)
    units: dict = field(default_factory=dict)


@dataclass
class ConvergenceSweep:
    """Full convergence sweep for one workload family."""

    workload_name: str
    points: list = field(default_factory=list)

    def first_significant(self, feature_id: str,
                          alpha: float = SIGNIFICANCE_ALPHA):
        """Smallest input count at which ``feature_id`` reached significance,
        or None if it never did."""
        for point in self.points:
            v, p = point.units[feature_id]
            if p < alpha:
                return point.n_inputs
        return None

    def render(self, feature_ids=None) -> str:
        ids = list(feature_ids) if feature_ids else \
            sorted(self.points[0].units) if self.points else []
        lines = [f"p-value convergence for {self.workload_name!r}"]
        header = f"{'inputs':>7} {'iters':>6}"
        for feature_id in ids:
            header += f" | {feature_id:>12}: {'V':>5} {'p':>9}"
        lines.append(header)
        lines.append("-" * len(header))
        for point in self.points:
            row = f"{point.n_inputs:>7} {point.n_iterations:>6}"
            for feature_id in ids:
                v, p = point.units[feature_id]
                row += f" | {'':>12}  {v:>5.2f} {p:>9.2g}"
            lines.append(row)
        return "\n".join(lines)


#: Backwards-compatible alias: the convergence sweep's point type predates
#: the cross-config :class:`SweepResult` and used to carry the sweep names.
SweepPoint = ConvergencePoint


def significance_sweep(workload_factory, *, sizes=(1, 2, 4, 8),
                       feature_ids=None, config: CoreConfig = MEGA_BOOM,
                       seed: int = 3, jobs: int | None = 1,
                       cache=None, engine: str = "numpy") -> ConvergenceSweep:
    """Run the analysis at increasing campaign sizes.

    ``workload_factory(n_inputs, seed)`` builds the workload for each size.
    Sweeps re-simulate every smaller campaign's inputs, so passing a
    ``cache`` (see :class:`~repro.sampler.trace_cache.TraceCache`) makes
    each point pay only for its newly added inputs; ``jobs`` parallelizes
    the rest and ``engine`` selects the statistics implementation (sweeps
    score many (unit, size) cells, so the vectorized default matters here).
    """
    result = None
    points = []
    for n_inputs in sizes:
        workload = workload_factory(n_inputs, seed)
        if result is None:
            result = ConvergenceSweep(workload_name=workload.name)
        ids = tuple(feature_ids) if feature_ids else None
        sampler = MicroSampler(config, features=ids,
                               analyze_timing_removed=False,
                               extract_root_causes_for_leaky=False,
                               jobs=jobs, cache=cache, engine=engine)
        report = sampler.analyze(workload)
        point = ConvergencePoint(n_inputs=n_inputs,
                                 n_iterations=report.n_iterations)
        for feature_id, unit in report.units.items():
            point.units[feature_id] = (unit.association.cramers_v,
                                       unit.association.p_value)
        points.append(point)
    result.points = points
    return result


# -- cross-config sweeps -----------------------------------------------------


@dataclass
class SweepLeg:
    """One core configuration's outcome within a cross-config sweep."""

    config: CoreConfig
    report: LeakageReport
    #: Campaign planning wall-clock (cache consults, dedup, prepass attach).
    plan_seconds: float
    #: Checkpoint capture/load during planning — the first leg pays the
    #: capture, later legs degenerate to store loads.
    capture_seconds: float
    #: In-worker wall-clock of this leg's simulated lane groups (0 when all
    #: inputs replayed from cache, or under a :class:`WorkerPool`, which
    #: does not report per-shard timing).
    execute_seconds: float
    #: finalize + statistics + root-cause extraction wall-clock.
    stats_seconds: float
    n_inputs: int
    n_cached: int
    n_simulated: int

    @property
    def name(self) -> str:
        return self.config.name


@dataclass
class SweepResult:
    """Per-(unit, config) verdict matrix from one cross-config sweep.

    The machine-readable substrate the ROADMAP's leakage-contract-synthesis
    item consumes: every tracked unit scored on every swept core config,
    with the per-leg :class:`LeakageReport`\\ s attached in full.
    """

    workload_name: str
    n_inputs: int
    legs: list = field(default_factory=list)
    #: Config-invariant phase wall-clock, paid once for the whole sweep
    #: (``{"assemble_patch": s, "taint": s}``).
    shared_seconds: dict = field(default_factory=dict)
    #: End-to-end sweep wall-clock.
    wall_seconds: float = 0.0

    @property
    def config_names(self) -> list:
        return [leg.name for leg in self.legs]

    @property
    def reports(self) -> dict:
        """config name -> :class:`LeakageReport`."""
        return {leg.name: leg.report for leg in self.legs}

    @property
    def leaky_configs(self) -> list:
        return [leg.name for leg in self.legs
                if leg.report.leakage_detected]

    @property
    def leakage_detected(self) -> bool:
        return bool(self.leaky_configs)

    def unit_matrix(self) -> dict:
        """unit id -> {config name -> (cramers_v, p_value, leaky)}."""
        matrix: dict = {}
        for leg in self.legs:
            for feature_id, unit in leg.report.units.items():
                row = matrix.setdefault(feature_id, {})
                row[leg.name] = (unit.association.cramers_v,
                                 unit.association.p_value, unit.leaky)
        return matrix

    def render(self) -> str:
        """Fixed-width verdict matrix plus the shared-vs-per-leg phase rows."""
        lines = [
            f"cross-config sweep — workload={self.workload_name} "
            f"inputs={self.n_inputs} configs={len(self.legs)}",
            "",
        ]
        header = f"{'unit':<12}"
        for leg in self.legs:
            header += f" | {leg.name:>11}: {'V':>5} {'p':>9} {'flag':>4}"
        lines.append(header)
        lines.append("-" * len(header))
        for feature_id, row in self.unit_matrix().items():
            line = f"{feature_id:<12}"
            for leg in self.legs:
                entry = row.get(leg.name)
                if entry is None:
                    line += f" | {'':>11}  {'-':>5} {'-':>9} {'-':>4}"
                    continue
                v, p, leaky = entry
                line += (f" | {'':>11}  {v:>5.2f} {p:>9.2g} "
                         f"{'LEAK' if leaky else '-':>4}")
            lines.append(line)
        lines.append("")
        verdicts = ", ".join(
            f"{leg.name}={'LEAK' if leg.report.leakage_detected else 'clean'}"
            for leg in self.legs)
        lines.append(f"verdicts: {verdicts}")
        if any(leg.report.divergences for leg in self.legs):
            events = max((len(leg.report.divergences) for leg in self.legs))
            lines.append(f"lockstep divergences observed: up to {events} "
                         "event(s) per leg (see per-config reports)")
        lines.append("")
        lines.append("shared phases (paid once for the whole sweep):")
        lines.append(f"  assemble+patch   "
                     f"{self.shared_seconds.get('assemble_patch', 0.0):8.3f} s")
        if "taint" in self.shared_seconds:
            lines.append(f"  taint prescreen  "
                         f"{self.shared_seconds['taint']:8.3f} s")
        lines.append("per-config legs:")
        for leg in self.legs:
            lines.append(
                f"  {leg.name:<11} plan {leg.plan_seconds:6.3f} s "
                f"(capture {leg.capture_seconds:6.3f} s)  "
                f"simulate {leg.execute_seconds:7.3f} s  "
                f"stats {leg.stats_seconds:6.3f} s  "
                f"[{leg.n_simulated} simulated, {leg.n_cached} cached]")
        lines.append(f"total wall-clock: {self.wall_seconds:.3f} s")
        return "\n".join(lines)


def _repo_commit() -> str | None:
    """Best-effort HEAD SHA of the repo this package runs from."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def sweep_to_dict(result: SweepResult) -> dict:
    """Serialize a :class:`SweepResult` to commit-stamped JSON data.

    ``reports`` holds each leg's full ``report_to_dict`` payload — byte-for-
    byte what ``microsampler analyze --json`` emits for that config — so a
    sweep's JSON can be differenced directly against standalone runs.
    """
    from repro.sampler.trace_cache import config_digest

    matrix = {
        feature_id: {
            name: {"cramers_v": v, "p_value": p, "leaky": leaky}
            for name, (v, p, leaky) in row.items()
        }
        for feature_id, row in result.unit_matrix().items()
    }
    return {
        "meta": {
            "commit": _repo_commit(),
            "package_version": getattr(repro, "__version__", "0"),
        },
        "workload": result.workload_name,
        "n_inputs": result.n_inputs,
        "configs": result.config_names,
        "config_digests": {leg.name: config_digest(leg.config)
                           for leg in result.legs},
        "leakage_detected": result.leakage_detected,
        "leaky_configs": result.leaky_configs,
        "matrix": matrix,
        "reports": {leg.name: report_to_dict(leg.report)
                    for leg in result.legs},
        "phases": {
            "shared_seconds": dict(result.shared_seconds),
            "legs": {
                leg.name: {
                    "plan_seconds": leg.plan_seconds,
                    "capture_seconds": leg.capture_seconds,
                    "execute_seconds": leg.execute_seconds,
                    "stats_seconds": leg.stats_seconds,
                    "n_inputs": leg.n_inputs,
                    "n_cached": leg.n_cached,
                    "n_simulated": leg.n_simulated,
                }
                for leg in result.legs
            },
            "wall_seconds": result.wall_seconds,
        },
    }


def _timed_group(tasks) -> tuple:
    """Worker entry: execute one lane group, reporting its in-worker wall.

    Module-level so it pickles under every ``multiprocessing`` start
    method.  The timing wrapper is observational — the outputs are exactly
    :func:`execute_run_batch`'s, which is what keeps sweep legs
    bit-identical to standalone campaigns.
    """
    started = time.perf_counter()
    outputs = execute_run_batch(tasks)
    return outputs, time.perf_counter() - started


def _execute_shards(groups, *, jobs=1, pool=None) -> list:
    """Run lane groups (from any mix of config legs) in submission order.

    Returns ``[(outputs, seconds), ...]`` aligned with ``groups``.  Mirrors
    :func:`~repro.sampler.exec_backend.execute_tasks`'s backend selection:
    a :class:`WorkerPool` gets one shard per group (seconds unavailable:
    reported as 0), ``jobs > 1`` maps groups over a process pool, anything
    else runs in-process.
    """
    if pool is not None and groups:
        futures = [pool.submit(group) for group in groups]
        return [(future.result(), 0.0) for future in futures]
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(groups) <= 1:
        return [_timed_group(group) for group in groups]
    workers = min(jobs, len(groups))
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=_pool_context()) as pool_:
        return list(pool_.map(_timed_group, groups))


def sweep_configs(workload: Workload, configs, *,
                  features=None,
                  v_threshold: float = STRONG_ASSOCIATION_THRESHOLD,
                  alpha: float = SIGNIFICANCE_ALPHA,
                  analyze_timing_removed: bool = True,
                  extract_root_causes_for_leaky: bool = True,
                  warmup_iterations: int = 0,
                  jobs: int | None = 1,
                  cache=None,
                  warmup_insts: int | None = None,
                  batch_lanes=None,
                  engine: str = "numpy",
                  measure_mi: bool = False,
                  mi_permutations: int = 200,
                  profile: bool = False,
                  taint: bool = False,
                  pool=None,
                  max_cycles_per_run: int = 5_000_000) -> SweepResult:
    """Analyze one workload across several core configs as one planned job.

    Parameters mirror :class:`~repro.sampler.pipeline.MicroSampler` — each
    leg's report is bit-identical to
    ``MicroSampler(config, **same_knobs).analyze(workload)`` with the same
    cache state.  What the sweep changes is *where the work happens*:

    * the program is assembled and patched once, and every leg plans from
      the same images;
    * with ``taint``, the publicness witness is computed once (it runs on
      the config-independent functional interpreter) and only the
      reachability pruning is projected per config
      (:func:`~repro.uarch.reachability.project_reachability` semantics);
    * checkpoints are architectural and config-free, so the first leg's
      batched prepass captures them and every later leg loads — with a
      ``cache`` through its checkpoint store, without one through a
      sweep-private temporary store;
    * the remaining cycle-accurate work fans out as ``config × lane-group``
      shards over one backend (``jobs`` process pool or a ``pool``
      :class:`~repro.sampler.exec_backend.WorkerPool`), so a slow leg
      cannot serialize the others and trace-cache hits never occupy a
      simulation slot.
    """
    configs = tuple(configs)
    if not configs:
        raise ValueError("sweep_configs needs at least one core config")
    names = [config.name for config in configs]
    if len(set(names)) != len(names):
        raise ValueError(
            f"swept configs must have distinct names, got {names}; "
            "use CoreConfig.with_(name=...) to disambiguate variants")

    sweep_started = time.perf_counter()
    shared_seconds: dict = {}

    # Shared phase 1: taint/publicness witness (config-independent).
    publicness = None
    if taint:
        from repro.taint import compute_publicness

        taint_started = time.perf_counter()
        publicness = compute_publicness(workload, batch_lanes=batch_lanes)
        shared_seconds["taint"] = time.perf_counter() - taint_started

    # Shared phase 2: assemble once, patch once per input.
    assemble_started = time.perf_counter()
    program = workload.assemble()
    patched = [patch_program(program, patches)
               for patches in workload.inputs]
    shared_seconds["assemble_patch"] = (time.perf_counter()
                                        - assemble_started)

    # Shared phase 3: one checkpoint store for every leg.  With a cache,
    # prepare_campaign already derives the store from the cache root; the
    # cacheless path gets a sweep-private temporary store so capture still
    # happens once instead of once per config.
    tempdir = None
    checkpoint_dir = None
    if warmup_insts is not None and cache is None:
        tempdir = tempfile.TemporaryDirectory(
            prefix="microsampler-sweep-ckpt-")
        checkpoint_dir = tempdir.name
    try:
        samplers = []
        taints = []
        plans = []
        plan_seconds = []
        for config in configs:
            sampler = MicroSampler(
                config, features=features, v_threshold=v_threshold,
                alpha=alpha, analyze_timing_removed=analyze_timing_removed,
                extract_root_causes_for_leaky=extract_root_causes_for_leaky,
                warmup_iterations=warmup_iterations, jobs=jobs, cache=cache,
                warmup_insts=warmup_insts, batch_lanes=batch_lanes,
                engine=engine, measure_mi=measure_mi,
                mi_permutations=mi_permutations, profile=profile,
                taint=taint)
            # Per-config projection of the shared taint witness: only
            # reachability consults the config, so each leg's pruned set —
            # and therefore its trace-cache keys — matches standalone.
            taint_summary = (sampler.compute_taint(workload,
                                                   publicness=publicness)
                             if taint else None)
            started = time.perf_counter()
            plan = prepare_campaign(
                workload, config, features=sampler.features,
                max_cycles_per_run=max_cycles_per_run, cache=cache,
                warmup_insts=warmup_insts, checkpoint_dir=checkpoint_dir,
                batch_lanes=batch_lanes, profile=profile,
                pruned=taint_summary.pruned if taint_summary else (),
                programs=patched)
            samplers.append(sampler)
            taints.append(taint_summary)
            plans.append(plan)
            plan_seconds.append(time.perf_counter() - started)

        # Fan-out: every leg's pending lane groups through one backend.
        shards = []  # (leg index, lane group)
        for leg_index, plan in enumerate(plans):
            for group in _lane_groups(plan.pending_tasks):
                shards.append((leg_index, group))
        shard_results = _execute_shards([group for _, group in shards],
                                        jobs=jobs, pool=pool)
        leg_outputs: dict = {index: [] for index in range(len(plans))}
        leg_exec_seconds = [0.0] * len(plans)
        for (leg_index, _), (outputs, seconds) in zip(shards, shard_results):
            leg_outputs[leg_index].extend(outputs)
            leg_exec_seconds[leg_index] += seconds
        for leg_index, plan in enumerate(plans):
            for index, output in zip(plan.to_run, leg_outputs[leg_index]):
                plan.fill(index, output)

        # Per-leg merge + statistics (stages 3-4 are config-specific).
        legs = []
        for leg_index, plan in enumerate(plans):
            stats_started = time.perf_counter()
            campaign = finalize_campaign(plan)
            report = samplers[leg_index].analyze_campaign(
                campaign, taint=taints[leg_index])
            legs.append(SweepLeg(
                config=configs[leg_index],
                report=report,
                plan_seconds=plan_seconds[leg_index],
                capture_seconds=plan.capture_seconds,
                execute_seconds=leg_exec_seconds[leg_index],
                stats_seconds=time.perf_counter() - stats_started,
                n_inputs=len(workload.inputs),
                n_cached=plan.n_cached,
                n_simulated=len(plan.to_run),
            ))
    finally:
        if tempdir is not None:
            tempdir.cleanup()

    return SweepResult(
        workload_name=workload.name,
        n_inputs=len(workload.inputs),
        legs=legs,
        shared_seconds=shared_seconds,
        wall_seconds=time.perf_counter() - sweep_started,
    )
