"""Workload execution harness (step 1 of Figure 1).

A :class:`Workload` bundles an assembly program with a set of per-run input
patches (secret keys, operand buffers...).  The runner assembles the program
once, then executes one fresh core per input — every simulation begins in the
same reset state, as in the paper.

Execution is delegated to :mod:`repro.sampler.exec_backend`: with ``jobs=1``
every input runs in-process; with ``jobs>1`` inputs are simulated on a
process pool and merged back in input order, bit-identical to the serial
result.  An optional :class:`~repro.sampler.trace_cache.TraceCache` replays
previously simulated (program, input, config) triples without touching the
core at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.isa.assembler import Program, assemble
from repro.kernel.memory_map import MemoryMap
from repro.sampler.exec_backend import (
    RunOutput,
    RunTask,
    execute_run,
    execute_tasks,
    merge_outputs,
)
from repro.trace.tracer import MicroarchTracer
from repro.uarch.config import CoreConfig, MEGA_BOOM
from repro.uarch.core import RunResult


class WorkloadError(RuntimeError):
    """Raised when a workload misbehaves (bad patch, nonzero exit...)."""


@dataclass
class Workload:
    """A program under verification plus its test inputs.

    ``inputs`` maps, per run, data-section symbol names to replacement bytes
    (e.g. ``{"key": b"..."}``).  The program is expected to exit with code 0;
    anything else aborts the campaign, which catches workload bugs early.
    """

    name: str
    source: str
    entry: str = "main"
    inputs: list[dict] = field(default_factory=list)
    description: str = ""
    #: (symbol, length) regions pre-installed in the L1D before each run,
    #: modeling prior accesses (used by the Fig. 6 "dst initialized" study).
    warm_regions: list = field(default_factory=list)
    #: Which input bytes are *secret* for the taint prescreen
    #: (:mod:`repro.taint`): each entry is a data-symbol name (the bytes the
    #: input patches into it) or a ``(symbol, offset, length)`` triple for a
    #: fixed sub-range.  Empty means "no declared secret" — taint analysis
    #: refuses to run rather than silently treating everything as public.
    secret_regions: list = field(default_factory=list)

    def assemble(self) -> Program:
        return assemble(self.source, entry=self.entry)


def patch_program(program: Program, patches: dict) -> Program:
    """Return a copy of ``program`` with data-section symbols overwritten."""
    data = bytearray(program.data)
    for symbol, payload in patches.items():
        if symbol not in program.symbols:
            raise WorkloadError(f"unknown data symbol {symbol!r}")
        offset = program.symbols[symbol] - program.data_base
        if offset < 0 or offset + len(payload) > len(data):
            raise WorkloadError(
                f"patch for {symbol!r} falls outside the data image"
            )
        data[offset:offset + len(payload)] = payload
    return Program(
        instructions=program.instructions,
        text_base=program.text_base,
        data=data,
        data_base=program.data_base,
        symbols=program.symbols,
        entry=program.entry,
    )


@dataclass
class CampaignResult:
    """All simulation outputs for one workload campaign."""

    workload: Workload
    config: CoreConfig
    tracer: MicroarchTracer
    runs: list[RunResult]
    simulate_seconds: float
    parse_seconds: float
    #: How many of the runs were replayed from the trace cache.
    n_cached_runs: int = 0
    #: Merged per-stage time breakdown when profiling was requested
    #: (:class:`repro.util.profiling.StageProfile`); cached runs contribute
    #: nothing, so an all-cached campaign reports ``None``.
    profile: object | None = None
    #: Instructions skipped via functional fast-forward, summed over runs
    #: (0 when checkpointing is disabled or nothing could be skipped).
    ff_steps_total: int = 0
    #: Lockstep divergences observed by the batch prepass **and** by the
    #: lane-batched cycle-accurate core
    #: (:class:`~repro.isa.batch_interpreter.DivergenceEvent`).  Divergent
    #: execution across inputs is data-dependent execution — itself a leak
    #: signal — so these are surfaced in reports rather than silently
    #: absorbed; ``lanes`` on core-phase events holds campaign input
    #: indices.
    divergences: list = field(default_factory=list)

    @property
    def iterations(self):
        return self.tracer.iterations

    def total_cycles(self) -> int:
        return sum(run.stats.cycles for run in self.runs)


def _build_tasks(workload: Workload, program: Program, config: CoreConfig, *,
                 features, keep_raw, log_commits, memory_map,
                 max_cycles_per_run, expect_exit_code,
                 warmup_insts=None, checkpoint_dir=None,
                 profile=False, pruned=(), core_lanes=None,
                 programs=None) -> list[RunTask]:
    """One :class:`RunTask` per input.  ``programs`` (when given) supplies
    pre-patched per-input programs — the cross-config sweep patches once
    and hands the same images to every config leg; ``patch_program`` is
    deterministic, so the tasks (and their cache keys) are identical to
    re-patching here."""
    return [
        RunTask(
            run_index=run_index,
            workload_name=workload.name,
            program=(programs[run_index] if programs is not None
                     else patch_program(program, patches)),
            config=config,
            warm_regions=tuple(tuple(region)
                               for region in workload.warm_regions),
            features=tuple(features) if features is not None else None,
            keep_raw=True if keep_raw is True else tuple(keep_raw),
            log_commits=bool(log_commits),
            memory_map=memory_map,
            max_cycles=max_cycles_per_run,
            expect_exit_code=expect_exit_code,
            warmup_insts=warmup_insts,
            checkpoint_dir=checkpoint_dir,
            profile=bool(profile),
            pruned=tuple(pruned),
            core_lanes=core_lanes,
        )
        for run_index, patches in enumerate(workload.inputs)
    ]


@dataclass
class CampaignPlan:
    """A campaign prepared for execution but not yet simulated.

    :func:`prepare_campaign` assembles the program, builds one
    :class:`RunTask` per input, consults the trace cache (hits are replayed
    immediately and **never occupy a simulation slot**), folds in-campaign
    duplicates, and runs the lockstep batch prepass.  What remains —
    ``to_run`` — is the shard-able simulation work: any scheduler (the
    in-process backends via :func:`run_campaign`, or the campaign service's
    persistent worker pool) may execute those tasks in any order and on any
    machine, fill the outputs in with :meth:`fill`, and obtain a campaign
    bit-identical to a serial run from :func:`finalize_campaign` — the
    deterministic input-order merge is what makes placement free.
    """

    workload: Workload
    config: CoreConfig
    tasks: list[RunTask]
    cache: object | None
    #: Per-task content-addressed cache keys (None when cache is off).
    keys: list[str] | None
    #: Per-task outputs; cache hits pre-filled, the rest ``None`` until
    #: :meth:`fill`.
    outputs: list[RunOutput | None]
    #: task index -> cache key of an identical earlier task in this campaign.
    duplicate_of: dict[int, str]
    #: Task indices that actually need simulating, in input order.
    to_run: list[int]
    n_cached: int
    divergences: list
    features: object
    keep_raw: object
    log_commits: bool
    profile: bool
    started: float
    #: Wall-clock the batch checkpoint prepass spent capturing (or loading)
    #: checkpoints while this plan was prepared.  The sweep engine reports
    #: it separately: the first config leg pays the capture, every later
    #: leg's prepass degenerates to store loads.
    capture_seconds: float = 0.0

    def fill(self, index: int, output: RunOutput) -> None:
        """Record one simulated output (and persist it to the cache)."""
        self.outputs[index] = output
        if self.cache is not None and self.keys is not None:
            self.cache.store(self.keys[index], output,
                             config=self.tasks[index].config)

    @property
    def pending_tasks(self) -> list[RunTask]:
        return [self.tasks[index] for index in self.to_run]


def prepare_campaign(workload: Workload, config: CoreConfig = MEGA_BOOM, *,
                     features=None, keep_raw=(), log_commits: bool = False,
                     memory_map: MemoryMap | None = None,
                     max_cycles_per_run: int = 5_000_000,
                     expect_exit_code: int = 0,
                     cache=None,
                     warmup_insts: int | None = None,
                     checkpoint_dir: str | None = None,
                     batch_lanes=None,
                     profile: bool = False,
                     pruned=(),
                     programs=None) -> CampaignPlan:
    """Plan a campaign: build tasks, replay cache hits, batch-prepass.

    This is everything :func:`run_campaign` does before simulation.  The
    returned plan's ``to_run`` tasks must each be passed through
    :func:`~repro.sampler.exec_backend.execute_run` (anywhere — in-process,
    process pool, persistent service worker) and recorded with
    ``plan.fill(index, output)``; then :func:`finalize_campaign` merges.

    ``programs`` optionally supplies the per-input patched programs (one
    per ``workload.inputs`` entry), skipping the assemble + patch phase —
    the cross-config sweep pays those once and plans every config leg from
    the same images.
    """
    if not workload.inputs:
        raise WorkloadError(f"workload {workload.name!r} has no inputs")
    if cache is True:
        from repro.sampler.trace_cache import TraceCache

        cache = TraceCache()
    if warmup_insts is not None and checkpoint_dir is None and cache is not None:
        from repro.sampler.checkpoint import CheckpointStore

        checkpoint_dir = str(CheckpointStore.for_cache_root(cache.root).root)
    # Resolve the lockstep lane width up front: ``core_lanes`` joins every
    # task's cache key (a lane-batched run references lane-batched
    # checkpoints and records divergence events), so it must be stamped
    # before the cache is consulted.
    core_lanes = None
    if batch_lanes is not None:
        from repro.sampler.batch import resolve_batch_lanes

        width = resolve_batch_lanes(batch_lanes, len(workload.inputs))
        core_lanes = width if width > 1 else None
    if programs is not None and len(programs) != len(workload.inputs):
        raise WorkloadError(
            f"pre-patched program count ({len(programs)}) does not match "
            f"input count ({len(workload.inputs)})")
    program = workload.assemble() if programs is None else None
    tasks = _build_tasks(
        workload, program, config, features=features, keep_raw=keep_raw,
        log_commits=log_commits, memory_map=memory_map,
        max_cycles_per_run=max_cycles_per_run,
        expect_exit_code=expect_exit_code,
        warmup_insts=warmup_insts,
        checkpoint_dir=checkpoint_dir,
        profile=profile,
        pruned=pruned,
        core_lanes=core_lanes,
        programs=programs,
    )

    started = time.perf_counter()
    outputs: list[RunOutput | None] = [None] * len(tasks)
    keys: list[str] | None = None
    duplicate_of: dict[int, str] = {}
    if cache is not None:
        keys = [cache.key_for(task) for task in tasks]
        for index, key in enumerate(keys):
            outputs[index] = cache.load(key)
    n_cached = sum(1 for output in outputs if output is not None)

    # Within one campaign, identical (program, input, config) triples are
    # simulated once and replayed for the duplicates (MicroWalk-style trace
    # deduplication; requires a cache to clone the outputs through).
    to_run: list[int] = []
    seen_keys: set[str] = set()
    for index, output in enumerate(outputs):
        if output is not None:
            continue
        if keys is not None and keys[index] in seen_keys:
            duplicate_of[index] = keys[index]
            continue
        if keys is not None:
            seen_keys.add(keys[index])
        to_run.append(index)

    divergences: list = []
    capture_seconds = 0.0
    if warmup_insts is not None and batch_lanes is not None and to_run:
        from repro.sampler.batch import (
            attach_batch_checkpoints,
            resolve_batch_lanes,
        )

        lanes = resolve_batch_lanes(batch_lanes, len(to_run))
        if lanes > 1:
            capture_started = time.perf_counter()
            divergences = attach_batch_checkpoints(
                tasks, to_run, lanes=lanes, warmup_insts=warmup_insts,
                checkpoint_dir=checkpoint_dir,
            )
            capture_seconds = time.perf_counter() - capture_started

    return CampaignPlan(
        workload=workload, config=config, tasks=tasks, cache=cache,
        keys=keys, outputs=outputs, duplicate_of=duplicate_of,
        to_run=to_run, n_cached=n_cached, divergences=divergences,
        features=features, keep_raw=keep_raw, log_commits=log_commits,
        profile=profile, started=started, capture_seconds=capture_seconds,
    )


def finalize_campaign(plan: CampaignPlan) -> CampaignResult:
    """Merge a fully executed plan into a :class:`CampaignResult`.

    Every ``to_run`` index must have been :meth:`~CampaignPlan.fill`-ed.
    Duplicates are replayed from the cache (falling back to simulating if
    the store failed), then all outputs merge **in input order** — the
    deterministic merge from the parallel backend, so the result is
    bit-identical no matter where or in what order shards executed.
    """
    for index, key in plan.duplicate_of.items():
        # Replay the stored twin; fall back to simulating if the store failed.
        plan.outputs[index] = plan.cache.load(key) or execute_run(
            plan.tasks[index])
    missing = [index for index, output in enumerate(plan.outputs)
               if output is None]
    if missing:
        raise WorkloadError(
            f"campaign {plan.workload.name!r} finalized with "
            f"{len(missing)} unexecuted input(s): {missing[:5]}")

    tracer = MicroarchTracer(features=plan.features, keep_raw=plan.keep_raw,
                             log_commits=plan.log_commits,
                             pruned=plan.tasks[0].pruned if plan.tasks else ())
    tracer.timed = True
    runs = merge_outputs(plan.outputs, tracer)
    # Core-phase lockstep divergences ride on each batch group's first
    # output; gather them after the prepass events, in input order.
    divergences = list(plan.divergences)
    for output in plan.outputs:
        divergences.extend(output.divergences)
    elapsed = time.perf_counter() - plan.started
    parse_seconds = tracer.sample_seconds
    merged_profile = None
    if plan.profile:
        from repro.util.profiling import merge_profiles

        merged_profile = merge_profiles(output.profile
                                        for output in plan.outputs)
    return CampaignResult(
        workload=plan.workload,
        config=plan.config,
        tracer=tracer,
        runs=runs,
        simulate_seconds=max(elapsed - parse_seconds, 0.0),
        parse_seconds=parse_seconds,
        n_cached_runs=plan.n_cached,
        profile=merged_profile,
        ff_steps_total=sum(output.ff_steps for output in plan.outputs),
        divergences=divergences,
    )


def run_campaign(workload: Workload, config: CoreConfig = MEGA_BOOM, *,
                 features=None, keep_raw=(), log_commits: bool = False,
                 memory_map: MemoryMap | None = None,
                 max_cycles_per_run: int = 5_000_000,
                 expect_exit_code: int = 0,
                 jobs: int | None = 1, cache=None,
                 warmup_insts: int | None = None,
                 checkpoint_dir: str | None = None,
                 batch_lanes=None,
                 pool=None,
                 profile: bool = False,
                 pruned=()) -> CampaignResult:
    """Run ``workload`` over all its inputs, collecting iteration snapshots.

    ``jobs`` sets how many inputs simulate concurrently (``0``/``None`` =
    one per available CPU); the merged result is bit-identical to ``jobs=1``.
    ``pool`` routes simulation through a long-lived
    :class:`~repro.sampler.exec_backend.WorkerPool` instead (the campaign
    service's backend; overrides ``jobs``).
    ``cache`` is an optional :class:`~repro.sampler.trace_cache.TraceCache`
    (or ``True`` for the default directory): inputs simulated before — by
    any backend — are replayed from it, and identical inputs inside one
    campaign are simulated only once.  ``log_commits`` records each
    iteration's architectural ``(cycle, pc, mnemonic)`` commit stream for
    the localization phase (:mod:`repro.localize`).  ``warmup_insts``
    enables fast-forward checkpointing (``None`` = full simulation; see
    :mod:`repro.sampler.checkpoint`); checkpoints persist under
    ``checkpoint_dir``, defaulting to a ``checkpoints/`` subdirectory of the
    trace-cache root when a cache is in use.  ``batch_lanes`` selects
    lockstep lane batching (``None`` = off, ``"auto"``, or an int lane
    width; see :mod:`repro.sampler.batch`): the functional warm-up runs as
    a SIMD-across-inputs prepass (requires ``warmup_insts``), and the
    cycle-accurate phase carries the same inputs as value lanes through one
    shared core (:mod:`repro.uarch.batch_core`) — timing state is shared,
    so verdicts and per-unit digests stay bit-identical to scalar runs;
    any cross-lane divergence in timing-relevant state falls the affected
    lanes back to scalar simulation.  Divergences observed by either phase
    are returned on ``CampaignResult.divergences``.  ``profile`` attaches a
    per-stage wall-clock profiler to every simulated core and reports the
    merged breakdown on ``CampaignResult.profile`` (cache hits, which do no
    simulation work, contribute nothing).
    """
    plan = prepare_campaign(
        workload, config, features=features, keep_raw=keep_raw,
        log_commits=log_commits, memory_map=memory_map,
        max_cycles_per_run=max_cycles_per_run,
        expect_exit_code=expect_exit_code, cache=cache,
        warmup_insts=warmup_insts, checkpoint_dir=checkpoint_dir,
        batch_lanes=batch_lanes, profile=profile, pruned=pruned,
    )
    fresh = execute_tasks(plan.pending_tasks, jobs=jobs, pool=pool)
    for index, output in zip(plan.to_run, fresh):
        plan.fill(index, output)
    return finalize_campaign(plan)
