"""Workload execution harness (step 1 of Figure 1).

A :class:`Workload` bundles an assembly program with a set of per-run input
patches (secret keys, operand buffers...).  The runner assembles the program
once, then executes one fresh core per input — every simulation begins in the
same reset state, as in the paper — while a shared tracer accumulates
iteration snapshots across all runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.isa.assembler import Program, assemble
from repro.kernel.memory_map import MemoryMap
from repro.kernel.proxy_kernel import ProxyKernel
from repro.trace.tracer import MicroarchTracer
from repro.uarch.config import CoreConfig, MEGA_BOOM
from repro.uarch.core import Core, RunResult


class WorkloadError(RuntimeError):
    """Raised when a workload misbehaves (bad patch, nonzero exit...)."""


@dataclass
class Workload:
    """A program under verification plus its test inputs.

    ``inputs`` maps, per run, data-section symbol names to replacement bytes
    (e.g. ``{"key": b"..."}``).  The program is expected to exit with code 0;
    anything else aborts the campaign, which catches workload bugs early.
    """

    name: str
    source: str
    entry: str = "main"
    inputs: list[dict] = field(default_factory=list)
    description: str = ""
    #: (symbol, length) regions pre-installed in the L1D before each run,
    #: modeling prior accesses (used by the Fig. 6 "dst initialized" study).
    warm_regions: list = field(default_factory=list)

    def assemble(self) -> Program:
        return assemble(self.source, entry=self.entry)


def patch_program(program: Program, patches: dict) -> Program:
    """Return a copy of ``program`` with data-section symbols overwritten."""
    data = bytearray(program.data)
    for symbol, payload in patches.items():
        if symbol not in program.symbols:
            raise WorkloadError(f"unknown data symbol {symbol!r}")
        offset = program.symbols[symbol] - program.data_base
        if offset < 0 or offset + len(payload) > len(data):
            raise WorkloadError(
                f"patch for {symbol!r} falls outside the data image"
            )
        data[offset:offset + len(payload)] = payload
    return Program(
        instructions=program.instructions,
        text_base=program.text_base,
        data=data,
        data_base=program.data_base,
        symbols=program.symbols,
        entry=program.entry,
    )


@dataclass
class CampaignResult:
    """All simulation outputs for one workload campaign."""

    workload: Workload
    config: CoreConfig
    tracer: MicroarchTracer
    runs: list[RunResult]
    simulate_seconds: float
    parse_seconds: float

    @property
    def iterations(self):
        return self.tracer.iterations

    def total_cycles(self) -> int:
        return sum(run.stats.cycles for run in self.runs)


def run_campaign(workload: Workload, config: CoreConfig = MEGA_BOOM, *,
                 features=None, keep_raw=(), memory_map: MemoryMap | None = None,
                 max_cycles_per_run: int = 5_000_000,
                 expect_exit_code: int = 0) -> CampaignResult:
    """Run ``workload`` over all its inputs, collecting iteration snapshots."""
    if not workload.inputs:
        raise WorkloadError(f"workload {workload.name!r} has no inputs")
    program = workload.assemble()
    tracer = MicroarchTracer(features=features, keep_raw=keep_raw)
    tracer.timed = True
    runs = []
    started = time.perf_counter()
    for run_index, patches in enumerate(workload.inputs):
        tracer.begin_run(run_index)
        patched = patch_program(program, patches)
        core = Core(
            patched, config,
            memory_map=memory_map,
            kernel=ProxyKernel(memory_map=memory_map or MemoryMap()),
            tracer=tracer,
        )
        for symbol, length in workload.warm_regions:
            base = patched.symbols[symbol]
            for address in range(base, base + length, 64):
                core.dcache.warm_line(address)
        result = core.run(max_cycles=max_cycles_per_run)
        if expect_exit_code is not None and result.exit_code != expect_exit_code:
            raise WorkloadError(
                f"workload {workload.name!r} exited with "
                f"{result.exit_code} (expected {expect_exit_code})"
            )
        runs.append(result)
    elapsed = time.perf_counter() - started
    parse_seconds = getattr(tracer, "sample_seconds", 0.0)
    return CampaignResult(
        workload=workload,
        config=config,
        tracer=tracer,
        runs=runs,
        simulate_seconds=max(elapsed - parse_seconds, 0.0),
        parse_seconds=parse_seconds,
    )
