"""Mutual-information leakage scoring (MicroWalk-style alternative).

MicroWalk [56] scores side channels by the mutual information between the
secret input and observed program state.  This module provides the same
measure over MicroSampler's iteration-snapshot hashes, as a cross-check for
the chi-squared / Cramér's V analysis: I(label; hash) is 0 bits for
independent state and log2(#classes) bits for perfectly class-determined
state.  A permutation test supplies the significance level.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass


@dataclass(frozen=True)
class MutualInformationResult:
    """Mutual information between labels and snapshot hashes."""

    mutual_information_bits: float
    #: upper bound: entropy of the label distribution.
    label_entropy_bits: float
    #: fraction of label information the snapshots reveal (0..1).
    leakage_fraction: float
    #: permutation-test p-value (probability of seeing this MI by chance).
    p_value: float

    @property
    def leaky(self) -> bool:
        return self.leakage_fraction > 0.5 and self.p_value < 0.05


def _entropy(counter: Counter, total: int) -> float:
    entropy = 0.0
    for count in counter.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def mutual_information(labels, hashes) -> float:
    """I(labels; hashes) in bits, from empirical joint frequencies."""
    if len(labels) != len(hashes):
        raise ValueError("labels and hashes must have equal length")
    total = len(labels)
    if total == 0:
        return 0.0
    label_counts = Counter(labels)
    hash_counts = Counter(hashes)
    joint_counts = Counter(zip(labels, hashes))
    h_label = _entropy(label_counts, total)
    h_hash = _entropy(hash_counts, total)
    h_joint = _entropy(joint_counts, total)
    return max(h_label + h_hash - h_joint, 0.0)


def measure_mutual_information(labels, hashes, *, permutations: int = 200,
                               seed: int = 0) -> MutualInformationResult:
    """MI with a label-permutation significance test.

    Empirical MI is positively biased for small samples (every hash pair
    shares some spurious information); the permutation test measures how
    often shuffled labels achieve the observed MI, which controls exactly
    the false positives the paper's p-value gate controls for Cramér's V.
    """
    labels = list(labels)
    hashes = list(hashes)
    observed = mutual_information(labels, hashes)
    h_label = _entropy(Counter(labels), len(labels)) if labels else 0.0
    rng = random.Random(seed)
    at_least = 0
    shuffled = list(labels)
    for _ in range(permutations):
        rng.shuffle(shuffled)
        if mutual_information(shuffled, hashes) >= observed - 1e-12:
            at_least += 1
    p_value = (at_least + 1) / (permutations + 1)
    fraction = observed / h_label if h_label > 0 else 0.0
    return MutualInformationResult(
        mutual_information_bits=observed,
        label_entropy_bits=h_label,
        leakage_fraction=min(fraction, 1.0),
        p_value=p_value,
    )


def mutual_information_by_unit(iterations, feature_ids, *,
                               permutations: int = 200,
                               use_timing: bool = True) -> dict:
    """MI analysis for every tracked unit over a list of IterationRecords."""
    labels = [record.label for record in iterations]
    results = {}
    for feature_id in feature_ids:
        if use_timing:
            hashes = [r.features[feature_id].snapshot_hash
                      for r in iterations]
        else:
            hashes = [r.features[feature_id].snapshot_hash_notiming
                      for r in iterations]
        results[feature_id] = measure_mutual_information(
            labels, hashes, permutations=permutations
        )
    return results
