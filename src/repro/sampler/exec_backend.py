"""Campaign execution backends: serial and process-parallel.

``run_campaign`` fans the per-input simulations of a workload out over this
module.  Each input is wrapped in a self-contained, picklable
:class:`RunTask` (patched program + core configuration + tracer settings); a
worker — in-process for ``jobs=1``, a ``multiprocessing`` pool member
otherwise — rebuilds the core from the task, runs it to completion under a
private :class:`~repro.trace.tracer.MicroarchTracer`, and returns a
:class:`RunOutput` of finalized iteration snapshots.

Determinism is the design constraint: outputs are merged **in input order**
(never completion order) and re-stamped with their global run index and
iteration index, so the resulting trace matrix is bit-identical to a serial
campaign regardless of worker scheduling.  This is what lets the parallel
backend share a result cache with the serial one (see
:mod:`repro.sampler.trace_cache`) and what the differential test layer in
``tests/test_parallel_runner.py`` locks in.

The simulation itself is pure — a core built from the same program, patches
and configuration commits the same per-cycle state — so per-run tracers see
exactly what one shared tracer would have seen.  The one behavioural
subtlety is the tracer's ``roi_seen`` latch, which in a shared tracer
persists across runs; every run re-executes its own ``roi.begin``, so for
well-formed workloads the per-run latch is indistinguishable.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.isa.assembler import Program
from repro.kernel.memory_map import MemoryMap
from repro.kernel.proxy_kernel import ProxyKernel
from repro.trace.tracer import IterationRecord, MicroarchTracer
from repro.uarch.config import CoreConfig
from repro.uarch.core import Core, RunResult


@dataclass(frozen=True)
class RunTask:
    """Everything a worker needs to simulate one campaign input."""

    run_index: int
    workload_name: str
    program: Program  # already patched with this run's inputs
    config: CoreConfig
    warm_regions: tuple = ()
    features: tuple | None = None
    keep_raw: tuple | bool = ()
    #: record per-iteration (cycle, pc, mnemonic) commit logs (localization).
    log_commits: bool = False
    memory_map: MemoryMap | None = None
    max_cycles: int = 5_000_000
    expect_exit_code: int | None = 0
    #: Fast-forward warm-up budget: ``None`` = full cycle-accurate
    #: simulation (no checkpointing, today's behaviour); an int = functional
    #: fast-forward to ``roi.begin`` minus that many instructions, which are
    #: replayed cycle-accurately and untraced (``sampler/checkpoint.py``).
    #: Changes what the core simulates, so it joins the trace-cache key.
    warmup_insts: int | None = None
    #: Directory for content-addressed checkpoint reuse (None = capture
    #: in-memory only).  Storage location, not content — excluded from the
    #: trace-cache key like ``profile``.
    checkpoint_dir: str | None = None
    #: Attach a per-stage wall-clock profiler to the core (``--profile``).
    #: Observational only — excluded from the trace-cache key, and cached
    #: replays simply carry no profile.
    profile: bool = False
    #: Lane width of the lockstep batch prepass that produced (and keys)
    #: this task's checkpoint; None = scalar capture.  Only affects how the
    #: checkpoint is obtained — the traced simulation is bit-identical — so
    #: it is excluded from the trace-cache key like ``checkpoint_dir``.
    batch_lanes: int | None = None
    #: Checkpoint attached by the batch prepass (``sampler/batch.py``); the
    #: worker then skips its own capture.  Derived state, not configuration
    #: — excluded from the trace-cache key.
    checkpoint: object | None = None


@dataclass
class RunOutput:
    """One input's simulation result: snapshots plus run statistics."""

    run_index: int
    iterations: list[IterationRecord] = field(default_factory=list)
    run: RunResult | None = None
    cycles_sampled: int = 0
    sample_seconds: float = 0.0
    #: True when this output was replayed from the trace cache.
    from_cache: bool = False
    #: Instructions skipped via functional fast-forward (0 = full sim).
    ff_steps: int = 0
    #: Per-stage time breakdown when the task requested profiling.
    profile: object | None = None


def execute_run(task: RunTask) -> RunOutput:
    """Simulate one input from reset and collect its iteration snapshots.

    This is the worker entry point: module-level so it pickles under every
    ``multiprocessing`` start method, and self-contained so the same code
    path serves the serial backend, the pool workers and cache misses.
    """
    # Imported here, not at module top, to avoid a circular import
    # (runner -> exec_backend -> runner).
    from repro.sampler.runner import WorkloadError

    tracer = MicroarchTracer(features=task.features, keep_raw=task.keep_raw,
                             log_commits=task.log_commits)
    tracer.timed = True
    tracer.begin_run(task.run_index)

    checkpoint = task.checkpoint
    ff_seconds = 0.0
    if checkpoint is None and task.warmup_insts is not None:
        from repro.sampler.checkpoint import CheckpointStore, load_or_capture

        started = time.perf_counter()
        store = (CheckpointStore(task.checkpoint_dir)
                 if task.checkpoint_dir else None)
        checkpoint = load_or_capture(
            task.program, memory_map=task.memory_map,
            warmup_insts=task.warmup_insts, store=store,
            batch_lanes=task.batch_lanes,
        )
        ff_seconds = time.perf_counter() - started

    core = Core(
        task.program, task.config,
        memory_map=task.memory_map,
        kernel=ProxyKernel(memory_map=task.memory_map or MemoryMap()),
        tracer=tracer,
    )
    if task.log_commits:
        core.commit_listener = tracer.on_commit
    if task.profile:
        from repro.util.profiling import StageProfile

        core.profiler = StageProfile()
    if checkpoint is not None and checkpoint.steps > 0:
        # A step-0 checkpoint is the reset state: skip the restore so the
        # run is the full-simulation code path, not merely equivalent to it.
        started = time.perf_counter()
        core.restore_architectural_state(checkpoint)
        ff_seconds += time.perf_counter() - started
    for symbol, length in task.warm_regions:
        base = task.program.symbols[symbol]
        for address in range(base, base + length, 64):
            core.dcache.warm_line(address)
    ff_steps = checkpoint.steps if checkpoint is not None else 0
    if core.profiler is not None:
        core.profiler.fastforward_seconds += ff_seconds
        core.profiler.ff_steps += ff_steps
        # Attribute pre-ROI cycle-accurate simulation (the warm-up replay,
        # or the whole prologue when checkpointing is off) to its own phase.
        started = time.perf_counter()
        while (not core.halted and not tracer.roi_seen
                and core.cycle < task.max_cycles):
            core.step()
        core.profiler.warmup_seconds += time.perf_counter() - started
    result = core.run(max_cycles=task.max_cycles)
    if (task.expect_exit_code is not None
            and result.exit_code != task.expect_exit_code):
        raise WorkloadError(
            f"workload {task.workload_name!r} exited with "
            f"{result.exit_code} (expected {task.expect_exit_code})"
        )
    return RunOutput(
        run_index=task.run_index,
        iterations=tracer.iterations,
        run=result,
        cycles_sampled=tracer.cycles_sampled,
        sample_seconds=tracer.sample_seconds + tracer.finalize_seconds,
        ff_steps=ff_steps,
        profile=core.profiler,
    )


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a job-count request: ``None``/``0`` means "all CPUs"."""
    if not jobs:
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # platforms without CPU affinity
            return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _pool_context():
    """Prefer ``fork`` (cheap, inherits the loaded modules) where available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )


def execute_tasks(tasks: list[RunTask], jobs: int | None = 1) -> list[RunOutput]:
    """Execute ``tasks``, returning outputs in **task order**.

    ``jobs <= 1`` (or a single task) runs in-process.  Otherwise a process
    pool simulates tasks concurrently; ``Executor.map`` yields results in
    submission order, so completion order never influences the merge, and a
    worker's ``WorkloadError`` propagates to the caller unchanged.
    """
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [execute_run(task) for task in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=_pool_context()) as pool:
        return list(pool.map(execute_run, tasks))


def merge_outputs(outputs: list[RunOutput],
                  tracer: MicroarchTracer) -> list[RunResult]:
    """Deterministically merge per-run outputs into a shared-tracer view.

    Outputs must already be ordered by campaign input.  Records are
    re-stamped with their global iteration index and run index (cached
    outputs are normalized to ``run_index=0``, and a cached input may be
    replayed at a different position), which reproduces exactly what one
    tracer shared across a serial campaign would have recorded.
    """
    runs: list[RunResult] = []
    for position, output in enumerate(outputs):
        for record in output.iterations:
            record.run_index = position
            tracer.append_record(record)  # re-stamps the global index
        tracer.cycles_sampled += output.cycles_sampled
        if not output.from_cache:
            # Cache hits replay stored snapshots without sampling anything
            # this invocation; charging their original sample time here would
            # make the stage-time report claim work that never happened.
            tracer.sample_seconds += output.sample_seconds
        tracer.run_index = position
        if output.iterations:
            tracer.roi_seen = True
        runs.append(output.run)
    return runs
