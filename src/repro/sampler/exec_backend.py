"""Campaign execution backends: serial and process-parallel.

``run_campaign`` fans the per-input simulations of a workload out over this
module.  Each input is wrapped in a self-contained, picklable
:class:`RunTask` (patched program + core configuration + tracer settings); a
worker — in-process for ``jobs=1``, a ``multiprocessing`` pool member
otherwise — rebuilds the core from the task, runs it to completion under a
private :class:`~repro.trace.tracer.MicroarchTracer`, and returns a
:class:`RunOutput` of finalized iteration snapshots.

Determinism is the design constraint: outputs are merged **in input order**
(never completion order) and re-stamped with their global run index and
iteration index, so the resulting trace matrix is bit-identical to a serial
campaign regardless of worker scheduling.  This is what lets the parallel
backend share a result cache with the serial one (see
:mod:`repro.sampler.trace_cache`) and what the differential test layer in
``tests/test_parallel_runner.py`` locks in.

The simulation itself is pure — a core built from the same program, patches
and configuration commits the same per-cycle state — so per-run tracers see
exactly what one shared tracer would have seen.  The one behavioural
subtlety is the tracer's ``roi_seen`` latch, which in a shared tracer
persists across runs; every run re-executes its own ``roi.begin``, so for
well-formed workloads the per-run latch is indistinguishable.
"""

from __future__ import annotations

import collections
import concurrent.futures
import multiprocessing
import multiprocessing.connection
import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

from repro.isa.assembler import Program
from repro.kernel.memory_map import MemoryMap
from repro.kernel.proxy_kernel import ProxyKernel
from repro.trace.tracer import IterationRecord, MicroarchTracer
from repro.uarch.config import CoreConfig
from repro.uarch.core import Core, RunResult


@dataclass(frozen=True)
class RunTask:
    """Everything a worker needs to simulate one campaign input."""

    run_index: int
    workload_name: str
    program: Program  # already patched with this run's inputs
    config: CoreConfig
    warm_regions: tuple = ()
    features: tuple | None = None
    keep_raw: tuple | bool = ()
    #: record per-iteration (cycle, pc, mnemonic) commit logs (localization).
    log_commits: bool = False
    memory_map: MemoryMap | None = None
    max_cycles: int = 5_000_000
    expect_exit_code: int | None = 0
    #: Fast-forward warm-up budget: ``None`` = full cycle-accurate
    #: simulation (no checkpointing, today's behaviour); an int = functional
    #: fast-forward to ``roi.begin`` minus that many instructions, which are
    #: replayed cycle-accurately and untraced (``sampler/checkpoint.py``).
    #: Changes what the core simulates, so it joins the trace-cache key.
    warmup_insts: int | None = None
    #: Directory for content-addressed checkpoint reuse (None = capture
    #: in-memory only).  Storage location, not content — excluded from the
    #: trace-cache key like ``profile``.
    checkpoint_dir: str | None = None
    #: Attach a per-stage wall-clock profiler to the core (``--profile``).
    #: Observational only — excluded from the trace-cache key, and cached
    #: replays simply carry no profile.
    profile: bool = False
    #: Lane width of the lockstep batch prepass that produced (and keys)
    #: this task's checkpoint; None = scalar capture.  Only affects how the
    #: checkpoint is obtained — the traced simulation is bit-identical — so
    #: it is excluded from the trace-cache key like ``checkpoint_dir``.
    batch_lanes: int | None = None
    #: Checkpoint attached by the batch prepass (``sampler/batch.py``); the
    #: worker then skips its own capture.  Derived state, not configuration
    #: — excluded from the trace-cache key.
    checkpoint: object | None = None
    #: Feature IDs the taint prescreen proved secret-free
    #: (:mod:`repro.uarch.reachability`): the tracer skips sampling them and
    #: records the constant empty snapshot instead.  Changes the recorded
    #: trace, so it joins the trace-cache key.
    pruned: tuple = ()
    #: Lane width for batching the cycle-accurate core phase itself
    #: (:mod:`repro.uarch.batch_core`): consecutive tasks with the same
    #: width > 1 run through one shared pipeline.  The traced results are
    #: pinned bit-identical to scalar runs, but the lane set determines
    #: which inputs *can* share a pipeline — and hence which checkpoint
    #: payloads a cached trace may reference — so unlike ``batch_lanes``
    #: it **joins** the trace-cache key.
    core_lanes: int | None = None


@dataclass
class RunOutput:
    """One input's simulation result: snapshots plus run statistics."""

    run_index: int
    iterations: list[IterationRecord] = field(default_factory=list)
    run: RunResult | None = None
    cycles_sampled: int = 0
    sample_seconds: float = 0.0
    #: True when this output was replayed from the trace cache.
    from_cache: bool = False
    #: Instructions skipped via functional fast-forward (0 = full sim).
    ff_steps: int = 0
    #: Per-stage time breakdown when the task requested profiling.
    profile: object | None = None
    #: Content address of the checkpoint this run used (None = no
    #: checkpointing).  Persisted with cached traces so ``cache prune`` can
    #: tell live checkpoints from orphans.
    checkpoint_key: str | None = None
    #: Cross-lane divergence events observed while this input ran in a
    #: lane-batched core group (attached to the group's first output, with
    #: lanes remapped to run indices).  A divergence is simultaneously the
    #: scalar-fallback trigger and a first-class leak signal, mirroring the
    #: functional batch prepass (PR 6).
    divergences: tuple = ()


def execute_run(task: RunTask) -> RunOutput:
    """Simulate one input from reset and collect its iteration snapshots.

    This is the worker entry point: module-level so it pickles under every
    ``multiprocessing`` start method, and self-contained so the same code
    path serves the serial backend, the pool workers and cache misses.
    """
    # Imported here, not at module top, to avoid a circular import
    # (runner -> exec_backend -> runner).
    from repro.sampler.runner import WorkloadError

    tracer = MicroarchTracer(features=task.features, keep_raw=task.keep_raw,
                             log_commits=task.log_commits,
                             pruned=task.pruned)
    tracer.timed = True
    tracer.begin_run(task.run_index)

    checkpoint = task.checkpoint
    ff_seconds = 0.0
    if checkpoint is None and task.warmup_insts is not None:
        from repro.sampler.checkpoint import CheckpointStore, load_or_capture

        started = time.perf_counter()
        store = (CheckpointStore(task.checkpoint_dir)
                 if task.checkpoint_dir else None)
        checkpoint = load_or_capture(
            task.program, memory_map=task.memory_map,
            warmup_insts=task.warmup_insts, store=store,
            batch_lanes=task.batch_lanes,
        )
        ff_seconds = time.perf_counter() - started

    core = Core(
        task.program, task.config,
        memory_map=task.memory_map,
        kernel=ProxyKernel(memory_map=task.memory_map or MemoryMap()),
        tracer=tracer,
    )
    if task.log_commits:
        core.commit_listener = tracer.on_commit
    if task.profile:
        from repro.util.profiling import StageProfile

        core.profiler = StageProfile()
    if checkpoint is not None and checkpoint.steps > 0:
        # A step-0 checkpoint is the reset state: skip the restore so the
        # run is the full-simulation code path, not merely equivalent to it.
        started = time.perf_counter()
        core.restore_architectural_state(checkpoint)
        ff_seconds += time.perf_counter() - started
    for symbol, length in task.warm_regions:
        base = task.program.symbols[symbol]
        for address in range(base, base + length, 64):
            core.dcache.warm_line(address)
    ff_steps = checkpoint.steps if checkpoint is not None else 0
    if core.profiler is not None:
        core.profiler.fastforward_seconds += ff_seconds
        core.profiler.ff_steps += ff_steps
        # Attribute pre-ROI cycle-accurate simulation (the warm-up replay,
        # or the whole prologue when checkpointing is off) to its own phase.
        started = time.perf_counter()
        while (not core.halted and not tracer.roi_seen
                and core.cycle < task.max_cycles):
            core.step()
        core.profiler.warmup_seconds += time.perf_counter() - started
    result = core.run(max_cycles=task.max_cycles)
    if (task.expect_exit_code is not None
            and result.exit_code != task.expect_exit_code):
        raise WorkloadError(
            f"workload {task.workload_name!r} exited with "
            f"{result.exit_code} (expected {task.expect_exit_code})"
        )
    ckpt_key = None
    if task.warmup_insts is not None and task.checkpoint_dir:
        from repro.sampler.checkpoint import checkpoint_key

        ckpt_key = checkpoint_key(task.program, task.memory_map,
                                  task.warmup_insts,
                                  batch_lanes=task.batch_lanes)
    return RunOutput(
        run_index=task.run_index,
        iterations=tracer.iterations,
        run=result,
        cycles_sampled=tracer.cycles_sampled,
        sample_seconds=tracer.sample_seconds + tracer.finalize_seconds,
        ff_steps=ff_steps,
        profile=core.profiler,
        checkpoint_key=ckpt_key,
    )


def _execute_lockstep(tasks: list[RunTask]) -> list[RunOutput]:
    """Run one lane group through a shared :class:`BatchCore` pipeline.

    All tasks must come from one campaign (same program stream, config,
    memory map and tracer settings; only patched data and run indices
    differ).  Raises :class:`~repro.uarch.batch_core.LaneDivergence` when
    the lanes cannot share a pipeline — the caller partitions and retries.
    """
    from repro.sampler.runner import WorkloadError
    from repro.trace.tracer import BatchTracer
    from repro.uarch.batch_core import BatchCore

    head = tasks[0]
    n_lanes = len(tasks)
    tracer = BatchTracer(n_lanes, features=head.features,
                         keep_raw=head.keep_raw,
                         log_commits=head.log_commits,
                         pruned=head.pruned)
    tracer.timed = True
    tracer.begin_lane_runs([task.run_index for task in tasks])

    checkpoints = [task.checkpoint for task in tasks]
    ff_seconds = 0.0
    if head.warmup_insts is not None:
        from repro.sampler.checkpoint import CheckpointStore, load_or_capture

        started = time.perf_counter()
        for lane, task in enumerate(tasks):
            if checkpoints[lane] is None:
                store = (CheckpointStore(task.checkpoint_dir)
                         if task.checkpoint_dir else None)
                checkpoints[lane] = load_or_capture(
                    task.program, memory_map=task.memory_map,
                    warmup_insts=task.warmup_insts, store=store,
                    batch_lanes=task.batch_lanes,
                )
        ff_seconds = time.perf_counter() - started

    core = BatchCore(
        [task.program for task in tasks], head.config,
        memory_map=head.memory_map,
        tracer=tracer,
    )
    if head.log_commits:
        core.commit_listener = tracer.on_commit
    if head.profile:
        from repro.util.profiling import StageProfile

        core.profiler = StageProfile()
    run_started = time.perf_counter()
    have = sum(1 for ckpt in checkpoints if ckpt is not None)
    if 0 < have < n_lanes:
        # Some lanes checkpointed, some not: they cannot share a pipeline.
        core._diverge("checkpoint", core.fetch_pc, "<restore>",
                      tuple(ckpt is not None for ckpt in checkpoints))
    if have:
        heads = tuple((ckpt.pc, ckpt.steps) for ckpt in checkpoints)
        if any(entry != heads[0] for entry in heads[1:]):
            core._diverge("checkpoint", heads[0][0], "<restore>", heads)
        if checkpoints[0].steps > 0:
            # Step-0 checkpoints are the reset state: skip the restore so
            # the run is the full-simulation code path (same rule as the
            # scalar backend).
            started = time.perf_counter()
            core.restore_architectural_states(checkpoints)
            ff_seconds += time.perf_counter() - started
    for symbol, length in head.warm_regions:
        base = head.program.symbols[symbol]
        for address in range(base, base + length, 64):
            core.dcache.warm_line(address)
    ff_steps = checkpoints[0].steps if checkpoints[0] is not None else 0
    if core.profiler is not None:
        core.profiler.fastforward_seconds += ff_seconds
        core.profiler.ff_steps += ff_steps
        started = time.perf_counter()
        while (not core.halted and not tracer.roi_seen
                and core.cycle < head.max_cycles):
            core.step()
        core.profiler.warmup_seconds += time.perf_counter() - started
    core.run(max_cycles=head.max_cycles)
    if core.profiler is not None:
        core.profiler.batchcore_seconds += time.perf_counter() - run_started
        core.profiler.batchcore_runs += 1
    for lane, task in enumerate(tasks):
        exit_code = core.kernel.kernels[lane].exit_code
        if (task.expect_exit_code is not None
                and exit_code != task.expect_exit_code):
            raise WorkloadError(
                f"workload {task.workload_name!r} exited with "
                f"{exit_code} (expected {task.expect_exit_code})"
            )
    outputs = []
    sample_seconds = tracer.sample_seconds + tracer.finalize_seconds
    for lane, task in enumerate(tasks):
        kernel = core.kernel.kernels[lane]
        ckpt_key = None
        if task.warmup_insts is not None and task.checkpoint_dir:
            from repro.sampler.checkpoint import checkpoint_key

            ckpt_key = checkpoint_key(task.program, task.memory_map,
                                      task.warmup_insts,
                                      batch_lanes=task.batch_lanes)
        outputs.append(RunOutput(
            run_index=task.run_index,
            iterations=tracer.lane_iterations[lane],
            run=RunResult(
                exit_code=kernel.exit_code,
                # Timing is shared by construction, so every lane's stats
                # equal the scalar run's (pinned by the differential suite).
                stats=replace(core.stats),
                console=kernel.console_text,
            ),
            cycles_sampled=tracer.cycles_sampled,
            sample_seconds=sample_seconds if lane == 0 else 0.0,
            ff_steps=ff_steps,
            profile=core.profiler if lane == 0 else None,
            checkpoint_key=ckpt_key,
        ))
    return outputs


def execute_run_batch(tasks: list[RunTask]) -> list[RunOutput]:
    """Execute one lane group, falling back to scalar on divergence.

    On :class:`~repro.uarch.batch_core.LaneDivergence` the lanes are
    partitioned by their divergence keys (lanes that still agree stay
    batched together) and re-run from the start; the event — with lanes
    remapped to campaign run indices — is attached to the group's first
    output as a first-class leak signal.
    """
    from repro.uarch.batch_core import LaneDivergence

    if len(tasks) == 1:
        return [execute_run(tasks[0])]
    try:
        return _execute_lockstep(tasks)
    except LaneDivergence as exc:
        fallback_started = time.perf_counter()
        event = _remap_event_lanes(exc.event, tasks)
        groups: dict = {}
        order = []
        for lane, key in enumerate(exc.lane_keys):
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(lane)
        outputs: list[RunOutput | None] = [None] * len(tasks)
        if len(order) == 1:
            # Defensive: a divergence with one equality class cannot be
            # partitioned — run every lane scalar.
            for lane, task in enumerate(tasks):
                outputs[lane] = execute_run(task)
        else:
            for key in order:
                members = groups[key]
                results = execute_run_batch([tasks[lane] for lane in members])
                for member, result in zip(members, results):
                    outputs[member] = result
        events = [event]
        for output in outputs:
            if output.divergences:
                events.extend(output.divergences)
                output.divergences = ()
        outputs[0].divergences = tuple(events)
        if outputs[0].profile is not None:
            outputs[0].profile.fallback_seconds += (
                time.perf_counter() - fallback_started)
        return outputs


def _remap_event_lanes(event, tasks):
    """Remap a divergence event's lane numbers to campaign run indices."""
    return replace(
        event, lanes=tuple(tasks[lane].run_index for lane in event.lanes))


def _lane_groups(tasks: list[RunTask]) -> list[list[RunTask]]:
    """Partition tasks (order-preserving) into batched-core lane groups.

    Consecutive tasks carrying the same ``core_lanes`` width > 1 form
    groups of at most that width; everything else stays a singleton.
    """
    groups: list[list[RunTask]] = []
    index = 0
    count = len(tasks)
    while index < count:
        width = tasks[index].core_lanes or 0
        if width > 1:
            end = index + 1
            while (end < count and end - index < width
                    and (tasks[end].core_lanes or 0) > 1):
                end += 1
            groups.append(list(tasks[index:end]))
            index = end
        else:
            groups.append([tasks[index]])
            index += 1
    return groups


def execute_task_list(tasks: list[RunTask]) -> list[RunOutput]:
    """Execute tasks in order, lane-batching eligible consecutive groups."""
    outputs: list[RunOutput] = []
    for group in _lane_groups(tasks):
        outputs.extend(execute_run_batch(group))
    return outputs


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a job-count request: ``None``/``0`` means "all CPUs"."""
    if not jobs:
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # platforms without CPU affinity
            return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _pool_context():
    """Prefer ``fork`` (cheap, inherits the loaded modules) where available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )


def execute_tasks(tasks: list[RunTask], jobs: int | None = 1,
                  pool: "WorkerPool | None" = None) -> list[RunOutput]:
    """Execute ``tasks``, returning outputs in **task order**.

    With a ``pool`` (a long-lived :class:`WorkerPool`, e.g. the campaign
    service's), every lane group is dispatched as its own shard and the
    outputs are gathered in submission order.  Otherwise ``jobs <= 1`` (or
    a single group) runs in-process, and ``jobs > 1`` spins up a per-call
    process pool; ``Executor.map`` yields results in submission order, so
    completion order never influences the merge, and a worker's
    ``WorkloadError`` propagates to the caller unchanged.

    The dispatch unit is a *lane group* (see :func:`_lane_groups`): a
    batched-core group must land whole in one worker, and without core
    batching every group is a singleton, so this degenerates to the
    original per-task behaviour.
    """
    if pool is not None and len(tasks) > 0:
        futures = [pool.submit(group) for group in _lane_groups(tasks)]
        outputs: list[RunOutput] = []
        for future in futures:
            outputs.extend(future.result())
        return outputs
    groups = _lane_groups(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(groups) <= 1:
        return execute_task_list(tasks)
    workers = min(jobs, len(groups))
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=_pool_context()) as pool_:
        return [output
                for outputs in pool_.map(execute_run_batch, groups)
                for output in outputs]


# -- persistent worker pool (campaign service) -------------------------------
#
# ``ProcessPoolExecutor`` is rebuilt per campaign and dies with its first
# crashed worker (a SIGKILL poisons the whole executor).  The long-running
# campaign service needs the opposite: workers that outlive any one job,
# detect and replace crashed members, and re-dispatch the shard the victim
# held.  ``WorkerPool`` provides that on plain ``multiprocessing`` pipes —
# one duplex pipe per worker, a dispatcher thread multiplexing them with
# ``connection.wait``.  A worker death closes its pipe, so the EOF doubles
# as the health check: no polling interval, detection is immediate.


#: Environment variable naming a *fault-injection token file*.  When set,
#: every pool worker tries to atomically consume (unlink) the file before
#: executing a task; the single worker that wins the unlink SIGKILLs itself
#: mid-shard.  This exists purely so tests can exercise the crash-recovery
#: path deterministically — exactly one kill per token file, injected at a
#: real shard boundary inside a real worker process.
FAULT_TOKEN_ENV = "MICROSAMPLER_FAULT_TOKEN"


def maybe_inject_worker_fault() -> None:
    """Consume the fault token, if any, and die abruptly (test hook)."""
    path = os.environ.get(FAULT_TOKEN_ENV)
    if not path:
        return
    try:
        os.unlink(path)
    except OSError:
        return  # token already consumed (or never created): no fault
    os.kill(os.getpid(), signal.SIGKILL)


class WorkerCrashError(RuntimeError):
    """A shard's workers kept dying; the shard exceeded its re-dispatch
    budget and cannot complete."""


class ShardExecutionError(RuntimeError):
    """A worker reported a Python-level failure while executing a shard
    (e.g. a :class:`~repro.sampler.runner.WorkloadError`).  Deterministic —
    never retried."""


def _pool_worker(conn) -> None:
    """Worker main loop: receive ``(shard_id, tasks)``, send results back.

    Runs until the parent sends ``None`` or closes the pipe.  Failures are
    reported as data, not raised — the worker survives bad shards; only an
    OS-level death (crash, SIGKILL) takes it down, which the parent notices
    as EOF on this pipe.
    """
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        shard_id, tasks = item
        try:
            outputs = []
            for group in _lane_groups(tasks):
                for _ in group:
                    maybe_inject_worker_fault()
                outputs.extend(execute_run_batch(group))
            reply = (shard_id, True, outputs)
        except BaseException as exc:  # noqa: BLE001 - reported, not raised
            reply = (shard_id, False, f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


class _Shard:
    """One dispatch unit: a task list plus its result future."""

    __slots__ = ("shard_id", "tasks", "future", "dispatches")

    def __init__(self, shard_id: int, tasks: list[RunTask]):
        self.shard_id = shard_id
        self.tasks = tasks
        self.future: concurrent.futures.Future = concurrent.futures.Future()
        self.dispatches = 0


class _WorkerHandle:
    """Parent-side view of one worker process."""

    __slots__ = ("worker_id", "process", "conn", "shard")

    def __init__(self, worker_id: int, process, conn):
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.shard: _Shard | None = None


class WorkerPool:
    """Long-lived simulation worker pool with crash recovery.

    ``submit(tasks)`` enqueues one *shard* (a list of :class:`RunTask`) and
    returns a :class:`concurrent.futures.Future` resolving to the shard's
    ``list[RunOutput]`` in task order.  Shards are assigned to idle workers
    by a dispatcher thread; a worker that dies mid-shard (crash, OOM kill,
    :data:`FAULT_TOKEN_ENV` injection) is detected immediately via pipe
    EOF, replaced with a fresh process, and its shard re-dispatched — up to
    ``max_redispatch`` times, after which the shard's future fails with
    :class:`WorkerCrashError`.  Python-level worker errors (a misbehaving
    workload) are deterministic and fail the future with
    :class:`ShardExecutionError` without retrying.

    Thread-safe: futures may be awaited from any thread (or wrapped with
    ``asyncio.wrap_future``).  Simulation results are bit-identical to
    in-process execution — workers run the exact same
    :func:`execute_run` — so pool output feeds the same deterministic
    merge as every other backend.
    """

    def __init__(self, workers: int | None = None, *,
                 max_redispatch: int = 2, ctx=None):
        self._ctx = ctx or _pool_context()
        self.n_workers = max(1, resolve_jobs(workers))
        self.max_redispatch = max_redispatch
        self._lock = threading.Lock()
        self._pending: collections.deque[_Shard] = collections.deque()
        self._handles: dict[int, _WorkerHandle] = {}
        self._next_worker_id = 0
        self._next_shard_id = 0
        self._closed = False
        self._stats = {
            "workers": self.n_workers,
            "workers_spawned": 0,
            "workers_replaced": 0,
            "shards_dispatched": 0,
            "shards_redispatched": 0,
            "shards_completed": 0,
            "shards_failed": 0,
            "tasks_completed": 0,
        }
        self._wake_r, self._wake_w = os.pipe()
        with self._lock:
            for _ in range(self.n_workers):
                self._spawn_locked()
        self._thread = threading.Thread(
            target=self._dispatch_loop, daemon=True,
            name="microsampler-worker-pool")
        self._thread.start()

    # -- public API ---------------------------------------------------------

    def submit(self, tasks: list[RunTask]) -> concurrent.futures.Future:
        """Enqueue one shard; the future resolves to its ``RunOutput`` list."""
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            shard = _Shard(self._next_shard_id, list(tasks))
            self._next_shard_id += 1
            self._pending.append(shard)
        self._wake()
        return shard.future

    def stats(self) -> dict:
        """Snapshot of pool counters (workers replaced, shards moved...)."""
        with self._lock:
            snapshot = dict(self._stats)
            snapshot["busy_workers"] = sum(
                1 for handle in self._handles.values()
                if handle.shard is not None)
            snapshot["pending_shards"] = len(self._pending)
        return snapshot

    def close(self, timeout: float = 5.0) -> None:
        """Stop the dispatcher and terminate every worker (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles.values())
            pending = list(self._pending)
            self._pending.clear()
        self._wake()
        self._thread.join(timeout)
        for shard in pending:
            if not shard.future.done():
                shard.future.set_exception(
                    RuntimeError("worker pool closed"))
        for handle in handles:
            if (handle.shard is not None
                    and not handle.shard.future.done()):
                handle.shard.future.set_exception(
                    RuntimeError("worker pool closed"))
            try:
                handle.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            handle.process.join(timeout)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(1.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatcher internals ----------------------------------------------

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    def _spawn_locked(self) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_pool_worker, args=(child_conn,), daemon=True,
            name=f"microsampler-worker-{self._next_worker_id}")
        process.start()
        child_conn.close()  # parent EOF-detects the child's death
        handle = _WorkerHandle(self._next_worker_id, process, parent_conn)
        self._handles[handle.worker_id] = handle
        self._next_worker_id += 1
        self._stats["workers_spawned"] += 1
        return handle

    def _assign_locked(self) -> None:
        for handle in self._handles.values():
            if not self._pending:
                return
            if handle.shard is None:
                shard = self._pending.popleft()
                shard.dispatches += 1
                handle.shard = shard
                if shard.dispatches == 1:
                    self._stats["shards_dispatched"] += 1
                try:
                    handle.conn.send((shard.shard_id, shard.tasks))
                except (BrokenPipeError, OSError):
                    # Worker already dead: the EOF path below re-dispatches.
                    self._pending.appendleft(shard)
                    shard.dispatches -= 1
                    handle.shard = None

    def _on_result(self, handle: _WorkerHandle, reply) -> None:
        shard_id, ok, payload = reply
        shard = handle.shard
        handle.shard = None
        if shard is None or shard.shard_id != shard_id:
            return  # stale reply from a shard already failed elsewhere
        if ok:
            self._stats["shards_completed"] += 1
            self._stats["tasks_completed"] += len(shard.tasks)
            if not shard.future.done():
                shard.future.set_result(payload)
        else:
            self._stats["shards_failed"] += 1
            if not shard.future.done():
                shard.future.set_exception(ShardExecutionError(payload))

    def _on_death_locked(self, handle: _WorkerHandle) -> None:
        """Replace a dead worker and requeue (or fail) its shard."""
        self._handles.pop(handle.worker_id, None)
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.process.join(0.1)
        shard = handle.shard
        handle.shard = None
        self._stats["workers_replaced"] += 1
        if not self._closed:
            self._spawn_locked()
        if shard is None:
            return
        if shard.dispatches > self.max_redispatch:
            self._stats["shards_failed"] += 1
            if not shard.future.done():
                shard.future.set_exception(WorkerCrashError(
                    f"shard {shard.shard_id} crashed its worker "
                    f"{shard.dispatches} time(s); giving up"))
            return
        self._stats["shards_redispatched"] += 1
        self._pending.appendleft(shard)

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
                self._assign_locked()
                conn_map = {handle.conn: handle
                            for handle in self._handles.values()}
            ready = multiprocessing.connection.wait(
                list(conn_map) + [self._wake_r], timeout=1.0)
            for obj in ready:
                if obj is self._wake_r:
                    try:
                        os.read(self._wake_r, 4096)
                    except OSError:
                        pass
                    continue
                handle = conn_map.get(obj)
                if handle is None:
                    continue
                try:
                    reply = handle.conn.recv()
                except (EOFError, OSError):
                    with self._lock:
                        if self._closed:
                            return
                        self._on_death_locked(handle)
                    continue
                with self._lock:
                    self._on_result(handle, reply)


def merge_outputs(outputs: list[RunOutput],
                  tracer: MicroarchTracer) -> list[RunResult]:
    """Deterministically merge per-run outputs into a shared-tracer view.

    Outputs must already be ordered by campaign input.  Records are
    re-stamped with their global iteration index and run index (cached
    outputs are normalized to ``run_index=0``, and a cached input may be
    replayed at a different position), which reproduces exactly what one
    tracer shared across a serial campaign would have recorded.
    """
    runs: list[RunResult] = []
    for position, output in enumerate(outputs):
        for record in output.iterations:
            record.run_index = position
            tracer.append_record(record)  # re-stamps the global index
        tracer.cycles_sampled += output.cycles_sampled
        if not output.from_cache:
            # Cache hits replay stored snapshots without sampling anything
            # this invocation; charging their original sample time here would
            # make the stage-time report claim work that never happened.
            tracer.sample_seconds += output.sample_seconds
        tracer.run_index = position
        if output.iterations:
            tracer.roi_seen = True
        runs.append(output.run)
    return runs
