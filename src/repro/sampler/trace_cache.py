"""Content-addressed cache of per-input simulation outputs.

MicroWalk-style campaigns re-simulate the same (program, input, core
configuration) triples constantly — input-coverage sweeps re-run every
smaller campaign's inputs, benchmark reruns repeat whole figures, and a
leaky workload is typically re-analyzed many times while a fix is iterated.
Simulation dominates the pipeline cost (Table VI), so those repeats are
worth eliminating entirely.

Each campaign input is keyed by the *content* it is a pure function of: the
assembled (and patched) program image, the core configuration, the memory
map, and the tracer settings (tracked features, retained raw rows, commit
logging), plus the warm-region and cycle-budget knobs.  Mutating any of them — a changed
source line, a different secret key, one more ROB entry — yields a new key;
everything else is a byte-identical replay.  Keys are salted with the
package version and a cache format version, but **not** with the simulator
source itself: after modifying the core model, clear the cache directory or
pass ``--no-cache``/``cache=None``.

Entries are stored one file per key under ``root/<key[:2]>/<key>.pkl``
(pickled *plain-value payloads*, not live objects — see
:func:`repro.trace.tracer.iteration_to_payload`), written atomically so
concurrent workers can share a cache directory.  Any unreadable, corrupt or
version-mismatched entry is treated as a miss.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import tempfile
from pathlib import Path

import repro
from repro.isa.batch_interpreter import DivergenceEvent
from repro.sampler.exec_backend import RunOutput, RunTask
from repro.trace.features import FEATURE_ORDER
from repro.trace.tracer import iteration_from_payload, iteration_to_payload
from repro.uarch.core import CoreStats, RunResult
from repro.util.hashing import stable_hex_digest

#: Bump when the payload layout or key canonicalization changes.  Version
#: history: 1 = original layout; 2 = iteration payloads carry per-cycle
#: digest sequences and commit logs (``log_commits`` joined the key
#: material); 3 = fast-forward checkpointing (``warmup_insts`` joined the
#: key material, payloads record the fast-forwarded instruction count);
#: 4 = taint-pruned tracing (``pruned`` joined the key material, payloads
#: record the checkpoint key the run used so ``cache prune`` can sweep
#: orphaned checkpoint-store entries);
#: 5 = lane-batched core simulation (``core_lanes`` joined the key
#: material — the lane set determines which lane-batched checkpoint
#: payloads a trace may reference — and payloads record the divergence
#: events observed while the input ran in a batched group);
#: 6 = cross-config sweeps (the key material canonicalizes the core
#: configuration as its memoized :func:`config_digest` instead of the raw
#: ``asdict`` dict, and payloads record the producing config's name and
#: digest so ``cache stats`` can break warm entries down per core config).
#: Entries written by older versions fail the version check and decode as
#: misses, so campaigns needing localization inputs are transparently
#: re-simulated instead of replaying traces without them; ``microsampler
#: cache prune`` garbage-collects the stale files.
CACHE_FORMAT_VERSION = 6

#: Environment override for the default cache location.
CACHE_DIR_ENV = "MICROSAMPLER_CACHE_DIR"


def default_cache_dir() -> Path:
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "microsampler"


def program_fingerprint(program) -> tuple:
    """Canonical content of an assembled program (text, data, symbols)."""
    return (
        tuple(
            (inst.mnemonic, inst.rd, inst.rs1, inst.rs2, inst.imm, inst.pc)
            for inst in program.instructions
        ),
        program.text_base,
        bytes(program.data),
        program.data_base,
        tuple(sorted(program.symbols.items())),
        program.entry,
    )


#: Memoized :func:`config_digest` results.  A campaign keys one task per
#: input — and a cross-config sweep multiplies that by the number of core
#: configs — against a handful of distinct :class:`CoreConfig` values, yet
#: ``dataclasses.asdict`` used to re-serialize the same ~30-field config
#: for every single key.  ``CoreConfig`` is frozen (hashable by value), so
#: equal configs share one entry and the dict stays as small as the set of
#: configs the process ever touched.
_CONFIG_DIGESTS: dict = {}


def config_digest(config) -> str:
    """Stable content digest of a core configuration (memoized by value)."""
    digest = _CONFIG_DIGESTS.get(config)
    if digest is None:
        digest = stable_hex_digest(dataclasses.asdict(config))
        _CONFIG_DIGESTS[config] = digest
    return digest


def task_key(task: RunTask) -> str:
    """Content-addressed cache key for one campaign input."""
    features = task.features if task.features is not None else FEATURE_ORDER
    keep_raw = (True if task.keep_raw is True
                else tuple(sorted(task.keep_raw)))
    material = (
        CACHE_FORMAT_VERSION,
        getattr(repro, "__version__", "0"),
        program_fingerprint(task.program),
        config_digest(task.config),
        dataclasses.asdict(task.memory_map) if task.memory_map else None,
        tuple(features),
        keep_raw,
        bool(task.log_commits),
        tuple(tuple(region) for region in task.warm_regions),
        task.max_cycles,
        task.expect_exit_code,
        # Fast-forward warm-up budget: changes which instructions are
        # simulated cycle-accurately, hence the snapshots.  The checkpoint
        # *directory* is storage location only and stays out of the key.
        task.warmup_insts,
        # Taint-pruned features record constant empty snapshots, so a
        # pruned trace must never replay for an unpruned campaign (or with
        # a different pruned set) and vice versa.
        tuple(sorted(task.pruned)),
        # Lane-batched core runs reference lane-batched checkpoint payloads
        # and record the divergence events their batch group observed, both
        # of which depend on the lane width the campaign ran at.
        task.core_lanes,
    )
    return stable_hex_digest(material)


def _output_to_payload(output: RunOutput, config=None) -> tuple:
    run = output.run
    return (
        CACHE_FORMAT_VERSION,
        tuple(iteration_to_payload(record) for record in output.iterations),
        (run.exit_code, dataclasses.asdict(run.stats), run.console,
         tuple(run.marker_cycles)),
        output.cycles_sampled,
        output.sample_seconds,
        output.ff_steps,
        output.checkpoint_key,
        tuple((d.pc, d.step, d.kind, d.mnemonic, tuple(d.lanes))
              for d in output.divergences),
        # Producing core config (name, digest): informational only — the
        # digest already keys the entry — but it lets ``cache stats`` report
        # which config legs of a sweep are warm without re-deriving keys.
        (config.name, config_digest(config)) if config is not None else None,
    )


def _output_from_payload(payload: tuple) -> RunOutput | None:
    if not isinstance(payload, tuple) or len(payload) != 9:
        return None
    (version, iterations, run, cycles_sampled, sample_seconds,
     ff_steps, ckpt_key, divergences, _config) = payload
    if version != CACHE_FORMAT_VERSION:
        return None
    exit_code, stats, console, marker_cycles = run
    return RunOutput(
        run_index=0,
        iterations=[iteration_from_payload(item) for item in iterations],
        run=RunResult(
            exit_code=exit_code,
            stats=CoreStats(**stats),
            console=console,
            marker_cycles=list(marker_cycles),
        ),
        cycles_sampled=cycles_sampled,
        sample_seconds=sample_seconds,
        from_cache=True,
        ff_steps=ff_steps,
        checkpoint_key=ckpt_key,
        divergences=tuple(
            DivergenceEvent(pc=pc, step=step, kind=kind,
                            mnemonic=mnemonic, lanes=tuple(lanes))
            for pc, step, kind, mnemonic, lanes in divergences
        ),
    )


class TraceCache:
    """Filesystem-backed cache of :class:`RunOutput` payloads.

    Lookups and stores never raise on I/O problems: a cache must only ever
    make a campaign faster, not able to fail it.
    """

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key_for(self, task: RunTask) -> str:
        return task_key(task)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def load(self, key: str) -> RunOutput | None:
        """Replay a cached run, or None on miss/corruption."""
        try:
            raw = self._path(key).read_bytes()
            output = _output_from_payload(pickle.loads(raw))
        except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                TypeError, AttributeError, ImportError, IndexError):
            output = None
        if output is None:
            self.misses += 1
        else:
            self.hits += 1
        return output

    def store(self, key: str, output: RunOutput, config=None) -> bool:
        """Atomically persist one run's payload; best-effort.

        ``config`` (the producing :class:`CoreConfig`, when the caller has
        it) is recorded in the payload for the per-config ``cache stats``
        breakdown; it does not affect the key or replay.
        """
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = pickle.dumps(_output_to_payload(output, config),
                                   protocol=pickle.HIGHEST_PROTOCOL)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                            prefix=f".{key}.")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        self.stores += 1
        return True


# -- maintenance (``microsampler cache``) -----------------------------------
#
# Format bumps orphan every entry written by earlier versions: they decode
# as misses forever but keep their disk space.  These helpers let the CLI
# inspect and garbage-collect them.  Both entry kinds live under one root:
# trace payloads as ``<root>/<xx>/<key>.pkl`` and checkpoints as
# ``<root>/checkpoints/<xx>/<key>.ckpt``.


def _read_payload(path: Path) -> tuple | None:
    try:
        payload = pickle.loads(path.read_bytes())
    except (OSError, pickle.UnpicklingError, EOFError, ValueError,
            TypeError, AttributeError, ImportError, IndexError,
            MemoryError):
        return None
    return payload if isinstance(payload, tuple) and payload else None


def _payload_version(path: Path) -> int | None:
    """First element of a pickled payload tuple, or None if unreadable."""
    payload = _read_payload(path)
    if payload is None:
        return None
    return payload[0] if isinstance(payload[0], int) else None


def _payload_checkpoint_key(payload: tuple) -> str | None:
    """The checkpoint key a current-version trace payload references."""
    if len(payload) >= 7 and isinstance(payload[6], str):
        return payload[6]
    return None


def _payload_config(payload: tuple) -> tuple | None:
    """``(name, digest)`` of the core config that produced a trace payload."""
    if (len(payload) >= 9 and isinstance(payload[8], tuple)
            and len(payload[8]) == 2):
        return payload[8]
    return None


def _scan_entries(root: Path):
    """Yield ``(path, kind, current_version)`` for every cache entry file."""
    from repro.sampler.checkpoint import (CHECKPOINT_FORMAT_VERSION,
                                          CheckpointStore)

    checkpoint_root = root / CheckpointStore.SUBDIR
    if root.is_dir():
        for path in sorted(root.rglob("*.pkl")):
            if checkpoint_root in path.parents:
                continue
            yield path, "trace", CACHE_FORMAT_VERSION
    if checkpoint_root.is_dir():
        for path in sorted(checkpoint_root.rglob("*.ckpt")):
            yield path, "checkpoint", CHECKPOINT_FORMAT_VERSION


def cache_stats(root: str | Path | None = None) -> dict:
    """Inventory of the cache directory, split by entry kind and staleness.

    An entry is *stale* when its recorded format version differs from the
    current one (or it cannot be decoded at all): it can never hit again
    and only occupies disk until pruned.

    Live trace entries are additionally broken down per producing core
    config under ``per_config`` (``digest -> {name, entries, bytes}``), so
    before submitting a cross-config sweep one can see which config legs
    are already warm.  Entries stored without a recorded config (older
    callers) are grouped under the ``"unknown"`` digest.
    """
    root = Path(root) if root is not None else default_cache_dir()
    stats = {
        kind: {"entries": 0, "bytes": 0, "stale_entries": 0, "stale_bytes": 0}
        for kind in ("trace", "checkpoint")
    }
    per_config: dict = {}
    for path, kind, current in _scan_entries(root):
        try:
            size = path.stat().st_size
        except OSError:
            continue
        bucket = stats[kind]
        bucket["entries"] += 1
        bucket["bytes"] += size
        payload = _read_payload(path)
        version = (payload[0] if payload is not None
                   and isinstance(payload[0], int) else None)
        if version != current:
            bucket["stale_entries"] += 1
            bucket["stale_bytes"] += size
            continue
        if kind != "trace":
            continue
        name, digest = _payload_config(payload) or ("?", "unknown")
        entry = per_config.setdefault(
            digest, {"name": name, "entries": 0, "bytes": 0})
        entry["entries"] += 1
        entry["bytes"] += size
    return {"root": str(root), **stats, "per_config": per_config}


def prune_cache(root: str | Path | None = None, *,
                all_entries: bool = False) -> dict:
    """Delete stale cache entries (or every entry with ``all_entries``).

    Both stores are swept *consistently*: after the stale trace entries go,
    any checkpoint no surviving trace entry references is an **orphan**
    (its parents can never hit again, so nothing will ever restore it) and
    is removed too.  Surviving trace payloads record the checkpoint key
    their run used, which is what ties the two stores together.

    Returns ``{"root", "removed_entries", "removed_bytes", "removed"}``
    where ``removed`` breaks the count down by kind (``trace``,
    ``checkpoint``, ``orphan``).  Removal is best-effort (a vanished or
    undeletable file is skipped) and empty shard directories are cleaned
    up afterwards.
    """
    root = Path(root) if root is not None else default_cache_dir()
    removed = {"trace": 0, "checkpoint": 0, "orphan": 0}
    removed_bytes = 0
    referenced: set[str] = set()
    checkpoints: list[tuple[Path, int | None]] = []

    def _unlink(path: Path, kind: str) -> None:
        nonlocal removed_bytes
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            return
        removed[kind] += 1
        removed_bytes += size

    for path, kind, current in _scan_entries(root):
        if kind == "checkpoint":
            checkpoints.append((path, current))
            continue
        payload = _read_payload(path)
        version = (payload[0] if payload is not None
                   and isinstance(payload[0], int) else None)
        if not all_entries and version == current:
            key = _payload_checkpoint_key(payload)
            if key is not None:
                referenced.add(key)
            continue
        _unlink(path, "trace")
    for path, current in checkpoints:
        if all_entries or _payload_version(path) != current:
            _unlink(path, "checkpoint")
        elif path.stem not in referenced:
            # Current-version checkpoint, but no surviving trace entry
            # references it: its parents were pruned (or never cached).
            _unlink(path, "orphan")
    if root.is_dir():
        for directory in sorted(root.rglob("*"), reverse=True):
            if directory.is_dir():
                try:
                    directory.rmdir()  # only succeeds when empty
                except OSError:
                    pass
    return {"root": str(root),
            "removed_entries": sum(removed.values()),
            "removed_bytes": removed_bytes,
            "removed": removed}
