"""Association statistics: Pearson chi-squared and Cramér's V (Section V-C2).

Implements Equations 2-4 of the paper directly.  The chi-squared *p*-value
uses the regularized upper incomplete gamma function from scipy; everything
else is computed from first principles so the statistical machinery itself
is part of the reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.special import gammaincc

from repro.sampler.contingency import ContingencyTable

#: Cohen's guidance as cited by the paper: correlation is strong for V > 0.5.
STRONG_ASSOCIATION_THRESHOLD = 0.5
#: Significance level used by the paper's p-value test.
SIGNIFICANCE_ALPHA = 0.05


@dataclass(frozen=True)
class AssociationResult:
    """Chi-squared / Cramér's V association measurement for one table."""

    chi_squared: float
    dof: int
    p_value: float
    cramers_v: float
    n_observations: int
    n_classes: int
    n_categories: int
    #: Bias-corrected V (Bergsma 2013); see :func:`cramers_v_corrected`.
    cramers_v_corrected: float = 0.0

    @property
    def significant(self) -> bool:
        return self.p_value < SIGNIFICANCE_ALPHA

    @property
    def strong(self) -> bool:
        return self.cramers_v > STRONG_ASSOCIATION_THRESHOLD

    @property
    def leaky(self) -> bool:
        """The paper's flagging rule: strong AND statistically significant."""
        return self.strong and self.significant


def chi_squared_statistic(table: ContingencyTable) -> tuple[float, int]:
    """Pearson chi-squared statistic and degrees of freedom (Eq. 3 and 4)."""
    total = table.total
    if total == 0 or table.is_degenerate():
        return 0.0, 0
    row_totals = table.row_totals()
    column_totals = table.column_totals()
    statistic = 0.0
    for i in range(table.n_rows):
        for j in range(table.n_cols):
            expected = row_totals[i] * column_totals[j] / total
            if expected > 0:
                observed = table.counts[i][j]
                statistic += (observed - expected) ** 2 / expected
    dof = (table.n_rows - 1) * (table.n_cols - 1)
    return statistic, dof


def chi_squared_p_value(statistic: float, dof: int) -> float:
    """Upper-tail p-value of the chi-squared distribution.

    Uses the identity P(X >= x) = Q(dof/2, x/2) with Q the regularized upper
    incomplete gamma function.
    """
    if dof <= 0:
        return 1.0
    return float(gammaincc(dof / 2.0, statistic / 2.0))


def _cramers_v_from_statistic(statistic: float, table: ContingencyTable) -> float:
    if table.is_degenerate():
        return 0.0
    denominator = table.total * min(table.n_cols - 1, table.n_rows - 1)
    if denominator == 0:
        return 0.0
    return math.sqrt(statistic / denominator)


def _cramers_v_corrected_from_statistic(statistic: float,
                                        table: ContingencyTable) -> float:
    if table.is_degenerate():
        return 0.0
    n = table.total
    if n <= 1:
        return 0.0
    r, k = table.n_rows, table.n_cols
    phi2 = statistic / n
    phi2_corrected = max(0.0, phi2 - (k - 1) * (r - 1) / (n - 1))
    r_corrected = r - (r - 1) ** 2 / (n - 1)
    k_corrected = k - (k - 1) ** 2 / (n - 1)
    denominator = min(k_corrected - 1, r_corrected - 1)
    if denominator <= 0:
        return 0.0
    return math.sqrt(phi2_corrected / denominator)


def cramers_v(table: ContingencyTable) -> float:
    """Cramér's V of a contingency table (Eq. 2).

    Defined as 0 for degenerate tables (a single class or a single snapshot
    hash): with no variation there is no measurable association.
    """
    statistic, _ = chi_squared_statistic(table)
    return _cramers_v_from_statistic(statistic, table)


def cramers_v_corrected(table: ContingencyTable) -> float:
    """Bias-corrected Cramér's V (Bergsma 2013).

    The empirical V is positively biased for sparse tables — exactly the
    small-sample regime the paper guards with p-values.  The correction
    shrinks chi-squared/N and the table dimensions by their expectations
    under independence, giving a statistic that is near zero for independent
    data even with many snapshot-hash categories.
    """
    statistic, _ = chi_squared_statistic(table)
    return _cramers_v_corrected_from_statistic(statistic, table)


def measure_association(table: ContingencyTable) -> AssociationResult:
    """Full association measurement for one contingency table."""
    statistic, dof = chi_squared_statistic(table)
    return AssociationResult(
        chi_squared=statistic,
        dof=dof,
        p_value=chi_squared_p_value(statistic, dof),
        cramers_v=_cramers_v_from_statistic(statistic, table),
        cramers_v_corrected=_cramers_v_corrected_from_statistic(
            statistic, table),
        n_observations=table.total,
        n_classes=table.n_rows,
        n_categories=table.n_cols,
    )
