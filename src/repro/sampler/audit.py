"""Library-audit campaigns: verify a whole suite of primitives in one run.

The paper's deployment story (Section IV) is a full-stack vendor verifying
its crypto library against its own microarchitecture.  :func:`run_audit`
packages that: a list of workloads goes in, a per-workload verdict table
comes out, with optional *expected* verdicts so the audit doubles as a
regression gate (exit non-zero on any unexpected flip, in either direction).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.sampler.pipeline import MicroSampler
from repro.uarch.config import CoreConfig, MEGA_BOOM


@dataclass
class AuditEntry:
    """Verdict for one workload."""

    name: str
    leakage_detected: bool
    leaky_units: list
    max_v: float
    n_iterations: int
    seconds: float
    expected: bool | None = None
    #: Taint prescreen outcome (``--taint on`` only, else all None/empty):
    #: did the engine see secret-dependent control or address flow?
    taint_escalated: bool | None = None
    #: Expected escalation verdict (folds into :attr:`as_expected`).
    taint_expected: bool | None = None
    #: Per-unit taint-vs-statistics agreement statuses.
    taint_agreement: dict = field(default_factory=dict)

    @property
    def taint_disagreements(self) -> list:
        return [fid for fid, status in self.taint_agreement.items()
                if status == "TAINT-DISAGREE"]

    @property
    def as_expected(self) -> bool:
        if self.expected is not None and \
                self.expected != self.leakage_detected:
            return False
        if self.taint_expected is not None and \
                self.taint_escalated is not None and \
                self.taint_expected != self.taint_escalated:
            return False
        return not self.taint_disagreements


@dataclass
class AuditResult:
    """Full audit outcome."""

    config_name: str
    entries: list = field(default_factory=list)
    #: Suite-wide per-stage simulator time breakdown when profiling was
    #: requested (:class:`repro.util.profiling.StageProfile`).
    profile: object | None = None

    @property
    def unexpected(self) -> list:
        return [entry for entry in self.entries if not entry.as_expected]

    @property
    def passed(self) -> bool:
        return not self.unexpected

    def render(self) -> str:
        show_taint = any(entry.taint_escalated is not None
                         for entry in self.entries)
        header = (f"{'workload':<26} {'verdict':<10} {'max V':>6} "
                  f"{'iters':>6} {'time':>7}  ")
        if show_taint:
            header += f"{'taint':<10} {'agreement':<14} "
        header += f"{'status':<10} flagged units"
        lines = [
            f"Constant-time audit on {self.config_name}",
            header,
            "-" * max(100, len(header)),
        ]
        for entry in self.entries:
            verdict = "LEAK" if entry.leakage_detected else "clean"
            if entry.expected is None and entry.taint_expected is None:
                status = ""
            elif entry.as_expected:
                status = "expected"
            else:
                status = "UNEXPECTED"
            units = ", ".join(entry.leaky_units[:5])
            if len(entry.leaky_units) > 5:
                units += f" (+{len(entry.leaky_units) - 5})"
            row = (
                f"{entry.name:<26} {verdict:<10} {entry.max_v:>6.2f} "
                f"{entry.n_iterations:>6} {entry.seconds:>6.1f}s  "
            )
            if show_taint:
                taint = ("-" if entry.taint_escalated is None
                         else "escalated" if entry.taint_escalated
                         else "clean")
                if entry.taint_disagreements:
                    agreement = (f"DISAGREE x"
                                 f"{len(entry.taint_disagreements)}")
                elif entry.taint_agreement:
                    agreement = "agree"
                else:
                    agreement = "-"
                row += f"{taint:<10} {agreement:<14} "
            row += f"{status:<10} {units}"
            lines.append(row)
        lines.append("-" * 100)
        lines.append("AUDIT PASSED" if self.passed else
                     f"AUDIT FAILED: {len(self.unexpected)} unexpected "
                     f"verdict(s)")
        if self.profile is not None:
            lines.append("")
            lines.append(self.profile.render())
        return "\n".join(lines)


def audit_to_dict(result: AuditResult) -> dict:
    """JSON-serializable audit verdict table.

    Per-entry ``seconds`` is wall clock and varies run to run; strip it
    (see :func:`repro.service.strip_volatile`) before comparing audits
    for bit-identity.
    """
    entries = []
    for entry in result.entries:
        item = {
            "name": entry.name,
            "leakage_detected": entry.leakage_detected,
            "leaky_units": list(entry.leaky_units),
            "max_v": entry.max_v,
            "n_iterations": entry.n_iterations,
            "seconds": entry.seconds,
            "expected": entry.expected,
            "as_expected": entry.as_expected,
        }
        if entry.taint_escalated is not None:
            # Present only with --taint on: off-mode audit JSON unchanged.
            item["taint"] = {
                "escalated": entry.taint_escalated,
                "expected_escalated": entry.taint_expected,
                "agreement": dict(entry.taint_agreement),
                "disagreements": entry.taint_disagreements,
            }
        entries.append(item)
    return {
        "config": result.config_name,
        "passed": result.passed,
        "n_unexpected": len(result.unexpected),
        "entries": entries,
    }


def run_audit(workloads, *, config: CoreConfig = MEGA_BOOM,
              expectations: dict | None = None,
              sampler: MicroSampler | None = None,
              jobs: int | None = 1, cache=None,
              warmup_insts: int | None = None,
              batch_lanes=None,
              engine: str = "numpy", profile: bool = False,
              taint: bool = False,
              taint_expectations: dict | None = None) -> AuditResult:
    """Analyze every workload; ``expectations[name]`` = True means "should
    leak" (a litmus), False means "must be clean" (a hardened primitive).

    ``jobs``/``cache``/``warmup_insts``/``batch_lanes``/``engine``/
    ``profile`` configure the simulation backend and the statistics engine
    when no explicit ``sampler`` is supplied (see
    :func:`repro.sampler.run_campaign` and
    :class:`~repro.sampler.pipeline.MicroSampler`); with ``profile`` the
    suite-wide per-stage breakdown lands on ``AuditResult.profile``.

    ``taint`` runs the secret-taint prescreen alongside every analysis and
    records the taint-vs-statistics agreement per entry;
    ``taint_expectations[name]`` = True means "should escalate" (folded
    into ``as_expected``, so the audit gates the taint engine too).  A
    ``TAINT-DISAGREE`` status on any unit also fails the entry."""
    sampler = sampler or MicroSampler(config, jobs=jobs, cache=cache,
                                      warmup_insts=warmup_insts,
                                      batch_lanes=batch_lanes,
                                      engine=engine, profile=profile,
                                      taint=taint)
    expectations = expectations or {}
    taint_expectations = taint_expectations or {}
    result = AuditResult(config_name=config.name)
    profiles = []
    for workload in workloads:
        started = time.perf_counter()
        report = sampler.analyze(workload)
        profiles.append(report.profile)
        result.entries.append(AuditEntry(
            name=workload.name,
            leakage_detected=report.leakage_detected,
            leaky_units=report.leaky_units,
            max_v=max(report.cramers_v_by_unit().values()),
            n_iterations=report.n_iterations,
            seconds=time.perf_counter() - started,
            expected=expectations.get(workload.name),
            taint_escalated=(report.taint.escalated
                             if report.taint is not None else None),
            taint_expected=(taint_expectations.get(workload.name)
                            if report.taint is not None else None),
            taint_agreement=(dict(report.taint.agreement)
                             if report.taint is not None else {}),
        ))
    if any(profile is not None for profile in profiles):
        from repro.util.profiling import merge_profiles

        result.profile = merge_profiles(profiles)
    return result
