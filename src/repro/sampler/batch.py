"""Lockstep batch prepass: one functional pass for all campaign inputs.

Constant-time code promises input-independent control flow, which means the
N per-input functional warm-up passes of a campaign (``sampler/checkpoint``)
execute the *same* instruction stream N times.  This module exploits that:
it chunks the inputs into lanes and runs one
:class:`~repro.isa.batch_interpreter.BatchInterpreter` pass per chunk,
capturing every lane's ``roi.begin`` checkpoint in a single sweep.

When a lane's control flow, memory footprint, or syscall behaviour deviates
from lane 0's, the batch interpreter splits it off and records a
:class:`~repro.isa.batch_interpreter.DivergenceEvent`.  That event is not
just an implementation detail — a divergent prologue is data-dependent
execution, exactly the class of behaviour a constant-time audit exists to
find — so the prepass surfaces the events on the campaign result and they
propagate into reports.

``--batch-lanes`` controls the mode:

* ``off`` — no prepass; per-input scalar capture, bit-identical to the
  pre-batching pipeline by construction.
* ``auto`` — batch at ``min(n_inputs, DEFAULT_MAX_LANES)`` lanes.
* ``N`` — batch at exactly ``N`` lanes (chunking inputs as needed).

The same lane width also drives the *cycle-accurate* phase: tasks are
stamped with ``core_lanes`` and consecutive stamped tasks simulate as one
lockstep :class:`~repro.uarch.batch_core.BatchCore` group (see
``exec_backend._lane_groups``), with the identical divergence-as-signal
semantics at microarchitectural granularity.

The differential test battery (``tests/test_batch_interpreter.py``,
``tests/test_checkpoint.py``) enforces that batched captures are
bit-identical to scalar ones; modes still never share checkpoint-store
entries (``batch_lanes`` is part of the key) so a capture bug in one mode
cannot poison the other.
"""

from __future__ import annotations

import dataclasses

#: Lane width used by ``--batch-lanes auto``.  32 inputs per numpy batch is
#: wide enough to amortize per-instruction dispatch without making a single
#: lane split (which copies the whole lane state) disproportionately costly.
DEFAULT_MAX_LANES = 32


def parse_batch_lanes(text: str):
    """Parse a ``--batch-lanes`` value: ``off`` | ``auto`` | N."""
    lowered = text.strip().lower()
    if lowered == "off":
        return None
    if lowered == "auto":
        return "auto"
    value = int(lowered)  # ValueError propagates (argparse renders it)
    if value < 1:
        raise ValueError(f"batch lanes must be >= 1, got {value}")
    return value


def describe_batch_lanes(batch_lanes) -> str:
    if batch_lanes is None:
        return "off"
    if batch_lanes == "auto":
        return "auto"
    return f"{batch_lanes} lanes"


def resolve_batch_lanes(batch_lanes, n_inputs: int) -> int:
    """Effective lane width for ``n_inputs`` (1 = prepass disabled)."""
    if batch_lanes is None or n_inputs <= 0:
        return 1
    if batch_lanes == "auto":
        return min(n_inputs, DEFAULT_MAX_LANES)
    return min(int(batch_lanes), n_inputs)


def attach_batch_checkpoints(tasks: list, to_run: list, *, lanes: int,
                             warmup_insts: int,
                             checkpoint_dir: str | None) -> list:
    """Capture (or load) checkpoints for ``to_run`` tasks, lockstep-batched.

    Mutates ``tasks`` in place: every task in ``to_run`` is replaced with a
    copy carrying ``batch_lanes=lanes`` and its captured
    :class:`~repro.sampler.checkpoint.Checkpoint` (or ``None`` when
    fast-forwarding is inapplicable, in which case the worker's scalar
    fallback re-scouts under the same batch-keyed store entry).  Returns the
    :class:`~repro.isa.batch_interpreter.DivergenceEvent`\\ s observed, with
    ``lanes`` remapped from batch-local positions to campaign run indices.
    """
    from repro.sampler.checkpoint import (
        CheckpointStore,
        capture_checkpoints_batch,
        checkpoint_key,
    )

    store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
    divergences: list = []
    for start in range(0, len(to_run), lanes):
        chunk = to_run[start:start + lanes]
        keys: dict[int, str] = {}
        attached: dict[int, object] = {}
        misses: list[int] = []
        for index in chunk:
            task = tasks[index]
            cached = None
            if store is not None:
                key = checkpoint_key(task.program, task.memory_map,
                                     warmup_insts, batch_lanes=lanes)
                keys[index] = key
                cached = store.load(key)
            if cached is not None:
                attached[index] = cached
            else:
                misses.append(index)
        if misses:
            captured, events = capture_checkpoints_batch(
                [tasks[index].program for index in misses],
                memory_map=tasks[misses[0]].memory_map,
                warmup_insts=warmup_insts,
            )
            divergences.extend(
                dataclasses.replace(event, lanes=tuple(
                    tasks[misses[lane]].run_index for lane in event.lanes))
                for event in events
            )
            for index, checkpoint in zip(misses, captured):
                attached[index] = checkpoint
                if checkpoint is not None and store is not None:
                    store.store(keys[index], checkpoint)
        for index in chunk:
            tasks[index] = dataclasses.replace(
                tasks[index], batch_lanes=lanes,
                checkpoint=attached.get(index),
            )
    return divergences
