"""Columnar trace matrix: integer-coded campaign snapshots.

The scalar analysis path re-derives one :class:`ContingencyTable` per
(unit, variant) from Python lists of snapshot hashes.  This module lowers a
whole campaign once into a columnar layout — one dense numpy code matrix of
shape ``(n_units, n_iterations)`` plus per-unit *category dictionaries*
mapping code -> snapshot hash — so that the batched statistics in
:mod:`repro.sampler.stats_vec` can score every (unit, class, category) cell
with array ops instead of per-cell Python loops.

Snapshot hashes are 64-bit unsigned values and class labels are arbitrary
orderable Python objects, so the coding step keeps both out of numpy: only
the dense integer codes (``0 .. n_categories-1``, always small) enter the
arrays.  Category dictionaries are sorted, matching the column order of
:func:`repro.sampler.contingency.build_contingency_table` exactly — a
``TraceMatrix`` can therefore be lowered back to the scalar representation
(see :meth:`TraceMatrix.table`) and the two engines compared cell by cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sampler.contingency import ContingencyTable


def encode_column(values) -> tuple[np.ndarray, tuple]:
    """Integer-code one column of observations.

    Returns ``(codes, categories)`` where ``categories`` is the sorted tuple
    of distinct values and ``codes[i]`` indexes ``values[i]`` into it.

    Unsigned-64-bit columns (the snapshot-hash case) are coded with a single
    ``np.unique`` pass and keep their category dictionary as the sorted
    numpy array itself (materialized back to Python ints only when a
    :class:`ContingencyTable` is lowered out); anything that does not fit —
    arbitrary orderable class labels, negative ints, floats — falls back to
    dict-based coding with the identical sorted category order.
    """
    column = None
    if isinstance(values, np.ndarray):
        if values.dtype.kind == "u":
            column = values
        elif values.dtype.kind == "i" and (values >= 0).all():
            column = values.astype(np.uint64, copy=False)
    else:
        values = list(values)
        if all(type(v) is int and 0 <= v < 2 ** 64 for v in values):
            column = np.fromiter(values, dtype=np.uint64,
                                 count=len(values))
    if column is None:
        categories = tuple(sorted(set(values)))
        index = {value: code for code, value in enumerate(categories)}
        codes = np.fromiter((index[value] for value in values),
                            dtype=np.int64, count=len(values))
        return codes, categories
    categories, codes = np.unique(column, return_inverse=True)
    return codes.astype(np.int64, copy=False), categories


@dataclass(frozen=True)
class TraceMatrix:
    """One campaign's snapshots in columnar, integer-coded form.

    ``codes[u, i]`` is the category code of iteration ``i``'s snapshot hash
    for unit ``u``; ``categories[u]`` is that unit's code -> hash dictionary
    (a sorted uint64 array for hash columns, a sorted tuple for columns that
    fell back to dict coding).  ``labels[i]`` is the class code of iteration
    ``i`` (``classes`` is the code -> label dictionary, shared by every
    unit).  When built with ``notiming=True`` the timing-removed snapshot
    hashes are coded the same way into ``codes_notiming`` /
    ``categories_notiming``.
    """

    feature_ids: tuple
    classes: tuple
    labels: np.ndarray
    codes: np.ndarray
    categories: tuple
    codes_notiming: np.ndarray | None = None
    categories_notiming: tuple | None = None

    @property
    def n_iterations(self) -> int:
        return int(self.labels.shape[0])

    @property
    def n_units(self) -> int:
        return len(self.feature_ids)

    @property
    def n_classes(self) -> int:
        return len(self.classes)

    def unit_index(self, feature_id: str) -> int:
        return self.feature_ids.index(feature_id)

    def _variant(self, notiming: bool):
        if not notiming:
            return self.codes, self.categories
        if self.codes_notiming is None:
            raise ValueError(
                "matrix was built without timing-removed snapshots")
        return self.codes_notiming, self.categories_notiming

    def counts(self, unit: int, *, notiming: bool = False) -> np.ndarray:
        """Contingency counts for one unit, shape (n_classes, n_categories).

        Computed with a single ``bincount`` over the fused
        ``class_code * n_categories + hash_code`` index — the columnar
        equivalent of Table II.
        """
        codes, categories = self._variant(notiming)
        n_categories = len(categories[unit])
        flat = np.bincount(self.labels * n_categories + codes[unit],
                           minlength=self.n_classes * n_categories)
        return flat.reshape(self.n_classes, n_categories)

    def table(self, feature_id: str, *, notiming: bool = False) -> ContingencyTable:
        """Lower one unit back to the scalar :class:`ContingencyTable`.

        Row and column order match ``build_contingency_table`` on the same
        observations, which is what makes engine-differential tests exact.
        """
        unit = self.unit_index(feature_id)
        _, categories = self._variant(notiming)
        counts = self.counts(unit, notiming=notiming)
        hashes = categories[unit]
        if isinstance(hashes, np.ndarray):
            hashes = tuple(int(v) for v in hashes)
        return ContingencyTable(
            classes=self.classes,
            hashes=hashes,
            counts=tuple(tuple(int(c) for c in row) for row in counts),
        )

    @classmethod
    def from_observations(cls, labels, hashes_by_unit: dict, *,
                          notiming_by_unit: dict | None = None) -> TraceMatrix:
        """Build a matrix from parallel label / per-unit hash sequences."""
        feature_ids = tuple(hashes_by_unit)
        label_codes, classes = encode_column(labels)
        if isinstance(classes, np.ndarray):  # few classes: keep Python ints
            classes = tuple(int(v) for v in classes)
        n = len(label_codes)
        codes = np.empty((len(feature_ids), n), dtype=np.int64)
        categories = []
        for unit, feature_id in enumerate(feature_ids):
            column = hashes_by_unit[feature_id]
            if len(column) != n:
                raise ValueError(
                    f"unit {feature_id!r} has {len(column)} observations, "
                    f"expected {n}")
            codes[unit], cats = encode_column(column)
            categories.append(cats)
        codes_notiming = None
        categories_notiming = None
        if notiming_by_unit is not None:
            codes_notiming = np.empty((len(feature_ids), n), dtype=np.int64)
            nt_categories = []
            for unit, feature_id in enumerate(feature_ids):
                codes_notiming[unit], cats = encode_column(
                    notiming_by_unit[feature_id])
                nt_categories.append(cats)
            categories_notiming = tuple(nt_categories)
        return cls(
            feature_ids=feature_ids,
            classes=classes,
            labels=label_codes,
            codes=codes,
            categories=tuple(categories),
            codes_notiming=codes_notiming,
            categories_notiming=categories_notiming,
        )

    @classmethod
    def from_campaign(cls, campaign, feature_ids=None, *,
                      warmup_iterations: int = 0,
                      notiming: bool = True) -> TraceMatrix:
        """Lower a :class:`CampaignResult` into a matrix.

        Uses the tracer's columnar view (``feature_columns``) when it is in
        sync with the record list — the common case, where no per-record
        Python traversal is needed at all — and falls back to
        :meth:`from_iterations` otherwise.  ``warmup_iterations`` drops each
        run's first iterations, mirroring the scalar pipeline's
        ``ordinal >= warmup`` filter.
        """
        tracer = campaign.tracer
        if feature_ids is None:
            feature_ids = tuple(tracer.feature_columns)
        feature_ids = tuple(feature_ids)
        columnar = (
            tracer.columns_in_sync()
            and all(fid in tracer.feature_columns for fid in feature_ids)
        )
        if not columnar:
            iterations = [r for r in campaign.iterations
                          if r.ordinal >= warmup_iterations]
            return cls.from_iterations(iterations, feature_ids,
                                       notiming=notiming)
        labels = tracer.label_column
        # np.array on an array('Q') buffer is a single memcpy; copying (vs. a
        # frombuffer view) keeps the tracer's columns appendable afterwards.
        timed = {fid: np.array(tracer.feature_columns[fid], dtype=np.uint64)
                 for fid in feature_ids}
        removed = ({fid: np.array(tracer.feature_columns_notiming[fid],
                                  dtype=np.uint64)
                    for fid in feature_ids} if notiming else None)
        if warmup_iterations > 0:
            keep = (np.array(tracer.ordinal_column, dtype=np.int64)
                    >= warmup_iterations)
            select = np.flatnonzero(keep)
            labels = [labels[i] for i in select]
            timed = {fid: col[select] for fid, col in timed.items()}
            if removed is not None:
                removed = {fid: col[select] for fid, col in removed.items()}
        return cls.from_observations(labels, timed,
                                     notiming_by_unit=removed)

    @classmethod
    def from_iterations(cls, iterations, feature_ids=None, *,
                        notiming: bool = True) -> TraceMatrix:
        """Lower a campaign's :class:`IterationRecord` list into a matrix."""
        iterations = list(iterations)
        if feature_ids is None:
            feature_ids = tuple(iterations[0].features) if iterations else ()
        feature_ids = tuple(feature_ids)
        hashes_by_unit = {
            fid: [r.features[fid].snapshot_hash for r in iterations]
            for fid in feature_ids
        }
        notiming_by_unit = None
        if notiming:
            notiming_by_unit = {
                fid: [r.features[fid].snapshot_hash_notiming
                      for r in iterations]
                for fid in feature_ids
            }
        return cls.from_observations(
            [r.label for r in iterations], hashes_by_unit,
            notiming_by_unit=notiming_by_unit,
        )
