"""End-to-end MicroSampler analysis pipeline (Figure 1).

Ties the four stages together: ① simulate the workload on the cycle-accurate
core, ② parse per-cycle traces into hashed iteration snapshots, ③ measure
class/state association per tracked unit with chi-squared + Cramér's V, and
④ extract the features responsible for any flagged correlation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.sampler.contingency import build_contingency_table
from repro.sampler.feature_extraction import RootCauseReport, extract_root_causes
from repro.sampler.matrix import TraceMatrix
from repro.sampler.mutual_information import (
    MutualInformationResult,
    mutual_information_by_unit,
)
from repro.sampler.runner import CampaignResult, Workload, run_campaign
from repro.sampler.stats import (
    SIGNIFICANCE_ALPHA,
    STRONG_ASSOCIATION_THRESHOLD,
    AssociationResult,
    measure_association,
)
from repro.sampler.stats_vec import batched_association
from repro.trace.features import FEATURE_ORDER
from repro.uarch.config import CoreConfig, MEGA_BOOM


@dataclass(frozen=True)
class StageTimings:
    """Wall-clock breakdown of the four MicroSampler stages (Table VI)."""

    simulate_seconds: float
    parse_seconds: float
    stats_seconds: float
    extract_seconds: float

    @property
    def total_seconds(self) -> float:
        return (self.simulate_seconds + self.parse_seconds
                + self.stats_seconds + self.extract_seconds)


@dataclass
class UnitResult:
    """Analysis outcome for one tracked microarchitectural feature."""

    feature_id: str
    association: AssociationResult
    #: Association recomputed on timing-removed snapshots (Section VII-B).
    association_notiming: AssociationResult | None = None
    root_cause: RootCauseReport | None = None
    #: MicroWalk-style mutual information cross-check (``measure_mi``).
    mi: MutualInformationResult | None = None

    @property
    def leaky(self) -> bool:
        return self.association.leaky


@dataclass
class TaintSummary:
    """Outcome of the secret-taint prescreen for one campaign.

    ``agreement`` holds the taint-vs-statistics cross-check per unit:

    * ``secret-free`` — taint proved the unit unreachable; it was pruned
      from tracing and the statistics saw the constant empty snapshot.
    * ``agree-leak`` — taint says secrets can reach the unit and the
      statistics flagged it.
    * ``stats-clean`` — taint says secrets *can* reach the unit but the
      statistics found no correlation (expected: taint over-approximates).
    * ``TAINT-DISAGREE`` — the statistics flagged a unit taint called
      secret-free.  By construction pruning makes this unreachable, so an
      occurrence is a finding about one of the two analyses.
    """

    #: Per-input maps + merged union (:class:`~repro.taint.publicness
    #: .CampaignPublicness`).
    publicness: object
    #: Feature IDs pruned from tracing (taint proved them secret-free).
    pruned: tuple = ()
    #: Feature IDs kept (a secret could influence them).
    reachable: tuple = ()
    #: feature id -> agreement status (see class docstring).
    agreement: dict = field(default_factory=dict)

    @property
    def merged(self):
        return self.publicness.merged

    @property
    def escalated(self) -> bool:
        return self.publicness.merged.escalated

    @property
    def disagreements(self) -> list:
        return [fid for fid, status in self.agreement.items()
                if status == "TAINT-DISAGREE"]


@dataclass
class LeakageReport:
    """Full MicroSampler verdict for one workload campaign."""

    workload_name: str
    config_name: str
    n_iterations: int
    n_classes: int
    units: dict[str, UnitResult] = field(default_factory=dict)
    timings: StageTimings | None = None
    #: Which statistics engine produced the verdicts ("python" or "numpy").
    engine: str = "python"
    #: Per-stage simulator time breakdown (``--profile``), merged over all
    #: simulated runs (:class:`repro.util.profiling.StageProfile`).
    profile: object | None = None
    #: Lockstep divergences observed by the batch prepass and by the
    #: lane-batched cycle-accurate core
    #: (:class:`~repro.isa.batch_interpreter.DivergenceEvent`): points
    #: where an input's control flow, memory footprint, syscall behaviour
    #: or timing-relevant microarchitectural state depended on its data.
    #: A first-class leak signal in its own right — constant-time code
    #: stays lockstep end to end.  Empty when batching is off or execution
    #: is input-independent.
    divergences: list = field(default_factory=list)
    #: Secret-taint prescreen results (:class:`TaintSummary`); ``None``
    #: when the analysis ran with ``taint`` off, so off-mode reports
    #: serialize exactly as before.
    taint: TaintSummary | None = None

    @property
    def leaky_units(self) -> list[str]:
        return [fid for fid, unit in self.units.items() if unit.leaky]

    @property
    def leakage_detected(self) -> bool:
        return bool(self.leaky_units)

    def cramers_v_by_unit(self) -> dict[str, float]:
        return {fid: unit.association.cramers_v
                for fid, unit in self.units.items()}

    def cramers_v_by_unit_notiming(self) -> dict[str, float]:
        return {
            fid: unit.association_notiming.cramers_v
            for fid, unit in self.units.items()
            if unit.association_notiming is not None
        }


class MicroSampler:
    """The verification framework: configure once, analyze many workloads.

    Parameters mirror the paper's defaults: a correlation is flagged when
    Cramér's V exceeds 0.5 *and* the chi-squared p-value is below 0.05.

    ``engine`` selects the statistics implementation: ``"numpy"`` (default)
    lowers the campaign into a columnar :class:`TraceMatrix` and scores all
    units with the batched kernels in :mod:`repro.sampler.stats_vec`;
    ``"python"`` is the scalar per-table reference implementation.  The two
    agree to within 1e-9 on every statistic (and exactly on verdicts); the
    scalar path stays authoritative for golden values.
    """

    ENGINES = ("python", "numpy")

    def __init__(self, config: CoreConfig = MEGA_BOOM, *,
                 features=None,
                 v_threshold: float = STRONG_ASSOCIATION_THRESHOLD,
                 alpha: float = SIGNIFICANCE_ALPHA,
                 analyze_timing_removed: bool = True,
                 extract_root_causes_for_leaky: bool = True,
                 warmup_iterations: int = 0,
                 jobs: int | None = 1,
                 cache=None,
                 warmup_insts: int | None = None,
                 batch_lanes=None,
                 engine: str = "numpy",
                 measure_mi: bool = False,
                 mi_permutations: int = 200,
                 profile: bool = False,
                 taint: bool = False):
        if engine not in self.ENGINES:
            raise ValueError(
                f"unknown analysis engine {engine!r}; choose from "
                f"{self.ENGINES}")
        self.engine = engine
        self.config = config
        self.features = tuple(features) if features is not None else FEATURE_ORDER
        self.v_threshold = v_threshold
        self.alpha = alpha
        self.analyze_timing_removed = analyze_timing_removed
        self.extract_root_causes_for_leaky = extract_root_causes_for_leaky
        #: Iterations to drop at the start of every run before analysis, so
        #: cold-structure and predictor-training transients (whose wrong-path
        #: excursions can touch neighbouring iterations' state) do not blur
        #: steady-state verdicts.
        self.warmup_iterations = warmup_iterations
        #: Simulation backend knobs (see :func:`repro.sampler.run_campaign`):
        #: inputs simulated concurrently, and an optional trace cache.
        self.jobs = jobs
        self.cache = cache
        #: Fast-forward checkpointing budget (``None`` = full simulation):
        #: functional warm-up to ``roi.begin`` minus this many instructions,
        #: which are replayed cycle-accurately (see
        #: :mod:`repro.sampler.checkpoint`).  Distinct from
        #: ``warmup_iterations``, which drops *traced* iterations from the
        #: statistical analysis.
        self.warmup_insts = warmup_insts
        #: Lockstep lane batching (``None`` = off, ``"auto"``, or an int
        #: lane width; see :mod:`repro.sampler.batch`): the functional
        #: warm-up runs as a SIMD-across-inputs prepass (needs
        #: ``warmup_insts``), and the cycle-accurate phase carries the
        #: campaign inputs as value lanes through one shared
        #: :class:`~repro.uarch.batch_core.BatchCore`.  Timing state is
        #: shared, so verdicts and per-unit digests are bit-identical to
        #: scalar simulation; cross-lane divergence falls the affected
        #: lanes back to the scalar core and is surfaced on
        #: ``LeakageReport.divergences``.
        self.batch_lanes = batch_lanes
        #: Also score every unit with MicroWalk-style mutual information
        #: (plus a label-permutation significance test) as a cross-check.
        self.measure_mi = measure_mi
        self.mi_permutations = mi_permutations
        #: Attach a per-stage wall-clock profiler to every simulated core
        #: and surface the merged breakdown on ``LeakageReport.profile``.
        self.profile = profile
        #: Run the secret-taint prescreen (:mod:`repro.taint`) before
        #: simulation: prune units taint proves secret-free, restrict
        #: localization attribution to taint-reaching PCs, and cross-check
        #: statistical verdicts against the taint verdict.  Requires the
        #: workload to declare ``secret_regions``.  Verdicts are
        #: bit-identical to ``taint=False`` (pruning only removes provably
        #: constant-clean units).
        self.taint = bool(taint)

    # -- full pipeline ----------------------------------------------------------

    def analyze(self, workload: Workload, *,
                max_cycles_per_run: int = 5_000_000) -> LeakageReport:
        """Run the complete Figure 1 flow on ``workload``."""
        taint_summary = self.compute_taint(workload) if self.taint else None
        campaign = run_campaign(
            workload, self.config, features=self.features,
            max_cycles_per_run=max_cycles_per_run,
            jobs=self.jobs, cache=self.cache,
            warmup_insts=self.warmup_insts,
            batch_lanes=self.batch_lanes, profile=self.profile,
            pruned=taint_summary.pruned if taint_summary else (),
        )
        return self.analyze_campaign(campaign, taint=taint_summary)

    def compute_taint(self, workload: Workload, *,
                      publicness=None) -> TaintSummary:
        """Run the taint prescreen: per-input maps + unit reachability.

        ``publicness`` optionally supplies a pre-computed
        :class:`~repro.taint.publicness.CampaignPublicness` — the taint run
        is config-independent (it executes on the functional interpreter),
        so a cross-config sweep computes it once and projects only the
        config-dependent reachability per leg.  The result is bit-identical
        to recomputing: ``compute_publicness`` is deterministic.
        """
        from repro.taint import compute_publicness
        from repro.uarch.reachability import reachable_features

        if publicness is None:
            publicness = compute_publicness(workload,
                                            batch_lanes=self.batch_lanes)
        reachable = reachable_features(publicness.merged, self.config,
                                       self.features)
        return TaintSummary(
            publicness=publicness,
            pruned=tuple(f for f in self.features if f not in reachable),
            reachable=tuple(f for f in self.features if f in reachable),
        )

    def analyze_campaign(self, campaign: CampaignResult, *,
                         taint: TaintSummary | None = None) -> LeakageReport:
        """Stages ③ and ④ on an existing simulation campaign."""
        iterations = [r for r in campaign.iterations
                      if r.ordinal >= self.warmup_iterations]
        labels = [record.label for record in iterations]
        report = LeakageReport(
            workload_name=campaign.workload.name,
            config_name=campaign.config.name,
            n_iterations=len(iterations),
            n_classes=len(set(labels)),
            engine=self.engine,
            divergences=list(getattr(campaign, "divergences", None) or []),
        )
        stats_started = time.perf_counter()
        if self.engine == "numpy":
            matrix = TraceMatrix.from_campaign(
                campaign, self.features,
                warmup_iterations=self.warmup_iterations,
                notiming=self.analyze_timing_removed,
            )
            associations = batched_association(matrix)
            associations_notiming = (
                batched_association(matrix, notiming=True)
                if self.analyze_timing_removed else {}
            )
            for feature_id in self.features:
                report.units[feature_id] = UnitResult(
                    feature_id=feature_id,
                    association=associations[feature_id],
                    association_notiming=associations_notiming.get(feature_id),
                )
        else:
            for feature_id in self.features:
                hashes = [r.features[feature_id].snapshot_hash
                          for r in iterations]
                table = build_contingency_table(labels, hashes)
                association = measure_association(table)
                unit = UnitResult(feature_id=feature_id,
                                  association=association)
                if self.analyze_timing_removed:
                    nt_hashes = [
                        r.features[feature_id].snapshot_hash_notiming
                        for r in iterations
                    ]
                    unit.association_notiming = measure_association(
                        build_contingency_table(labels, nt_hashes)
                    )
                report.units[feature_id] = unit
        if self.measure_mi:
            mi_by_unit = mutual_information_by_unit(
                iterations, self.features,
                permutations=self.mi_permutations,
            )
            for feature_id, mi in mi_by_unit.items():
                report.units[feature_id].mi = mi
        stats_seconds = time.perf_counter() - stats_started

        extract_started = time.perf_counter()
        if self.extract_root_causes_for_leaky:
            for feature_id, unit in report.units.items():
                if self._flagged(unit.association):
                    unit.root_cause = extract_root_causes(iterations, feature_id)
        extract_seconds = time.perf_counter() - extract_started

        report.timings = StageTimings(
            simulate_seconds=campaign.simulate_seconds,
            parse_seconds=campaign.parse_seconds,
            stats_seconds=stats_seconds,
            extract_seconds=extract_seconds,
        )
        report.profile = campaign.profile
        if taint is not None:
            for feature_id, unit in report.units.items():
                if feature_id in taint.pruned:
                    status = ("TAINT-DISAGREE" if unit.leaky
                              else "secret-free")
                else:
                    status = "agree-leak" if unit.leaky else "stats-clean"
                taint.agreement[feature_id] = status
            report.taint = taint
        return report

    def _flagged(self, association: AssociationResult) -> bool:
        return (association.cramers_v > self.v_threshold
                and association.p_value < self.alpha)

    # -- phase 2: localization --------------------------------------------------

    def localize(self, workload: Workload, *, report: LeakageReport = None,
                 features=None, permutations: int | None = None,
                 seed: int = 0, max_cycles_per_run: int = 5_000_000):
        """Localize every leaky unit of ``workload`` in time and code.

        Runs :meth:`analyze` first when no ``report`` is given, then the
        temporal scan + instruction attribution of :mod:`repro.localize`
        over the flagged units (or an explicit ``features`` subset).
        Returns a :class:`~repro.localize.LocalizationReport`.
        """
        from repro.localize import localize as _localize

        kwargs = {}
        if permutations is not None:
            kwargs["permutations"] = permutations
        return _localize(workload, sampler=self, report=report,
                         features=features, seed=seed,
                         max_cycles_per_run=max_cycles_per_run, **kwargs)


def adaptive_analyze(workload_factory, *, start_inputs: int = 8,
                     max_inputs: int = 128, seed: int = 0,
                     sampler: MicroSampler | None = None) -> LeakageReport:
    """Grow the input set until measured correlations are significant.

    Implements the paper's false-positive control (Section VII-D): when a
    unit shows high Cramér's V whose p-value is not yet below the threshold,
    the number of simulation inputs is increased and the analysis repeated.

    ``workload_factory(n_inputs, seed)`` must return a :class:`Workload`.
    """
    sampler = sampler or MicroSampler()
    n = start_inputs
    while True:
        report = sampler.analyze(workload_factory(n, seed))
        undecided = [
            unit for unit in report.units.values()
            if unit.association.strong and not unit.association.significant
        ]
        if not undecided or n >= max_inputs:
            return report
        n = min(n * 2, max_inputs)
