"""Batched association statistics over a columnar :class:`TraceMatrix`.

The numpy analysis engine: contingency counts come from one ``bincount``
per (unit, variant), the chi-squared statistic from a masked array
reduction over all cells at once, and the p-values for every unit from a
single vectorized ``gammaincc`` call.  The only Python-level loop left is
over the tracked units (~14 for the paper's Table IV) — all per-cell and
per-iteration work runs inside numpy.

The scalar implementation in :mod:`repro.sampler.stats` remains the golden
reference: this module must agree with it on every field of
:class:`AssociationResult` to within 1e-9 (enforced by the differential
test suite), and on the resulting leaky-unit set exactly.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import gammaincc

from repro.sampler.matrix import TraceMatrix
from repro.sampler.stats import AssociationResult


def chi_squared_from_counts(counts: np.ndarray) -> tuple[float, int]:
    """Pearson chi-squared statistic and dof from a counts matrix (Eq. 3-4).

    Mirrors :func:`repro.sampler.stats.chi_squared_statistic`: degenerate
    tables (fewer than two rows or columns, or no observations) score
    ``(0.0, 0)``, and cells with zero expected frequency are skipped.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 2:
        raise ValueError("counts must be a 2D matrix")
    n_rows, n_cols = counts.shape
    total = counts.sum()
    if total == 0 or n_rows < 2 or n_cols < 2:
        return 0.0, 0
    row_totals = counts.sum(axis=1)
    column_totals = counts.sum(axis=0)
    expected = np.outer(row_totals, column_totals) / total
    mask = expected > 0
    deviation = counts[mask] - expected[mask]
    statistic = float((deviation * deviation / expected[mask]).sum())
    return statistic, (n_rows - 1) * (n_cols - 1)


def cramers_v_from_statistic(statistic: float, total: float,
                             n_rows: int, n_cols: int) -> float:
    """Cramér's V (Eq. 2) from an already-computed chi-squared statistic."""
    if n_rows < 2 or n_cols < 2:
        return 0.0
    denominator = total * min(n_cols - 1, n_rows - 1)
    if denominator == 0:
        return 0.0
    return math.sqrt(statistic / denominator)


def cramers_v_corrected_from_statistic(statistic: float, total: float,
                                       n_rows: int, n_cols: int) -> float:
    """Bias-corrected Cramér's V (Bergsma 2013) from a chi-squared statistic.

    Clamps to 0 for sparse tables whose chi-squared/N falls below its
    expectation under independence, and for degenerate corrected dimensions.
    """
    if n_rows < 2 or n_cols < 2 or total <= 1:
        return 0.0
    phi2 = statistic / total
    phi2_corrected = max(
        0.0, phi2 - (n_cols - 1) * (n_rows - 1) / (total - 1))
    r_corrected = n_rows - (n_rows - 1) ** 2 / (total - 1)
    k_corrected = n_cols - (n_cols - 1) ** 2 / (total - 1)
    denominator = min(k_corrected - 1, r_corrected - 1)
    if denominator <= 0:
        return 0.0
    return math.sqrt(phi2_corrected / denominator)


def p_values(statistics, dofs) -> np.ndarray:
    """Upper-tail chi-squared p-values for whole arrays at once.

    Vectorized counterpart of :func:`repro.sampler.stats.chi_squared_p_value`
    (``dof <= 0`` maps to 1.0).
    """
    statistics = np.asarray(statistics, dtype=np.float64)
    dofs = np.asarray(dofs, dtype=np.float64)
    valid = dofs > 0
    out = np.ones_like(statistics)
    if valid.any():
        out[valid] = gammaincc(dofs[valid] / 2.0, statistics[valid] / 2.0)
    return out


def measure_association_counts(counts: np.ndarray) -> AssociationResult:
    """Vectorized :func:`repro.sampler.stats.measure_association` for one
    counts matrix (no :class:`ContingencyTable` required)."""
    counts = np.asarray(counts, dtype=np.float64)
    statistic, dof = chi_squared_from_counts(counts)
    total = float(counts.sum())
    n_rows, n_cols = counts.shape
    return AssociationResult(
        chi_squared=statistic,
        dof=dof,
        p_value=float(p_values([statistic], [dof])[0]),
        cramers_v=cramers_v_from_statistic(statistic, total, n_rows, n_cols),
        cramers_v_corrected=cramers_v_corrected_from_statistic(
            statistic, total, n_rows, n_cols),
        n_observations=int(total),
        n_classes=n_rows,
        n_categories=n_cols,
    )


def batched_association(matrix: TraceMatrix, *,
                        notiming: bool = False) -> dict:
    """Association measurements for every unit of a campaign matrix.

    Returns ``{feature_id: AssociationResult}``.  Counts and chi-squared are
    computed per unit in numpy; the p-values for all units come from one
    vectorized incomplete-gamma evaluation.
    """
    statistics = np.zeros(matrix.n_units)
    dofs = np.zeros(matrix.n_units, dtype=np.int64)
    shapes = []
    for unit in range(matrix.n_units):
        counts = matrix.counts(unit, notiming=notiming)
        statistics[unit], dofs[unit] = chi_squared_from_counts(counts)
        shapes.append((int(counts.sum()),) + counts.shape)
    probabilities = p_values(statistics, dofs)
    results = {}
    for unit, feature_id in enumerate(matrix.feature_ids):
        total, n_rows, n_cols = shapes[unit]
        statistic = float(statistics[unit])
        results[feature_id] = AssociationResult(
            chi_squared=statistic,
            dof=int(dofs[unit]),
            p_value=float(probabilities[unit]),
            cramers_v=cramers_v_from_statistic(
                statistic, total, n_rows, n_cols),
            cramers_v_corrected=cramers_v_corrected_from_statistic(
                statistic, total, n_rows, n_cols),
            n_observations=total,
            n_classes=n_rows,
            n_categories=n_cols,
        )
    return results
