"""Side-channel attacker harnesses (Flush+Reload per the threat model)."""

from repro.attacks.flush_reload import (
    FlushReloadResult,
    IterationObservation,
    flush_reload_attack,
    lowest_touched_line,
)

__all__ = [
    "FlushReloadResult",
    "IterationObservation",
    "flush_reload_attack",
    "lowest_touched_line",
]
