"""Flush+Reload attack harness against the simulated core.

The paper's threat model assumes attackers "with the same capabilities as
other side-channel attacks such as Flush+Reload or Prime+Probe" [60], [37].
This module provides that attacker as a co-routine around a running
:class:`~repro.uarch.core.Core`: at every iteration boundary (observed via
the victim's own marker commits) it flushes a set of monitored lines from
the L1D, and after the iteration it "reloads" each line — timing the access
exactly as the real attack does — to learn which lines the victim touched.

The harness drives the victim cycle by cycle, so the measurement is of the
same cache the victim used, with no modeling shortcuts: a reload is a real
``DataCachePort.request`` whose hit/miss status is the attacker's signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uarch.core import Core


@dataclass
class IterationObservation:
    """What the attacker learned about one victim iteration."""

    index: int
    label: int  # ground truth, for scoring only
    #: monitored line address -> True if the reload hit (victim touched it)
    touched: dict = field(default_factory=dict)


class _MarkerTap:
    """Minimal tracer that only watches marker commits."""

    def __init__(self):
        self.events = []

    def on_marker(self, mnemonic, label, cycle):
        self.events.append((mnemonic, label, cycle))

    def on_cycle(self, core, cycle):
        pass

    def begin_run(self, run_index):
        pass


@dataclass
class FlushReloadResult:
    """Full attack transcript over one victim run."""

    observations: list = field(default_factory=list)

    def accuracy(self, predict) -> float:
        """Score a prediction function ``predict(touched) -> label``."""
        if not self.observations:
            return 0.0
        correct = sum(
            int(predict(obs.touched) == obs.label)
            for obs in self.observations
        )
        return correct / len(self.observations)


def flush_reload_attack(program, config, monitored_addresses, *,
                        max_cycles: int = 2_000_000) -> FlushReloadResult:
    """Run ``program`` under a Flush+Reload attacker.

    ``monitored_addresses`` are byte addresses whose cache lines the
    attacker flushes before each victim iteration and reloads after it.
    Returns per-iteration hit maps plus the ground-truth labels (from the
    victim's iteration markers) for scoring.
    """
    tap = _MarkerTap()
    core = Core(program, config, tracer=tap)
    result = FlushReloadResult()
    lines = sorted({address & ~63 for address in monitored_addresses})

    def flush_all():
        for line in lines:
            core.dcache.cache.flush_line(line)

    open_label = None
    open_index = 0
    consumed = 0
    while not core.halted:
        if core.cycle >= max_cycles:
            raise RuntimeError("victim did not terminate")
        core.step()
        while consumed < len(tap.events):
            mnemonic, label, _cycle = tap.events[consumed]
            consumed += 1
            if mnemonic == "iter.begin":
                # Flush phase: evict the monitored lines right before the
                # victim's security-critical iteration runs.
                flush_all()
                open_label = label
            elif mnemonic == "iter.end" and open_label is not None:
                # Measurement phase: a resident line means the victim
                # touched it.  The probe is side-effect free (Flush+Flush
                # style: the attacker times the flush, never refilling), so
                # measurements cannot contaminate later iterations.
                observation = IterationObservation(index=open_index,
                                                   label=open_label)
                for line in lines:
                    observation.touched[line] = core.dcache.probe(line)
                result.observations.append(observation)
                open_index += 1
                open_label = None
    return result


def lowest_touched_line(touched: dict):
    """The lowest-addressed touched line — the victim's demand access.

    A next-line prefetcher drags in line k+1 alongside a demand access to
    line k, so the *lowest* touched line is the demand line.
    """
    resident = [line for line, hit in touched.items() if hit]
    return min(resident) if resident else None
