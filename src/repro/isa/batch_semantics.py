"""Vectorized RV64IM semantics over numpy lanes (SIMD-across-inputs).

Element-for-element mirror of :mod:`repro.isa.semantics`: every entry in
``BATCH_ALU_OPS`` / ``BATCH_BRANCH_CONDITIONS`` computes, for ``uint64``
operand arrays of shape ``(n_lanes,)``, exactly what the scalar table
computes per lane.  The scalar table stays authoritative — the differential
fuzz battery in ``tests/test_batch_interpreter.py`` asserts bit-identity per
mnemonic over edge operands (division overflow, shifts >= 64, sign
boundaries) and over whole random programs.

Conventions shared by every op:

* operands and results are ``numpy.uint64``; wraparound arithmetic is the
  native behaviour, matching the ``& MASK64`` discipline of the scalar code;
* immediates must be pre-masked to unsigned 64-bit by the caller (numpy
  refuses negative Python ints next to ``uint64`` operands);
* signed interpretations go through two's-complement ``int64`` views, never
  Python ints, so ``INT64_MIN`` cases behave like hardware.
"""

from __future__ import annotations

import numpy as np

_U64 = np.uint64
_ZERO = _U64(0)
_ONE = _U64(1)
_M32 = _U64(0xFFFFFFFF)
_SHIFT32 = _U64(32)
_SHAMT64 = _U64(63)
_SHAMT32 = _U64(31)


def _signed(a: np.ndarray) -> np.ndarray:
    """Two's-complement ``int64`` reinterpretation of ``uint64`` lanes."""
    return np.ascontiguousarray(a, dtype=np.uint64).view(np.int64)


def _signed32(a: np.ndarray) -> np.ndarray:
    """Sign-extend the low 32 bits of each lane into ``int64``."""
    low = np.ascontiguousarray(a & _M32, dtype=np.uint64)
    return low.astype(np.uint32).view(np.int32).astype(np.int64)


def _sext32(a: np.ndarray) -> np.ndarray:
    """Sign-extend the low 32 bits to 64, as ``uint64`` (for *W ops)."""
    return _signed32(a).astype(np.uint64)


def _sra64(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (_signed(a) >> (b & _SHAMT64).astype(np.int64)).astype(np.uint64)


def _sraw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    shifted = _signed32(a) >> (b & _SHAMT32).astype(np.int64)
    return shifted.astype(np.uint64)


def _mulhu(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """High 64 bits of the unsigned 128-bit product, via 32-bit halves."""
    al, ah = a & _M32, a >> _SHIFT32
    bl, bh = b & _M32, b >> _SHIFT32
    low = al * bl
    mid1 = ah * bl
    mid2 = al * bh
    carry = ((low >> _SHIFT32) + (mid1 & _M32) + (mid2 & _M32)) >> _SHIFT32
    return ah * bh + (mid1 >> _SHIFT32) + (mid2 >> _SHIFT32) + carry


def _mulh(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # signed x signed high = unsigned high minus b where a < 0 and minus a
    # where b < 0 (the standard two's-complement correction); wraps in uint64.
    high = _mulhu(a, b)
    high = high - np.where(_signed(a) < 0, b, _ZERO)
    return high - np.where(_signed(b) < 0, a, _ZERO)


def _mulhsu(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return _mulhu(a, b) - np.where(_signed(a) < 0, b, _ZERO)


def _abs_unsigned(a: np.ndarray, signed_a: np.ndarray,
                  mask: np.uint64) -> np.ndarray:
    """|signed_a| as an unsigned value within ``mask`` (handles INT_MIN)."""
    return np.where(signed_a < 0, (_ZERO - a) & mask, a & mask)


def _div_signed(a: np.ndarray, b: np.ndarray, bits: int) -> np.ndarray:
    mask = _U64((1 << bits) - 1)
    x, y = a & mask, b & mask
    sx = _signed(x) if bits == 64 else _signed32(x)
    sy = _signed(y) if bits == 64 else _signed32(y)
    ax = _abs_unsigned(x, sx, mask)
    ay = _abs_unsigned(y, sy, mask)
    quotient = ax // np.where(y == _ZERO, _ONE, ay)
    # Truncating signed division: negate where operand signs differ.  The
    # INT_MIN / -1 overflow case (|q| = 2^(bits-1)) negates back to the
    # dividend, which is exactly the RISC-V-mandated result.
    quotient = np.where((sx < 0) != (sy < 0), (_ZERO - quotient) & mask,
                        quotient)
    return np.where(y == _ZERO, mask, quotient)  # div by zero -> -1


def _rem_signed(a: np.ndarray, b: np.ndarray, bits: int) -> np.ndarray:
    mask = _U64((1 << bits) - 1)
    x, y = a & mask, b & mask
    sx = _signed(x) if bits == 64 else _signed32(x)
    sy = _signed(y) if bits == 64 else _signed32(y)
    ax = _abs_unsigned(x, sx, mask)
    ay = _abs_unsigned(y, sy, mask)
    remainder = ax % np.where(y == _ZERO, _ONE, ay)
    # The remainder takes the dividend's sign (truncating division).
    remainder = np.where(sx < 0, (_ZERO - remainder) & mask, remainder)
    return np.where(y == _ZERO, x, remainder)  # rem by zero -> dividend


def _div_unsigned(a: np.ndarray, b: np.ndarray, bits: int) -> np.ndarray:
    mask = _U64((1 << bits) - 1)
    x, y = a & mask, b & mask
    quotient = x // np.where(y == _ZERO, _ONE, y)
    return np.where(y == _ZERO, mask, quotient)


def _rem_unsigned(a: np.ndarray, b: np.ndarray, bits: int) -> np.ndarray:
    mask = _U64((1 << bits) - 1)
    x, y = a & mask, b & mask
    return np.where(y == _ZERO, x, x % np.where(y == _ZERO, _ONE, y))


#: rd_lanes = f(a_lanes, b_lanes); same contract as ``semantics.ALU_OPS``
#: (callers pass pre-masked immediates / lui-auipc operands as ``b``).
BATCH_ALU_OPS = {
    "add": lambda a, b: a + b,
    "addi": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "andi": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "ori": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "xori": lambda a, b: a ^ b,
    "sll": lambda a, b: a << (b & _SHAMT64),
    "slli": lambda a, b: a << (b & _SHAMT64),
    "srl": lambda a, b: a >> (b & _SHAMT64),
    "srli": lambda a, b: a >> (b & _SHAMT64),
    "sra": _sra64,
    "srai": _sra64,
    "slt": lambda a, b: (_signed(a) < _signed(b)).astype(np.uint64),
    "slti": lambda a, b: (_signed(a) < _signed(b)).astype(np.uint64),
    "sltu": lambda a, b: (a < b).astype(np.uint64),
    "sltiu": lambda a, b: (a < b).astype(np.uint64),
    "addw": lambda a, b: _sext32(a + b),
    "addiw": lambda a, b: _sext32(a + b),
    "subw": lambda a, b: _sext32(a - b),
    "sllw": lambda a, b: _sext32((a & _M32) << (b & _SHAMT32)),
    "slliw": lambda a, b: _sext32((a & _M32) << (b & _SHAMT32)),
    "srlw": lambda a, b: _sext32((a & _M32) >> (b & _SHAMT32)),
    "srliw": lambda a, b: _sext32((a & _M32) >> (b & _SHAMT32)),
    "sraw": _sraw,
    "sraiw": _sraw,
    "lui": lambda a, b: a + b,
    "auipc": lambda a, b: a + b,
    "mul": lambda a, b: a * b,
    "mulh": _mulh,
    "mulhu": _mulhu,
    "mulhsu": _mulhsu,
    "mulw": lambda a, b: _sext32(a * b),
    "div": lambda a, b: _div_signed(a, b, 64),
    "divu": lambda a, b: _div_unsigned(a, b, 64),
    "rem": lambda a, b: _rem_signed(a, b, 64),
    "remu": lambda a, b: _rem_unsigned(a, b, 64),
    "divw": lambda a, b: _sext32(_div_signed(a, b, 32)),
    "divuw": lambda a, b: _sext32(_div_unsigned(a, b, 32)),
    "remw": lambda a, b: _sext32(_rem_signed(a, b, 32)),
    "remuw": lambda a, b: _sext32(_rem_unsigned(a, b, 32)),
}

#: taken_lanes = f(a_lanes, b_lanes) -> bool array.
BATCH_BRANCH_CONDITIONS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: _signed(a) < _signed(b),
    "bge": lambda a, b: _signed(a) >= _signed(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}


def batch_compute_alu(mnemonic: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-lane result of a computational instruction (``uint64`` lanes)."""
    return BATCH_ALU_OPS[mnemonic](a, b)


def batch_branch_taken(mnemonic: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-lane branch condition outcomes (boolean lanes)."""
    return BATCH_BRANCH_CONDITIONS[mnemonic](a, b)
