"""Textual rendering of instructions (a small disassembler)."""

from __future__ import annotations

from repro.isa.instructions import Format, FuncClass, Instruction
from repro.isa.registers import register_name


def format_instruction(inst: Instruction) -> str:
    """Render ``inst`` in conventional assembly syntax."""
    m = inst.mnemonic
    rd = register_name(inst.rd)
    rs1 = register_name(inst.rs1)
    rs2 = register_name(inst.rs2)
    fc = inst.spec.func_class
    fmt = inst.spec.fmt

    if fc is FuncClass.MARKER:
        return f"{m} {rs1}" if m == "iter.begin" else m
    if fc is FuncClass.SYSTEM:
        return m
    if fc is FuncClass.LOAD:
        return f"{m} {rd}, {inst.imm}({rs1})"
    if fc is FuncClass.STORE:
        return f"{m} {rs2}, {inst.imm}({rs1})"
    if fc is FuncClass.BRANCH:
        return f"{m} {rs1}, {rs2}, {inst.branch_target():#x}"
    if m == "jal":
        return f"jal {rd}, {inst.branch_target():#x}"
    if m == "jalr":
        return f"jalr {rd}, {inst.imm}({rs1})"
    if fmt is Format.U:
        return f"{m} {rd}, {inst.imm:#x}"
    if fmt is Format.R:
        return f"{m} {rd}, {rs1}, {rs2}"
    return f"{m} {rd}, {rs1}, {inst.imm}"


def format_program(instructions) -> str:
    """Render a sequence of instructions with their PCs, one per line."""
    return "\n".join(f"{i.pc:#010x}:  {format_instruction(i)}" for i in instructions)
