"""In-order functional (golden-model) simulator for assembled programs.

This interpreter executes one instruction per step with architecturally
correct semantics and no microarchitectural timing.  It serves three roles:

* golden model for co-simulation tests of the out-of-order core,
* execution substrate for the DATA software-level baseline (which only sees
  architecturally exposed address traces), and
* a fast way to validate workload programs while developing them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.isa.assembler import Program
from repro.isa.instructions import FuncClass, Instruction
from repro.isa.semantics import MASK64, compute_alu, branch_taken, to_signed
from repro.kernel.memory_map import MemoryMap


class ExecutionError(RuntimeError):
    """Raised on invalid execution (bad PC, unaligned access, ...)."""


@dataclass
class ArchEvent:
    """One architecturally visible event, as a software tracer (DATA) sees it."""

    pc: int
    kind: str  # "exec" | "load" | "store" | "branch"
    address: int = 0  # memory address or branch target
    taken: bool = False
    step: int = 0  # instruction count at which the event occurred


@dataclass
class MarkerEvent:
    """A committed ROI/iteration marker."""

    mnemonic: str
    label: int
    step: int


@dataclass
class InterpreterResult:
    """Outcome of a functional run."""

    steps: int
    exit_code: int
    markers: list[MarkerEvent] = field(default_factory=list)
    arch_trace: list[ArchEvent] = field(default_factory=list)


class FlatMemory:
    """Little-endian byte-addressable flat memory.

    Access semantics — explicit, because the batched lane memory
    (:class:`repro.isa.batch_interpreter.BatchMemory`) must reproduce them
    bit-for-bit and the cosim suite only covers them implicitly:

    * **Unaligned accesses are allowed** at every size.  An access is plain
      byte-wise little-endian assembly/scatter; crossing an alignment or
      page boundary changes nothing (no split, no penalty, no exception).
    * **Accesses never wrap.**  Any access extending past ``size`` raises
      :class:`ExecutionError` rather than wrapping to offset 0.  Effective
      addresses are computed modulo 2^64 by the interpreter, so a negative
      base+offset arrives here as a huge address and is rejected by the
      same bound.
    * **All entry points are bounds-checked** — including ``read_bytes``,
      which never silently truncates.
    """

    def __init__(self, size: int = 1 << 22):
        self.size = size
        self.data = bytearray(size)

    def load(self, address: int, size: int) -> int:
        """Load ``size`` bytes, little-endian; may be unaligned, never wraps."""
        if address < 0 or address + size > self.size:
            raise ExecutionError(f"load out of range: {address:#x}+{size}")
        return int.from_bytes(self.data[address:address + size], "little")

    def store(self, address: int, value: int, size: int) -> None:
        """Store ``size`` bytes, little-endian; may be unaligned, never wraps."""
        if address < 0 or address + size > self.size:
            raise ExecutionError(f"store out of range: {address:#x}+{size}")
        self.data[address:address + size] = (value & ((1 << (8 * size)) - 1)) \
            .to_bytes(size, "little")

    def write_bytes(self, address: int, payload: bytes) -> None:
        if address < 0 or address + len(payload) > self.size:
            raise ExecutionError(f"write out of range: {address:#x}")
        self.data[address:address + len(payload)] = payload

    def read_bytes(self, address: int, length: int) -> bytes:
        if address < 0 or address + length > self.size:
            raise ExecutionError(f"read out of range: {address:#x}+{length}")
        return bytes(self.data[address:address + length])


class TrackingMemory(FlatMemory):
    """Flat memory that records which pages have been written.

    Checkpoint capture uses this to snapshot only the pages a program has
    dirtied relative to the pristine program image, instead of the whole
    address space.  ``dirty_pages`` holds page base addresses.
    """

    def __init__(self, size: int = 1 << 22, page_size: int = 4096):
        super().__init__(size)
        self.page_size = page_size
        self.dirty_pages: set[int] = set()

    def store(self, address: int, value: int, size: int) -> None:
        super().store(address, value, size)
        page = self.page_size
        self.dirty_pages.add((address // page) * page)
        last = ((address + size - 1) // page) * page
        if last != (address // page) * page:
            self.dirty_pages.add(last)

    def write_bytes(self, address: int, payload: bytes) -> None:
        super().write_bytes(address, payload)
        if payload:
            page = self.page_size
            first = (address // page) * page
            last = ((address + len(payload) - 1) // page) * page
            self.dirty_pages.update(range(first, last + page, page))


class Interpreter:
    """Functional executor for a :class:`Program`.

    ``syscall_handler(interp) -> bool`` services ``ecall``; returning False
    halts execution.  The default handler implements the proxy-kernel exit
    convention (a7=93 exits with code a0).

    With ``track_dirty_pages=True`` the memory records which pages the
    *program* writes (the initial data image does not count as dirty); the
    checkpoint machinery in :mod:`repro.sampler.checkpoint` relies on this.
    """

    def __init__(self, program: Program, memory_map: MemoryMap | None = None,
                 record_arch_trace: bool = False,
                 syscall_handler: Callable[["Interpreter"], bool] | None = None,
                 track_dirty_pages: bool = False):
        self.program = program
        self.memory_map = memory_map or MemoryMap()
        if track_dirty_pages:
            self.memory: FlatMemory = TrackingMemory(
                self.memory_map.memory_size, self.memory_map.page_size)
        else:
            self.memory = FlatMemory(self.memory_map.memory_size)
        self.regs = [0] * 32
        self.pc = program.entry
        self.record_arch_trace = record_arch_trace
        self.syscall_handler = syscall_handler or _default_syscall_handler
        self.exit_code = 0
        self.halted = False
        self.steps = 0
        self.markers: list[MarkerEvent] = []
        self.arch_trace: list[ArchEvent] = []
        self.memory.write_bytes(program.data_base, bytes(program.data))
        if track_dirty_pages:
            self.memory.dirty_pages.clear()  # the image is not program-dirty
        self.regs[2] = self.memory_map.stack_top  # sp

    # -- register helpers ---------------------------------------------------

    def read_reg(self, num: int) -> int:
        return 0 if num == 0 else self.regs[num]

    def write_reg(self, num: int, value: int) -> None:
        if num != 0:
            self.regs[num] = value & MASK64

    # -- execution ------------------------------------------------------------

    def step(self) -> None:
        """Execute a single instruction."""
        inst = self.program.instruction_at(self.pc)
        if inst is None:
            raise ExecutionError(f"PC out of text range: {self.pc:#x}")
        self.steps += 1
        next_pc = (self.pc + 4) & MASK64
        fc = inst.func_class

        if fc in (FuncClass.ALU, FuncClass.MUL, FuncClass.DIV):
            a, b = self._alu_operands(inst)
            self.write_reg(inst.rd, compute_alu(inst.mnemonic, a, b))
            self._trace(ArchEvent(inst.pc, "exec"))
        elif fc is FuncClass.LOAD:
            address = (self.read_reg(inst.rs1) + inst.imm) & MASK64
            size, signed = inst.spec.mem
            value = self.memory.load(address, size)
            if signed:
                value = to_signed(value, 8 * size) & MASK64
            self.write_reg(inst.rd, value)
            self._trace(ArchEvent(inst.pc, "load", address=address))
        elif fc is FuncClass.STORE:
            address = (self.read_reg(inst.rs1) + inst.imm) & MASK64
            size, _ = inst.spec.mem
            self.memory.store(address, self.read_reg(inst.rs2), size)
            self._trace(ArchEvent(inst.pc, "store", address=address))
        elif fc is FuncClass.BRANCH:
            taken = branch_taken(inst.mnemonic,
                                 self.read_reg(inst.rs1), self.read_reg(inst.rs2))
            if taken:
                next_pc = inst.branch_target()
            self._trace(ArchEvent(inst.pc, "branch", address=next_pc, taken=taken))
        elif fc is FuncClass.JUMP:
            if inst.mnemonic == "jal":
                self.write_reg(inst.rd, (inst.pc + 4) & MASK64)
                next_pc = inst.branch_target()
            else:  # jalr
                target = (self.read_reg(inst.rs1) + inst.imm) & ~1 & MASK64
                self.write_reg(inst.rd, (inst.pc + 4) & MASK64)
                next_pc = target
            self._trace(ArchEvent(inst.pc, "branch", address=next_pc, taken=True))
        elif fc is FuncClass.MARKER:
            label = self.read_reg(inst.rs1) if inst.mnemonic == "iter.begin" else 0
            self.markers.append(MarkerEvent(inst.mnemonic, label, self.steps))
        elif fc is FuncClass.SYSTEM:
            if inst.mnemonic == "ecall":
                if not self.syscall_handler(self):
                    self.halted = True
            elif inst.mnemonic == "ebreak":
                self.halted = True
            # fence: no-op
        else:  # pragma: no cover - all classes handled above
            raise ExecutionError(f"unhandled class {fc}")
        self.pc = next_pc

    def run_until(self, target_steps: int) -> None:
        """Execute until ``self.steps`` reaches ``target_steps`` (or halt)."""
        while not self.halted and self.steps < target_steps:
            self.step()

    def run(self, max_steps: int = 10_000_000) -> InterpreterResult:
        """Run until halt (or ``max_steps``), returning the result summary."""
        while not self.halted and self.steps < max_steps:
            self.step()
        if not self.halted:
            raise ExecutionError(f"program did not halt within {max_steps} steps")
        return InterpreterResult(
            steps=self.steps,
            exit_code=self.exit_code,
            markers=self.markers,
            arch_trace=self.arch_trace,
        )

    # -- internals ------------------------------------------------------------

    def _trace(self, event: ArchEvent) -> None:
        if self.record_arch_trace:
            event.step = self.steps
            self.arch_trace.append(event)

    def _alu_operands(self, inst: Instruction) -> tuple[int, int]:
        return self._operand_a(inst), self._operand_b(inst)

    def _operand_a(self, inst: Instruction) -> int:
        if inst.mnemonic == "lui":
            return 0
        if inst.mnemonic == "auipc":
            return inst.pc
        return self.read_reg(inst.rs1)

    def _operand_b(self, inst: Instruction) -> int:
        if inst.mnemonic in ("lui", "auipc"):
            return inst.imm & MASK64
        if inst.spec.fmt.name == "I":
            return inst.imm & MASK64
        return self.read_reg(inst.rs2)


def _default_syscall_handler(interp: Interpreter) -> bool:
    """Proxy-kernel syscall convention: a7=93 (exit) halts with code a0."""
    syscall = interp.read_reg(17)  # a7
    if syscall == 93:
        interp.exit_code = to_signed(interp.read_reg(10))
        return False
    raise ExecutionError(f"unhandled syscall {syscall}")


def run_program(program: Program, **kwargs) -> InterpreterResult:
    """Assemble-and-go helper: execute ``program`` to completion."""
    return Interpreter(program, **kwargs).run()
