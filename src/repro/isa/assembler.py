"""A two-pass assembler for the RV64IM subset.

The assembler accepts conventional GNU-style assembly text: labels,
``.text`` / ``.data`` sections, data directives, numeric literals (decimal or
``0x`` hex), `imm(reg)` memory operands and the common pseudo-instructions
(``li``, ``la``, ``mv``, ``beqz``, ``j``, ``call``, ``ret``...).

Pass 1 expands pseudo-instructions to fixed-size sequences and assigns
addresses to labels; pass 2 resolves label references and materializes
:class:`~repro.isa.instructions.Instruction` objects.

The result is a :class:`Program` holding the instruction list, the data-image
bytes and the symbol table, ready to be loaded by the proxy kernel.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.isa.instructions import INSTRUCTION_SPECS, Format, FuncClass, Instruction
from repro.isa.registers import parse_register
from repro.isa.semantics import to_signed

DEFAULT_TEXT_BASE = 0x0001_0000
DEFAULT_DATA_BASE = 0x0004_0000


class AssemblerError(ValueError):
    """Raised on malformed assembly input, with line information."""


@dataclass
class Program:
    """An assembled program: text image, data image and symbols."""

    instructions: list[Instruction]
    text_base: int
    data: bytearray
    data_base: int
    symbols: dict[str, int]
    entry: int

    @property
    def text_size(self) -> int:
        return 4 * len(self.instructions)

    def instruction_at(self, pc: int) -> Instruction | None:
        """Return the instruction at ``pc``, or None if out of text range."""
        index = (pc - self.text_base) >> 2
        if 0 <= index < len(self.instructions) and pc % 4 == 0:
            return self.instructions[index]
        return None


@dataclass
class _Line:
    number: int
    mnemonic: str
    operands: list[str]
    text: str


@dataclass
class _PendingInstruction:
    """One expanded machine instruction awaiting operand resolution."""

    line: _Line
    mnemonic: str
    operands: list[str]
    #: how the operands map onto Instruction fields, see _build_instruction.
    address: int = 0
    #: source-line index, used by branch relaxation (None for relaxed forms).
    line_index: int | None = None


_LABEL_RE = re.compile(r"^([A-Za-z_.$0-9][\w.$]*):")
_MEM_OPERAND_RE = re.compile(r"^(-?[\w.$]+)\(([\w]+)\)$")

# Pseudo-instructions with a fixed 1:1 expansion.
# name -> (real mnemonic, operand template); '%0', '%1'.. refer to the
# pseudo's operands.
_SIMPLE_PSEUDOS = {
    "mv": ("addi", ["%0", "%1", "0"]),
    "not": ("xori", ["%0", "%1", "-1"]),
    "neg": ("sub", ["%0", "zero", "%1"]),
    "negw": ("subw", ["%0", "zero", "%1"]),
    "sext.w": ("addiw", ["%0", "%1", "0"]),
    "seqz": ("sltiu", ["%0", "%1", "1"]),
    "snez": ("sltu", ["%0", "zero", "%1"]),
    "sltz": ("slt", ["%0", "%1", "zero"]),
    "sgtz": ("slt", ["%0", "zero", "%1"]),
    "beqz": ("beq", ["%0", "zero", "%1"]),
    "bnez": ("bne", ["%0", "zero", "%1"]),
    "blez": ("bge", ["zero", "%0", "%1"]),
    "bgez": ("bge", ["%0", "zero", "%1"]),
    "bltz": ("blt", ["%0", "zero", "%1"]),
    "bgtz": ("blt", ["zero", "%0", "%1"]),
    "bgt": ("blt", ["%1", "%0", "%2"]),
    "ble": ("bge", ["%1", "%0", "%2"]),
    "bgtu": ("bltu", ["%1", "%0", "%2"]),
    "bleu": ("bgeu", ["%1", "%0", "%2"]),
    "j": ("jal", ["zero", "%0"]),
    "jr": ("jalr", ["zero", "%0", "0"]),
    "ret": ("jalr", ["zero", "ra", "0"]),
    "call": ("jal", ["ra", "%0"]),
    "tail": ("jal", ["zero", "%0"]),
    "nop": ("addi", ["zero", "zero", "0"]),
}


def _substitute(template: list[str], operands: list[str], line: _Line) -> list[str]:
    out = []
    for item in template:
        if item.startswith("%"):
            index = int(item[1:])
            if index >= len(operands):
                raise AssemblerError(
                    f"line {line.number}: too few operands for {line.mnemonic!r}"
                )
            out.append(operands[index])
        else:
            out.append(item)
    return out


def _parse_int(token: str) -> int | None:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        return None


_NUMERIC_LABEL_RE = re.compile(r"^\d+$")
_NUMERIC_REF_RE = re.compile(r"^(\d+)([fb])$")


def _resolve_local_labels(lines: list[_Line]) -> list[_Line]:
    """Rewrite GNU-style numeric local labels (``1:``, ``1b``, ``2f``).

    Each numeric label may be defined many times; a reference ``Nb`` binds to
    the nearest preceding definition and ``Nf`` to the nearest following one.
    Definitions are renamed to unique symbols and references rewritten.
    """
    definitions: dict[str, list[tuple[int, str]]] = {}
    for index, line in enumerate(lines):
        if line.mnemonic == "label" and _NUMERIC_LABEL_RE.match(line.operands[0]):
            name = line.operands[0]
            unique = f".L{name}.{len(definitions.get(name, []))}"
            definitions.setdefault(name, []).append((index, unique))
            line.operands = [unique]
    if not definitions:
        return lines
    for index, line in enumerate(lines):
        if line.mnemonic == "label":
            continue
        new_operands = []
        for operand in line.operands:
            match = _NUMERIC_REF_RE.match(operand.strip())
            if match and match.group(1) in definitions:
                name, direction = match.groups()
                candidates = definitions[name]
                if direction == "b":
                    found = [u for (i, u) in candidates if i <= index]
                    if not found:
                        raise AssemblerError(
                            f"line {line.number}: no previous label {name}"
                        )
                    operand = found[-1]
                else:
                    found = [u for (i, u) in candidates if i > index]
                    if not found:
                        raise AssemblerError(
                            f"line {line.number}: no following label {name}"
                        )
                    operand = found[0]
            new_operands.append(operand)
        line.operands = new_operands
    return lines


def _tokenize(source: str) -> list[_Line]:
    lines = []
    for number, raw in enumerate(source.splitlines(), start=1):
        text = raw.split("#", 1)[0].split("//", 1)[0].strip()
        while text:
            match = _LABEL_RE.match(text)
            if match:
                lines.append(_Line(number, "label", [match.group(1)], raw))
                text = text[match.end():].strip()
                continue
            parts = text.split(None, 1)
            mnemonic = parts[0].lower()
            operands = []
            if len(parts) > 1:
                operands = [op.strip() for op in parts[1].split(",")]
            lines.append(_Line(number, mnemonic, operands, raw))
            break
    return lines


def _li_expansion(rd: str, value: int, line: _Line) -> list[tuple[str, list[str]]]:
    """Expand ``li rd, value`` into a fixed sequence of real instructions."""
    if -2048 <= value <= 2047:
        return [("addi", [rd, "zero", str(value)])]
    if -(1 << 31) <= value < (1 << 31):
        hi = (value + 0x800) >> 12
        lo = value - (hi << 12)
        out = [("lui", [rd, str(to_signed((hi << 12) & 0xFFFFFFFF, 32))])]
        out.append(("addiw", [rd, rd, str(lo)]))
        return out
    if not -(1 << 63) <= value < (1 << 64):
        raise AssemblerError(f"line {line.number}: li constant {value} out of range")
    # General 64-bit constant: build the upper 32 bits, shift, then OR in the
    # lower bits 11 at a time (a simplified version of what GAS emits).
    value &= 0xFFFFFFFFFFFFFFFF
    upper = to_signed(value >> 32, 32)
    out = _li_expansion(rd, upper, line)
    remaining = value & 0xFFFFFFFF
    for shamt, chunk in ((11, (remaining >> 21) & 0x7FF),
                         (11, (remaining >> 10) & 0x7FF),
                         (10, remaining & 0x3FF)):
        out.append(("slli", [rd, rd, str(shamt)]))
        if chunk:
            out.append(("ori", [rd, rd, str(chunk)]))
        else:
            out.append(("addi", [rd, rd, "0"]))  # keep size deterministic
    return out


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, text_base: int = DEFAULT_TEXT_BASE,
                 data_base: int = DEFAULT_DATA_BASE):
        self.text_base = text_base
        self.data_base = data_base

    def assemble(self, source: str, entry: str | None = None) -> Program:
        """Assemble ``source``; ``entry`` names the start label (default:
        the first text label, or the text base).

        Conditional branches whose targets fall outside the B-type ±4 KiB
        range are relaxed to an inverted branch over a ``jal`` (exactly what
        GNU as emits), iterating until the layout is stable.
        """
        lines = _resolve_local_labels(_tokenize(source))
        long_branches: set[int] = set()
        for _ in range(16):
            pending, symbols, data = self._pass1(lines, long_branches)
            violations = self._branches_out_of_range(pending, symbols,
                                                     long_branches)
            if not violations:
                break
            long_branches |= violations
        else:  # pragma: no cover - relaxation always converges
            raise AssemblerError("branch relaxation did not converge")
        instructions = [self._build_instruction(p, symbols) for p in pending]
        entry_pc = self.text_base
        if entry is not None:
            if entry not in symbols:
                raise AssemblerError(f"entry label {entry!r} not defined")
            entry_pc = symbols[entry]
        return Program(
            instructions=instructions,
            text_base=self.text_base,
            data=data,
            data_base=self.data_base,
            symbols=symbols,
            entry=entry_pc,
        )

    # -- pass 1 -----------------------------------------------------------

    #: branch inversions used by long-branch relaxation.
    _INVERTED = {"beq": "bne", "bne": "beq", "blt": "bge", "bge": "blt",
                 "bltu": "bgeu", "bgeu": "bltu"}

    def _pass1(self, lines, long_branches=frozenset()):
        symbols: dict[str, int] = {}
        pending: list[_PendingInstruction] = []
        data = bytearray()
        section = "text"
        for line_index, line in enumerate(lines):
            if line.mnemonic == "label":
                name = line.operands[0]
                if name in symbols:
                    raise AssemblerError(f"line {line.number}: duplicate label {name!r}")
                if section == "text":
                    symbols[name] = self.text_base + 4 * len(pending)
                else:
                    symbols[name] = self.data_base + len(data)
                continue
            if line.mnemonic.startswith("."):
                section = self._directive(line, section, data)
                continue
            if section != "text":
                raise AssemblerError(
                    f"line {line.number}: instruction outside .text section"
                )
            for mnemonic, operands in self._expand(line):
                if (line_index in long_branches
                        and mnemonic in self._INVERTED):
                    # Relax: inverted branch skipping a jal to the target.
                    inverted = self._INVERTED[mnemonic]
                    pending.append(_PendingInstruction(
                        line=line, mnemonic=inverted,
                        operands=[operands[0], operands[1], "@skip"],
                        address=self.text_base + 4 * len(pending),
                    ))
                    pending.append(_PendingInstruction(
                        line=line, mnemonic="jal",
                        operands=["zero", operands[2]],
                        address=self.text_base + 4 * len(pending),
                    ))
                    continue
                instruction = _PendingInstruction(
                    line=line,
                    mnemonic=mnemonic,
                    operands=operands,
                    address=self.text_base + 4 * len(pending),
                )
                instruction.line_index = line_index
                pending.append(instruction)
        return pending, symbols, data

    def _branches_out_of_range(self, pending, symbols, long_branches):
        """Line indices of short-form branches whose targets do not fit."""
        violations = set()
        for p in pending:
            line_index = getattr(p, "line_index", None)
            if line_index is None or p.mnemonic not in self._INVERTED:
                continue
            try:
                target = self._resolve(p.operands[2], symbols, p.line)
            except AssemblerError:
                continue  # genuine errors surface in pass 2
            offset = target - p.address
            if not -4096 <= offset <= 4094:
                violations.add(line_index)
        return violations - set(long_branches)

    def _directive(self, line: _Line, section: str, data: bytearray) -> str:
        name = line.mnemonic
        if name == ".text":
            return "text"
        if name == ".data":
            return "data"
        if name in (".global", ".globl", ".align", ".p2align", ".section",
                    ".option", ".type", ".size"):
            if name in (".align", ".p2align") and section == "data":
                alignment = 1 << int(line.operands[0], 0)
                while len(data) % alignment:
                    data.append(0)
            return section
        if section != "data":
            raise AssemblerError(
                f"line {line.number}: data directive {name} outside .data"
            )
        if name in (".byte", ".half", ".short", ".word", ".long", ".dword", ".quad"):
            width = {".byte": 1, ".half": 2, ".short": 2, ".word": 4,
                     ".long": 4, ".dword": 8, ".quad": 8}[name]
            for token in line.operands:
                value = _parse_int(token)
                if value is None:
                    raise AssemblerError(
                        f"line {line.number}: bad data literal {token!r}"
                    )
                data.extend((value & ((1 << (8 * width)) - 1)).to_bytes(width, "little"))
            return section
        if name in (".zero", ".skip", ".space"):
            data.extend(bytes(int(line.operands[0], 0)))
            return section
        if name in (".ascii", ".asciz", ".string"):
            literal = line.text.split(name, 1)[1].strip()
            if not (literal.startswith('"') and literal.endswith('"')):
                raise AssemblerError(f"line {line.number}: bad string literal")
            raw = literal[1:-1].encode().decode("unicode_escape").encode("latin-1")
            data.extend(raw)
            if name in (".asciz", ".string"):
                data.append(0)
            return section
        raise AssemblerError(f"line {line.number}: unknown directive {name}")

    def _expand(self, line: _Line) -> list[tuple[str, list[str]]]:
        m = line.mnemonic
        if m in _SIMPLE_PSEUDOS:
            real, template = _SIMPLE_PSEUDOS[m]
            return [(real, _substitute(template, line.operands, line))]
        if m == "li":
            if len(line.operands) != 2:
                raise AssemblerError(f"line {line.number}: li needs 2 operands")
            value = _parse_int(line.operands[1])
            if value is None:
                raise AssemblerError(
                    f"line {line.number}: li constant must be numeric "
                    f"(use 'la' for labels)"
                )
            return _li_expansion(line.operands[0], value, line)
        if m == "la":
            # Addresses in this project fit in 31 bits, so a fixed
            # lui+addiw pair always suffices; label resolution happens in
            # pass 2 via the special @hi/@lo operand markers.
            rd, label = line.operands[0], line.operands[1]
            return [("lui", [rd, f"@hi:{label}"]),
                    ("addiw", [rd, rd, f"@lo:{label}"])]
        if m in INSTRUCTION_SPECS:
            return [(m, list(line.operands))]
        raise AssemblerError(f"line {line.number}: unknown mnemonic {m!r}")

    # -- pass 2 -----------------------------------------------------------

    def _resolve(self, token: str, symbols: dict[str, int], line: _Line) -> int:
        if token.startswith("@hi:") or token.startswith("@lo:"):
            kind, label = token[1:3], token[4:]
            address = self._lookup(label, symbols, line)
            hi = (address + 0x800) >> 12
            if kind == "hi":
                return to_signed((hi << 12) & 0xFFFFFFFF, 32)
            return address - (hi << 12)
        value = _parse_int(token)
        if value is not None:
            return value
        return self._lookup(token, symbols, line)

    def _lookup(self, label: str, symbols: dict[str, int], line: _Line) -> int:
        if label not in symbols:
            raise AssemblerError(f"line {line.number}: undefined label {label!r}")
        return symbols[label]

    def _build_instruction(self, p: _PendingInstruction,
                           symbols: dict[str, int]) -> Instruction:
        spec = INSTRUCTION_SPECS[p.mnemonic]
        line = p.line
        ops = p.operands
        origin = f"line {line.number}: {line.text.strip()}"
        try:
            if spec.func_class is FuncClass.MARKER:
                rs1 = parse_register(ops[0]) if p.mnemonic == "iter.begin" else 0
                return Instruction(p.mnemonic, rs1=rs1, pc=p.address, origin=origin)
            if spec.func_class is FuncClass.SYSTEM:
                return Instruction(p.mnemonic, pc=p.address, origin=origin)
            if spec.func_class in (FuncClass.LOAD,) or p.mnemonic == "jalr":
                rd = parse_register(ops[0])
                imm, rs1 = self._mem_operand(ops, 1, symbols, line)
                return Instruction(p.mnemonic, rd=rd, rs1=rs1, imm=imm,
                                   pc=p.address, origin=origin)
            if spec.func_class is FuncClass.STORE:
                rs2 = parse_register(ops[0])
                imm, rs1 = self._mem_operand(ops, 1, symbols, line)
                return Instruction(p.mnemonic, rs1=rs1, rs2=rs2, imm=imm,
                                   pc=p.address, origin=origin)
            if spec.func_class is FuncClass.BRANCH:
                rs1 = parse_register(ops[0])
                rs2 = parse_register(ops[1])
                if ops[2] == "@skip":  # long-branch relaxation: hop the jal
                    target = p.address + 8
                else:
                    target = self._resolve(ops[2], symbols, line)
                return Instruction(p.mnemonic, rs1=rs1, rs2=rs2,
                                   imm=target - p.address, pc=p.address,
                                   origin=origin)
            if p.mnemonic == "jal":
                rd = parse_register(ops[0])
                target = self._resolve(ops[1], symbols, line)
                return Instruction("jal", rd=rd, imm=target - p.address,
                                   pc=p.address, origin=origin)
            if spec.fmt is Format.U:
                rd = parse_register(ops[0])
                imm = self._resolve(ops[1], symbols, line)
                return Instruction(p.mnemonic, rd=rd, imm=imm,
                                   pc=p.address, origin=origin)
            if spec.fmt is Format.R:
                rd, rs1, rs2 = (parse_register(o) for o in ops[:3])
                return Instruction(p.mnemonic, rd=rd, rs1=rs1, rs2=rs2,
                                   pc=p.address, origin=origin)
            # Remaining I-type ALU instructions.
            rd = parse_register(ops[0])
            rs1 = parse_register(ops[1])
            imm = self._resolve(ops[2], symbols, line)
            self._check_immediate(p.mnemonic, imm, line)
            return Instruction(p.mnemonic, rd=rd, rs1=rs1, imm=imm,
                               pc=p.address, origin=origin)
        except (IndexError, ValueError) as exc:
            if isinstance(exc, AssemblerError):
                raise
            raise AssemblerError(
                f"line {line.number}: bad operands for {p.mnemonic!r}: {exc}"
            ) from exc

    _SHIFT_RANGES = {"slli": 63, "srli": 63, "srai": 63,
                     "slliw": 31, "srliw": 31, "sraiw": 31}

    def _check_immediate(self, mnemonic, imm, line):
        """Reject immediates that cannot encode (better error than encode())."""
        if mnemonic in self._SHIFT_RANGES:
            if not 0 <= imm <= self._SHIFT_RANGES[mnemonic]:
                raise AssemblerError(
                    f"line {line.number}: shift amount {imm} out of range "
                    f"for {mnemonic}"
                )
        elif not -2048 <= imm <= 2047:
            raise AssemblerError(
                f"line {line.number}: immediate {imm} does not fit the "
                f"12-bit field of {mnemonic} (use li into a register)"
            )

    def _mem_operand(self, ops, index, symbols, line):
        """Parse either ``imm(reg)`` (possibly split by the comma tokenizer)
        or a bare ``reg``/``imm, reg`` pair, returning (imm, rs1)."""
        token = ops[index]
        match = _MEM_OPERAND_RE.match(token)
        if match:
            imm = self._resolve(match.group(1), symbols, line)
            return imm, parse_register(match.group(2))
        # "rd, rs1" or "rd, rs1, imm" operand orders (used by jalr/ret).
        try:
            rs1 = parse_register(token)
        except ValueError:
            imm = self._resolve(token, symbols, line)
            return imm, parse_register(ops[index + 1])
        imm = 0
        if len(ops) > index + 1:
            imm = self._resolve(ops[index + 1], symbols, line)
        return imm, rs1


def assemble(source: str, entry: str | None = None,
             text_base: int = DEFAULT_TEXT_BASE,
             data_base: int = DEFAULT_DATA_BASE) -> Program:
    """Convenience wrapper: assemble ``source`` with default bases."""
    return Assembler(text_base, data_base).assemble(source, entry=entry)
