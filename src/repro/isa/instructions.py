"""Instruction model for the RV64IM subset implemented by this project.

Each instruction is represented by an :class:`Instruction` carrying its
mnemonic, register operands and immediate.  Static per-mnemonic metadata
(format, functional class) lives in :data:`INSTRUCTION_SPECS` and is shared by
the assembler, the binary encoder/decoder, the functional interpreter and the
out-of-order core model.

Beyond the standard RV64I + M instructions, the project defines four *marker*
instructions in the custom-0 opcode space which the MicroSampler tracer uses
to delimit regions of interest and algorithmic iterations:

``roi.begin`` / ``roi.end``
    Enable / disable microarchitectural state sampling.
``iter.begin rs1`` / ``iter.end``
    Delimit one algorithmic iteration; the value of ``rs1`` at ``iter.begin``
    is recorded as the iteration's class label (e.g. the key bit processed).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field



class Format(enum.Enum):
    """RISC-V machine-code formats (determines operand/immediate layout)."""

    R = "R"
    I = "I"  # noqa: E741 - canonical RISC-V format letter
    S = "S"
    B = "B"
    U = "U"
    J = "J"
    SYS = "SYS"


class FuncClass(enum.Enum):
    """Functional class: selects the execution unit / pipeline behaviour."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    SYSTEM = "system"
    MARKER = "marker"


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    fmt: Format
    func_class: FuncClass
    #: (size_bytes, signed) for loads/stores; None otherwise.
    mem: tuple[int, bool] | None = None
    #: Whether execution consumes the immediate as the second operand
    #: (I-format ALU ops and U-format; loads/stores/jalr fold the immediate
    #: into address generation instead).
    uses_imm: bool = False


def _spec(mnemonic, fmt, func_class, mem=None):
    uses_imm = (
        fmt is Format.I
        and func_class is not FuncClass.LOAD
        and mnemonic != "jalr"
    ) or fmt is Format.U
    return InstructionSpec(mnemonic, fmt, func_class, mem, uses_imm)


_R = Format.R
_I = Format.I
_S = Format.S
_B = Format.B
_U = Format.U
_J = Format.J
_SYS = Format.SYS

INSTRUCTION_SPECS: dict[str, InstructionSpec] = {
    s.mnemonic: s
    for s in [
        # RV64I register-register ALU
        _spec("add", _R, FuncClass.ALU),
        _spec("sub", _R, FuncClass.ALU),
        _spec("and", _R, FuncClass.ALU),
        _spec("or", _R, FuncClass.ALU),
        _spec("xor", _R, FuncClass.ALU),
        _spec("sll", _R, FuncClass.ALU),
        _spec("srl", _R, FuncClass.ALU),
        _spec("sra", _R, FuncClass.ALU),
        _spec("slt", _R, FuncClass.ALU),
        _spec("sltu", _R, FuncClass.ALU),
        _spec("addw", _R, FuncClass.ALU),
        _spec("subw", _R, FuncClass.ALU),
        _spec("sllw", _R, FuncClass.ALU),
        _spec("srlw", _R, FuncClass.ALU),
        _spec("sraw", _R, FuncClass.ALU),
        # RV64I register-immediate ALU
        _spec("addi", _I, FuncClass.ALU),
        _spec("andi", _I, FuncClass.ALU),
        _spec("ori", _I, FuncClass.ALU),
        _spec("xori", _I, FuncClass.ALU),
        _spec("slli", _I, FuncClass.ALU),
        _spec("srli", _I, FuncClass.ALU),
        _spec("srai", _I, FuncClass.ALU),
        _spec("slti", _I, FuncClass.ALU),
        _spec("sltiu", _I, FuncClass.ALU),
        _spec("addiw", _I, FuncClass.ALU),
        _spec("slliw", _I, FuncClass.ALU),
        _spec("srliw", _I, FuncClass.ALU),
        _spec("sraiw", _I, FuncClass.ALU),
        # Upper-immediate
        _spec("lui", _U, FuncClass.ALU),
        _spec("auipc", _U, FuncClass.ALU),
        # RV64M
        _spec("mul", _R, FuncClass.MUL),
        _spec("mulh", _R, FuncClass.MUL),
        _spec("mulhu", _R, FuncClass.MUL),
        _spec("mulhsu", _R, FuncClass.MUL),
        _spec("mulw", _R, FuncClass.MUL),
        _spec("div", _R, FuncClass.DIV),
        _spec("divu", _R, FuncClass.DIV),
        _spec("rem", _R, FuncClass.DIV),
        _spec("remu", _R, FuncClass.DIV),
        _spec("divw", _R, FuncClass.DIV),
        _spec("divuw", _R, FuncClass.DIV),
        _spec("remw", _R, FuncClass.DIV),
        _spec("remuw", _R, FuncClass.DIV),
        # Loads
        _spec("lb", _I, FuncClass.LOAD, mem=(1, True)),
        _spec("lbu", _I, FuncClass.LOAD, mem=(1, False)),
        _spec("lh", _I, FuncClass.LOAD, mem=(2, True)),
        _spec("lhu", _I, FuncClass.LOAD, mem=(2, False)),
        _spec("lw", _I, FuncClass.LOAD, mem=(4, True)),
        _spec("lwu", _I, FuncClass.LOAD, mem=(4, False)),
        _spec("ld", _I, FuncClass.LOAD, mem=(8, False)),
        # Stores
        _spec("sb", _S, FuncClass.STORE, mem=(1, False)),
        _spec("sh", _S, FuncClass.STORE, mem=(2, False)),
        _spec("sw", _S, FuncClass.STORE, mem=(4, False)),
        _spec("sd", _S, FuncClass.STORE, mem=(8, False)),
        # Control flow
        _spec("beq", _B, FuncClass.BRANCH),
        _spec("bne", _B, FuncClass.BRANCH),
        _spec("blt", _B, FuncClass.BRANCH),
        _spec("bge", _B, FuncClass.BRANCH),
        _spec("bltu", _B, FuncClass.BRANCH),
        _spec("bgeu", _B, FuncClass.BRANCH),
        _spec("jal", _J, FuncClass.JUMP),
        _spec("jalr", _I, FuncClass.JUMP),
        # System
        _spec("ecall", _SYS, FuncClass.SYSTEM),
        _spec("ebreak", _SYS, FuncClass.SYSTEM),
        _spec("fence", _SYS, FuncClass.SYSTEM),
        # MicroSampler markers (custom-0 opcode space)
        _spec("roi.begin", _SYS, FuncClass.MARKER),
        _spec("roi.end", _SYS, FuncClass.MARKER),
        _spec("iter.begin", _SYS, FuncClass.MARKER),
        _spec("iter.end", _SYS, FuncClass.MARKER),
    ]
}


@dataclass
class Instruction:
    """One decoded/assembled instruction instance.

    ``imm`` holds the sign-extended immediate for I/S/B/U/J formats; for
    branch and jal instructions it is the byte offset relative to the
    instruction's own PC.
    """

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    pc: int = 0
    #: Source-level annotation (label or source line), for diagnostics.
    origin: str = ""
    spec: InstructionSpec = field(init=False, repr=False)

    # Operand/class predicates, precomputed once at construction: the core
    # model reads them several times per micro-op per cycle, and operand
    # fields are never mutated after assembly/decode.
    func_class: FuncClass = field(init=False, repr=False, compare=False)
    is_load: bool = field(init=False, repr=False, compare=False)
    is_store: bool = field(init=False, repr=False, compare=False)
    is_branch: bool = field(init=False, repr=False, compare=False)
    is_jump: bool = field(init=False, repr=False, compare=False)
    is_control_flow: bool = field(init=False, repr=False, compare=False)
    is_marker: bool = field(init=False, repr=False, compare=False)
    writes_rd: bool = field(init=False, repr=False, compare=False)
    reads_rs1: bool = field(init=False, repr=False, compare=False)
    reads_rs2: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        try:
            spec = INSTRUCTION_SPECS[self.mnemonic]
        except KeyError:
            raise ValueError(f"unknown mnemonic: {self.mnemonic!r}") from None
        self.spec = spec
        fc = spec.func_class
        fmt = spec.fmt
        self.func_class = fc
        self.is_load = fc is FuncClass.LOAD
        self.is_store = fc is FuncClass.STORE
        self.is_branch = fc is FuncClass.BRANCH
        self.is_jump = fc is FuncClass.JUMP
        self.is_control_flow = fc in (FuncClass.BRANCH, FuncClass.JUMP)
        self.is_marker = fc is FuncClass.MARKER
        self.writes_rd = self.rd != 0 and fc in (
            FuncClass.ALU,
            FuncClass.MUL,
            FuncClass.DIV,
            FuncClass.LOAD,
            FuncClass.JUMP,
        )
        if fc is FuncClass.MARKER:
            self.reads_rs1 = self.mnemonic == "iter.begin"
        elif fc is FuncClass.SYSTEM or self.mnemonic in ("lui", "auipc", "jal"):
            self.reads_rs1 = False
        else:
            self.reads_rs1 = fmt in (Format.R, Format.I, Format.S, Format.B)
        self.reads_rs2 = fmt in (Format.R, Format.S, Format.B)

    def branch_target(self) -> int:
        """Taken target for PC-relative control flow (branches and jal)."""
        return (self.pc + self.imm) & 0xFFFFFFFFFFFFFFFF

    def __str__(self) -> str:
        from repro.isa.disasm import format_instruction

        return format_instruction(self)
