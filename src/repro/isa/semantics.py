"""Functional semantics of the RV64IM instruction subset.

All register values are modeled as unsigned 64-bit integers (Python ints
masked to 64 bits).  These routines are shared by the in-order golden-model
interpreter and by the out-of-order core's execution units, so a semantics
bug cannot silently diverge between the two.
"""

from __future__ import annotations

MASK64 = 0xFFFFFFFFFFFFFFFF
MASK32 = 0xFFFFFFFF


def to_signed(value: int, bits: int = 64) -> int:
    """Interpret an unsigned ``bits``-wide value as two's complement."""
    sign_bit = 1 << (bits - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


def to_unsigned(value: int, bits: int = 64) -> int:
    """Mask a (possibly negative) Python int to an unsigned ``bits`` value."""
    return value & ((1 << bits) - 1)


def sext32(value: int) -> int:
    """Sign-extend the low 32 bits of ``value`` to 64 bits (for *W ops)."""
    return to_unsigned(to_signed(value & MASK32, 32), 64)


def _sra(value: int, shamt: int, bits: int = 64) -> int:
    return to_unsigned(to_signed(value, bits) >> shamt, bits)


def _div_signed(a: int, b: int, bits: int) -> int:
    sa, sb = to_signed(a, bits), to_signed(b, bits)
    if sb == 0:
        return to_unsigned(-1, bits)  # RISC-V: division by zero yields -1
    if sa == -(1 << (bits - 1)) and sb == -1:
        return to_unsigned(sa, bits)  # overflow case: result is dividend
    # RISC-V division truncates toward zero (unlike Python's floor
    # division), and must stay exact: ``int(sa / sb)`` would round through
    # float64 and corrupt quotients at or above 2**53.
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return to_unsigned(quotient, bits)


def _rem_signed(a: int, b: int, bits: int) -> int:
    sa, sb = to_signed(a, bits), to_signed(b, bits)
    if sb == 0:
        return to_unsigned(sa, bits)
    if sa == -(1 << (bits - 1)) and sb == -1:
        return 0
    # The remainder takes the dividend's sign (truncating division).
    remainder = abs(sa) % abs(sb)
    return to_unsigned(-remainder if sa < 0 else remainder, bits)


def _div_unsigned(a: int, b: int, bits: int) -> int:
    if b == 0:
        return (1 << bits) - 1
    return (a // b) & ((1 << bits) - 1)


def _rem_unsigned(a: int, b: int, bits: int) -> int:
    if b == 0:
        return a & ((1 << bits) - 1)
    return (a % b) & ((1 << bits) - 1)


#: rd = f(rs1_value, operand2) for every computational mnemonic.  For
#: immediate forms the caller passes the immediate as ``b``; for ``lui`` /
#: ``auipc`` the caller passes the pre-computed immediate / PC-relative value.
ALU_OPS = {
    "add": lambda a, b: (a + b) & MASK64,
    "addi": lambda a, b: (a + b) & MASK64,
    "sub": lambda a, b: (a - b) & MASK64,
    "and": lambda a, b: a & b & MASK64,
    "andi": lambda a, b: a & b & MASK64,
    "or": lambda a, b: (a | b) & MASK64,
    "ori": lambda a, b: (a | b) & MASK64,
    "xor": lambda a, b: (a ^ b) & MASK64,
    "xori": lambda a, b: (a ^ b) & MASK64,
    "sll": lambda a, b: (a << (b & 63)) & MASK64,
    "slli": lambda a, b: (a << (b & 63)) & MASK64,
    "srl": lambda a, b: (a & MASK64) >> (b & 63),
    "srli": lambda a, b: (a & MASK64) >> (b & 63),
    "sra": lambda a, b: _sra(a, b & 63),
    "srai": lambda a, b: _sra(a, b & 63),
    "slt": lambda a, b: int(to_signed(a) < to_signed(b)),
    "slti": lambda a, b: int(to_signed(a) < to_signed(b)),
    "sltu": lambda a, b: int((a & MASK64) < (b & MASK64)),
    "sltiu": lambda a, b: int((a & MASK64) < (b & MASK64)),
    "addw": lambda a, b: sext32(a + b),
    "addiw": lambda a, b: sext32(a + b),
    "subw": lambda a, b: sext32(a - b),
    "sllw": lambda a, b: sext32((a & MASK32) << (b & 31)),
    "slliw": lambda a, b: sext32((a & MASK32) << (b & 31)),
    "srlw": lambda a, b: sext32((a & MASK32) >> (b & 31)),
    "srliw": lambda a, b: sext32((a & MASK32) >> (b & 31)),
    "sraw": lambda a, b: sext32(_sra(a & MASK32, b & 31, 32)),
    "sraiw": lambda a, b: sext32(_sra(a & MASK32, b & 31, 32)),
    # Upper-immediate forms: callers pass a = 0 (lui) or a = pc (auipc) and
    # b = the U-immediate.
    "lui": lambda a, b: (a + b) & MASK64,
    "auipc": lambda a, b: (a + b) & MASK64,
    # M extension
    "mul": lambda a, b: (a * b) & MASK64,
    "mulh": lambda a, b: to_unsigned((to_signed(a) * to_signed(b)) >> 64),
    "mulhu": lambda a, b: ((a & MASK64) * (b & MASK64)) >> 64,
    "mulhsu": lambda a, b: to_unsigned((to_signed(a) * (b & MASK64)) >> 64),
    "mulw": lambda a, b: sext32(a * b),
    "div": lambda a, b: _div_signed(a, b, 64),
    "divu": lambda a, b: _div_unsigned(a & MASK64, b & MASK64, 64),
    "rem": lambda a, b: _rem_signed(a, b, 64),
    "remu": lambda a, b: _rem_unsigned(a & MASK64, b & MASK64, 64),
    "divw": lambda a, b: sext32(_div_signed(a & MASK32, b & MASK32, 32)),
    "divuw": lambda a, b: sext32(_div_unsigned(a & MASK32, b & MASK32, 32)),
    "remw": lambda a, b: sext32(_rem_signed(a & MASK32, b & MASK32, 32)),
    "remuw": lambda a, b: sext32(_rem_unsigned(a & MASK32, b & MASK32, 32)),
}

#: taken = f(rs1_value, rs2_value) for conditional branches.
BRANCH_CONDITIONS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: to_signed(a) < to_signed(b),
    "bge": lambda a, b: to_signed(a) >= to_signed(b),
    "bltu": lambda a, b: (a & MASK64) < (b & MASK64),
    "bgeu": lambda a, b: (a & MASK64) >= (b & MASK64),
}


def compute_alu(mnemonic: str, a: int, b: int) -> int:
    """Compute the result of a computational instruction."""
    return ALU_OPS[mnemonic](a, b)


def branch_taken(mnemonic: str, a: int, b: int) -> bool:
    """Evaluate a conditional branch's condition."""
    return BRANCH_CONDITIONS[mnemonic](a, b)
