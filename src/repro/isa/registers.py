"""RISC-V integer register file names and ABI aliases.

The RV64 integer register file has 32 registers, ``x0``..``x31``.  ``x0`` is
hardwired to zero.  The standard calling convention assigns ABI mnemonics
(``a0``..``a7`` for arguments, ``s0``..``s11`` for callee-saved registers and
so on); the assembler accepts either spelling.
"""

from __future__ import annotations

NUM_REGS = 32

#: Canonical ABI names indexed by architectural register number.
ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

_ALIASES = {"fp": 8}  # frame pointer is another name for s0

#: Mapping from every accepted register spelling to its number.
REGISTER_NUMBERS: dict[str, int] = {}
for _i, _name in enumerate(ABI_NAMES):
    REGISTER_NUMBERS[_name] = _i
    REGISTER_NUMBERS[f"x{_i}"] = _i
REGISTER_NUMBERS.update(_ALIASES)


def parse_register(name: str) -> int:
    """Return the register number for ``name`` (ABI or ``xN`` spelling).

    Raises ``ValueError`` for anything that is not a valid register name.
    """
    try:
        return REGISTER_NUMBERS[name.strip().lower()]
    except KeyError:
        raise ValueError(f"unknown register name: {name!r}") from None


def register_name(num: int) -> str:
    """Return the canonical ABI name for register number ``num``."""
    if not 0 <= num < NUM_REGS:
        raise ValueError(f"register number out of range: {num}")
    return ABI_NAMES[num]
