"""Lockstep batch execution: one instruction stream, N input lanes.

Constant-time code has input-independent control flow by construction, so
the N per-input runs of a campaign execute the *same* instruction stream.
:class:`BatchInterpreter` exploits that: it decodes each instruction once
and applies its semantics to all lanes at once, with register files held as
a ``(32, n_lanes)`` ``uint64`` array and memory as an ``(n_lanes, size)``
byte matrix (:mod:`repro.isa.batch_semantics` supplies the vectorized ops).

The lockstep invariant is *checked, not assumed*: before an instruction with
a lane-visible control or address effect executes, the interpreter compares
every lane's branch direction / memory address / jump target / syscall
signature against lane 0's.  Lanes that disagree are split off into ordinary
scalar :class:`~repro.isa.interpreter.Interpreter` instances — seeded with
their exact architectural state — and the split point is recorded as a
:class:`DivergenceEvent`.  A divergence is itself a leak signal (the
trace-alignment property MicroWalk's analysis rests on is exactly "no such
event occurs"), so campaign reports surface these events first-class.

Every batched component is locked to the scalar golden model by the
differential fuzz battery in ``tests/test_batch_interpreter.py``: final
registers, dirty pages, ArchEvent streams and markers must be bit-identical
to N independent scalar runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.assembler import Program
from repro.isa.batch_semantics import batch_branch_taken, batch_compute_alu
from repro.isa.instructions import FuncClass
from repro.isa.interpreter import (
    ArchEvent,
    ExecutionError,
    Interpreter,
    InterpreterResult,
    MarkerEvent,
)
from repro.isa.semantics import MASK64, to_signed
from repro.kernel.memory_map import MemoryMap

_U64 = np.uint64
_BYTE_SHIFTS = np.arange(0, 64, 8, dtype=np.uint64)
_JALR_ALIGN = _U64(MASK64 - 1)  # ~1 in 64 bits


@dataclass(frozen=True)
class DivergenceEvent:
    """A point where lanes left lockstep — a first-class leak signal.

    ``step`` is the 1-based instruction count of the diverging instruction
    (the same numbering :class:`~repro.isa.interpreter.ArchEvent` uses), and
    ``lanes`` holds the global lane indices that were split off to scalar
    execution; lane 0's group stays batched.
    """

    pc: int
    step: int
    kind: str  # "branch" | "mem" | "jump" | "syscall"
    mnemonic: str
    lanes: tuple

    def describe(self) -> str:
        lanes = ",".join(str(lane) for lane in self.lanes)
        return (f"{self.kind} divergence at pc={self.pc:#x} "
                f"({self.mnemonic}, step {self.step}, lanes {lanes})")


@dataclass
class BatchResult:
    """Outcome of a batched run: per-lane results plus split history."""

    lane_results: list[InterpreterResult]
    divergences: list[DivergenceEvent] = field(default_factory=list)
    #: Instructions executed in lockstep (by the lanes that stayed batched).
    steps_lockstep: int = 0
    #: Lanes that completed without ever leaving the batch.
    n_lockstep_lanes: int = 0


class BatchMemory:
    """Per-lane flat memories behind one ``(n_lanes, size)`` byte matrix.

    Bounds semantics mirror :class:`~repro.isa.interpreter.FlatMemory`
    exactly: accesses may be unaligned and may straddle page boundaries, but
    never wrap — any access extending past ``size`` raises.  ``dirty_pages``
    is shared across lanes, which is sound precisely because stores only
    happen in lockstep (every lane dirties the same pages); lane splitting
    hands each departing lane a copy.
    """

    def __init__(self, n_lanes: int, size: int, page_size: int = 4096,
                 track_dirty_pages: bool = False):
        self.n_lanes = n_lanes
        self.size = size
        self.page_size = page_size
        self.data = np.zeros((n_lanes, size), dtype=np.uint8)
        self.dirty_pages: set[int] | None = (
            set() if track_dirty_pages else None)

    def _check(self, kind: str, address: int, length: int) -> None:
        if address < 0 or address + length > self.size:
            raise ExecutionError(f"{kind} out of range: {address:#x}+{length}")

    def load_lockstep(self, address: int, size: int) -> np.ndarray:
        """Little-endian load of ``size`` bytes at one address, all lanes."""
        self._check("load", address, size)
        window = self.data[:, address:address + size].astype(np.uint64)
        return (window << _BYTE_SHIFTS[:size]).sum(axis=1, dtype=np.uint64)

    def store_lockstep(self, address: int, values: np.ndarray,
                       size: int) -> None:
        """Store each lane's value at one shared (possibly unaligned) address."""
        self._check("store", address, size)
        window = (values[:, None] >> _BYTE_SHIFTS[:size]).astype(np.uint8)
        self.data[:, address:address + size] = window
        if self.dirty_pages is not None:
            page = self.page_size
            first = (address // page) * page
            last = ((address + size - 1) // page) * page
            self.dirty_pages.add(first)
            if last != first:
                self.dirty_pages.add(last)

    def write_bytes_all(self, address: int, payload: bytes) -> None:
        self._check("write", address, len(payload))
        if payload:
            self.data[:, address:address + len(payload)] = np.frombuffer(
                payload, dtype=np.uint8)

    def write_bytes(self, lane: int, address: int, payload: bytes) -> None:
        self._check("write", address, len(payload))
        if payload:
            self.data[lane, address:address + len(payload)] = np.frombuffer(
                payload, dtype=np.uint8)
            if self.dirty_pages is not None:
                page = self.page_size
                first = (address // page) * page
                last = ((address + len(payload) - 1) // page) * page
                self.dirty_pages.update(range(first, last + page, page))

    def read_bytes(self, lane: int, address: int, length: int) -> bytes:
        self._check("read", address, length)
        return self.data[lane, address:address + length].tobytes()

    def compress(self, keep_idx: np.ndarray) -> None:
        """Drop all lanes not listed in ``keep_idx`` (post-split)."""
        self.data = np.ascontiguousarray(self.data[keep_idx])
        self.n_lanes = len(keep_idx)


class _LaneMemory:
    """read_bytes/write_bytes view of a single lane (the kernel's CpuView)."""

    def __init__(self, memory: BatchMemory, lane: int):
        self._memory = memory
        self._lane = lane

    def read_bytes(self, address: int, length: int) -> bytes:
        return self._memory.read_bytes(self._lane, address, length)

    def write_bytes(self, address: int, payload: bytes) -> None:
        self._memory.write_bytes(self._lane, address, payload)


class _LaneView:
    """Architectural view of one lane, handed to per-lane syscall handlers."""

    def __init__(self, batch: "BatchInterpreter", local_index: int):
        self._batch = batch
        self._local = local_index
        self.memory = _LaneMemory(batch.mem, local_index)

    def read_reg(self, num: int) -> int:
        if num == 0:
            return 0
        return int(self._batch.regs[num, self._local])

    def write_reg(self, num: int, value: int) -> None:
        if num != 0:
            self._batch.regs[num, self._local] = value & MASK64


class BatchInterpreter:
    """Functional executor stepping one instruction stream over N lanes.

    ``programs`` must share a single instruction stream (typically N
    ``patch_program`` copies of one assembled program — only data differs).
    ``kernels``, when given, is one syscall handler per lane (anything with
    ``handle_ecall(cpu) -> bool``; per-lane :class:`ProxyKernel` instances
    capture per-lane console/brk state).  Without ``kernels`` the default
    proxy-kernel exit convention applies, exactly as in the scalar
    :class:`~repro.isa.interpreter.Interpreter`.

    After lanes split, their scalar interpreters live in ``scalar_lanes``
    (keyed by global lane index) and advance together with the batch in
    :meth:`run` / :meth:`run_until`.
    """

    def __init__(self, programs: list[Program],
                 memory_map: MemoryMap | None = None,
                 record_arch_trace: bool = False,
                 kernels: list | None = None,
                 track_dirty_pages: bool = False):
        if not programs:
            raise ValueError("BatchInterpreter needs at least one lane")
        stream = programs[0].instructions
        for program in programs[1:]:
            if program.instructions is not stream \
                    and program.instructions != stream:
                raise ValueError(
                    "batch lanes must share one instruction stream")
        if kernels is not None and len(kernels) != len(programs):
            raise ValueError("kernels must be one per lane")
        self.program = programs[0]
        self.programs = list(programs)
        self.memory_map = memory_map or MemoryMap()
        self.n_lanes = len(programs)
        self.record_arch_trace = record_arch_trace
        self.track_dirty_pages = track_dirty_pages
        self.kernels = list(kernels) if kernels is not None else None
        self.mem = BatchMemory(self.n_lanes, self.memory_map.memory_size,
                               self.memory_map.page_size,
                               track_dirty_pages=track_dirty_pages)
        for lane, program in enumerate(programs):
            self.mem.write_bytes(lane, program.data_base, bytes(program.data))
        if track_dirty_pages:
            self.mem.dirty_pages.clear()  # the image is not program-dirty
        self.regs = np.zeros((32, self.n_lanes), dtype=np.uint64)
        self.regs[2, :] = self.memory_map.stack_top  # sp
        self.pc = self.program.entry
        self.steps = 0
        self.halted = False
        self.exit_codes = [0] * self.n_lanes
        #: Global lane index of each still-batched column, in column order.
        self.lane_ids = list(range(self.n_lanes))
        #: Scalar continuations of split lanes, by global lane index.
        self.scalar_lanes: dict[int, Interpreter] = {}
        self.divergences: list[DivergenceEvent] = []
        self._events: list[ArchEvent] = []
        #: (mnemonic, {global_lane: label}, step) per committed marker.
        self._markers: list[tuple] = []

    # -- lane state access (tests, checkpoint capture) -----------------------

    @property
    def n_active_lanes(self) -> int:
        return len(self.lane_ids)

    def _local(self, lane: int) -> int:
        return self.lane_ids.index(lane)

    def lane_interpreter(self, lane: int) -> Interpreter | None:
        """The scalar continuation of ``lane``, or None while batched."""
        return self.scalar_lanes.get(lane)

    def lane_pc(self, lane: int) -> int:
        interp = self.scalar_lanes.get(lane)
        return interp.pc if interp is not None else self.pc

    def lane_steps(self, lane: int) -> int:
        interp = self.scalar_lanes.get(lane)
        return interp.steps if interp is not None else self.steps

    def lane_regs(self, lane: int) -> tuple:
        interp = self.scalar_lanes.get(lane)
        if interp is not None:
            return tuple(interp.read_reg(i) for i in range(32))
        column = self.regs[:, self._local(lane)]
        values = tuple(int(v) for v in column)
        return (0,) + values[1:]

    def lane_read_bytes(self, lane: int, address: int, length: int) -> bytes:
        interp = self.scalar_lanes.get(lane)
        if interp is not None:
            return interp.memory.read_bytes(address, length)
        return self.mem.read_bytes(self._local(lane), address, length)

    def lane_dirty_pages(self, lane: int) -> set[int]:
        interp = self.scalar_lanes.get(lane)
        if interp is not None:
            return set(interp.memory.dirty_pages)
        return set(self.mem.dirty_pages or ())

    # -- execution ------------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction across every still-batched lane.

        Lanes whose control/address behaviour diverges from lane 0's are
        split off *before* any state mutation; both the surviving batch and
        the fresh scalar interpreters then (re-)execute the instruction.
        """
        inst = self.program.instruction_at(self.pc)
        if inst is None:
            raise ExecutionError(f"PC out of text range: {self.pc:#x}")
        next_pc = (self.pc + 4) & MASK64
        fc = inst.func_class

        if fc in (FuncClass.ALU, FuncClass.MUL, FuncClass.DIV):
            a = self._operand_a(inst)
            b = self._operand_b(inst)
            self.steps += 1
            self._write(inst.rd, batch_compute_alu(inst.mnemonic, a, b))
            self._trace(inst.pc, "exec")
        elif fc is FuncClass.LOAD:
            addresses = self._read(inst.rs1) + _U64(inst.imm & MASK64)
            keep = self._lockstep_or_split(inst, "mem", addresses)
            if keep is not None:
                addresses = addresses[keep]
            address = int(addresses[0])
            self.steps += 1
            size, signed = inst.spec.mem
            values = self.mem.load_lockstep(address, size)
            if signed and size < 8:
                width = _U64(64 - 8 * size)
                values = (np.ascontiguousarray(values << width)
                          .view(np.int64) >> width.astype(np.int64)) \
                    .astype(np.uint64)
            self._write(inst.rd, values)
            self._trace(inst.pc, "load", address=address)
        elif fc is FuncClass.STORE:
            addresses = self._read(inst.rs1) + _U64(inst.imm & MASK64)
            keep = self._lockstep_or_split(inst, "mem", addresses)
            if keep is not None:
                addresses = addresses[keep]
            address = int(addresses[0])
            self.steps += 1
            size, _ = inst.spec.mem
            self.mem.store_lockstep(address, self._read(inst.rs2), size)
            self._trace(inst.pc, "store", address=address)
        elif fc is FuncClass.BRANCH:
            taken = batch_branch_taken(inst.mnemonic, self._read(inst.rs1),
                                       self._read(inst.rs2))
            keep = self._lockstep_or_split(inst, "branch", taken)
            if keep is not None:
                taken = taken[keep]
            outcome = bool(taken[0])
            self.steps += 1
            if outcome:
                next_pc = inst.branch_target()
            self._trace(inst.pc, "branch", address=next_pc, taken=outcome)
        elif fc is FuncClass.JUMP:
            if inst.mnemonic == "jal":
                self.steps += 1
                self._write_scalar(inst.rd, (inst.pc + 4) & MASK64)
                next_pc = inst.branch_target()
            else:  # jalr
                targets = (self._read(inst.rs1) + _U64(inst.imm & MASK64)) \
                    & _JALR_ALIGN
                keep = self._lockstep_or_split(inst, "jump", targets)
                if keep is not None:
                    targets = targets[keep]
                self.steps += 1
                self._write_scalar(inst.rd, (inst.pc + 4) & MASK64)
                next_pc = int(targets[0])
            self._trace(inst.pc, "branch", address=next_pc, taken=True)
        elif fc is FuncClass.MARKER:
            self.steps += 1
            if inst.mnemonic == "iter.begin":
                labels = {
                    self.lane_ids[i]: int(v)
                    for i, v in enumerate(self._read(inst.rs1))
                }
            else:
                labels = {lane: 0 for lane in self.lane_ids}
            self._markers.append((inst.mnemonic, labels, self.steps))
        elif fc is FuncClass.SYSTEM:
            if inst.mnemonic == "ecall":
                self._ecall(inst)
            elif inst.mnemonic == "ebreak":
                self.steps += 1
                self.halted = True
            else:  # fence: no-op
                self.steps += 1
        else:  # pragma: no cover - all classes handled above
            raise ExecutionError(f"unhandled class {fc}")
        self.pc = next_pc

    def run_until(self, target_steps: int) -> None:
        """Advance batch and split lanes until ``target_steps`` (or halt)."""
        while not self.halted and self.steps < target_steps:
            self.step()
        for interp in self.scalar_lanes.values():
            interp.run_until(target_steps)

    def run(self, max_steps: int = 10_000_000) -> BatchResult:
        """Run every lane to completion, returning per-lane results."""
        while not self.halted and self.steps < max_steps:
            self.step()
        if not self.halted:
            raise ExecutionError(
                f"program did not halt within {max_steps} steps")
        scalar_results = {
            lane: interp.run(max_steps)
            for lane, interp in self.scalar_lanes.items()
        }
        return BatchResult(
            lane_results=[
                scalar_results[lane] if lane in scalar_results
                else self._lane_result(lane)
                for lane in range(self.n_lanes)
            ],
            divergences=list(self.divergences),
            steps_lockstep=self.steps,
            n_lockstep_lanes=len(self.lane_ids),
        )

    def run_to_marker(self, mnemonic: str,
                      max_steps: int = 10_000_000) -> bool:
        """Advance the batch until ``pc`` sits *at* a marker instruction.

        Mirrors the checkpoint scout loop: returns True with the marker not
        yet executed, False when the batch halts (or exhausts ``max_steps``)
        first.  Split lanes are left at their split point — the caller
        decides how to continue them.
        """
        while not self.halted and self.steps < max_steps:
            inst = self.program.instruction_at(self.pc)
            if inst is not None and inst.mnemonic == mnemonic:
                return True
            self.step()
        return False

    # -- internals ------------------------------------------------------------

    def _read(self, num: int) -> np.ndarray:
        return self.regs[num]  # row 0 is never written, so x0 stays 0

    def _write(self, rd: int, values: np.ndarray) -> None:
        if rd != 0:
            self.regs[rd, :] = values

    def _write_scalar(self, rd: int, value: int) -> None:
        if rd != 0:
            self.regs[rd, :] = value

    def _operand_a(self, inst) -> np.ndarray:
        if inst.mnemonic == "lui":
            return np.zeros(len(self.lane_ids), dtype=np.uint64)
        if inst.mnemonic == "auipc":
            return np.full(len(self.lane_ids), inst.pc & MASK64,
                           dtype=np.uint64)
        return self._read(inst.rs1)

    def _operand_b(self, inst) -> np.ndarray:
        if inst.mnemonic in ("lui", "auipc") or inst.spec.fmt.name == "I":
            return np.full(len(self.lane_ids), inst.imm & MASK64,
                           dtype=np.uint64)
        return self._read(inst.rs2)

    def _trace(self, pc: int, kind: str, address: int = 0,
               taken: bool = False) -> None:
        if self.record_arch_trace:
            self._events.append(
                ArchEvent(pc, kind, address=address, taken=taken,
                          step=self.steps))

    def _lockstep_or_split(self, inst, kind: str,
                           values: np.ndarray) -> np.ndarray | None:
        """Split lanes disagreeing with lane 0; return the keep mask if so."""
        if len(self.lane_ids) > 1:
            keep = values == values[0]
            if not keep.all():
                self._split(inst, kind, keep)
                return keep
        return None

    def _split(self, inst, kind: str, keep: np.ndarray) -> None:
        gone = np.flatnonzero(~keep)
        self.divergences.append(DivergenceEvent(
            pc=inst.pc,
            step=self.steps + 1,
            kind=kind,
            mnemonic=inst.mnemonic,
            lanes=tuple(self.lane_ids[int(i)] for i in gone),
        ))
        for local in gone:
            self._materialize_scalar(int(local))
        keep_idx = np.flatnonzero(keep)
        self.regs = np.ascontiguousarray(self.regs[:, keep_idx])
        self.mem.compress(keep_idx)
        self.lane_ids = [self.lane_ids[int(i)] for i in keep_idx]
        self.programs = [self.programs[int(i)] for i in keep_idx]
        self.exit_codes = [self.exit_codes[int(i)] for i in keep_idx]
        if self.kernels is not None:
            self.kernels = [self.kernels[int(i)] for i in keep_idx]

    def _materialize_scalar(self, local: int) -> None:
        """Spawn a scalar interpreter continuing ``local``'s exact state."""
        lane = self.lane_ids[local]
        handler = (self.kernels[local].handle_ecall
                   if self.kernels is not None else None)
        interp = Interpreter(self.programs[local],
                             memory_map=self.memory_map,
                             record_arch_trace=self.record_arch_trace,
                             syscall_handler=handler,
                             track_dirty_pages=self.track_dirty_pages)
        interp.pc = self.pc
        interp.steps = self.steps
        regs = [int(v) for v in self.regs[:, local]]
        regs[0] = 0
        interp.regs = regs
        interp.memory.data[:] = self.mem.data[local].tobytes()
        if self.track_dirty_pages:
            interp.memory.dirty_pages = set(self.mem.dirty_pages)
        interp.exit_code = self.exit_codes[local]
        interp.markers = [
            MarkerEvent(mnemonic, labels.get(lane, 0), step)
            for mnemonic, labels, step in self._markers
        ]
        interp.arch_trace = list(self._events)
        self.scalar_lanes[lane] = interp

    def _ecall(self, inst) -> None:
        signatures = [self._syscall_signature(local)
                      for local in range(len(self.lane_ids))]
        if len(signatures) > 1 and any(s != signatures[0]
                                       for s in signatures):
            keep = np.array([s == signatures[0] for s in signatures])
            self._split(inst, "syscall", keep)
        self.steps += 1
        if self.kernels is not None:
            alive = True
            for local, kernel in enumerate(self.kernels):
                alive = kernel.handle_ecall(_LaneView(self, local)) and alive
            if not alive:
                self.halted = True
        else:
            syscall = int(self.regs[17, 0])  # a7, uniform by signature
            if syscall != 93:
                raise ExecutionError(f"unhandled syscall {syscall}")
            self.exit_codes = [to_signed(int(v)) for v in self.regs[10]]
            self.halted = True

    def _syscall_signature(self, local: int) -> tuple:
        view = _LaneView(self, local)
        if self.kernels is not None:
            kernel = self.kernels[local]
            signature = getattr(kernel, "lockstep_signature", None)
            if signature is not None:
                return signature(view)
        # Default convention: behaviour depends only on a7 (a0 is data).
        return (view.read_reg(17),)

    def _lane_result(self, lane: int) -> InterpreterResult:
        local = self._local(lane)
        return InterpreterResult(
            steps=self.steps,
            exit_code=self.exit_codes[local],
            markers=[
                MarkerEvent(mnemonic, labels.get(lane, 0), step)
                for mnemonic, labels, step in self._markers
            ],
            arch_trace=list(self._events),
        )


def run_batch(programs: list[Program], *, memory_map: MemoryMap | None = None,
              record_arch_trace: bool = False, kernels: list | None = None,
              track_dirty_pages: bool = False,
              max_steps: int = 10_000_000) -> BatchResult:
    """Assemble-and-go helper: run ``programs`` in lockstep to completion."""
    batch = BatchInterpreter(programs, memory_map=memory_map,
                             record_arch_trace=record_arch_trace,
                             kernels=kernels,
                             track_dirty_pages=track_dirty_pages)
    return batch.run(max_steps)
