"""RV64IM instruction-set substrate: model, assembler, encoder, interpreter."""

from repro.isa.assembler import Assembler, AssemblerError, Program, assemble
from repro.isa.batch_interpreter import (
    BatchInterpreter,
    BatchResult,
    DivergenceEvent,
    run_batch,
)
from repro.isa.disasm import format_instruction, format_program
from repro.isa.encoding import DecodingError, EncodingError, decode, encode
from repro.isa.instructions import (
    INSTRUCTION_SPECS,
    Format,
    FuncClass,
    Instruction,
    InstructionSpec,
)
from repro.isa.interpreter import (
    ArchEvent,
    ExecutionError,
    Interpreter,
    InterpreterResult,
    MarkerEvent,
    run_program,
)
from repro.isa.registers import ABI_NAMES, NUM_REGS, parse_register, register_name

__all__ = [
    "ABI_NAMES",
    "ArchEvent",
    "Assembler",
    "AssemblerError",
    "BatchInterpreter",
    "BatchResult",
    "DecodingError",
    "DivergenceEvent",
    "EncodingError",
    "ExecutionError",
    "Format",
    "FuncClass",
    "INSTRUCTION_SPECS",
    "Instruction",
    "InstructionSpec",
    "Interpreter",
    "InterpreterResult",
    "MarkerEvent",
    "NUM_REGS",
    "Program",
    "assemble",
    "decode",
    "encode",
    "format_instruction",
    "format_program",
    "parse_register",
    "register_name",
    "run_batch",
    "run_program",
]
