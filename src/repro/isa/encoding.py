"""Binary encoding and decoding for the RV64IM subset.

Implements the standard RISC-V 32-bit instruction encodings (R/I/S/B/U/J
formats) for every mnemonic in :mod:`repro.isa.instructions`, plus the
project's ROI/iteration marker instructions in the *custom-0* opcode space
(major opcode ``0x0B``), which real RISC-V reserves for vendor extensions.

Round-tripping ``decode(encode(i))`` reproduces the instruction exactly
(modulo the non-architectural ``pc``/``origin`` annotations); this property is
exercised by hypothesis tests.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction

_OPCODE_OP_IMM = 0x13
_OPCODE_OP_IMM_32 = 0x1B
_OPCODE_OP = 0x33
_OPCODE_OP_32 = 0x3B
_OPCODE_LOAD = 0x03
_OPCODE_STORE = 0x23
_OPCODE_BRANCH = 0x63
_OPCODE_JAL = 0x6F
_OPCODE_JALR = 0x67
_OPCODE_LUI = 0x37
_OPCODE_AUIPC = 0x17
_OPCODE_SYSTEM = 0x73
_OPCODE_FENCE = 0x0F
_OPCODE_CUSTOM0 = 0x0B

# mnemonic -> (opcode, funct3, funct7) ; funct7 is None where unused.
_R_TYPE = {
    "add": (_OPCODE_OP, 0, 0x00),
    "sub": (_OPCODE_OP, 0, 0x20),
    "sll": (_OPCODE_OP, 1, 0x00),
    "slt": (_OPCODE_OP, 2, 0x00),
    "sltu": (_OPCODE_OP, 3, 0x00),
    "xor": (_OPCODE_OP, 4, 0x00),
    "srl": (_OPCODE_OP, 5, 0x00),
    "sra": (_OPCODE_OP, 5, 0x20),
    "or": (_OPCODE_OP, 6, 0x00),
    "and": (_OPCODE_OP, 7, 0x00),
    "mul": (_OPCODE_OP, 0, 0x01),
    "mulh": (_OPCODE_OP, 1, 0x01),
    "mulhsu": (_OPCODE_OP, 2, 0x01),
    "mulhu": (_OPCODE_OP, 3, 0x01),
    "div": (_OPCODE_OP, 4, 0x01),
    "divu": (_OPCODE_OP, 5, 0x01),
    "rem": (_OPCODE_OP, 6, 0x01),
    "remu": (_OPCODE_OP, 7, 0x01),
    "addw": (_OPCODE_OP_32, 0, 0x00),
    "subw": (_OPCODE_OP_32, 0, 0x20),
    "sllw": (_OPCODE_OP_32, 1, 0x00),
    "srlw": (_OPCODE_OP_32, 5, 0x00),
    "sraw": (_OPCODE_OP_32, 5, 0x20),
    "mulw": (_OPCODE_OP_32, 0, 0x01),
    "divw": (_OPCODE_OP_32, 4, 0x01),
    "divuw": (_OPCODE_OP_32, 5, 0x01),
    "remw": (_OPCODE_OP_32, 6, 0x01),
    "remuw": (_OPCODE_OP_32, 7, 0x01),
}

_I_ALU = {
    "addi": (_OPCODE_OP_IMM, 0),
    "slti": (_OPCODE_OP_IMM, 2),
    "sltiu": (_OPCODE_OP_IMM, 3),
    "xori": (_OPCODE_OP_IMM, 4),
    "ori": (_OPCODE_OP_IMM, 6),
    "andi": (_OPCODE_OP_IMM, 7),
    "addiw": (_OPCODE_OP_IMM_32, 0),
}

# Shift-immediates carry the shift amount in imm[5:0] and a funct6/funct7
# discriminator in the upper immediate bits.
_I_SHIFT = {
    "slli": (_OPCODE_OP_IMM, 1, 0x00, 6),
    "srli": (_OPCODE_OP_IMM, 5, 0x00, 6),
    "srai": (_OPCODE_OP_IMM, 5, 0x10, 6),
    "slliw": (_OPCODE_OP_IMM_32, 1, 0x00, 5),
    "srliw": (_OPCODE_OP_IMM_32, 5, 0x00, 5),
    "sraiw": (_OPCODE_OP_IMM_32, 5, 0x20, 5),
}

_LOADS = {
    "lb": 0, "lh": 1, "lw": 2, "ld": 3, "lbu": 4, "lhu": 5, "lwu": 6,
}
_STORES = {"sb": 0, "sh": 1, "sw": 2, "sd": 3}
_BRANCHES = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}

#: Marker instructions: custom-0 opcode, discriminated by the I-immediate.
_MARKERS = {"roi.begin": 0, "roi.end": 1, "iter.begin": 2, "iter.end": 3}
_MARKERS_BY_IMM = {v: k for k, v in _MARKERS.items()}


class EncodingError(ValueError):
    """Raised for immediates/operands that do not fit their encoding."""


def _check_imm(value: int, bits: int, signed: bool, what: str) -> None:
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    if not lo <= value <= hi:
        raise EncodingError(f"{what} immediate {value} does not fit {bits} bits")


def _encode_i(opcode: int, funct3: int, rd: int, rs1: int, imm: int) -> int:
    _check_imm(imm, 12, True, "I-type")
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def _encode_r(opcode, funct3, funct7, rd, rs1, rs2):
    return (
        (funct7 << 25) | (rs2 << 20) | (rs1 << 15)
        | (funct3 << 12) | (rd << 7) | opcode
    )


def _encode_s(opcode, funct3, rs1, rs2, imm):
    _check_imm(imm, 12, True, "S-type")
    imm &= 0xFFF
    return (
        ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15)
        | (funct3 << 12) | ((imm & 0x1F) << 7) | opcode
    )


def _encode_b(opcode, funct3, rs1, rs2, imm):
    if imm % 2:
        raise EncodingError(f"branch offset {imm} is not 2-byte aligned")
    _check_imm(imm, 13, True, "B-type")
    imm &= 0x1FFF
    return (
        ((imm >> 12) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 0x1) << 7)
        | opcode
    )


def _encode_u(opcode, rd, imm):
    _check_imm(imm, 32, True, "U-type")
    return ((imm & 0xFFFFF000)) | (rd << 7) | opcode


def _encode_j(opcode, rd, imm):
    if imm % 2:
        raise EncodingError(f"jump offset {imm} is not 2-byte aligned")
    _check_imm(imm, 21, True, "J-type")
    imm &= 0x1FFFFF
    return (
        ((imm >> 20) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 0x1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
        | (rd << 7)
        | opcode
    )


def encode(inst: Instruction) -> int:
    """Encode ``inst`` to its 32-bit machine word."""
    m = inst.mnemonic
    if m in _R_TYPE:
        opcode, f3, f7 = _R_TYPE[m]
        return _encode_r(opcode, f3, f7, inst.rd, inst.rs1, inst.rs2)
    if m in _I_ALU:
        opcode, f3 = _I_ALU[m]
        return _encode_i(opcode, f3, inst.rd, inst.rs1, inst.imm)
    if m in _I_SHIFT:
        opcode, f3, fhi, shbits = _I_SHIFT[m]
        _check_imm(inst.imm, shbits, False, "shift")
        # RV64 shifts carry a funct6 above a 6-bit shamt; the *W forms carry
        # a funct7 above a 5-bit shamt.
        imm = (fhi << shbits) | inst.imm
        return ((imm & 0xFFF) << 20) | (inst.rs1 << 15) | (f3 << 12) | (inst.rd << 7) | opcode
    if m in _LOADS:
        return _encode_i(_OPCODE_LOAD, _LOADS[m], inst.rd, inst.rs1, inst.imm)
    if m == "jalr":
        return _encode_i(_OPCODE_JALR, 0, inst.rd, inst.rs1, inst.imm)
    if m in _STORES:
        return _encode_s(_OPCODE_STORE, _STORES[m], inst.rs1, inst.rs2, inst.imm)
    if m in _BRANCHES:
        return _encode_b(_OPCODE_BRANCH, _BRANCHES[m], inst.rs1, inst.rs2, inst.imm)
    if m == "lui":
        return _encode_u(_OPCODE_LUI, inst.rd, inst.imm)
    if m == "auipc":
        return _encode_u(_OPCODE_AUIPC, inst.rd, inst.imm)
    if m == "jal":
        return _encode_j(_OPCODE_JAL, inst.rd, inst.imm)
    if m == "ecall":
        return _encode_i(_OPCODE_SYSTEM, 0, 0, 0, 0)
    if m == "ebreak":
        return _encode_i(_OPCODE_SYSTEM, 0, 0, 0, 1)
    if m == "fence":
        return _encode_i(_OPCODE_FENCE, 0, 0, 0, 0)
    if m in _MARKERS:
        rs1 = inst.rs1 if m == "iter.begin" else 0
        return _encode_i(_OPCODE_CUSTOM0, 0, 0, rs1, _MARKERS[m])
    raise EncodingError(f"no encoding for mnemonic {m!r}")


def _sext(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


class DecodingError(ValueError):
    """Raised for machine words that are not valid instructions."""


def decode(word: int, pc: int = 0) -> Instruction:
    """Decode a 32-bit machine word into an :class:`Instruction`."""
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F
    imm_i = _sext(word >> 20, 12)

    if opcode in (_OPCODE_OP, _OPCODE_OP_32):
        for m, (op, f3, f7) in _R_TYPE.items():
            if op == opcode and f3 == funct3 and f7 == funct7:
                return Instruction(m, rd=rd, rs1=rs1, rs2=rs2, pc=pc)
        raise DecodingError(f"unknown R-type word {word:#010x}")
    if opcode in (_OPCODE_OP_IMM, _OPCODE_OP_IMM_32):
        for m, (op, f3) in _I_ALU.items():
            if op == opcode and f3 == funct3:
                return Instruction(m, rd=rd, rs1=rs1, imm=imm_i, pc=pc)
        for m, (op, f3, fhi, shbits) in _I_SHIFT.items():
            raw = (word >> 20) & 0xFFF
            if op == opcode and f3 == funct3 and (raw >> shbits) == fhi:
                return Instruction(m, rd=rd, rs1=rs1, imm=raw & ((1 << shbits) - 1), pc=pc)
        raise DecodingError(f"unknown OP-IMM word {word:#010x}")
    if opcode == _OPCODE_LOAD:
        for m, f3 in _LOADS.items():
            if f3 == funct3:
                return Instruction(m, rd=rd, rs1=rs1, imm=imm_i, pc=pc)
        raise DecodingError(f"unknown load word {word:#010x}")
    if opcode == _OPCODE_STORE:
        imm = _sext(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
        for m, f3 in _STORES.items():
            if f3 == funct3:
                return Instruction(m, rs1=rs1, rs2=rs2, imm=imm, pc=pc)
        raise DecodingError(f"unknown store word {word:#010x}")
    if opcode == _OPCODE_BRANCH:
        imm = _sext(
            ((word >> 31) << 12)
            | (((word >> 7) & 0x1) << 11)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1),
            13,
        )
        for m, f3 in _BRANCHES.items():
            if f3 == funct3:
                return Instruction(m, rs1=rs1, rs2=rs2, imm=imm, pc=pc)
        raise DecodingError(f"unknown branch word {word:#010x}")
    if opcode == _OPCODE_JAL:
        imm = _sext(
            ((word >> 31) << 20)
            | (((word >> 12) & 0xFF) << 12)
            | (((word >> 20) & 0x1) << 11)
            | (((word >> 21) & 0x3FF) << 1),
            21,
        )
        return Instruction("jal", rd=rd, imm=imm, pc=pc)
    if opcode == _OPCODE_JALR:
        return Instruction("jalr", rd=rd, rs1=rs1, imm=imm_i, pc=pc)
    if opcode == _OPCODE_LUI:
        return Instruction("lui", rd=rd, imm=_sext(word & 0xFFFFF000, 32), pc=pc)
    if opcode == _OPCODE_AUIPC:
        return Instruction("auipc", rd=rd, imm=_sext(word & 0xFFFFF000, 32), pc=pc)
    if opcode == _OPCODE_SYSTEM:
        if imm_i == 0:
            return Instruction("ecall", pc=pc)
        if imm_i == 1:
            return Instruction("ebreak", pc=pc)
        raise DecodingError(f"unknown SYSTEM word {word:#010x}")
    if opcode == _OPCODE_FENCE:
        return Instruction("fence", pc=pc)
    if opcode == _OPCODE_CUSTOM0:
        m = _MARKERS_BY_IMM.get(imm_i)
        if m is None:
            raise DecodingError(f"unknown custom-0 word {word:#010x}")
        return Instruction(m, rs1=rs1 if m == "iter.begin" else 0, pc=pc)
    raise DecodingError(f"unknown opcode {opcode:#04x} in word {word:#010x}")
