"""Lockstep co-simulation checker: out-of-order core vs golden model.

Runs the out-of-order core and the in-order interpreter side by side,
comparing *every committed instruction* — its PC and destination-register
value — the moment it retires.  Any microarchitectural bug (bad forwarding,
broken squash, rename corruption) is reported at the exact instruction where
architectural state first diverges, instead of as a wrong final result.

This is the debugging methodology hardware teams use against their golden
models; the test suite applies it to random programs and every workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.assembler import Program
from repro.isa.disasm import format_instruction
from repro.isa.interpreter import Interpreter
from repro.kernel.proxy_kernel import ProxyKernel
from repro.uarch.config import CoreConfig, MEGA_BOOM
from repro.uarch.core import Core


class LockstepMismatch(AssertionError):
    """Raised when the core's commit stream diverges from the golden model."""


@dataclass
class LockstepResult:
    """Summary of a successful lockstep run."""

    instructions_checked: int
    cycles: int
    exit_code: int


class _GoldenStream:
    """Replays the interpreter one instruction at a time for comparison."""

    def __init__(self, program: Program):
        kernel = ProxyKernel()
        self.interpreter = Interpreter(
            program, syscall_handler=lambda i: kernel.handle_ecall(i)
        )
        self.kernel = kernel

    def next_commit(self):
        """Execute one instruction; returns (pc, rd, rd_value) or None."""
        interp = self.interpreter
        if interp.halted:
            return None
        inst = interp.program.instruction_at(interp.pc)
        pc = interp.pc
        rd = inst.rd if inst.writes_rd else 0
        interp.step()
        value = interp.read_reg(rd) if rd else 0
        return pc, rd, value


def run_lockstep(program: Program, config: CoreConfig = MEGA_BOOM, *,
                 max_cycles: int = 2_000_000) -> LockstepResult:
    """Run ``program`` on both simulators, comparing each commit.

    Raises :class:`LockstepMismatch` at the first divergence.
    """
    golden = _GoldenStream(program)
    core = Core(program, config)
    checked = 0

    def on_commit(pc, mnemonic, rd, value, cycle):
        nonlocal checked
        expected = golden.next_commit()
        if expected is None:
            raise LockstepMismatch(
                f"core committed {mnemonic} at {pc:#x} (cycle {cycle}) after "
                f"the golden model already halted"
            )
        exp_pc, exp_rd, exp_value = expected
        if pc != exp_pc:
            raise LockstepMismatch(
                f"commit #{checked}: core committed pc {pc:#x} but golden "
                f"model executed {exp_pc:#x} "
                f"({format_instruction(program.instruction_at(exp_pc))})"
            )
        if rd != exp_rd or (rd and value != exp_value):
            raise LockstepMismatch(
                f"commit #{checked} at {pc:#x} ({mnemonic}): core wrote "
                f"x{rd}={value:#x} but golden model wrote "
                f"x{exp_rd}={exp_value:#x}"
            )
        checked += 1

    core.commit_listener = on_commit
    result = core.run(max_cycles=max_cycles)
    if golden.next_commit() is not None:
        raise LockstepMismatch(
            "golden model has instructions left after the core halted"
        )
    if result.exit_code != golden.kernel.exit_code:
        raise LockstepMismatch(
            f"exit codes differ: core {result.exit_code}, "
            f"golden {golden.kernel.exit_code}"
        )
    if bytes(core.memory.data) != bytes(golden.interpreter.memory.data):
        raise LockstepMismatch("final memory images differ")
    return LockstepResult(
        instructions_checked=checked,
        cycles=result.stats.cycles,
        exit_code=result.exit_code,
    )
