"""Memory-system timing models: caches, MSHRs, line-fill buffer, TLB and the
next-line prefetcher.

These structures model *timing and occupancy* only; architectural data always
lives in the flat backing memory (plus the store queue for in-flight stores).
This separation keeps functional correctness independent of the timing model
while still exposing every microarchitectural side effect MicroSampler
samples: request addresses, MSHR contents, LFB contents, TLB residency and
prefetcher activity.

Every structure the tracer samples carries a monotonically increasing
version counter bumped on each mutation of its *sampled* state (see
``docs/performance.md``).  The change-detection tracer compares versions
cycle to cycle and skips resampling unchanged units, so the counters must be
bumped on every mutation that can alter a sampled row — over-bumping merely
costs a resample, under-bumping silently corrupts snapshots.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.uarch.config import CacheConfig


@dataclass(slots=True)
class CacheStats:
    hits: int = 0
    misses: int = 0
    prefetch_fills: int = 0
    evictions: int = 0


class SetAssocCache:
    """A set-associative cache with LRU replacement (tags only)."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.line_shift = config.line_bytes.bit_length() - 1
        #: Per-set list of line addresses, most-recently-used last.
        self.sets: list[list[int]] = [[] for _ in range(config.sets)]
        self.stats = CacheStats()

    def line_address(self, address: int) -> int:
        return address >> self.line_shift

    def _set_for(self, line_addr: int) -> list[int]:
        return self.sets[line_addr % self.config.sets]

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._set_for(line_addr)

    def lookup(self, line_addr: int) -> bool:
        """Probe for ``line_addr``; updates LRU and hit/miss statistics."""
        cache_set = self.sets[line_addr % self.config.sets]
        if cache_set and cache_set[-1] == line_addr:
            # Already most-recently-used: skip the remove/append shuffle.
            self.stats.hits += 1
            return True
        if line_addr in cache_set:
            cache_set.remove(line_addr)
            cache_set.append(line_addr)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def install(self, line_addr: int) -> int | None:
        """Insert ``line_addr``; returns the evicted line address, if any."""
        cache_set = self._set_for(line_addr)
        if line_addr in cache_set:
            cache_set.remove(line_addr)
            cache_set.append(line_addr)
            return None
        victim = None
        if len(cache_set) >= self.config.ways:
            victim = cache_set.pop(0)
            self.stats.evictions += 1
        cache_set.append(line_addr)
        return victim

    def flush_line(self, address: int) -> bool:
        """Remove the line containing ``address`` (a clflush analog)."""
        line_addr = self.line_address(address)
        cache_set = self._set_for(line_addr)
        if line_addr in cache_set:
            cache_set.remove(line_addr)
            return True
        return False

    def resident_lines(self) -> list[int]:
        return [line for cache_set in self.sets for line in cache_set]

    def reset(self) -> None:
        """Return to the power-on state: no resident lines, zero stats."""
        for cache_set in self.sets:
            cache_set.clear()
        self.stats = CacheStats()


@dataclass(slots=True)
class Mshr:
    """One miss-status holding register: an in-flight miss.

    ``fills`` distinguishes line fills (load/prefetch misses, which install
    the line via the LFB) from posted store-miss writes (the L1 is
    write-through, no-write-allocate: a store miss goes to memory without
    allocating the line).
    """

    line_addr: int
    ready_cycle: int
    is_prefetch: bool = False
    fills: bool = True


@dataclass(slots=True)
class LfbEntry:
    """One line-fill-buffer entry: fill data en route to the cache.

    ``data_digest`` is a CRC of the filling line's bytes.  Under lane
    batching (:class:`repro.uarch.batch_core.BatchCore`) lane memories can
    legitimately hold different bytes at the same (settled) address, so the
    batched core's ``_line_digest`` may yield a per-lane *tuple* here — the
    only tracer-visible value that is ever laned; the tracer projects it
    back to per-lane scalar digests when records are finalized.
    """

    line_addr: int
    ready_cycle: int
    data_digest: int = 0
    is_prefetch: bool = False


class LineFillBuffer:
    """Holds lines being filled before they are written into the data array."""

    def __init__(self, entries: int):
        self.capacity = entries
        self.entries: list[LfbEntry] = []
        #: bumped on every change to ``entries`` (LFB-ADDR / LFB-Data rows).
        self.version = 0

    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def add(self, entry: LfbEntry) -> None:
        self.entries.append(entry)
        self.version += 1

    def pop_ready(self, cycle: int) -> list[LfbEntry]:
        ready = [e for e in self.entries if e.ready_cycle <= cycle]
        if ready:
            self.entries = [e for e in self.entries if e.ready_cycle > cycle]
            self.version += 1
        return ready

    def reset(self) -> None:
        if self.entries:
            self.entries = []
        self.version += 1


class Tlb:
    """A fully-associative LRU TLB with identity translation.

    Translation is identity (the proxy-kernel maps memory flat), but TLB
    *residency* and miss latency are modeled, which is what the TLB-ADDR
    feature and TLBleed-style effects depend on.
    """

    def __init__(self, entries: int, page_size: int, miss_latency: int):
        self.capacity = entries
        self.page_size = page_size
        self.miss_latency = miss_latency
        self.pages: deque[int] = deque()  # most-recently-used last
        self.hits = 0
        self.misses = 0
        #: bumped whenever residency or MRU order changes (TLB-ADDR rows).
        self.version = 0

    def translate(self, address: int) -> int:
        """Return the extra latency for translating ``address`` (0 on hit)."""
        page = address // self.page_size
        pages = self.pages
        if pages and pages[-1] == page:
            # Already most-recently-used: residency and order are unchanged.
            self.hits += 1
            return 0
        if page in pages:
            pages.remove(page)
            pages.append(page)
            self.hits += 1
            self.version += 1
            return 0
        self.misses += 1
        if len(pages) >= self.capacity:
            pages.popleft()
        pages.append(page)
        self.version += 1
        return self.miss_latency

    def resident_pages(self) -> tuple[int, ...]:
        return tuple(self.pages)

    def reset(self) -> None:
        self.pages.clear()
        self.hits = 0
        self.misses = 0
        self.version += 1


class NextLinePrefetcher:
    """Issues a prefetch for line N+1 on a demand miss to line N."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.last_prefetch_line: int = 0
        self.issued = 0
        #: bumped whenever ``last_prefetch_line`` is rewritten (NLP-ADDR).
        self.version = 0

    def on_demand_miss(self, line_addr: int) -> int | None:
        """Return the line to prefetch (or None)."""
        if not self.enabled:
            return None
        self.last_prefetch_line = line_addr + 1
        self.issued += 1
        self.version += 1
        return line_addr + 1

    def reset(self) -> None:
        self.last_prefetch_line = 0
        self.issued = 0
        self.version += 1


@dataclass(slots=True)
class AccessResult:
    """Outcome of a cache port request."""

    accepted: bool
    complete_cycle: int = 0
    hit: bool = False


class DataCachePort:
    """Timing model for the L1 data cache, MSHRs, LFB, TLB and prefetcher.

    ``request`` is called by the load/store unit; ``tick`` advances fills.
    The port tracks the request address presented this cycle so the tracer
    can sample it (the Cache-ADDR feature of Table IV).
    """

    def __init__(self, cache_config: CacheConfig, *, tlb_entries: int,
                 page_size: int, tlb_miss_latency: int, memory_latency: int,
                 lfb_entries: int, prefetcher_enabled: bool,
                 memory_digest=None, l2_config: CacheConfig | None = None,
                 l2_latency: int = 12):
        self.cache = SetAssocCache(cache_config)
        #: Optional second-level cache: L1 misses that hit here fill with
        #: ``l2_latency`` instead of the full memory latency; memory fills
        #: install into both levels.
        self.l2 = SetAssocCache(l2_config) if l2_config is not None else None
        self.l2_latency = l2_latency
        self.mshrs: list[Mshr] = []
        self.mshr_capacity = cache_config.mshrs
        self.lfb = LineFillBuffer(lfb_entries)
        self.tlb = Tlb(tlb_entries, page_size, tlb_miss_latency)
        self.prefetcher = NextLinePrefetcher(prefetcher_enabled)
        self.memory_latency = memory_latency
        self.hit_latency = cache_config.hit_latency
        #: addresses requested this cycle (cleared by begin_cycle).
        self.requests_this_cycle: list[int] = []
        #: bumped whenever ``requests_this_cycle`` changes (Cache-ADDR rows).
        self.request_version = 0
        #: bumped whenever the MSHR list changes (MSHR-ADDR rows).
        self.mshr_version = 0
        #: callable line_addr -> small digest of line data, for LFB-Data.
        self.memory_digest = memory_digest or (lambda line_addr: 0)

    # -- per-cycle maintenance ------------------------------------------------

    def begin_cycle(self) -> None:
        if self.requests_this_cycle:
            self.requests_this_cycle.clear()
            self.request_version += 1

    def tick(self, cycle: int) -> None:
        """Complete memory fills: MSHR -> LFB -> cache data array."""
        mshrs = self.mshrs
        lfb = self.lfb
        if not mshrs and not lfb.entries:
            return
        for entry in lfb.pop_ready(cycle):
            self.cache.install(entry.line_addr)
            if self.l2 is not None:
                self.l2.install(entry.line_addr)
            if entry.is_prefetch:
                self.cache.stats.prefetch_fills += 1
        remaining = []
        for mshr in mshrs:
            if mshr.ready_cycle <= cycle:
                if not mshr.fills:
                    continue  # posted store write: done, nothing to install
                if not lfb.full():
                    lfb.add(
                        LfbEntry(
                            line_addr=mshr.line_addr,
                            ready_cycle=cycle + 1,
                            data_digest=self.memory_digest(mshr.line_addr),
                            is_prefetch=mshr.is_prefetch,
                        )
                    )
                    continue
            remaining.append(mshr)
        if len(remaining) != len(mshrs):
            self.mshr_version += 1
        self.mshrs = remaining

    # -- requests -------------------------------------------------------------

    def _pending(self, line_addr: int, *, fills_only: bool = False) -> Mshr | None:
        for mshr in self.mshrs:
            if mshr.line_addr == line_addr and (mshr.fills or not fills_only):
                return mshr
        return None

    def _lfb_pending(self, line_addr: int) -> LfbEntry | None:
        for entry in self.lfb.entries:
            if entry.line_addr == line_addr:
                return entry
        return None

    def probe(self, address: int) -> bool:
        """Side-effect-free residency check (a Flush+Flush-style timing
        measurement: the attacker learns hit/miss without refilling).

        Does not touch LRU state, statistics, MSHRs or the prefetcher.
        """
        return self.cache.contains(self.cache.line_address(address))

    def request(self, address: int, cycle: int, *, is_store: bool = False) -> AccessResult:
        """Present a demand request; returns acceptance and completion time.

        Loads allocate on miss (fill through MSHR -> LFB -> data array).
        Stores are write-through, no-write-allocate: a store hit completes in
        one cycle; a store miss becomes a posted write occupying an MSHR for
        the full memory latency, and the store-queue drain blocks on it.
        """
        self.requests_this_cycle.append(address)
        self.request_version += 1
        extra = self.tlb.translate(address)
        line_addr = self.cache.line_address(address)
        if self.cache.lookup(line_addr):
            if is_store:
                return AccessResult(True, cycle + 1 + extra, hit=True)
            return AccessResult(True, cycle + self.hit_latency + extra, hit=True)
        if is_store:
            mshr = self._pending(line_addr)
            if mshr is not None:
                return AccessResult(
                    True, mshr.ready_cycle + 1 + extra, hit=False
                )
            if len(self.mshrs) >= self.mshr_capacity:
                return AccessResult(False)
            ready = cycle + self._fill_latency(line_addr)
            self.mshrs.append(Mshr(line_addr, ready, fills=False))
            self.mshr_version += 1
            self._maybe_prefetch(line_addr, cycle)
            return AccessResult(True, ready + extra, hit=False)
        lfb_entry = self._lfb_pending(line_addr)
        if lfb_entry is not None:
            done = max(lfb_entry.ready_cycle, cycle) + self.hit_latency + extra
            return AccessResult(True, done, hit=False)
        mshr = self._pending(line_addr, fills_only=True)
        if mshr is not None:
            mshr.is_prefetch = False  # demand hit under a prefetch
            done = mshr.ready_cycle + 1 + self.hit_latency + extra
            return AccessResult(True, done, hit=False)
        if len(self.mshrs) >= self.mshr_capacity:
            return AccessResult(False)  # retry next cycle
        ready = cycle + self._fill_latency(line_addr)
        self.mshrs.append(Mshr(line_addr, ready))
        self.mshr_version += 1
        self._maybe_prefetch(line_addr, cycle)
        return AccessResult(True, ready + 1 + self.hit_latency + extra, hit=False)

    def _fill_latency(self, line_addr: int) -> int:
        """Latency to bring a line in: L2 hit or full memory round trip."""
        if self.l2 is not None and self.l2.lookup(line_addr):
            return self.l2_latency
        return self.memory_latency

    def _maybe_prefetch(self, miss_line: int, cycle: int) -> None:
        target = self.prefetcher.on_demand_miss(miss_line)
        if target is None:
            return
        if (self.cache.contains(target) or self._pending(target)
                or self._lfb_pending(target)):
            return
        if len(self.mshrs) >= self.mshr_capacity:
            return
        self.mshrs.append(Mshr(target, cycle + self.memory_latency,
                               is_prefetch=True))
        self.mshr_version += 1

    # -- state exposure for the tracer ---------------------------------------

    def mshr_addresses(self) -> tuple[int, ...]:
        return tuple(m.line_addr for m in self.mshrs)

    def lfb_addresses(self) -> tuple[int, ...]:
        return tuple(e.line_addr for e in self.lfb.entries)

    def lfb_data(self) -> tuple[int, ...]:
        return tuple(e.data_digest for e in self.lfb.entries)

    def warm_line(self, address: int) -> None:
        """Install the line containing ``address`` (models a prior access)."""
        self.cache.install(self.cache.line_address(address))

    def reset(self) -> None:
        """Reset-from-checkpoint path: cold caches, no in-flight requests.

        Architectural data lives in the backing memory, so dropping every
        timing structure is safe; version counters are bumped (never zeroed)
        so the change-detection tracer resamples the emptied rows.
        """
        self.cache.reset()
        if self.l2 is not None:
            self.l2.reset()
        if self.mshrs:
            self.mshrs = []
        self.mshr_version += 1
        self.lfb.reset()
        self.tlb.reset()
        self.prefetcher.reset()
        if self.requests_this_cycle:
            self.requests_this_cycle.clear()
        self.request_version += 1


class InstructionCachePort:
    """Timing model for the L1 instruction cache (no TLB modeling)."""

    def __init__(self, cache_config: CacheConfig, memory_latency: int):
        self.cache = SetAssocCache(cache_config)
        self.memory_latency = memory_latency
        self.hit_latency = 1
        #: line_addr -> ready cycle for in-flight fills.
        self.pending: dict[int, int] = {}
        self.mshr_capacity = cache_config.mshrs

    def fetch_ready(self, address: int, cycle: int) -> int | None:
        """Probe for a fetch at ``address``.

        Returns the cycle at which the fetch data is available, or None if
        the line missed and a fill was (or already is) in flight.
        """
        line_addr = self.cache.line_address(address)
        if self.cache.lookup(line_addr):
            return cycle
        if line_addr in self.pending:
            return None
        if len(self.pending) >= self.mshr_capacity:
            return None
        self.pending[line_addr] = cycle + self.memory_latency
        return None

    def tick(self, cycle: int) -> None:
        arrived = [line for line, ready in self.pending.items() if ready <= cycle]
        for line in arrived:
            del self.pending[line]
            self.cache.install(line)

    def flush_line(self, address: int) -> bool:
        return self.cache.flush_line(address)

    def reset(self) -> None:
        """Reset-from-checkpoint path: cold cache, no in-flight fills."""
        self.cache.reset()
        self.pending.clear()
