"""Execution-unit pipeline models (ALU, multiplier, divider, AGU).

Each unit tracks its in-flight operations so the tracer can sample
"busy with PC" state per cycle (the EUU-* features of Table IV).

Under lane-batched core simulation (:mod:`repro.uarch.batch_core`) the
units themselves stay scalar — occupancy, latency and scheduling are
timing state shared by every lane — while operand *values* may be numpy
``(n_lanes,)`` uint64 arrays.  :func:`settle_lanes` is the canonical
collapse point: any per-lane value that feeds timing must settle back to
one python int, and a value that cannot settle is a cross-lane
divergence.
"""

from __future__ import annotations

import numpy as np

from repro.isa.semantics import MASK64, to_signed


def settle_lanes(values):
    """Collapse a per-lane value array to a scalar when lanes agree.

    Returns a plain masked int when every lane holds the same value
    (the overwhelmingly common case for constant-time code), otherwise
    the array itself — the caller decides whether a laned value is
    acceptable (register data) or a divergence (addresses, latencies).
    """
    first = values[0]
    if bool((values == first).all()):
        return int(first)
    return values


def _fresh_versions(kind: str) -> dict[str, int]:
    """Version map for a standalone unit (the pool shares one across units).

    ``"active"`` counts in-flight operations across all units sharing the
    map (the core's fully-idle short circuit); the per-kind entries are
    monotonic state versions for the change-detection tracer (EUU-* rows).
    """
    return {"active": 0, kind: 0}


class ExecUnit:
    """One functional unit.

    Pipelined units accept a new operation every cycle; unpipelined units
    (the divider) are busy until their current operation completes.
    """

    __slots__ = ("kind", "index", "pipelined", "in_flight", "versions")

    def __init__(self, kind: str, index: int, *, pipelined: bool,
                 versions: dict[str, int] | None = None):
        self.kind = kind
        self.index = index
        self.pipelined = pipelined
        #: list of (complete_cycle, uop) currently in the unit.
        self.in_flight: list[tuple[int, object]] = []
        self.versions = versions if versions is not None else _fresh_versions(kind)

    def can_accept(self, cycle: int) -> bool:
        if self.pipelined:
            return True
        return not self.in_flight

    def start(self, uop, cycle: int, latency: int) -> int:
        """Begin executing ``uop``; returns its completion cycle."""
        complete = cycle + latency
        self.in_flight.append((complete, uop))
        versions = self.versions
        versions[self.kind] += 1
        versions["active"] += 1
        return complete

    def retire_finished(self, cycle: int) -> list[object]:
        """Remove and return uops whose results complete at ``cycle``."""
        in_flight = self.in_flight
        if not in_flight:
            return []
        done = [uop for (complete, uop) in in_flight if complete <= cycle]
        if done:
            self.in_flight = [(c, u) for (c, u) in in_flight if c > cycle]
            versions = self.versions
            versions[self.kind] += 1
            versions["active"] -= len(done)
        return done

    def squash(self, is_squashed) -> None:
        """Drop in-flight operations for which ``is_squashed(uop)`` holds."""
        in_flight = self.in_flight
        if not in_flight:
            return
        kept = [(c, u) for (c, u) in in_flight if not is_squashed(u)]
        if len(kept) != len(in_flight):
            versions = self.versions
            versions[self.kind] += 1
            versions["active"] -= len(in_flight) - len(kept)
            self.in_flight = kept

    def busy_pcs(self) -> tuple[int, ...]:
        """PCs of the operations currently occupying this unit."""
        return tuple(uop.pc for (_, uop) in self.in_flight)

    @property
    def busy(self) -> bool:
        return bool(self.in_flight)


def divider_latency(a: int, b: int, base_latency: int) -> int:
    """Operand-dependent latency of an early-exit iterative divider.

    Models an SRT-style divider that terminates early for small quotients:
    latency grows with the magnitude of the dividend relative to the divisor.
    Only used when ``CoreConfig.variable_div_latency`` is set.
    """
    magnitude_a = abs(to_signed(a & MASK64))
    magnitude_b = abs(to_signed(b & MASK64)) or 1
    quotient_bits = max(magnitude_a.bit_length() - magnitude_b.bit_length(), 0)
    return 3 + (quotient_bits + 1) // 2


def batch_divider_latency(a_lanes, b_lanes, base_latency: int) -> tuple[int, ...]:
    """Per-lane :func:`divider_latency` over ``(n_lanes,)`` operand arrays.

    The divider is unpipelined and its occupancy is timing state, so a
    lane-batched core can only proceed when every lane's latency agrees;
    the batch core raises a ``div-latency`` divergence otherwise.
    """
    return tuple(
        divider_latency(int(a), int(b), base_latency)
        for a, b in zip(np.asarray(a_lanes), np.asarray(b_lanes))
    )


class ExecUnitPool:
    """All functional units of one core, grouped by kind."""

    def __init__(self, config):
        #: Shared across every unit: live in-flight count ("active") plus one
        #: monotonic version per kind, sampled by the tracer's EUU-* features.
        self.versions = {"active": 0, "alu": 0, "mul": 0, "div": 0, "agu": 0}
        self.alus = [ExecUnit("alu", i, pipelined=True, versions=self.versions)
                     for i in range(config.alu_count)]
        self.muls = [ExecUnit("mul", i, pipelined=True, versions=self.versions)
                     for i in range(config.mul_count)]
        self.divs = [ExecUnit("div", i, pipelined=False, versions=self.versions)
                     for i in range(config.div_count)]
        self.agus = [ExecUnit("agu", i, pipelined=True, versions=self.versions)
                     for i in range(config.agu_count)]
        self.by_kind = {
            "alu": self.alus, "mul": self.muls,
            "div": self.divs, "agu": self.agus,
        }
        self._units = [*self.alus, *self.muls, *self.divs, *self.agus]

    def acquire(self, kind: str, cycle: int) -> ExecUnit | None:
        """Find a unit of ``kind`` able to accept a new op this cycle."""
        for unit in self.by_kind[kind]:
            if unit.can_accept(cycle):
                return unit
        return None

    def all_units(self):
        yield from self._units

    def retire_finished(self, cycle: int) -> list[object]:
        if not self.versions["active"]:
            return []
        finished = []
        for unit in self._units:
            if unit.in_flight:
                finished.extend(unit.retire_finished(cycle))
        return finished

    def squash(self, is_squashed) -> None:
        if not self.versions["active"]:
            return
        for unit in self._units:
            unit.squash(is_squashed)
