"""Execution-unit pipeline models (ALU, multiplier, divider, AGU).

Each unit tracks its in-flight operations so the tracer can sample
"busy with PC" state per cycle (the EUU-* features of Table IV).
"""

from __future__ import annotations

from repro.isa.semantics import MASK64, to_signed


class ExecUnit:
    """One functional unit.

    Pipelined units accept a new operation every cycle; unpipelined units
    (the divider) are busy until their current operation completes.
    """

    def __init__(self, kind: str, index: int, *, pipelined: bool):
        self.kind = kind
        self.index = index
        self.pipelined = pipelined
        #: list of (complete_cycle, uop) currently in the unit.
        self.in_flight: list[tuple[int, object]] = []

    def can_accept(self, cycle: int) -> bool:
        if self.pipelined:
            return True
        return not self.in_flight

    def start(self, uop, cycle: int, latency: int) -> int:
        """Begin executing ``uop``; returns its completion cycle."""
        complete = cycle + latency
        self.in_flight.append((complete, uop))
        return complete

    def retire_finished(self, cycle: int) -> list[object]:
        """Remove and return uops whose results complete at ``cycle``."""
        done = [uop for (complete, uop) in self.in_flight if complete <= cycle]
        if done:
            self.in_flight = [(c, u) for (c, u) in self.in_flight if c > cycle]
        return done

    def squash(self, is_squashed) -> None:
        """Drop in-flight operations for which ``is_squashed(uop)`` holds."""
        self.in_flight = [(c, u) for (c, u) in self.in_flight if not is_squashed(u)]

    def busy_pcs(self) -> tuple[int, ...]:
        """PCs of the operations currently occupying this unit."""
        return tuple(uop.pc for (_, uop) in self.in_flight)

    @property
    def busy(self) -> bool:
        return bool(self.in_flight)


def divider_latency(a: int, b: int, base_latency: int) -> int:
    """Operand-dependent latency of an early-exit iterative divider.

    Models an SRT-style divider that terminates early for small quotients:
    latency grows with the magnitude of the dividend relative to the divisor.
    Only used when ``CoreConfig.variable_div_latency`` is set.
    """
    magnitude_a = abs(to_signed(a & MASK64))
    magnitude_b = abs(to_signed(b & MASK64)) or 1
    quotient_bits = max(magnitude_a.bit_length() - magnitude_b.bit_length(), 0)
    return 3 + (quotient_bits + 1) // 2


class ExecUnitPool:
    """All functional units of one core, grouped by kind."""

    def __init__(self, config):
        self.alus = [ExecUnit("alu", i, pipelined=True)
                     for i in range(config.alu_count)]
        self.muls = [ExecUnit("mul", i, pipelined=True)
                     for i in range(config.mul_count)]
        self.divs = [ExecUnit("div", i, pipelined=False)
                     for i in range(config.div_count)]
        self.agus = [ExecUnit("agu", i, pipelined=True)
                     for i in range(config.agu_count)]
        self.by_kind = {
            "alu": self.alus, "mul": self.muls,
            "div": self.divs, "agu": self.agus,
        }

    def acquire(self, kind: str, cycle: int) -> ExecUnit | None:
        """Find a unit of ``kind`` able to accept a new op this cycle."""
        for unit in self.by_kind[kind]:
            if unit.can_accept(cycle):
                return unit
        return None

    def all_units(self):
        for units in self.by_kind.values():
            yield from units

    def retire_finished(self, cycle: int) -> list[object]:
        finished = []
        for unit in self.all_units():
            finished.extend(unit.retire_finished(cycle))
        return finished

    def squash(self, is_squashed) -> None:
        for unit in self.all_units():
            unit.squash(is_squashed)
