"""Conservative unit-reachability: which features *can* see a secret.

Given a campaign's merged :class:`~repro.taint.publicness.PublicnessMap`
and a :class:`CoreConfig`, :func:`prunable_features` decides which of the
Table IV features provably cannot observe any secret-derived state, so the
tracer may skip digesting them.  The table errs conservative by
construction — its *only* job is to exonerate features, and it does so
exclusively for campaigns whose dynamic taint witness shows:

* no escalation (no implicit flow: every secret byte is accounted for);
* no taint-derived branch direction or jump target (control flow, and
  hence every PC-keyed / occupancy-keyed / predictor-keyed feature, is
  input-invariant);
* no taint-derived memory *address*, architecturally or in the bounded
  transient shadow of any mispredictable branch (address-keyed features —
  queues, caches, TLB, MSHRs, prefetcher — see the same addresses for
  every secret).

Under those three facts the secret can only ever sit in *data* paths:
register values, store data, cache-line contents.  Almost every feature
samples addresses, PCs or occupancies — invariant here — and the ones that
sample latency-coupled unit busyness (EUU-DIV with an early-exit divider,
fast-bypass ALU short-circuits) stay reachable whenever the configuration
actually models the value-dependent timing.  What always remains is the
set of features that sample raw *data* bytes (``LFB-Data``, the paper's
line-fill-buffer content channel): secret bytes transit it on every fill
regardless of control or address invariance, so it is never pruned.
"""

from __future__ import annotations

from repro.uarch.config import CoreConfig

#: Features that sample microarchitectural *data* bytes, not addresses,
#: PCs or occupancies.  Secret values flow through these even in perfectly
#: constant-time code, so taint can never exonerate them.
DATA_CARRYING_FEATURES = frozenset({"LFB-Data"})


def reachable_features(publicness, config: CoreConfig,
                       feature_ids) -> frozenset:
    """The subset of ``feature_ids`` a secret could influence.

    ``publicness`` is the campaign-merged
    :class:`~repro.taint.publicness.PublicnessMap`.  Conservative: returns
    everything unless the map proves control flow and all memory addresses
    (architectural *and* transient) are secret-independent.
    """
    feature_ids = frozenset(feature_ids)
    if (publicness.escalated
            or publicness.tainted_branch_pcs
            or publicness.tainted_mem_pcs
            or publicness.transient_mem_pcs):
        return feature_ids
    reachable = set(DATA_CARRYING_FEATURES)
    if config.variable_div_latency and publicness.tainted_div_pcs:
        # Early-exit divider: operand values modulate EUU-DIV busy spans,
        # and through issue backpressure potentially every other unit.
        return feature_ids
    if config.fast_bypass and publicness.tainted_pcs:
        # Trivial-computation bypass: operand values modulate ALU latency.
        return feature_ids
    return frozenset(reachable & feature_ids)


def prunable_features(publicness, config: CoreConfig,
                      feature_ids) -> frozenset:
    """Features taint proves secret-free — safe for the tracer to skip."""
    feature_ids = frozenset(feature_ids)
    return feature_ids - reachable_features(publicness, config, feature_ids)


def project_reachability(publicness, configs, feature_ids) -> dict:
    """Per-config reachable sets from one shared publicness map.

    The taint witness is config-independent (it is computed on the
    functional interpreter); only this projection consults the core
    configuration (value-dependent divider latency, fast bypass).  The
    cross-config sweep engine computes the witness once and calls this to
    derive every leg's reachable/pruned split — each entry is exactly what
    :func:`reachable_features` returns for that config standalone.

    Returns ``{config.name: frozenset(reachable feature ids)}``.
    """
    return {
        config.name: reachable_features(publicness, config, feature_ids)
        for config in configs
    }
