"""Cycle-accurate out-of-order processor model (BOOM-like) and memory system."""

from repro.uarch.branch import BranchPredictor, GsharePredictor
from repro.uarch.checker import LockstepMismatch, LockstepResult, run_lockstep
from repro.uarch.pipeview import PipelineSlot, PipelineTrace, record_pipeline
from repro.uarch.config import MEDIUM_BOOM, MEGA_BOOM, SMALL_BOOM, CacheConfig, CoreConfig
from repro.uarch.core import Core, CoreStats, RunResult, SimulationError
from repro.uarch.exec_units import ExecUnit, ExecUnitPool, divider_latency
from repro.uarch.lsu import LoadStoreUnit
from repro.uarch.memsys import (
    DataCachePort,
    InstructionCachePort,
    LineFillBuffer,
    NextLinePrefetcher,
    SetAssocCache,
    Tlb,
)
from repro.uarch.uop import MicroOp

__all__ = [
    "BranchPredictor",
    "CacheConfig",
    "Core",
    "CoreConfig",
    "CoreStats",
    "DataCachePort",
    "ExecUnit",
    "ExecUnitPool",
    "GsharePredictor",
    "InstructionCachePort",
    "LineFillBuffer",
    "LoadStoreUnit",
    "LockstepMismatch",
    "LockstepResult",
    "MEDIUM_BOOM",
    "MEGA_BOOM",
    "MicroOp",
    "PipelineSlot",
    "PipelineTrace",
    "NextLinePrefetcher",
    "RunResult",
    "SMALL_BOOM",
    "SetAssocCache",
    "SimulationError",
    "Tlb",
    "divider_latency",
    "record_pipeline",
    "run_lockstep",
]
