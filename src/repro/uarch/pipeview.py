"""Text pipeline viewer (Konata-style stage timelines).

Records every committed instruction's journey through the pipeline and
renders it as a per-cycle timeline — the standard way to eyeball why two
iterations of "constant-time" code took different paths through the machine:

    cycle        0         1
                 0123456789012345678
    0x10000 addi F.DI_C
    0x10004 ld   F.D..I=====_C
    0x10008 beq  F.D...I_....C

Legend: F fetch, D dispatch, I issue, ``=`` executing/memory, ``_``
complete (waiting to commit), C commit, ``.`` in-flight between stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.disasm import format_instruction
from repro.uarch.core import Core


@dataclass
class PipelineSlot:
    """Stage timestamps for one committed instruction."""

    pc: int
    mnemonic: str
    text: str
    fetch: int
    dispatch: int
    issue: int
    complete: int
    commit: int


@dataclass
class PipelineTrace:
    """Committed-instruction timeline recorder."""

    slots: list = field(default_factory=list)

    def render(self, *, start: int = 0, count: int = 40,
               width: int = 100) -> str:
        window = self.slots[start:start + count]
        if not window:
            return "(no committed instructions recorded)"
        base = min(s.fetch for s in window if s.fetch >= 0)
        lines = [f"pipeline timeline (cycles relative to {base})",
                 "F fetch  D dispatch  I issue  = execute  _ wait  C commit",
                 ""]
        for slot in window:
            lane = {}

            def mark(cycle, char):
                if cycle >= 0:
                    offset = cycle - base
                    if 0 <= offset < width:
                        lane[offset] = char

            if slot.issue >= 0:
                for c in range(slot.issue + 1,
                               max(slot.complete, slot.issue)):
                    mark(c, "=")
            if slot.complete >= 0:
                for c in range(slot.complete, slot.commit):
                    mark(c, "_")
            mark(slot.fetch, "F")
            mark(slot.dispatch, "D")
            mark(slot.issue, "I")
            mark(slot.commit, "C")
            end = max(lane) if lane else 0
            row = "".join(lane.get(i, ".") if any(k >= i for k in lane)
                          else " " for i in range(end + 1))
            label = f"{slot.pc:#08x} {slot.text[:26]:<26}"
            lines.append(f"{label} |{row}")
        return "\n".join(lines)


def record_pipeline(program, config, *, max_cycles: int = 2_000_000,
                    limit: int = 2000) -> tuple[PipelineTrace, object]:
    """Run ``program`` on a fresh core, recording commit timelines.

    Returns (trace, run_result).  Recording stops after ``limit``
    instructions to bound memory on long programs.
    """
    core = Core(program, config)
    trace = PipelineTrace()
    by_pc = {inst.pc: inst for inst in program.instructions}

    def on_commit(pc, mnemonic, rd, value, cycle):
        if len(trace.slots) >= limit:
            return
        # Find the committing uop at the ROB head for its timestamps; the
        # listener fires during commit, so rob[0] is the uop in question
        # (folded fast-bypass entries share the host's timestamps).
        uop = core.rob[0] if core.rob else None
        inst = by_pc.get(pc)
        text = format_instruction(inst) if inst else mnemonic
        if uop is not None and uop.pc == pc:
            trace.slots.append(PipelineSlot(
                pc=pc, mnemonic=mnemonic, text=text,
                fetch=uop.fetch_cycle, dispatch=uop.dispatch_cycle,
                issue=uop.issue_cycle, complete=uop.complete_cycle,
                commit=cycle,
            ))
        else:
            trace.slots.append(PipelineSlot(
                pc=pc, mnemonic=mnemonic, text=text,
                fetch=-1, dispatch=-1, issue=-1, complete=-1, commit=cycle,
            ))

    core.commit_listener = on_commit
    result = core.run(max_cycles=max_cycles)
    return trace, result
