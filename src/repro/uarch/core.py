"""Cycle-accurate out-of-order core model (BOOM-like).

The core implements the classic speculative out-of-order pipeline: fetch with
branch prediction, decode/rename onto a physical register file, dispatch into
a reorder buffer and issue queue, out-of-order issue to ALU/MUL/DIV/AGU units,
a load/store unit with store-to-load forwarding, and in-order commit with
misprediction squash and rename-undo recovery.

The model is *functionally exact* (co-simulated against the in-order golden
model in the test suite) and *microarchitecturally explicit*: wrong-path
instructions really occupy the ROB and issue to the cache, the fetch engine
really follows the gshare/BTB/RAS prediction, and the optional *fast bypass*
optimization of Section VII-B really elides AND operations at rename.  These
are precisely the mechanisms whose state MicroSampler samples.

:mod:`repro.uarch.batch_core` subclasses this core to carry several
campaign inputs as SIMD value lanes through one shared pipeline: all the
timing structures here stay scalar, and the hooks it overrides
(``_begin_execution``, ``_try_fast_bypass``, ``_line_digest``,
``_commit_bookkeeping``) are the points where per-lane values meet
timing-relevant decisions.  Changes to those methods must keep the batched
subclass in sync; the differential suite pins them bit-identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import zlib

from repro.isa.assembler import Program
from repro.isa.instructions import FuncClass
from repro.isa.interpreter import FlatMemory
from repro.isa.semantics import MASK64, branch_taken, compute_alu
from repro.kernel.memory_map import MemoryMap
from repro.kernel.proxy_kernel import ProxyKernel
from repro.uarch.branch import BranchPredictor
from repro.uarch.config import CoreConfig, MEGA_BOOM
from repro.uarch.exec_units import ExecUnitPool, divider_latency
from repro.uarch.lsu import LoadStoreUnit
from repro.uarch.memsys import DataCachePort, InstructionCachePort
from repro.uarch.uop import MicroOp

_RA = 1  # return-address register (x1)

#: Execution-unit kind by functional class (AGU handles both memory classes;
#: everything without a dedicated unit executes on an ALU).
_UNIT_KIND = {
    FuncClass.MUL: "mul",
    FuncClass.DIV: "div",
    FuncClass.LOAD: "agu",
    FuncClass.STORE: "agu",
}
for _fc in FuncClass:
    _UNIT_KIND.setdefault(_fc, "alu")
del _fc


class SimulationError(RuntimeError):
    """Raised when the simulation cannot make progress."""


@dataclass
class CoreStats:
    """Counters accumulated over a run."""

    cycles: int = 0
    committed: int = 0
    fetched: int = 0
    branches: int = 0
    mispredicts: int = 0
    squashed_uops: int = 0
    fast_bypasses: int = 0
    ecalls: int = 0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


@dataclass
class RunResult:
    """Outcome of running a program to completion on the core."""

    exit_code: int
    stats: CoreStats
    console: str
    marker_cycles: list = field(default_factory=list)


class _CommittedState:
    """Architectural (committed) register/memory view, for the proxy kernel."""

    def __init__(self, core: "Core"):
        self._core = core
        self.memory = core.memory

    def read_reg(self, num: int) -> int:
        if num == 0:
            return 0
        return self._core.prf_value[self._core.committed_map[num]]

    def write_reg(self, num: int, value: int) -> None:
        if num != 0:
            self._core.prf_value[self._core.committed_map[num]] = value & MASK64


class _FoldRecord:
    """A fast-bypassed instruction awaiting attachment to a host ROB entry."""

    __slots__ = ("seq", "pc", "lrd", "prd", "old_prd")

    def __init__(self, seq, pc, lrd, prd, old_prd):
        self.seq = seq
        self.pc = pc
        self.lrd = lrd
        self.prd = prd
        self.old_prd = old_prd


class Core:
    """One out-of-order core executing an assembled :class:`Program`."""

    def __init__(self, program: Program, config: CoreConfig = MEGA_BOOM, *,
                 memory_map: MemoryMap | None = None,
                 kernel: ProxyKernel | None = None,
                 tracer=None):
        self.program = program
        self.config = config
        self.memory_map = memory_map or MemoryMap()
        self.kernel = kernel or ProxyKernel(memory_map=self.memory_map)
        self.tracer = tracer
        self.memory = FlatMemory(self.memory_map.memory_size)
        self.memory.write_bytes(program.data_base, bytes(program.data))

        # Physical register file.  Phys regs 0..31 hold the initial
        # architectural state (phys 0 is the hardwired zero).
        n_prf = config.int_prf_entries
        if n_prf < 40:
            raise ValueError("PRF must have headroom beyond the 32 arch regs")
        self.prf_value = [0] * n_prf
        self.prf_ready = [False] * n_prf
        for i in range(32):
            self.prf_ready[i] = True
        self.map_table = list(range(32))
        self.committed_map = list(range(32))
        #: FIFO of free physical registers (strict head allocation keeps
        #: rename assignment deterministic and bit-identical to the seed).
        self.free_list: deque[int] = deque(range(32, n_prf))
        self.prf_value[2] = self.memory_map.stack_top  # sp

        # Pipeline structures.
        self.rob: deque[MicroOp] = deque()
        self.iq: list[MicroOp] = []
        self.fetch_buffer: deque[MicroOp] = deque()
        self.pending_folds: list[_FoldRecord] = []
        self.inflight_loads: list[MicroOp] = []
        self.pending_recoveries: list[MicroOp] = []
        #: Sampled-state version for the ROB-* features: bumped on every
        #: append/pop/flush (see docs/performance.md for the bump rules).
        self.rob_version = 0
        #: Per-slot ROB-PC row, maintained incrementally at every ROB
        #: mutation so sampling is a tuple copy instead of an O(rob) rebuild.
        #: Invariant: ``_rob_row[slot]`` is the ``rob_value`` of the live
        #: uop in that slot, 0 when the slot is free (``rob_value`` is final
        #: before dispatch appends the uop, so no later updates are needed).
        self._rob_row: list[int] = [0] * config.rob_entries

        self.predictor = BranchPredictor(config)
        self.units = ExecUnitPool(config)
        self.dcache = DataCachePort(
            config.dcache,
            tlb_entries=config.dtlb_entries,
            page_size=self.memory_map.page_size,
            tlb_miss_latency=config.tlb_miss_latency,
            memory_latency=config.memory_latency,
            lfb_entries=config.lfb_entries,
            prefetcher_enabled=config.prefetcher_enabled,
            memory_digest=self._line_digest,
            l2_config=config.l2,
            l2_latency=config.l2_latency,
        )
        self.icache = InstructionCachePort(config.icache, config.memory_latency)
        self.lsu = LoadStoreUnit(
            ldq_entries=config.ldq_entries,
            stq_entries=config.stq_entries,
            dcache=self.dcache,
            memory=self.memory,
            memory_size=self.memory_map.memory_size,
            store_miss_drain_penalty=config.store_miss_drain_penalty,
        )

        # Fetch state.
        self.fetch_pc = program.entry
        self.fetch_resume_cycle = 0
        self.fetch_wait_uop: MicroOp | None = None

        self.cycle = 0
        self.seq_counter = 0
        self._rob_next_slot = 0
        self.halted = False
        self.stats = CoreStats()
        #: Optional per-stage profiler (util.profiling.StageProfile); when
        #: set, :meth:`step` routes through the instrumented variant.
        self.profiler = None
        self.arch = _CommittedState(self)
        #: Optional commit listener: called as listener(pc, mnemonic,
        #: rd, rd_value, cycle) for every architecturally committed
        #: instruction, in program order (used by the lockstep checker).
        self.commit_listener = None

    # ------------------------------------------------------------------ utils

    def _line_digest(self, line_addr: int) -> int:
        """Small deterministic digest of a cache line's contents (LFB-Data)."""
        base = (line_addr << self.dcache.cache.line_shift)
        base %= max(self.memory_map.memory_size - 64, 1)
        return zlib.crc32(self.memory.read_bytes(base, 64))

    def _next_seq(self) -> int:
        self.seq_counter += 1
        return self.seq_counter

    # ------------------------------------------------------------------- run

    def step(self) -> None:
        """Advance the core by one clock cycle.

        Stage order is identical to the original unconditional sequence;
        fully-idle subsystems are skipped (each guarded call is a no-op on
        the guarded condition, verified by the differential tracer tests).
        """
        if self.profiler is not None:
            return self._step_profiled()
        cycle = self.cycle + 1
        self.cycle = cycle
        self.stats.cycles = cycle
        dcache = self.dcache
        dcache.begin_cycle()
        if self.rob:
            self._commit()
            if self.halted:
                return
        cycle = self.cycle
        if dcache.mshrs or dcache.lfb.entries:
            dcache.tick(cycle)
        icache = self.icache
        if icache.pending:
            icache.tick(cycle)
        if self.units.versions["active"] or self.inflight_loads:
            self._writeback()
        if self.pending_recoveries:
            self._fire_due_recoveries()
        lsu = self.lsu
        if lsu.store_queue:
            lsu.drain_committed_store(cycle)
            lsu.probe_stores(cycle)
        if lsu.load_queue:
            started = lsu.issue_loads(cycle, self.config.agu_count)
            if started:
                self.inflight_loads.extend(started)
        if self.iq:
            self._issue()
        if self.fetch_buffer:
            self._rename_dispatch()
        self._fetch()
        if self.tracer is not None:
            self.tracer.on_cycle(self, cycle)

    def _step_profiled(self) -> None:
        """One cycle with per-stage wall-clock attribution (``--profile``).

        Runs the same guarded stage sequence as :meth:`step` but brackets
        each stage with ``perf_counter`` reads, accumulating into
        ``self.profiler`` (a :class:`repro.util.profiling.StageProfile`).
        """
        from time import perf_counter

        profile = self.profiler
        cycle = self.cycle + 1
        self.cycle = cycle
        self.stats.cycles = cycle
        profile.cycles += 1
        dcache = self.dcache
        dcache.begin_cycle()
        if self.rob:
            t0 = perf_counter()
            self._commit()
            profile.commit_seconds += perf_counter() - t0
            if self.halted:
                return
        cycle = self.cycle
        t0 = perf_counter()
        if dcache.mshrs or dcache.lfb.entries:
            dcache.tick(cycle)
        icache = self.icache
        if icache.pending:
            icache.tick(cycle)
        t1 = perf_counter()
        profile.memsys_seconds += t1 - t0
        if self.units.versions["active"] or self.inflight_loads:
            self._writeback()
        if self.pending_recoveries:
            self._fire_due_recoveries()
        t0 = perf_counter()
        profile.writeback_seconds += t0 - t1
        lsu = self.lsu
        if lsu.store_queue:
            lsu.drain_committed_store(cycle)
            lsu.probe_stores(cycle)
        if lsu.load_queue:
            started = lsu.issue_loads(cycle, self.config.agu_count)
            if started:
                self.inflight_loads.extend(started)
        t1 = perf_counter()
        profile.memsys_seconds += t1 - t0
        if self.iq:
            self._issue()
        t0 = perf_counter()
        profile.issue_seconds += t0 - t1
        if self.fetch_buffer:
            self._rename_dispatch()
        t1 = perf_counter()
        profile.rename_seconds += t1 - t0
        self._fetch()
        t0 = perf_counter()
        profile.fetch_seconds += t0 - t1
        if self.tracer is not None:
            self.tracer.on_cycle(self, cycle)
            profile.tracer_seconds += perf_counter() - t0

    def run(self, max_cycles: int = 5_000_000) -> RunResult:
        """Run to completion (program exit via the proxy kernel)."""
        while not self.halted:
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"no exit within {max_cycles} cycles "
                    f"(pc={self.fetch_pc:#x}, rob={len(self.rob)})"
                )
            self.step()
        return RunResult(
            exit_code=self.kernel.exit_code,
            stats=self.stats,
            console=self.kernel.console_text,
        )

    # ---------------------------------------------------------------- commit

    def _commit(self) -> None:
        committed = 0
        rob = self.rob
        stats = self.stats
        config = self.config
        rob_entries = config.rob_entries
        commit_width = config.commit_width
        while rob and committed < commit_width:
            uop = rob[0]
            if not uop.complete:
                break
            if uop.mispredicted and not uop.recovery_done:
                break  # wait for the in-flight squash to land
            inst = uop.inst
            fc = inst.func_class
            if fc is FuncClass.SYSTEM and inst.mnemonic == "ecall":
                if self.lsu.committed_stores_pending():
                    break  # drain stores so the kernel sees consistent memory
                self._commit_bookkeeping(uop)
                rob.popleft()
                self.rob_version += 1
                self._rob_row[uop.rob_slot] = 0
                self._rob_next_slot = (uop.rob_slot + 1) % rob_entries
                stats.ecalls += 1
                stats.committed += 1 + len(uop.folded_pcs)
                if not self.kernel.handle_ecall(self.arch):
                    self.halted = True
                    return
                self._flush_all()
                self.fetch_pc = (uop.pc + 4) & MASK64
                self.fetch_resume_cycle = (
                    self.cycle + config.mispredict_redirect_penalty
                )
                return
            if fc is FuncClass.SYSTEM and inst.mnemonic == "ebreak":
                self._commit_bookkeeping(uop)
                rob.popleft()
                self.rob_version += 1
                self._rob_row[uop.rob_slot] = 0
                self._rob_next_slot = (uop.rob_slot + 1) % rob_entries
                stats.committed += 1 + len(uop.folded_pcs)
                self.halted = True
                return
            if uop.is_store:
                uop.committed = True
            if uop.is_load:
                self.lsu.on_commit(uop)
            if fc is FuncClass.MARKER:
                # Markers are serializing: the iteration's stores drain and
                # the pipeline flushes before the boundary commits, so each
                # snapshot window contains exactly one iteration's activity.
                # (The paper's iterations are thousands of instructions, so
                # cross-iteration run-ahead is negligible there; at this
                # reproduction's scale it must be fenced explicitly.)
                if self.lsu.committed_stores_pending():
                    break
                if self.tracer is not None:
                    label = 0
                    if inst.mnemonic == "iter.begin":
                        label = self.arch.read_reg(inst.rs1)
                    self.tracer.on_marker(inst.mnemonic, label, self.cycle)
                self._commit_bookkeeping(uop)
                rob.popleft()
                self.rob_version += 1
                self._rob_row[uop.rob_slot] = 0
                self._rob_next_slot = (uop.rob_slot + 1) % rob_entries
                stats.committed += 1 + len(uop.folded_pcs)
                self._flush_all()
                self.fetch_pc = (uop.pc + 4) & MASK64
                self.fetch_resume_cycle = self.cycle + 1
                return
            if uop.prediction_made:
                if inst.is_branch:
                    self.predictor.train_branch(
                        uop.pc, uop.resolved_taken, uop.resolved_target,
                        uop.ghr_at_predict,
                    )
                elif inst.mnemonic == "jalr":
                    self.predictor.train_indirect(uop.pc, uop.resolved_target)
            if inst.is_branch:
                stats.branches += 1
            self._commit_bookkeeping(uop)
            rob.popleft()
            self.rob_version += 1
            self._rob_row[uop.rob_slot] = 0
            self._rob_next_slot = (uop.rob_slot + 1) % rob_entries
            committed += 1
            stats.committed += 1 + len(uop.folded_pcs)

    def _commit_bookkeeping(self, uop: MicroOp) -> None:
        """Update the committed map and recycle overwritten physical regs."""
        uop.commit_cycle = self.cycle
        for index, (lrd, prd, old_prd) in enumerate(uop.folded_frees):
            self.committed_map[lrd] = prd
            if old_prd > 0:
                self.free_list.append(old_prd)
            if self.commit_listener is not None:
                self.commit_listener(uop.folded_pcs[index], "and", lrd,
                                     self.prf_value[prd], self.cycle)
        if uop.inst.writes_rd:
            lrd = uop.inst.rd
            self.committed_map[lrd] = uop.prd
            if uop.old_prd > 0:
                self.free_list.append(uop.old_prd)
        if self.commit_listener is not None:
            rd = uop.inst.rd if uop.inst.writes_rd else 0
            value = self.prf_value[uop.prd] if uop.inst.writes_rd else 0
            self.commit_listener(uop.pc, uop.inst.mnemonic, rd, value,
                                 self.cycle)

    # ------------------------------------------------------------- writeback

    def _writeback(self) -> None:
        cycle = self.cycle
        finished = self.units.retire_finished(cycle)
        inflight = self.inflight_loads
        if inflight:
            done_loads = [u for u in inflight
                          if u.mem_complete_cycle <= cycle]
            if done_loads:
                self.inflight_loads = [
                    u for u in inflight if u.mem_complete_cycle > cycle
                ]
                finished.extend(done_loads)
        if not finished:
            return
        if len(finished) > 1:
            finished.sort(key=lambda u: u.seq)
        for uop in finished:
            if not uop._squashed:
                self._complete_uop(uop)

    def _complete_uop(self, uop: MicroOp) -> None:
        uop.complete_cycle = self.cycle
        inst = uop.inst
        fc = inst.func_class
        if uop.is_store:
            uop.addr_ready = True
            uop.data_ready = True
            uop.complete = True
            # The SQ-ADDR row gates on addr_ready, so resolution is a
            # sampled-state mutation even though queue membership is stable.
            self.lsu.sq_version += 1
            return
        if uop.is_load:
            if not uop.addr_ready:
                uop.addr_ready = True  # AGU completion; memory access follows
                self.lsu.lq_version += 1
                return
            self._write_prf(uop)
            uop.complete = True
            return
        if fc is FuncClass.BRANCH:
            uop.complete = True
            if uop.resolved_taken != uop.predicted_taken:
                self._schedule_recovery(uop)
            return
        if inst.mnemonic == "jalr":
            self._write_prf(uop)
            uop.complete = True
            if self.fetch_wait_uop is uop:
                # Fetch stalled for this target: simple redirect, no squash.
                self.fetch_wait_uop = None
                self.fetch_pc = uop.resolved_target
                self.fetch_resume_cycle = self.cycle + 1
            elif uop.prediction_made and uop.predicted_target != uop.resolved_target:
                self._schedule_recovery(uop)
            return
        # Plain computational op.
        self._write_prf(uop)
        uop.complete = True

    def _write_prf(self, uop: MicroOp) -> None:
        if uop.prd >= 0:
            self.prf_value[uop.prd] = uop.result & MASK64
            self.prf_ready[uop.prd] = True

    # -------------------------------------------------------------- recovery

    def _schedule_recovery(self, uop: MicroOp) -> None:
        """Mark ``uop`` mispredicted; the squash lands after the kill latency.

        Until the recovery fires, wrong-path instructions continue to fetch,
        dispatch and execute (and may transiently redirect fetch themselves).
        The mispredicted branch blocks at commit until its recovery is done.
        """
        uop.mispredicted = True
        uop.recovery_cycle = self.cycle + self.config.branch_kill_latency
        self.pending_recoveries.append(uop)
        self.stats.mispredicts += 1
        self.predictor.mispredicts += 1

    def _fire_due_recoveries(self) -> None:
        while True:
            due = [u for u in self.pending_recoveries
                   if not u._squashed and u.recovery_cycle <= self.cycle]
            if not due:
                self.pending_recoveries = [
                    u for u in self.pending_recoveries if not u._squashed
                ]
                return
            oldest = min(due, key=lambda u: u.seq)
            self.pending_recoveries = [
                u for u in self.pending_recoveries
                if u is not oldest and not u._squashed and u.seq < oldest.seq
            ]
            self._recover_from_mispredict(oldest)

    def _recover_from_mispredict(self, uop: MicroOp) -> None:
        uop.recovery_done = True
        self._squash_younger_than(uop.seq)
        if uop.predictor_checkpoint is not None:
            self.predictor.restore(uop.predictor_checkpoint)
            if uop.inst.is_branch:
                self.predictor.gshare.predict_and_update_history(
                    uop.pc, uop.resolved_taken
                )
        if uop.inst.is_branch:
            target = (uop.resolved_target if uop.resolved_taken
                      else (uop.pc + 4) & MASK64)
        else:
            target = uop.resolved_target
        self.fetch_pc = target
        self.fetch_resume_cycle = self.cycle + self.config.mispredict_redirect_penalty
        self.fetch_wait_uop = None

    def _undo_rename(self, lrd: int, prd: int, old_prd: int) -> None:
        self.map_table[lrd] = old_prd
        if prd > 0:
            self.prf_ready[prd] = False
            self.free_list.append(prd)

    def _undo_uop_rename(self, uop: MicroOp) -> None:
        if uop.inst.writes_rd:
            self._undo_rename(uop.inst.rd, uop.prd, uop.old_prd)
        for lrd, prd, old_prd in reversed(uop.folded_frees):
            self._undo_rename(lrd, prd, old_prd)

    def _squash_younger_than(self, seq: int) -> None:
        """Squash every in-flight uop younger than ``seq``."""
        # Fetch buffer uops have not been renamed; just drop them.
        dropped = len(self.fetch_buffer)
        self.fetch_buffer.clear()
        squashed: set[int] = set()
        # Pending folds are the youngest renamed ops.
        for fold in reversed(self.pending_folds):
            if fold.seq > seq:
                self._undo_rename(fold.lrd, fold.prd, fold.old_prd)
                squashed.add(fold.seq)
        self.pending_folds = [f for f in self.pending_folds if f.seq <= seq]
        rob_squashed = False
        while self.rob and self.rob[-1].seq > seq:
            victim = self.rob.pop()
            victim._squashed = True
            self._rob_row[victim.rob_slot] = 0
            self._undo_uop_rename(victim)
            squashed.add(victim.seq)
            rob_squashed = True
        if rob_squashed:
            self.rob_version += 1
        self.stats.squashed_uops += len(squashed) + dropped

        def is_squashed(uop):
            return uop.seq > seq

        self.iq = [u for u in self.iq if u.seq <= seq]
        self.inflight_loads = [u for u in self.inflight_loads if u.seq <= seq]
        self.units.squash(is_squashed)
        self.lsu.squash(is_squashed)

    def _flush_all(self) -> None:
        """Discard all speculative state; rebuild rename from committed map."""
        for uop in self.rob:
            uop._squashed = True
        self.stats.squashed_uops += len(self.rob) + len(self.fetch_buffer)
        if self.rob:
            self.rob_version += 1
            self._rob_row = [0] * self.config.rob_entries
        self.rob = deque()
        self.iq = []
        self.fetch_buffer = deque()
        self.pending_folds = []
        self.inflight_loads = []
        self.pending_recoveries = []
        self.units.squash(lambda uop: True)
        self.lsu.squash(lambda uop: True)
        self.fetch_wait_uop = None
        self._rob_next_slot = 0
        self.lsu.reset_slots()
        self.map_table = list(self.committed_map)
        in_use = set(self.committed_map)
        self.free_list = deque(p for p in range(1, self.config.int_prf_entries)
                               if p not in in_use)
        for arch_reg in range(32):
            self.prf_ready[self.committed_map[arch_reg]] = True

    # ------------------------------------------- checkpoint restore

    def restore_architectural_state(self, checkpoint) -> None:
        """Adopt a functional-interpreter checkpoint as architectural state.

        ``checkpoint`` is a :class:`repro.sampler.checkpoint.Checkpoint`
        (duck-typed: ``pc``, ``regs``, ``pages``, ``console``, ``brk``).
        The pipeline is flushed, every timing structure (caches, TLB,
        predictors, LSU) returns to its power-on state, and the committed
        register file, memory and proxy-kernel state are overwritten — so
        simulation resumes at ``checkpoint.pc`` exactly as if the preceding
        instructions had been executed, minus their microarchitectural
        residue.  Callers that want that residue replay a warm-up window of
        pre-ROI instructions cycle-accurately instead (see
        ``sampler/checkpoint.py``).
        """
        self._flush_all()
        self.dcache.reset()
        self.icache.reset()
        self.predictor.reset()
        self.lsu.reset()
        arch = self.arch
        for reg in range(1, 32):
            arch.write_reg(reg, checkpoint.regs[reg])
        for page_base, payload in checkpoint.pages:
            self.memory.write_bytes(page_base, payload)
        self.kernel.restore_state((checkpoint.console, checkpoint.brk))
        self.fetch_pc = checkpoint.pc
        self.fetch_resume_cycle = self.cycle
        self.halted = False

    # ----------------------------------------------------------------- issue

    def _operand_ready(self, phys: int) -> bool:
        return phys < 0 or self.prf_ready[phys]

    def _issue(self) -> None:
        issued = 0
        still_queued = []
        queue_uop = still_queued.append
        issue_width = self.config.issue_width
        prf_ready = self.prf_ready
        cycle = self.cycle
        acquire = self.units.acquire
        for uop in self.iq:
            if issued >= issue_width:
                queue_uop(uop)
                continue
            prs1 = uop.prs1
            prs2 = uop.prs2
            if (prs1 >= 0 and not prf_ready[prs1]) or \
                    (prs2 >= 0 and not prf_ready[prs2]):
                queue_uop(uop)
                continue
            unit = acquire(_UNIT_KIND[uop.inst.func_class], cycle)
            if unit is None:
                queue_uop(uop)
                continue
            self._begin_execution(uop, unit)
            issued += 1
        self.iq = still_queued

    @staticmethod
    def _unit_kind(uop: MicroOp) -> str:
        return _UNIT_KIND[uop.inst.func_class]

    def _read_operand(self, phys: int) -> int:
        return self.prf_value[phys] if phys >= 0 else 0

    def _begin_execution(self, uop: MicroOp, unit) -> None:
        inst = uop.inst
        prf_value = self.prf_value
        prs1 = uop.prs1
        prs2 = uop.prs2
        a = prf_value[prs1] if prs1 >= 0 else 0
        if uop.uses_imm:
            b = inst.imm & MASK64
        else:
            b = prf_value[prs2] if prs2 >= 0 else 0
        fc = inst.func_class
        config = self.config
        latency = config.alu_latency
        if fc is FuncClass.MUL:
            latency = config.mul_latency
        elif fc is FuncClass.DIV:
            latency = (divider_latency(a, b, config.div_latency)
                       if config.variable_div_latency
                       else config.div_latency)
        if fc in (FuncClass.ALU, FuncClass.MUL, FuncClass.DIV):
            if inst.mnemonic == "auipc":
                a = uop.pc
            elif inst.mnemonic == "lui":
                a = 0
            uop.result = compute_alu(inst.mnemonic, a, b)
        elif fc is FuncClass.BRANCH:
            # Branches never use the immediate operand, so ``b`` already
            # holds the rs2 value.
            uop.resolved_taken = branch_taken(inst.mnemonic, a, b)
            uop.resolved_target = inst.branch_target()
        elif inst.mnemonic == "jalr":
            uop.result = (uop.pc + 4) & MASK64
            uop.resolved_target = (a + inst.imm) & ~1 & MASK64
            uop.resolved_taken = True
        elif fc is FuncClass.LOAD:
            uop.mem_addr = (a + inst.imm) & MASK64
        elif fc is FuncClass.STORE:
            uop.mem_addr = (a + inst.imm) & MASK64
            uop.store_data = b
        cycle = self.cycle
        uop.executing = True
        uop.issue_cycle = cycle
        unit.start(uop, cycle, latency)

    # -------------------------------------------------------------- dispatch

    def _rename_dispatch(self) -> None:
        dispatched = 0
        fetch_buffer = self.fetch_buffer
        config = self.config
        decode_width = config.decode_width
        rob_entries = config.rob_entries
        iq_entries = config.iq_entries
        rob = self.rob
        rob_row = self._rob_row
        iq = self.iq
        lsu = self.lsu
        free_list = self.free_list
        cycle = self.cycle
        complete_at_dispatch = self._complete_at_dispatch
        while fetch_buffer and dispatched < decode_width:
            uop = fetch_buffer[0]
            inst = uop.inst
            if (inst.is_marker and inst.mnemonic != "iter.end"
                    and (rob or lsu.store_queue or lsu.load_queue)):
                # Serialize-before: a window-opening marker waits for every
                # older instruction to commit and every store to drain, so
                # no instruction can run ahead across an iteration boundary
                # and bleed state into the wrong snapshot window.  iter.end
                # is exempt: run-ahead *within* the closing window is real
                # behaviour (it is what exposes transient execution), and
                # its commit still gates on the store-buffer drain.
                break
            # _resources_available, inlined (same check order) so the
            # complete-at-dispatch predicate is evaluated once per uop.
            if len(rob) >= rob_entries:
                break
            if inst.writes_rd and not free_list:
                break
            completes = complete_at_dispatch(uop)
            if not completes and len(iq) >= iq_entries:
                break
            is_mem = uop.is_load or uop.is_store
            if is_mem and not lsu.can_allocate(uop):
                break
            fetch_buffer.popleft()
            uop.dispatch_cycle = cycle
            if self._try_fast_bypass(uop):
                dispatched += 1
                continue
            self._rename(uop)
            if self.pending_folds:
                self._attach_pending_folds(uop)
            if rob:
                uop.rob_slot = (rob[-1].rob_slot + 1) % rob_entries
            else:
                uop.rob_slot = self._rob_next_slot
            if uop.folded_pcs:
                value = uop.folded_pcs[0]
                for pc in (*uop.folded_pcs[1:], uop.pc):
                    value = ((value * 0x100003) ^ pc) & 0xFFFFFFFFFFFF
                uop.rob_value = value
            rob.append(uop)
            self.rob_version += 1
            rob_row[uop.rob_slot] = uop.rob_value
            if completes:
                uop.complete = True
                if inst.mnemonic == "jal":
                    uop.result = (uop.pc + 4) & MASK64
                    self._write_prf(uop)
            else:
                uop.in_iq = True
                iq.append(uop)
                if is_mem:
                    lsu.allocate(uop)
            dispatched += 1

    def _resources_available(self, uop: MicroOp) -> bool:
        if len(self.rob) >= self.config.rob_entries:
            return False
        if uop.inst.writes_rd and not self.free_list:
            return False
        if not self._complete_at_dispatch(uop) and len(self.iq) >= self.config.iq_entries:
            return False
        if (uop.is_load or uop.is_store) and not self.lsu.can_allocate(uop):
            return False
        return True

    @staticmethod
    def _complete_at_dispatch(uop: MicroOp) -> bool:
        fc = uop.inst.func_class
        return (fc in (FuncClass.MARKER, FuncClass.SYSTEM)
                or uop.inst.mnemonic == "jal")

    def _rename(self, uop: MicroOp) -> None:
        inst = uop.inst
        uop.prs1 = self.map_table[inst.rs1] if inst.reads_rs1 else -1
        uop.prs2 = self.map_table[inst.rs2] if inst.reads_rs2 else -1
        uop.uses_imm = inst.spec.uses_imm
        if inst.writes_rd:
            uop.old_prd = self.map_table[inst.rd]
            uop.prd = self.free_list.popleft()
            self.prf_ready[uop.prd] = False
            self.map_table[inst.rd] = uop.prd

    def _attach_pending_folds(self, uop: MicroOp) -> None:
        if not self.pending_folds:
            return
        uop.folded_pcs = tuple(f.pc for f in self.pending_folds)
        uop.folded_frees = tuple(
            (f.lrd, f.prd, f.old_prd) for f in self.pending_folds
        )
        self.pending_folds = []

    def _try_fast_bypass(self, uop: MicroOp) -> bool:
        """Trivial-computation bypass (Section VII-B).

        At rename, an AND whose available operand (register file or bypass
        network) is zero produces zero without executing: the result is
        written immediately, dependents wake up, and the instruction shares
        the next dispatched instruction's ROB entry.
        """
        if not self.config.fast_bypass or uop.inst.mnemonic != "and":
            return False
        if uop.inst.rd == 0:
            return False
        inst = uop.inst
        operands = (self.map_table[inst.rs1], self.map_table[inst.rs2])
        triggered = any(
            self.prf_ready[p] and self.prf_value[p] == 0 for p in operands
        )
        if not triggered:
            return False
        old_prd = self.map_table[inst.rd]
        prd = self.free_list.popleft()
        self.prf_value[prd] = 0
        self.prf_ready[prd] = True
        self.map_table[inst.rd] = prd
        self.pending_folds.append(
            _FoldRecord(uop.seq, uop.pc, inst.rd, prd, old_prd)
        )
        uop.fast_bypassed = True
        self.stats.fast_bypasses += 1
        return True

    # ----------------------------------------------------------------- fetch

    def _fetch(self) -> None:
        if self.halted or self.fetch_wait_uop is not None:
            return
        cycle = self.cycle
        if cycle < self.fetch_resume_cycle:
            return
        pc = self.fetch_pc
        if self.icache.fetch_ready(pc, cycle) is None:
            return
        config = self.config
        fetch_bytes = config.icache.fetch_bytes
        packet_limit = min(
            config.fetch_width,
            (fetch_bytes - (pc % fetch_bytes)) // 4 or 1,
        )
        fetch_buffer = self.fetch_buffer
        buffer_capacity = config.fetch_buffer_entries
        instruction_at = self.program.instruction_at
        stats = self.stats
        for _ in range(packet_limit):
            if len(fetch_buffer) >= buffer_capacity:
                break
            inst = instruction_at(pc)
            if inst is None:
                # Wrong-path fetch ran off the text section; idle until the
                # mispredicted branch resolves and redirects us.
                self.fetch_pc = pc
                return
            self.seq_counter = seq = self.seq_counter + 1
            uop = MicroOp(inst, seq)
            uop.fetch_cycle = cycle
            stats.fetched += 1
            next_pc = (pc + 4) & MASK64
            if inst.is_branch:
                uop.predictor_checkpoint = self.predictor.checkpoint()
                taken, ghr = self.predictor.predict_branch(pc)
                uop.prediction_made = True
                uop.predicted_taken = taken
                uop.predicted_target = inst.branch_target()
                uop.ghr_at_predict = ghr
                fetch_buffer.append(uop)
                if taken:
                    self.fetch_pc = inst.branch_target()
                    return
            elif inst.mnemonic == "jal":
                if inst.rd == _RA:
                    self.predictor.on_call(next_pc)
                fetch_buffer.append(uop)
                self.fetch_pc = inst.branch_target()
                return
            elif inst.mnemonic == "jalr":
                uop.predictor_checkpoint = self.predictor.checkpoint()
                is_return = inst.rs1 == _RA and inst.rd == 0
                is_call = inst.rd == _RA
                predicted = self.predictor.predict_jalr_target(
                    pc, is_return=is_return, is_call=is_call, next_pc=next_pc,
                )
                fetch_buffer.append(uop)
                if predicted is None:
                    self.fetch_wait_uop = uop
                    self.fetch_pc = pc  # resolution will redirect
                    return
                uop.prediction_made = True
                uop.predicted_target = predicted
                self.fetch_pc = predicted
                return
            else:
                fetch_buffer.append(uop)
            pc = next_pc
            self.fetch_pc = pc

    # ------------------------------------------------- tracer state exposure

    def rob_occupancy(self) -> int:
        return len(self.rob)

    def rob_pcs(self) -> tuple[int, ...]:
        """Per-slot ROB contents.

        Each slot holds the PC of its instruction; a slot shared by a
        fast-bypassed instruction and its host (Section VII-B) holds a
        combined scalar, so entry sharing is visible to feature extraction.
        The row is maintained incrementally (``_rob_row``) at every ROB
        mutation, so sampling is a single tuple copy.
        """
        return tuple(self._rob_row)

    #: Sampled pipeline depth per unit kind (in-flight slots per unit).
    _UNIT_DEPTH = {"alu": 1, "agu": 1, "div": 1, "mul": 3}

    def unit_busy_pcs(self, kind: str) -> tuple[int, ...]:
        depth = self._UNIT_DEPTH[kind]
        if depth == 1:
            return tuple(
                unit.in_flight[0][1].pc if unit.in_flight else 0
                for unit in self.units.by_kind[kind]
            )
        row = []
        for unit in self.units.by_kind[kind]:
            pcs = [uop.pc for _, uop in unit.in_flight[:depth]]
            pcs += [0] * (depth - len(pcs))
            row.extend(pcs)
        return tuple(row)
