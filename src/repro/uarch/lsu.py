"""Load/store unit: load queue, store queue, forwarding and cache issue.

Loads wait until every older store in the store queue has a known address,
then either forward from the youngest fully-overlapping store or issue to the
data cache.  Stores write architectural memory (and probe the cache for
timing) in program order as they drain from the store-queue head after
commit.  Speculative (wrong-path) stores never reach memory; speculative
loads may probe the cache, perturbing its state exactly as transient
execution does on real hardware.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.isa.semantics import MASK64, to_signed
from repro.uarch.exec_units import settle_lanes
from repro.uarch.memsys import DataCachePort
from repro.uarch.uop import MicroOp

#: Latency (cycles) for a load satisfied by store-to-load forwarding.
FORWARD_LATENCY = 2


class LoadStoreUnit:
    """Owns the LQ/SQ and mediates all data-memory traffic."""

    def __init__(self, *, ldq_entries: int, stq_entries: int,
                 dcache: DataCachePort, memory, memory_size: int,
                 store_miss_drain_penalty: int = 24):
        self.ldq_capacity = ldq_entries
        self.stq_capacity = stq_entries
        self.dcache = dcache
        self.memory = memory
        self.memory_size = memory_size
        self.store_miss_drain_penalty = store_miss_drain_penalty
        self.load_queue: deque[MicroOp] = deque()
        self.store_queue: deque[MicroOp] = deque()
        #: Sampled-state versions for the change-detection tracer: bumped on
        #: every mutation that can alter an LQ-*/SQ-* row — queue membership
        #: changes here, plus address-resolution (``addr_ready``) flips in
        #: ``Core._complete_uop``.
        self.lq_version = 0
        self.sq_version = 0
        self.loads_issued = 0
        self.forwards = 0
        # Stable circular slot allocation (like the RTL's physical entries):
        # the tracer samples per-slot so snapshot columns line up cycle to
        # cycle, exactly as Figure 2 depicts.
        self._lq_next_slot = 0
        self._sq_next_slot = 0

    # -- allocation -----------------------------------------------------------

    def can_allocate(self, uop: MicroOp) -> bool:
        if uop.is_load:
            return len(self.load_queue) < self.ldq_capacity
        return len(self.store_queue) < self.stq_capacity

    def allocate(self, uop: MicroOp) -> None:
        if uop.is_load:
            queue = self.load_queue
            if queue:
                uop.lq_slot = (queue[-1].lq_slot + 1) % self.ldq_capacity
            else:
                uop.lq_slot = self._lq_next_slot
            queue.append(uop)
            self.lq_version += 1
        else:
            queue = self.store_queue
            if queue:
                uop.sq_slot = (queue[-1].sq_slot + 1) % self.stq_capacity
            else:
                uop.sq_slot = self._sq_next_slot
            queue.append(uop)
            self.sq_version += 1

    # -- address clamping ------------------------------------------------------

    def _clamp(self, address: int, size: int) -> int:
        """Clamp a (possibly wrong-path) address into the memory range."""
        address &= MASK64
        if address + size > self.memory_size:
            address %= (self.memory_size - size)
        return address

    # -- per-cycle operation ----------------------------------------------------

    def drain_committed_store(self, cycle: int) -> bool:
        """Drain the committed store at the SQ head toward memory.

        A store hit retires in one cycle; a store miss (posted write-through)
        blocks the head until the write reaches memory, which is how
        secret-dependent store destinations become timing-visible (Fig. 6).
        Returns True if a store left the queue this cycle.
        """
        if not self.store_queue:
            return False
        head = self.store_queue[0]
        if not head.committed:
            return False
        if not head.probed:
            address = self._clamp(head.mem_addr, head.mem_size)
            result = self.dcache.request(address, cycle, is_store=True)
            if not result.accepted:
                return False
            head.probed = True
            head.dcache_hit = result.hit
            head.drain_complete_cycle = result.complete_cycle
        if not head.dcache_hit:
            # Non-coalescing write-through store buffer: every missing store
            # occupies the buffer head for the posted-write latency.
            head.drain_complete_cycle = max(
                head.drain_complete_cycle,
                cycle + self.store_miss_drain_penalty,
            )
            head.dcache_hit = True  # penalty applied once; now just wait
        if cycle < head.drain_complete_cycle:
            return False
        address = self._clamp(head.mem_addr, head.mem_size)
        self.memory.store(address, head.store_data, head.mem_size)
        self.store_queue.popleft()
        self.sq_version += 1
        self._sq_next_slot = (head.sq_slot + 1) % self.stq_capacity
        return True

    def probe_stores(self, cycle: int, max_probes: int = 1) -> int:
        """Probe the D-cache for stores whose addresses just resolved.

        Real out-of-order cores present store addresses to the cache at
        execution time (to begin the write-miss transaction early), so the
        miss handling — MSHR allocation, prefetcher triggers, TLB fills —
        happens speculatively, inside the iteration that executes the store.
        The architectural memory write itself still waits for commit.
        """
        probes = 0
        for store in self.store_queue:
            if probes >= max_probes:
                break
            if not store.addr_ready or store.probed:
                continue
            address = self._clamp(store.mem_addr, store.mem_size)
            result = self.dcache.request(address, cycle, is_store=True)
            if not result.accepted:
                break  # MSHRs full: retry next cycle, in order
            store.probed = True
            store.dcache_hit = result.hit
            store.drain_complete_cycle = result.complete_cycle
            probes += 1
        return probes

    def issue_loads(self, cycle: int, max_ports: int) -> list[MicroOp]:
        """Issue eligible loads to the cache / forwarding network.

        Returns loads that were *started* this cycle (their
        ``mem_complete_cycle`` is set; the core collects them when done).
        """
        started = []
        ports_left = max_ports
        store_queue = self.store_queue
        for load in self.load_queue:
            if ports_left == 0:
                break
            if not load.addr_ready or load.mem_issued:
                continue
            if store_queue:
                status, store = self._older_store_status(load)
                if status == "wait":
                    continue
            else:
                status, store = "ok", None
            load.mem_issued = True
            if status == "forward":
                load.forwarded = True
                load.mem_complete_cycle = cycle + FORWARD_LATENCY
                load.result = self._extract(store, load)
                self.forwards += 1
            else:
                address = self._clamp(load.mem_addr, load.mem_size)
                access = self.dcache.request(address, cycle)
                if not access.accepted:
                    load.mem_issued = False
                    continue
                load.dcache_hit = access.hit
                load.mem_complete_cycle = access.complete_cycle
                load.result = self._load_value(load, address)
                ports_left -= 1
            self.loads_issued += 1
            started.append(load)
        return started

    def _older_store_status(self, load: MicroOp):
        """Classify the youngest conflicting older store for ``load``.

        Returns ``("ok", None)`` when the load may go to the cache,
        ``("forward", store)`` when it can forward, ``("wait", None)`` when
        it must stall (unknown or partially overlapping store address).
        """
        load_start = load.mem_addr & MASK64
        load_end = load_start + load.mem_size
        for store in reversed(self.store_queue):
            if store.seq > load.seq:
                continue
            if not store.addr_ready:
                return "wait", None
            store_start = store.mem_addr & MASK64
            store_end = store_start + store.mem_size
            if store_end <= load_start or load_end <= store_start:
                continue
            # Overlap: forward only on full containment with data ready.
            if (store_start <= load_start and load_end <= store_end
                    and store.data_ready):
                return "forward", store
            return "wait", None
        return "ok", None

    def _extract(self, store: MicroOp, load: MicroOp) -> int:
        """Extract the load's bytes from a forwarding store's data."""
        offset = (load.mem_addr - store.mem_addr) & MASK64
        raw = (store.store_data >> (8 * offset)) & ((1 << (8 * load.mem_size)) - 1)
        return self._finish_load_value(load, raw)

    def _load_value(self, load: MicroOp, address: int) -> int:
        raw = self.memory.load(address, load.mem_size)
        return self._finish_load_value(load, raw)

    @staticmethod
    def _finish_load_value(load: MicroOp, raw: int) -> int:
        size, signed = load.inst.spec.mem
        if signed:
            raw = to_signed(raw, 8 * size) & MASK64
        return raw

    # -- commit / squash ---------------------------------------------------------

    def on_commit(self, uop: MicroOp) -> None:
        if uop.is_load:
            queue = self.load_queue
            if queue and queue[0] is uop:
                # Loads commit in program order, so the head is the common
                # case; ``remove`` stays as the slow path for robustness.
                queue.popleft()
            elif uop in queue:
                queue.remove(uop)
            else:
                return
            self.lq_version += 1
            self._lq_next_slot = (uop.lq_slot + 1) % self.ldq_capacity
        # Stores stay in the SQ (marked committed) until they drain.

    def squash(self, is_squashed) -> None:
        if self.load_queue:
            kept = [u for u in self.load_queue if not is_squashed(u)]
            if len(kept) != len(self.load_queue):
                self.load_queue = deque(kept)
                self.lq_version += 1
        if self.store_queue:
            kept = [u for u in self.store_queue
                    if u.committed or not is_squashed(u)]
            if len(kept) != len(self.store_queue):
                self.store_queue = deque(kept)
                self.sq_version += 1

    def committed_stores_pending(self) -> bool:
        return any(u.committed for u in self.store_queue)

    def reset_slots(self) -> None:
        """Re-home circular slot allocation (called at serializing flushes).

        Keeps snapshot columns positionally comparable across iterations,
        mirroring the paper's "all simulations begin in the same reset
        state" discipline at iteration granularity.
        """
        if not self.load_queue:
            self._lq_next_slot = 0
        if not self.store_queue:
            self._sq_next_slot = 0

    def reset(self) -> None:
        """Reset-from-checkpoint path: empty queues, re-homed slots.

        Only valid once in-flight stores have drained (or are being
        discarded along with the rest of the pipeline by a checkpoint
        restore, which rewrites memory wholesale).
        """
        if self.load_queue:
            self.load_queue.clear()
            self.lq_version += 1
        if self.store_queue:
            self.store_queue.clear()
            self.sq_version += 1
        self.loads_issued = 0
        self.forwards = 0
        self._lq_next_slot = 0
        self._sq_next_slot = 0

    # -- tracer state exposure -----------------------------------------------------

    def sq_addresses(self) -> tuple[int, ...]:
        row = [0] * self.stq_capacity
        for u in self.store_queue:
            row[u.sq_slot] = u.mem_addr if u.addr_ready else 0
        return tuple(row)

    def sq_pcs(self) -> tuple[int, ...]:
        row = [0] * self.stq_capacity
        for u in self.store_queue:
            row[u.sq_slot] = u.pc
        return tuple(row)

    def lq_addresses(self) -> tuple[int, ...]:
        row = [0] * self.ldq_capacity
        for u in self.load_queue:
            row[u.lq_slot] = u.mem_addr if u.addr_ready else 0
        return tuple(row)

    def lq_pcs(self) -> tuple[int, ...]:
        row = [0] * self.ldq_capacity
        for u in self.load_queue:
            row[u.lq_slot] = u.pc
        return tuple(row)


class BatchLoadStoreUnit(LoadStoreUnit):
    """LSU for the lane-batched core (:mod:`repro.uarch.batch_core`).

    All queue timing stays scalar: the batch core settles every effective
    address before it reaches the LSU (a per-lane address is a ``mem``
    divergence), so slots, forwarding decisions and cache traffic are
    identical across lanes.  The only laned values flowing through here
    are load results and forwarded store data, which only need the
    sign-extension step vectorized.
    """

    _SIGN_SHIFTS = {size: np.uint64(64 - 8 * size) for size in (1, 2, 4)}

    @staticmethod
    def _finish_load_value(load: MicroOp, raw):
        if not isinstance(raw, np.ndarray):
            return LoadStoreUnit._finish_load_value(load, raw)
        size, signed = load.inst.spec.mem
        if signed and size < 8:
            width = BatchLoadStoreUnit._SIGN_SHIFTS[size]
            shifted = np.ascontiguousarray(raw << width)
            raw = (shifted.view(np.int64) >> np.int64(width)).astype(np.uint64)
        return settle_lanes(raw)
