"""Lane-batched cycle-accurate core: one pipeline, N campaign inputs.

For constant-time code, the OoO core's *timing* state — fetch, rename,
scheduling, cache sets touched, branch outcomes — is identical across
campaign inputs; only register/memory *values* differ.  :class:`BatchCore`
exploits this the same way the functional :class:`~repro.isa.batch_interpreter.BatchInterpreter`
does: a single fetch/decode/rename/schedule/commit state machine (the
unmodified :class:`~repro.uarch.core.Core` control loop) drives all lanes,
while operand values become numpy ``(n_lanes,)`` uint64 arrays exactly
where they differ.

The invariant that makes this sound is *timing stays scalar*: every value
that feeds a timing decision — effective addresses, branch outcomes, jump
targets, operand-dependent divider latencies, fast-bypass triggers,
syscall behaviour — must settle to one shared scalar
(:func:`~repro.uarch.exec_units.settle_lanes`).  When it cannot, the lanes
are *observably different to an attacker with a cycle counter*: the core
raises :class:`LaneDivergence` carrying a first-class
:class:`~repro.isa.batch_interpreter.DivergenceEvent` (same shape PR 6's
functional batching reports), and the execution backend falls back to
per-lane scalar simulation for the disagreeing lanes.  A divergence is
therefore simultaneously a fallback trigger and a leak signal.

Wrong-path (transient) execution is covered by the same rule: speculative
uops read lane values and their divergences raise like any other, which is
exactly right — a transiently-divergent branch or address is a Spectre-style
leak candidate, and the scalar fallback re-simulates it faithfully per lane.

The scalar :class:`~repro.uarch.core.Core` remains the authoritative
reference: differential tests pin every per-lane digest and verdict
bit-identical to N independent scalar runs.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.isa.batch_interpreter import DivergenceEvent
from repro.isa.batch_semantics import batch_branch_taken, batch_compute_alu
from repro.isa.instructions import FuncClass
from repro.isa.interpreter import ExecutionError
from repro.isa.semantics import MASK64
from repro.kernel.memory_map import MemoryMap
from repro.kernel.proxy_kernel import ProxyKernel
from repro.uarch.config import CoreConfig, MEGA_BOOM
from repro.uarch.core import Core, _CommittedState, _FoldRecord
from repro.uarch.exec_units import batch_divider_latency, settle_lanes
from repro.uarch.lsu import BatchLoadStoreUnit

_U64 = np.uint64
_BYTE_SHIFTS = np.arange(0, 64, 8, dtype=np.uint64)
_JALR_ALIGN = _U64(MASK64 - 1)


class LaneDivergence(Exception):
    """Cross-lane divergence in timing-relevant core state.

    Carries the :class:`DivergenceEvent` (what/where, which lanes split
    from lane 0) and ``lane_keys`` — one hashable key per lane whose
    equality classes tell the fallback how to partition the batch.
    """

    def __init__(self, event: DivergenceEvent, lane_keys: tuple):
        super().__init__(event.describe())
        self.event = event
        self.lane_keys = tuple(lane_keys)


class LaneMemory:
    """``(n_lanes, size)`` byte planes with :class:`FlatMemory` semantics.

    Bounds behaviour mirrors the scalar memory exactly (unaligned OK,
    never wraps, out-of-range raises), so the batch core's wrong-path
    accesses fault or clamp identically to scalar runs.
    """

    def __init__(self, n_lanes: int, size: int):
        self.n_lanes = n_lanes
        self.size = size
        self.data = np.zeros((n_lanes, size), dtype=np.uint8)

    def _check(self, what: str, address: int, size: int) -> None:
        if address < 0 or address + size > self.size:
            raise ExecutionError(
                f"{what} out of bounds: address={address:#x} size={size}"
            )

    # -- lockstep (all-lane) accesses ---------------------------------------

    def load(self, address: int, size: int):
        """Per-lane little-endian load; settles to an int when lanes agree."""
        self._check("load", address, size)
        window = self.data[:, address:address + size].astype(np.uint64)
        values = (window << _BYTE_SHIFTS[:size]).sum(axis=1, dtype=np.uint64)
        return settle_lanes(values)

    def store(self, address: int, value, size: int) -> None:
        """Store a scalar (broadcast) or per-lane array at one address."""
        self._check("store", address, size)
        if isinstance(value, np.ndarray):
            lanes = value.astype(np.uint64, copy=False)
        else:
            lanes = np.full(self.n_lanes, value & MASK64, dtype=np.uint64)
        self.data[:, address:address + size] = (
            (lanes[:, None] >> _BYTE_SHIFTS[:size]).astype(np.uint8)
        )

    def write_bytes(self, address: int, payload) -> None:
        payload = bytes(payload)
        self._check("write", address, len(payload))
        self.data[:, address:address + len(payload)] = np.frombuffer(
            payload, dtype=np.uint8
        )

    def read_bytes(self, address: int, length: int) -> bytes:
        """Uniform read: raises if any lane's bytes differ (the caller is
        timing/bookkeeping code that must never see per-lane data)."""
        self._check("read", address, length)
        window = self.data[:, address:address + length]
        if self.n_lanes > 1 and not bool((window == window[0]).all()):
            raise ExecutionError(
                f"lane-divergent read_bytes at {address:#x}+{length}"
            )
        return window[0].tobytes()

    # -- per-lane accesses ---------------------------------------------------

    def read_bytes_lane(self, lane: int, address: int, length: int) -> bytes:
        self._check("read", address, length)
        return self.data[lane, address:address + length].tobytes()

    def write_bytes_lane(self, lane: int, address: int, payload) -> None:
        payload = bytes(payload)
        self._check("write", address, len(payload))
        self.data[lane, address:address + len(payload)] = np.frombuffer(
            payload, dtype=np.uint8
        )

    def lane_window(self, address: int, length: int) -> np.ndarray:
        """The raw ``(n_lanes, length)`` byte window (digest computation)."""
        self._check("read", address, length)
        return self.data[:, address:address + length]


class _LaneMemView:
    """One lane's byte-level view of a :class:`LaneMemory`."""

    __slots__ = ("_memory", "_lane")

    def __init__(self, memory: LaneMemory, lane: int):
        self._memory = memory
        self._lane = lane

    def read_bytes(self, address: int, length: int) -> bytes:
        return self._memory.read_bytes_lane(self._lane, address, length)

    def write_bytes(self, address: int, payload) -> None:
        self._memory.write_bytes_lane(self._lane, address, payload)


class _LaneArch:
    """Per-lane architectural (committed) view for that lane's kernel."""

    __slots__ = ("_core", "_lane", "memory")

    def __init__(self, core: "BatchCore", lane: int):
        self._core = core
        self._lane = lane
        self.memory = _LaneMemView(core.memory, lane)

    def read_reg(self, num: int) -> int:
        if num == 0:
            return 0
        core = self._core
        value = core.prf_value[core.committed_map[num]]
        if isinstance(value, np.ndarray):
            return int(value[self._lane])
        return value

    def write_reg(self, num: int, value: int) -> None:
        if num == 0:
            return
        core = self._core
        prd = core.committed_map[num]
        current = core.prf_value[prd]
        value &= MASK64
        if isinstance(current, np.ndarray):
            current[self._lane] = value
        elif value != current:
            lanes = np.full(core.n_lanes, current, dtype=np.uint64)
            lanes[self._lane] = value
            core.prf_value[prd] = lanes


class _BatchKernelMux:
    """Presents N per-lane proxy kernels as one kernel to the shared core.

    Syscall *behaviour* must be lockstep (checked via each kernel's
    ``lockstep_signature``); syscall *data* — console bytes, exit codes,
    brk values — is serviced per lane against per-lane views.
    """

    def __init__(self, kernels):
        self.kernels = list(kernels)
        self._core: "BatchCore | None" = None

    def handle_ecall(self, arch) -> bool:
        core = self._core
        views = core.lane_arch
        signatures = tuple(
            kernel.lockstep_signature(view)
            for kernel, view in zip(self.kernels, views)
        )
        head = signatures[0]
        if any(sig != head for sig in signatures[1:]):
            core._diverge("syscall", core._last_commit_pc, "ecall",
                          signatures)
        results = [
            kernel.handle_ecall(view)
            for kernel, view in zip(self.kernels, views)
        ]
        # Syscalls write at most a0; re-settle it so a uniform return
        # value (write length, brk) goes back to a shared scalar.
        core._settle_committed_reg(10)
        return results[0]

    @property
    def exit_code(self) -> int:
        return self.kernels[0].exit_code

    @property
    def console_text(self) -> str:
        return self.kernels[0].console_text


class BatchCore(Core):
    """N campaign inputs through one cycle-accurate OoO pipeline.

    ``programs`` must share one instruction stream (same workload, per-lane
    patched data sections).  All timing structures — ROB, issue queue,
    caches, TLBs, MSHRs, predictor, LSU queues, exec units — are the
    scalar :class:`Core`'s own, driven once per cycle for all lanes;
    ``prf_value`` entries and data memory hold per-lane values only where
    lanes actually differ.
    """

    def __init__(self, programs, config: CoreConfig = MEGA_BOOM, *,
                 memory_map: MemoryMap | None = None,
                 kernels=None, tracer=None):
        if not programs:
            raise ValueError("BatchCore needs at least one lane")
        stream = programs[0].instructions
        for program in programs[1:]:
            if program.instructions is not stream \
                    and program.instructions != stream:
                raise ValueError(
                    "batch lanes must share one instruction stream")
        self.n_lanes = len(programs)
        self.programs = list(programs)
        memory_map = memory_map or MemoryMap()
        if kernels is None:
            kernels = [ProxyKernel(memory_map=memory_map) for _ in programs]
        if len(kernels) != self.n_lanes:
            raise ValueError("kernels must be one per lane")
        mux = _BatchKernelMux(kernels)
        super().__init__(programs[0], config, memory_map=memory_map,
                         kernel=mux, tracer=tracer)
        # Replace the scalar memory/LSU with their laned counterparts; the
        # dcache already dispatches digests through ``self._line_digest``.
        self.memory = LaneMemory(self.n_lanes, self.memory_map.memory_size)
        for lane, program in enumerate(programs):
            self.memory.write_bytes_lane(lane, program.data_base,
                                         bytes(program.data))
        self.lsu = BatchLoadStoreUnit(
            ldq_entries=config.ldq_entries,
            stq_entries=config.stq_entries,
            dcache=self.dcache,
            memory=self.memory,
            memory_size=self.memory_map.memory_size,
            store_miss_drain_penalty=config.store_miss_drain_penalty,
        )
        self.arch = _CommittedState(self)
        self.lane_arch = [_LaneArch(self, lane)
                          for lane in range(self.n_lanes)]
        mux._core = self
        self._last_commit_pc = programs[0].entry

    # -- divergence -----------------------------------------------------------

    def _diverge(self, kind: str, pc: int, mnemonic: str, lane_keys) -> None:
        lane_keys = tuple(lane_keys)
        head = lane_keys[0]
        lanes = tuple(lane for lane, key in enumerate(lane_keys)
                      if key != head)
        raise LaneDivergence(
            DivergenceEvent(pc=pc, step=self.cycle, kind=kind,
                            mnemonic=mnemonic, lanes=lanes),
            lane_keys,
        )

    def _settle_committed_reg(self, num: int) -> None:
        prd = self.committed_map[num]
        value = self.prf_value[prd]
        if isinstance(value, np.ndarray):
            self.prf_value[prd] = settle_lanes(value)

    # -- overridden core stages ------------------------------------------------

    def _commit_bookkeeping(self, uop) -> None:
        # Track the last committed PC so syscall divergences (raised from
        # inside the kernel mux, after the ecall already left the ROB) can
        # still report where they happened.
        self._last_commit_pc = uop.pc
        super()._commit_bookkeeping(uop)

    def _line_digest(self, line_addr: int):
        """LFB data digest; a per-lane tuple when line contents differ."""
        base = (line_addr << self.dcache.cache.line_shift)
        base %= max(self.memory_map.memory_size - 64, 1)
        window = self.memory.lane_window(base, 64)
        if self.n_lanes == 1 or bool((window == window[0]).all()):
            return zlib.crc32(window[0].tobytes())
        return tuple(zlib.crc32(window[lane].tobytes())
                     for lane in range(self.n_lanes))

    def _begin_execution(self, uop, unit) -> None:
        inst = uop.inst
        prf_value = self.prf_value
        prs1 = uop.prs1
        prs2 = uop.prs2
        a = prf_value[prs1] if prs1 >= 0 else 0
        if uop.uses_imm:
            b = inst.imm & MASK64
        else:
            b = prf_value[prs2] if prs2 >= 0 else 0
        a_laned = isinstance(a, np.ndarray)
        b_laned = isinstance(b, np.ndarray)
        if not a_laned and not b_laned:
            return super()._begin_execution(uop, unit)
        n = self.n_lanes
        av = a if a_laned else np.full(n, a, dtype=np.uint64)
        bv = b if b_laned else np.full(n, b, dtype=np.uint64)
        fc = inst.func_class
        config = self.config
        latency = config.alu_latency
        if fc is FuncClass.MUL:
            latency = config.mul_latency
        elif fc is FuncClass.DIV:
            if config.variable_div_latency:
                lats = batch_divider_latency(av, bv, config.div_latency)
                if any(lat != lats[0] for lat in lats[1:]):
                    self._diverge("div-latency", uop.pc, inst.mnemonic, lats)
                latency = lats[0]
            else:
                latency = config.div_latency
        if fc in (FuncClass.ALU, FuncClass.MUL, FuncClass.DIV):
            if inst.mnemonic == "auipc":
                av = np.full(n, uop.pc, dtype=np.uint64)
            elif inst.mnemonic == "lui":
                av = np.zeros(n, dtype=np.uint64)
            uop.result = settle_lanes(batch_compute_alu(inst.mnemonic, av, bv))
        elif fc is FuncClass.BRANCH:
            taken = batch_branch_taken(inst.mnemonic, av, bv)
            if bool(taken.any()) != bool(taken.all()):
                self._diverge("branch", uop.pc, inst.mnemonic,
                              tuple(bool(t) for t in taken))
            uop.resolved_taken = bool(taken[0])
            uop.resolved_target = inst.branch_target()
        elif inst.mnemonic == "jalr":
            uop.result = (uop.pc + 4) & MASK64
            targets = (av + _U64(inst.imm & MASK64)) & _JALR_ALIGN
            target = settle_lanes(targets)
            if isinstance(target, np.ndarray):
                self._diverge("jump", uop.pc, inst.mnemonic,
                              tuple(int(t) for t in targets))
            uop.resolved_target = target
            uop.resolved_taken = True
        elif fc is FuncClass.LOAD or fc is FuncClass.STORE:
            addresses = av + _U64(inst.imm & MASK64)
            address = settle_lanes(addresses)
            if isinstance(address, np.ndarray):
                self._diverge("mem", uop.pc, inst.mnemonic,
                              tuple(int(x) for x in addresses))
            uop.mem_addr = address
            if fc is FuncClass.STORE:
                uop.store_data = settle_lanes(bv) if b_laned else b
        cycle = self.cycle
        uop.executing = True
        uop.issue_cycle = cycle
        unit.start(uop, cycle, latency)

    def _try_fast_bypass(self, uop) -> bool:
        if not self.config.fast_bypass or uop.inst.mnemonic != "and":
            return False
        if uop.inst.rd == 0:
            return False
        inst = uop.inst
        operands = (self.map_table[inst.rs1], self.map_table[inst.rs2])
        triggered = np.zeros(self.n_lanes, dtype=bool)
        for phys in operands:
            if not self.prf_ready[phys]:
                continue
            value = self.prf_value[phys]
            if isinstance(value, np.ndarray):
                triggered |= (value == 0)
            elif value == 0:
                triggered[:] = True
        if not bool(triggered.any()):
            return False
        if not bool(triggered.all()):
            # The bypass elides execution entirely, so lanes that would and
            # would not trigger it take observably different paths.
            self._diverge("fast-bypass", uop.pc, "and",
                          tuple(bool(t) for t in triggered))
        old_prd = self.map_table[inst.rd]
        prd = self.free_list.popleft()
        self.prf_value[prd] = 0
        self.prf_ready[prd] = True
        self.map_table[inst.rd] = prd
        self.pending_folds.append(
            _FoldRecord(uop.seq, uop.pc, inst.rd, prd, old_prd)
        )
        uop.fast_bypassed = True
        self.stats.fast_bypasses += 1
        return True

    # -- checkpoint restore ------------------------------------------------------

    def restore_architectural_states(self, checkpoints) -> None:
        """Adopt one functional checkpoint per lane.

        Control flow must already agree — a ``(pc, steps)`` mismatch means
        the lanes diverged during the functional prologue and cannot share
        a pipeline, so it raises a ``checkpoint`` divergence immediately.
        """
        heads = tuple((ckpt.pc, ckpt.steps) for ckpt in checkpoints)
        if any(head != heads[0] for head in heads[1:]):
            self._diverge("checkpoint", heads[0][0], "<restore>", heads)
        self._flush_all()
        self.dcache.reset()
        self.icache.reset()
        self.predictor.reset()
        self.lsu.reset()
        for reg in range(1, 32):
            values = [ckpt.regs[reg] for ckpt in checkpoints]
            if all(value == values[0] for value in values[1:]):
                self.arch.write_reg(reg, values[0])
            else:
                self.prf_value[self.committed_map[reg]] = np.array(
                    [value & MASK64 for value in values], dtype=np.uint64
                )
        for lane, ckpt in enumerate(checkpoints):
            for page_base, payload in ckpt.pages:
                self.memory.write_bytes_lane(lane, page_base, payload)
            self.kernel.kernels[lane].restore_state((ckpt.console, ckpt.brk))
        self.fetch_pc = checkpoints[0].pc
        self.fetch_resume_cycle = self.cycle
        self.halted = False
