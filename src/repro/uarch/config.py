"""Core configurations, mirroring Table III of the paper.

Two reference configurations are provided: :data:`MEGA_BOOM` (the large
8-wide design the paper deploys MicroSampler on) and :data:`SMALL_BOOM` (the
1-wide design used in the Table VI/VII scalability measurements).  Both are
plain dataclasses, so case studies and ablations can derive variants with
:func:`dataclasses.replace`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """One level-1 cache."""

    sets: int
    ways: int
    line_bytes: int = 64
    mshrs: int = 8
    hit_latency: int = 3
    #: Bytes delivered per fetch for the I-cache.
    fetch_bytes: int = 16

    @property
    def capacity_bytes(self) -> int:
        return self.sets * self.ways * self.line_bytes

    def state_bits(self) -> int:
        """Rough count of state bits (data + tags), for scalability reporting."""
        tag_bits = 32
        return self.sets * self.ways * (8 * self.line_bytes + tag_bits + 2)


@dataclass(frozen=True)
class CoreConfig:
    """Full out-of-order core configuration (Table III)."""

    name: str
    fetch_width: int
    decode_width: int
    issue_width: int
    fetch_buffer_entries: int
    iq_entries: int
    rob_entries: int
    int_prf_entries: int
    ldq_entries: int
    stq_entries: int
    lfb_entries: int
    bp_entries: int = 2048
    bp_history_bits: int = 11
    btb_entries: int = 64
    ras_entries: int = 8
    dcache: CacheConfig = CacheConfig(sets=64, ways=8, mshrs=8)
    icache: CacheConfig = CacheConfig(sets=64, ways=8, mshrs=4, fetch_bytes=16)
    #: Optional unified L2 behind the L1D (None = misses go to memory, as in
    #: the paper's two reference configurations).
    l2: CacheConfig | None = None
    l2_latency: int = 12
    dtlb_entries: int = 32
    #: Execution unit counts.
    alu_count: int = 4
    mul_count: int = 2
    div_count: int = 1
    agu_count: int = 2
    #: Latencies (cycles).
    alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 12
    memory_latency: int = 30
    #: Per-store drain cost when the store missed the (write-through,
    #: no-write-allocate) L1: the non-coalescing store buffer holds the
    #: SQ head until the posted write completes.
    store_miss_drain_penalty: int = 24
    tlb_miss_latency: int = 20
    mispredict_redirect_penalty: int = 2
    #: Cycles between a branch resolving as mispredicted and the squash
    #: taking effect (the kill broadcast through a deep pipeline).  During
    #: this window wrong-path instructions keep fetching and executing —
    #: including transiently resolving their own branches — exactly the
    #: behaviour the CT-MEM-CMP case study (Section VII-C1) relies on.
    branch_kill_latency: int = 6
    #: Result values linger on the bypass network for this many cycles.
    bypass_depth: int = 3
    #: Model an early-exit divider whose latency depends on operand magnitude.
    variable_div_latency: bool = False
    #: Enable the trivial-computation "fast bypass" optimization (Sec. VII-B).
    fast_bypass: bool = False
    #: Next-line prefetcher enabled (Table III: Next-Line Prefetcher).
    prefetcher_enabled: bool = True
    commit_width: int = 0  # 0 = same as decode_width

    def __post_init__(self):
        if self.commit_width == 0:
            object.__setattr__(self, "commit_width", self.decode_width)

    def with_(self, **overrides) -> "CoreConfig":
        """Return a copy of this configuration with fields replaced."""
        return dataclasses.replace(self, **overrides)

    def core_structure_bits(self) -> int:
        """State bits in core pipeline structures only (ROB, PRF, queues...).

        This is the size axis the paper's Table VII compares ("approximately
        four times larger ... with respect to size of structures (e.g.,
        ROB)"); cache data arrays are excluded because both configurations
        share similar cache geometry.
        """
        bits = 0
        bits += self.int_prf_entries * 64
        bits += self.rob_entries * (32 + 8)
        bits += self.ldq_entries * (64 + 32)
        bits += self.stq_entries * (64 + 64 + 32)
        bits += self.fetch_buffer_entries * 48
        bits += self.iq_entries * 96
        bits += self.lfb_entries * (64 * 8 + 64)
        bits += self.ras_entries * 64
        bits += self.dtlb_entries * 128
        return bits

    def state_bits(self) -> int:
        """Approximate number of microarchitectural state bits in the design.

        Used to report the design-size axis of Table VII.  Counts the major
        storage structures: PRF, ROB, LDQ/STQ, fetch buffer, LFB, predictor
        tables, TLB and both caches.
        """
        bits = 0
        bits += self.int_prf_entries * 64
        bits += self.rob_entries * (32 + 8)          # PC + status per entry
        bits += self.ldq_entries * (64 + 32)          # address + metadata
        bits += self.stq_entries * (64 + 64 + 32)     # address + data + meta
        bits += self.fetch_buffer_entries * 48
        bits += self.lfb_entries * (64 * 8 + 64)      # line data + address
        bits += self.bp_entries * 2 + self.btb_entries * 96
        bits += self.ras_entries * 64
        bits += self.dtlb_entries * 128
        bits += self.dcache.state_bits() + self.icache.state_bits()
        return bits


MEGA_BOOM = CoreConfig(
    name="MegaBoom",
    fetch_width=8,
    decode_width=4,
    issue_width=4,
    fetch_buffer_entries=32,
    iq_entries=32,
    rob_entries=128,
    int_prf_entries=128,
    ldq_entries=32,
    stq_entries=32,
    lfb_entries=64,
    dcache=CacheConfig(sets=64, ways=8, mshrs=8),
    icache=CacheConfig(sets=64, ways=8, mshrs=4, fetch_bytes=16),
    dtlb_entries=32,
    alu_count=4,
    mul_count=2,
    div_count=1,
    agu_count=2,
)

#: A mid-size configuration (between the paper's two) used for scaling
#: curves with more than two points.
MEDIUM_BOOM = CoreConfig(
    name="MediumBoom",
    fetch_width=4,
    decode_width=2,
    issue_width=2,
    fetch_buffer_entries=16,
    iq_entries=16,
    rob_entries=64,
    int_prf_entries=80,
    ldq_entries=16,
    stq_entries=16,
    lfb_entries=16,
    dcache=CacheConfig(sets=64, ways=8, mshrs=4),
    icache=CacheConfig(sets=64, ways=8, mshrs=2, fetch_bytes=16),
    dtlb_entries=16,
    alu_count=2,
    mul_count=1,
    div_count=1,
    agu_count=1,
)

SMALL_BOOM = CoreConfig(
    name="SmallBoom",
    fetch_width=4,
    decode_width=1,
    issue_width=1,
    fetch_buffer_entries=8,
    iq_entries=8,
    rob_entries=32,
    int_prf_entries=52,
    ldq_entries=8,
    stq_entries=8,
    lfb_entries=8,
    dcache=CacheConfig(sets=64, ways=4, mshrs=4),
    icache=CacheConfig(sets=64, ways=8, mshrs=2, fetch_bytes=8),
    dtlb_entries=8,
    alu_count=1,
    mul_count=1,
    div_count=1,
    agu_count=1,
)
