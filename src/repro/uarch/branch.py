"""Branch prediction: gshare direction predictor, BTB and return-address stack.

The front end predicts speculatively and updates the global history register
in place; every predicted control-flow instruction carries a checkpoint
(GHR + RAS) that is restored on misprediction.  Counter tables (PHT) and the
BTB are updated non-speculatively at commit, as in BOOM.

Under lane batching (:mod:`repro.uarch.batch_core`) one predictor instance
is shared by every lane: that is sound because the batched core only stays
lockstep while all lanes resolve every branch the same way — the first
cross-lane difference in a resolved direction or an indirect target raises
a divergence before it could train the shared tables differently.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.uarch.config import CoreConfig


@dataclass(frozen=True)
class PredictorCheckpoint:
    """Snapshot of speculative predictor state, restored on squash."""

    ghr: int
    ras: tuple[int, ...]


class GsharePredictor:
    """gshare: PC xor global-history indexes a table of 2-bit counters."""

    def __init__(self, entries: int, history_bits: int):
        if entries & (entries - 1):
            raise ValueError("gshare table size must be a power of two")
        self.entries = entries
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.index_mask = entries - 1
        self.counters = [1] * entries  # weakly not-taken
        self.ghr = 0

    def index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.ghr) & self.index_mask

    def predict(self, pc: int) -> bool:
        return self.counters[self.index(pc)] >= 2

    def predict_and_update_history(self, pc: int, taken: bool) -> None:
        """Speculatively shift the predicted outcome into the GHR."""
        self.ghr = ((self.ghr << 1) | int(taken)) & self.history_mask

    def train(self, pc: int, taken: bool, ghr_at_predict: int) -> None:
        """Commit-time counter update, using the history seen at prediction."""
        index = ((pc >> 2) ^ ghr_at_predict) & self.index_mask
        counter = self.counters[index]
        if taken and counter < 3:
            self.counters[index] = counter + 1
        elif not taken and counter > 0:
            self.counters[index] = counter - 1

    def reset(self) -> None:
        """Power-on state: all counters weakly not-taken, empty history."""
        self.counters = [1] * self.entries
        self.ghr = 0


class BranchTargetBuffer:
    """Small fully-associative BTB with FIFO replacement."""

    def __init__(self, entries: int):
        self.capacity = entries
        self.table: dict[int, int] = {}
        self.order: deque[int] = deque()

    def lookup(self, pc: int) -> int | None:
        return self.table.get(pc)

    def update(self, pc: int, target: int) -> None:
        if pc not in self.table:
            if len(self.order) >= self.capacity:
                evicted = self.order.popleft()
                del self.table[evicted]
            self.order.append(pc)
        self.table[pc] = target

    def reset(self) -> None:
        self.table.clear()
        self.order.clear()


class ReturnAddressStack:
    """Bounded return-address stack with speculative push/pop."""

    def __init__(self, entries: int):
        self.capacity = entries
        self.stack: deque[int] = deque()

    def push(self, address: int) -> None:
        if len(self.stack) >= self.capacity:
            self.stack.popleft()
        self.stack.append(address)

    def pop(self) -> int | None:
        if self.stack:
            return self.stack.pop()
        return None

    def snapshot(self) -> tuple[int, ...]:
        return tuple(self.stack)

    def restore(self, snapshot: tuple[int, ...]) -> None:
        self.stack = deque(snapshot)

    def reset(self) -> None:
        self.stack.clear()


class BranchPredictor:
    """Front-end prediction unit combining gshare, BTB and RAS."""

    def __init__(self, config: CoreConfig):
        self.gshare = GsharePredictor(config.bp_entries, config.bp_history_bits)
        self.btb = BranchTargetBuffer(config.btb_entries)
        self.ras = ReturnAddressStack(config.ras_entries)
        self.mispredicts = 0
        self.branches = 0

    def checkpoint(self) -> PredictorCheckpoint:
        return PredictorCheckpoint(ghr=self.gshare.ghr, ras=self.ras.snapshot())

    def reset(self) -> None:
        """Reset-from-checkpoint path: untrained predictors, zero counters."""
        self.gshare.reset()
        self.btb.reset()
        self.ras.reset()
        self.mispredicts = 0
        self.branches = 0

    def restore(self, checkpoint: PredictorCheckpoint) -> None:
        self.gshare.ghr = checkpoint.ghr
        self.ras.restore(checkpoint.ras)

    def predict_branch(self, pc: int) -> tuple[bool, int]:
        """Predict a conditional branch at ``pc``: (taken, ghr_at_predict)."""
        ghr = self.gshare.ghr
        taken = self.gshare.predict(pc)
        self.gshare.predict_and_update_history(pc, taken)
        return taken, ghr

    def predict_jalr_target(self, pc: int, *, is_return: bool,
                            is_call: bool, next_pc: int) -> int | None:
        """Predict an indirect jump's target (None = no prediction, stall)."""
        if is_return:
            target = self.ras.pop()
            if is_call:
                self.ras.push(next_pc)
            return target
        target = self.btb.lookup(pc)
        if is_call:
            self.ras.push(next_pc)
        return target

    def on_call(self, next_pc: int) -> None:
        self.ras.push(next_pc)

    def train_branch(self, pc: int, taken: bool, target: int,
                     ghr_at_predict: int) -> None:
        """Commit-time training for a conditional branch."""
        self.branches += 1
        self.gshare.train(pc, taken, ghr_at_predict)
        if taken:
            self.btb.update(pc, target)

    def train_indirect(self, pc: int, target: int) -> None:
        self.btb.update(pc, target)
