"""Micro-operation record flowing through the out-of-order pipeline."""

from __future__ import annotations

from repro.isa.instructions import Instruction


class MicroOp:
    """One in-flight instruction and all its pipeline bookkeeping."""

    __slots__ = (
        "inst", "pc", "seq",
        # rename
        "prs1", "prs2", "prd", "old_prd", "uses_imm",
        # status
        "in_iq", "executing", "complete", "committed",
        # result
        "result",
        # control flow
        "predicted_taken", "predicted_target", "ghr_at_predict",
        "predictor_checkpoint", "prediction_made",
        "resolved_taken", "resolved_target", "mispredicted",
        # memory
        "is_load", "is_store", "mem_addr", "addr_ready",
        "store_data", "data_ready", "mem_issued", "forwarded",
        "mem_complete_cycle", "dcache_hit", "drain_complete_cycle", "probed",
        # stable structure slots (for RTL-faithful per-column sampling)
        "rob_slot", "lq_slot", "sq_slot", "rob_value",
        # fast bypass
        "folded_pcs", "folded_frees", "fast_bypassed",
        # recovery
        "_squashed", "recovery_cycle", "recovery_done",
        # stage timestamps (for the pipeline viewer; -1 = not reached)
        "fetch_cycle", "dispatch_cycle", "issue_cycle", "complete_cycle",
        "commit_cycle",
    )

    def __init__(self, inst: Instruction, seq: int):
        self.inst = inst
        self.pc = inst.pc
        self.seq = seq
        self.prs1 = -1
        self.prs2 = -1
        self.prd = -1
        self.old_prd = -1
        self.uses_imm = False
        self.in_iq = False
        self.executing = False
        self.complete = False
        self.committed = False
        self.result = 0
        self.predicted_taken = False
        self.predicted_target = 0
        self.ghr_at_predict = 0
        self.predictor_checkpoint = None
        self.prediction_made = False
        self.resolved_taken = False
        self.resolved_target = 0
        self.mispredicted = False
        self.is_load = inst.is_load
        self.is_store = inst.is_store
        self.mem_addr = 0
        self.addr_ready = False
        self.store_data = 0
        self.data_ready = False
        self.mem_issued = False
        self.forwarded = False
        self.mem_complete_cycle = -1
        self.dcache_hit = False
        self.drain_complete_cycle = -1
        self.probed = False
        self.rob_slot = -1
        self.lq_slot = -1
        self.sq_slot = -1
        #: cached per-slot ROB-PC value (pc, or fold-combined scalar)
        self.rob_value = inst.pc
        #: PCs of fast-bypassed instructions folded into this ROB entry.
        self.folded_pcs: tuple[int, ...] = ()
        #: (logical_rd, prd, old_prd) tuples of folded instructions, for
        #: commit-time freeing and squash-time rename undo.
        self.folded_frees: tuple[tuple[int, int, int], ...] = ()
        self.fast_bypassed = False
        self._squashed = False
        self.recovery_cycle = -1
        self.recovery_done = False
        self.fetch_cycle = -1
        self.dispatch_cycle = -1
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.commit_cycle = -1

    @property
    def mem_size(self) -> int:
        return self.inst.spec.mem[0]

    def rob_pcs(self) -> tuple[int, ...]:
        """PCs held by this ROB entry (own PC plus any folded-in ops)."""
        if self.folded_pcs:
            return self.folded_pcs + (self.pc,)
        return (self.pc,)

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"<uop seq={self.seq} pc={self.pc:#x} {self.inst.mnemonic}"
                f"{' done' if self.complete else ''}>")
