"""DATA-style software-level leakage detection baseline (Weiser et al. [55]).

DATA records *architecturally visible* address traces — instruction fetch
addresses and data access addresses — during native execution, then applies
statistical tests across traces with different secret inputs.  It runs on the
in-order functional interpreter, exactly mirroring what a binary-
instrumentation tool sees: no microarchitectural state, no wrong-path
execution, no timing.

Reproducing this baseline demonstrates the paper's core claim (Table I):
software-level tools detect secret-dependent control flow and memory
accesses (ME-V1-CV, ME-V1-MV, the leaky square-and-multiply) but are blind
to leaks that exist only microarchitecturally (ME-V2-FB's fast bypass,
CT-MEM-CMP's transient execution).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.interpreter import Interpreter
from repro.sampler.contingency import build_contingency_table
from repro.sampler.runner import Workload, patch_program
from repro.sampler.stats import AssociationResult, measure_association
from repro.util.hashing import combine_digests, row_digest


@dataclass
class DataToolReport:
    """Verdict of the DATA-style analysis for one workload."""

    workload_name: str
    n_iterations: int
    #: association for the control-flow (instruction address) traces.
    control_flow: AssociationResult = None
    #: association for the data (memory address) traces.
    memory: AssociationResult = None
    #: addresses appearing in exactly one class.
    unique_control_flow: dict = field(default_factory=dict)
    unique_memory: dict = field(default_factory=dict)
    #: Lockstep divergences observed by the batched execution mode
    #: (:class:`~repro.isa.batch_interpreter.DivergenceEvent`): the exact
    #: points where an input's architectural behaviour depended on its data.
    #: Empty when ``batch_lanes`` is off.
    divergences: list = field(default_factory=list)

    @property
    def leakage_detected(self) -> bool:
        return self.control_flow.leaky or self.memory.leaky


def _marker_windows(markers):
    """Build (start_step, end_step, label) windows from iteration markers."""
    open_step = None
    label = 0
    windows = []
    for marker in markers:
        if marker.mnemonic == "iter.begin":
            open_step, label = marker.step, marker.label
        elif marker.mnemonic == "iter.end" and open_step is not None:
            windows.append((open_step, marker.step, label))
            open_step = None
    return windows


def _result_traces(workload: Workload, result):
    """Slice one run's architectural trace into per-iteration windows."""
    if result.exit_code != 0:
        raise RuntimeError(
            f"workload {workload.name!r} exited {result.exit_code}"
        )
    yield from _slice_by_steps(result.arch_trace,
                               _marker_windows(result.markers))


def _iteration_traces(workload: Workload, batch_lanes=None,
                      divergences: list | None = None):
    """Execute all runs, slicing architectural traces per iteration.

    Yields (label, pc_trace, mem_trace) per iteration, where traces are
    tuples of addresses in program order.  With ``batch_lanes`` set the
    inputs execute in lockstep chunks on the batch interpreter
    (bit-identical traces, per the differential battery in
    ``tests/test_batch_interpreter.py``); split events are appended to
    ``divergences`` when a list is supplied.
    """
    program = workload.assemble()
    if batch_lanes is None:
        for patches in workload.inputs:
            patched = patch_program(program, patches)
            interpreter = Interpreter(patched, record_arch_trace=True)
            yield from _result_traces(workload, interpreter.run())
        return
    from repro.isa.batch_interpreter import BatchInterpreter
    from repro.sampler.batch import resolve_batch_lanes

    lanes = resolve_batch_lanes(batch_lanes, len(workload.inputs))
    patched = [patch_program(program, patches)
               for patches in workload.inputs]
    for start in range(0, len(patched), lanes):
        batch = BatchInterpreter(patched[start:start + lanes],
                                 record_arch_trace=True)
        outcome = batch.run()
        if divergences is not None:
            divergences.extend(outcome.divergences)
        for result in outcome.lane_results:
            yield from _result_traces(workload, result)


def _slice_by_steps(events, windows):
    """Slice events into (label, pcs, mems) per window.

    Events and windows are both ordered by step, so a single forward scan
    suffices.  The instruction-address trace includes branch targets (DATA
    records the control-flow graph walk); the data trace records load/store
    addresses.
    """
    index = 0
    n_events = len(events)
    for start, end, label in windows:
        while index < n_events and events[index].step <= start:
            index += 1
        pcs = []
        mems = []
        while index < n_events and events[index].step <= end:
            event = events[index]
            pcs.append(event.pc)
            if event.kind in ("load", "store"):
                mems.append(event.address)
            elif event.kind == "branch":
                pcs.append(event.address)
            index += 1
        yield label, tuple(pcs), tuple(mems)


def run_data_tool(workload: Workload, *,
                  batch_lanes=None) -> DataToolReport:
    """Run the full DATA-style differential address-trace analysis.

    ``batch_lanes`` (``None`` = off, ``"auto"``, or an int width) executes
    the inputs in lockstep on the batch interpreter instead of one at a
    time — same verdicts from bit-identical traces, with the observed
    :class:`~repro.isa.batch_interpreter.DivergenceEvent`\\ s surfaced on
    the report.
    """
    labels = []
    pc_hashes = []
    mem_hashes = []
    pc_values: dict = {}
    mem_values: dict = {}
    divergences: list = []
    count = 0
    for label, pcs, mems in _iteration_traces(workload, batch_lanes,
                                              divergences):
        count += 1
        labels.append(label)
        pc_hashes.append(combine_digests([row_digest(pcs)]))
        mem_hashes.append(combine_digests([row_digest(mems)]))
        pc_values.setdefault(label, set()).update(pcs)
        mem_values.setdefault(label, set()).update(mems)
    report = DataToolReport(workload_name=workload.name, n_iterations=count)
    report.control_flow = measure_association(
        build_contingency_table(labels, pc_hashes)
    )
    report.memory = measure_association(
        build_contingency_table(labels, mem_hashes)
    )
    report.unique_control_flow = _unique_by_class(pc_values)
    report.unique_memory = _unique_by_class(mem_values)
    report.divergences = divergences
    return report


def _unique_by_class(values_by_class: dict) -> dict:
    labels = sorted(values_by_class)
    unique = {}
    for label in labels:
        others = set().union(
            *(values_by_class[o] for o in labels if o != label)
        ) if len(labels) > 1 else set()
        unique[label] = frozenset(values_by_class[label] - others)
    return unique
