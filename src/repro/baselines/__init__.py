"""Comparison baselines: DATA-style software analysis and formal two-safety."""

from repro.baselines.data_tool import DataToolReport, run_data_tool
from repro.baselines.formal import (
    Gate,
    Netlist,
    TwoSafetyResult,
    build_early_exit_multiplier,
    build_serial_alu,
    check_two_safety,
)

__all__ = [
    "DataToolReport",
    "Gate",
    "Netlist",
    "TwoSafetyResult",
    "build_early_exit_multiplier",
    "build_serial_alu",
    "check_two_safety",
    "run_data_tool",
]
