"""Solver-style formal constant-time verification baseline (IODINE/XENON).

Table VII contrasts MicroSampler's linear scaling with the state-space
blow-up of formal two-safety checking.  This module reproduces that contrast
honestly: it implements a small gate-level netlist representation and an
*exhaustive product-machine* two-safety checker — the semantic core of
constant-time hardware verification: for every pair of executions that agree
on public inputs but may differ in secret inputs, all timing-visible outputs
must agree at every cycle.

The checker enumerates the reachable product state space, so its runtime is
exponential in the number of state bits — the scaling the paper reports for
XENON (8x design size, 336x analysis time).  Two reference designs are
provided: a constant-time serial ALU and an early-exit serial multiplier
whose latency depends on a secret operand (a real finding for the checker).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass


@dataclass(frozen=True)
class Gate:
    """One combinational gate: ``out = op(*ins)``.

    Supported ops: and, or, xor, not, mux (ins = select, a, b), const0/const1.
    """

    op: str
    out: str
    ins: tuple


@dataclass
class Netlist:
    """A synchronous gate-level design."""

    name: str
    public_inputs: list
    secret_inputs: list
    #: registers: name -> initial value (0/1); state bits of the design.
    registers: dict
    #: gates in topological order (inputs/registers are available signals).
    gates: list
    #: register -> signal providing its next-state value.
    next_state: dict
    #: timing-visible output signals (e.g. a "done"/"ready" line).
    observable_outputs: list

    @property
    def state_bits(self) -> int:
        return len(self.registers)

    def evaluate(self, state: tuple, public: tuple, secret: tuple):
        """One clock cycle: returns (next_state, observable_output_values)."""
        signals = dict(zip(self.registers, state))
        signals.update(zip(self.public_inputs, public))
        signals.update(zip(self.secret_inputs, secret))
        for gate in self.gates:
            signals[gate.out] = _apply(gate, signals)
        next_state = tuple(signals[self.next_state[r]] for r in self.registers)
        outputs = tuple(signals[o] for o in self.observable_outputs)
        return next_state, outputs


def _apply(gate: Gate, signals: dict) -> int:
    ins = [signals[name] for name in gate.ins]
    if gate.op == "and":
        value = 1
        for v in ins:
            value &= v
        return value
    if gate.op == "or":
        value = 0
        for v in ins:
            value |= v
        return value
    if gate.op == "xor":
        value = 0
        for v in ins:
            value ^= v
        return value
    if gate.op == "not":
        return 1 - ins[0]
    if gate.op == "mux":
        return ins[1] if ins[0] else ins[2]
    if gate.op == "const0":
        return 0
    if gate.op == "const1":
        return 1
    raise ValueError(f"unknown gate op {gate.op!r}")


@dataclass
class TwoSafetyResult:
    """Outcome of the exhaustive two-safety check."""

    design: str
    state_bits: int
    constant_time: bool
    product_states_explored: int
    analysis_seconds: float
    counterexample: tuple | None = None  # (state_a, state_b, pub, sec_a, sec_b)


def check_two_safety(netlist: Netlist, max_product_states: int = 2_000_000) -> TwoSafetyResult:
    """Exhaustively verify observable-output equality under secret variation.

    Explores the product machine (two copies sharing public inputs) from the
    reset state over all public/secret input combinations; flags the design
    non-constant-time on the first observable divergence.
    """
    started = time.perf_counter()
    reset = tuple(netlist.registers.values())
    initial = (reset, reset)
    frontier = [initial]
    visited = {initial}
    public_space = list(itertools.product((0, 1), repeat=len(netlist.public_inputs)))
    secret_space = list(itertools.product((0, 1), repeat=len(netlist.secret_inputs)))
    counterexample = None
    while frontier and counterexample is None:
        next_frontier = []
        for state_a, state_b in frontier:
            for public in public_space:
                for secret_a in secret_space:
                    for secret_b in secret_space:
                        na, oa = netlist.evaluate(state_a, public, secret_a)
                        nb, ob = netlist.evaluate(state_b, public, secret_b)
                        if oa != ob:
                            counterexample = (state_a, state_b, public,
                                              secret_a, secret_b)
                            break
                        pair = (na, nb)
                        if pair not in visited:
                            visited.add(pair)
                            next_frontier.append(pair)
                            if len(visited) > max_product_states:
                                raise RuntimeError(
                                    "product state space exceeds limit"
                                )
                    if counterexample:
                        break
                if counterexample:
                    break
            if counterexample:
                break
        frontier = next_frontier
    return TwoSafetyResult(
        design=netlist.name,
        state_bits=netlist.state_bits,
        constant_time=counterexample is None,
        product_states_explored=len(visited),
        analysis_seconds=time.perf_counter() - started,
        counterexample=counterexample,
    )


# -- reference designs ---------------------------------------------------------


def build_serial_alu(width: int = 4) -> Netlist:
    """A constant-time serial ALU: an accumulator XOR/rotate datapath.

    Every operation takes exactly one cycle regardless of operand values, so
    the ``busy`` output never depends on the secret operand: constant-time.
    State bits scale with ``width``.
    """
    registers = {f"acc{i}": 0 for i in range(width)}
    gates = []
    next_state = {}
    # A Fibonacci-LFSR-style datapath absorbing one secret bit per cycle:
    # every state in the 2^width space is reachable, so the product machine
    # the checker explores grows as 4^width — the formal-tool blow-up.
    gates.append(Gate("xor", "feedback", (f"acc{width - 1}", "sec0")))
    for i in range(width):
        if i == 0:
            source = "feedback"
        elif i == width // 2:
            gates.append(Gate("xor", f"tap{i}", (f"acc{i - 1}", f"acc{width - 1}")))
            source = f"tap{i}"
        else:
            source = f"acc{i - 1}"
        gates.append(Gate("mux", f"acc{i}_next", ("pub0", source, f"acc{i}")))
        next_state[f"acc{i}"] = f"acc{i}_next"
    gates.append(Gate("const0", "busy", ()))
    return Netlist(
        name=f"serial-alu-{width}",
        public_inputs=["pub0"],
        secret_inputs=["sec0"],
        registers=registers,
        gates=gates,
        next_state=next_state,
        observable_outputs=["busy"],
    )


def build_early_exit_multiplier(width: int = 4) -> Netlist:
    """A serial shift-multiplier with a data-dependent early exit.

    The design processes one secret multiplier bit per cycle but asserts
    ``done`` as soon as the remaining multiplier bits are all zero — a classic
    operand-dependent-latency optimization.  The two-safety check finds the
    violation: ``done`` timing depends on the secret operand.
    """
    registers = {f"m{i}": 0 for i in range(width)}
    registers["started"] = 0
    gates = [Gate("const0", "zero", ())]
    next_state = {}
    # When pub0 (start) is high, capture secret bits into m*; afterwards
    # shift the multiplier right by one position per cycle.
    for i in range(width):
        source = f"m{i + 1}" if i + 1 < width else "zero"
        gates.append(Gate("and", f"m{i}_shift", (source, "started")))
        gates.append(
            Gate("mux", f"m{i}_next", ("pub0", f"sec{i}", f"m{i}_shift"))
        )
        next_state[f"m{i}"] = f"m{i}_next"
    gates.append(Gate("or", "started_next", ("started", "pub0")))
    next_state["started"] = "started_next"
    # done when all remaining multiplier bits are zero after start.
    gates.append(Gate("or", "any_bit", tuple(f"m{i}" for i in range(width))))
    gates.append(Gate("not", "none_left", ("any_bit",)))
    gates.append(Gate("and", "done", ("none_left", "started")))
    return Netlist(
        name=f"early-exit-mul-{width}",
        public_inputs=["pub0"],
        secret_inputs=[f"sec{i}" for i in range(width)],
        registers=registers,
        gates=gates,
        next_state=next_state,
        observable_outputs=["done"],
    )
