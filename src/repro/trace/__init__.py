"""Per-cycle microarchitectural state tracing (Table IV features)."""

from repro.trace.features import FEATURE_ORDER, FEATURES, FeatureSpec, feature_ids
from repro.trace.tracer import (
    FeatureIteration,
    IterationRecord,
    MicroarchTracer,
    TraceError,
)

__all__ = [
    "FEATURES",
    "FEATURE_ORDER",
    "FeatureIteration",
    "FeatureSpec",
    "IterationRecord",
    "MicroarchTracer",
    "TraceError",
    "feature_ids",
]
