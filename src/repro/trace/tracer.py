"""Per-cycle microarchitectural state tracer.

The tracer is handed to a :class:`~repro.uarch.core.Core` and receives two
callbacks: ``on_marker`` when a ROI/iteration marker instruction commits and
``on_cycle`` at the end of every simulated cycle.  Inside an open iteration
it samples every tracked feature (Table IV) and accumulates one *iteration
snapshot* per feature — the 2D state matrix of Figure 2, stored as one row
digest per cycle plus the run-length-deduplicated raw rows.

At ``iter.end`` the snapshot is finalized into a compact
:class:`FeatureIteration` (hashes, value set, first-occurrence ordering) so
that memory stays bounded even over long campaigns; raw matrices and the
per-cycle row-digest sequence are kept only for features listed in
``keep_raw``.

For leakage *localization* (:mod:`repro.localize`) the tracer can also
record a per-iteration commit log: with ``log_commits=True`` and the
tracer's :meth:`MicroarchTracer.on_commit` installed as the core's
``commit_listener``, every architecturally committed instruction inside an
open iteration is recorded as ``(cycle, pc, mnemonic)``.  Together with the
retained per-cycle digests this is what lets the localization phase map a
leaking cycle window back onto instructions.
"""

from __future__ import annotations

import time
from array import array
from dataclasses import dataclass, field

import numpy as np

from repro.trace.features import FEATURE_ORDER, FEATURES, FeatureSpec
from repro.util.hashing import combine_digests, pack_digests, row_digest, siphash24


class TraceError(RuntimeError):
    """Raised on malformed marker sequences (e.g. unbalanced iter markers)."""


@dataclass(frozen=True)
class FeatureIteration:
    """Finalized per-feature data for one iteration snapshot."""

    snapshot_hash: int
    snapshot_hash_notiming: int
    values: frozenset
    order: tuple
    rows: tuple | None = None  # deduplicated raw rows, when retained
    #: per-cycle row digests in sample order (index = cycle offset from the
    #: iteration's start), retained with ``keep_raw`` — the temporal-scan
    #: input of :mod:`repro.localize`.
    cycle_digests: tuple | None = None


@dataclass
class IterationRecord:
    """One algorithmic iteration: its class label plus per-feature snapshots."""

    index: int
    label: int
    start_cycle: int
    end_cycle: int
    features: dict[str, FeatureIteration] = field(default_factory=dict)
    #: which simulation run produced this iteration, and its ordinal within
    #: that run (used for warm-up exclusion).
    run_index: int = 0
    ordinal: int = 0
    #: committed-instruction log for this iteration — ``(cycle, pc,
    #: mnemonic)`` tuples in commit order — when the tracer ran with
    #: ``log_commits=True``; None otherwise.
    commits: tuple | None = None

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle


#: Sentinel: "no version token observed yet" (forces the first sample).
_UNSET = object()


#: Bound on the shared snapshot memo (see ``_FeatureAccumulator.finalize``).
_SNAPSHOT_CACHE_LIMIT = 4096

#: Process-wide snapshot memo: packed-dedup-digests -> (no-timing hash,
#: value set, first-occurrence order).  All three are pure functions of the
#: deduplicated digest sequence, so the memo is shared across tracer
#: instances — a campaign's later runs (and repeated benchmark runs) start
#: with a warm cache instead of re-deriving the same snapshots per run.
_SNAPSHOT_CACHE: dict[bytes, tuple] = {}

#: Process-wide combine memo: packed digest sequence -> SipHash-2-4 result.
#: The packed bytes *are* the hash input, so entries can never alias.
_COMBINE_CACHE: dict[bytes, int] = {}


class _FeatureAccumulator:
    """Accumulates one feature's rows for the currently open iteration.

    ``add`` keeps the per-cycle digest sequence and the run-length
    deduplicated rows; a repeated row short-circuits to replaying the last
    digest before any hashing happens.  ``last_token`` holds the sampled
    unit's state-version token from the previous cycle — the
    change-detection tracer skips :meth:`add` entirely when the token is
    unchanged and replays the memoized last digest itself.
    """

    __slots__ = ("digests", "dedup_digests", "dedup_rows", "prev_row",
                 "last_token")

    def __init__(self):
        self.digests: list[int] = []
        self.dedup_digests: list[int] = []
        self.dedup_rows: list[tuple] = []
        self.prev_row = None
        self.last_token = _UNSET

    def add(self, row: tuple) -> None:
        if row == self.prev_row:
            # The unit's version bumped but the sampled row is unchanged
            # (e.g. the ROB drained and refilled to the same occupancy):
            # run-length dedup applies and the digest is the previous one.
            digests = self.digests
            digests.append(digests[-1])
            return
        digest = row_digest(row)
        self.digests.append(digest)
        self.dedup_digests.append(digest)
        self.dedup_rows.append(row)
        self.prev_row = row

    def finalize(self, keep_raw: bool, combine=combine_digests,
                 cache: dict | None = None) -> FeatureIteration:
        """Build the :class:`FeatureIteration` for the closed snapshot.

        The no-timing hash, value set and first-occurrence order are all
        pure functions of the deduplicated row sequence, and the packed
        dedup digest sequence *is* that sequence's identity — so when a
        ``cache`` dict is supplied (the tracer shares one across features
        and iterations), repeated snapshots skip the transpose/scan work
        entirely.  Constant-time workloads repeat nearly every iteration,
        which makes this the dominant finalize fast path.
        """
        cached = None
        key = None
        if cache is not None:
            key = pack_digests(self.dedup_digests)
            cached = cache.get(key)
        if cached is None:
            values = []
            seen = set()
            for row in self.dedup_rows:
                for value in row:
                    if value and value not in seen:
                        seen.add(value)
                        values.append(value)
            cached = (self._notiming_hash(combine), frozenset(seen),
                      tuple(values))
            if key is not None:
                if len(cache) >= _SNAPSHOT_CACHE_LIMIT:
                    cache.clear()
                cache[key] = cached
        notiming, values_set, order = cached
        return FeatureIteration(
            snapshot_hash=combine(self.digests),
            snapshot_hash_notiming=notiming,
            values=values_set,
            order=order,
            rows=tuple(self.dedup_rows) if keep_raw else None,
            cycle_digests=tuple(self.digests) if keep_raw else None,
        )

    def _notiming_hash(self, combine=combine_digests) -> int:
        """Hash of the snapshot with timing information removed.

        Following Section VII-B, consecutive occurrences of the same value
        are consolidated *per structure entry* (per snapshot column), so the
        hash reflects which values visited each entry and in what order, but
        not for how long.  Rows of one structure always have equal width
        (entries are sampled by physical slot); if widths ever differ the
        row-level deduplicated sequence is hashed instead.
        """
        rows = self.dedup_rows
        if not rows:
            return combine([])
        width = len(rows[0])
        if any(len(row) != width for row in rows):
            return combine(self.dedup_digests)
        digests = []
        for column_values in zip(*rows):
            last = column_values[0]
            column = [last]
            for value in column_values:
                if value != last:
                    column.append(value)
                    last = value
            digests.append(row_digest(tuple(column)))
        return combine(digests)


class _BatchFeatureAccumulator(_FeatureAccumulator):
    """Accumulator variant for lane-batched core runs.

    Rows sampled from a :class:`~repro.uarch.batch_core.BatchCore` are
    identical across lanes except where a value is a per-lane tuple
    (currently only LFB-Data digests can be).  This accumulator records
    run lengths alongside the deduplicated rows so
    :meth:`BatchTracer._project_lane` can replay each lane's scalar
    snapshot exactly; once a tuple-bearing row appears (``laned``) the
    shared digest stream is meaningless and placeholder digests are
    stored.  A laned accumulator must therefore never be finalized
    directly (its placeholder dedup digests would poison the process-wide
    snapshot memo) — only projected per lane through fresh scalar
    accumulators.
    """

    __slots__ = ("run_lengths", "laned")

    def __init__(self):
        super().__init__()
        #: repeat count per deduplicated row, in step with ``dedup_rows``.
        self.run_lengths: list[int] = []
        self.laned = False

    def add(self, row: tuple) -> None:
        if row == self.prev_row:
            digests = self.digests
            digests.append(digests[-1])
            self.run_lengths[-1] += 1
            return
        if any(type(value) is tuple for value in row):
            self.laned = True
            digest = 0
        else:
            digest = row_digest(row)
        self.digests.append(digest)
        self.dedup_digests.append(digest)
        self.dedup_rows.append(row)
        self.prev_row = row
        self.run_lengths.append(1)


def build_feature_iteration(rows, keep_raw: bool = True) -> FeatureIteration:
    """Build a :class:`FeatureIteration` from raw per-cycle state rows.

    Utility for constructing snapshots outside a live simulation (tests,
    offline trace analysis).
    """
    accumulator = _FeatureAccumulator()
    for row in rows:
        accumulator.add(tuple(row))
    return accumulator.finalize(keep_raw)


def iteration_to_payload(record: IterationRecord) -> tuple:
    """Flatten an :class:`IterationRecord` into plain tuples.

    The payload contains only ints, strings and tuples, so persisted traces
    (the content-addressed cache in :mod:`repro.sampler.trace_cache`) do not
    depend on the pickle layout of these classes.  Feature order is
    preserved, so a round trip reproduces the record exactly.
    """
    return (
        record.index,
        record.label,
        record.start_cycle,
        record.end_cycle,
        record.run_index,
        record.ordinal,
        tuple(
            (feature_id, fi.snapshot_hash, fi.snapshot_hash_notiming,
             tuple(fi.values), fi.order, fi.rows, fi.cycle_digests)
            for feature_id, fi in record.features.items()
        ),
        record.commits,
    )


def iteration_from_payload(payload: tuple) -> IterationRecord:
    """Rebuild an :class:`IterationRecord` from :func:`iteration_to_payload`."""
    (index, label, start_cycle, end_cycle, run_index, ordinal, features,
     commits) = payload
    record = IterationRecord(
        index=index, label=label, start_cycle=start_cycle,
        end_cycle=end_cycle, run_index=run_index, ordinal=ordinal,
        commits=(tuple(tuple(entry) for entry in commits)
                 if commits is not None else None),
    )
    for (feature_id, digest, digest_notiming, values, order, rows,
         cycle_digests) in features:
        record.features[feature_id] = FeatureIteration(
            snapshot_hash=digest,
            snapshot_hash_notiming=digest_notiming,
            values=frozenset(values),
            order=tuple(order),
            rows=tuple(tuple(row) for row in rows) if rows is not None else None,
            cycle_digests=(tuple(cycle_digests)
                           if cycle_digests is not None else None),
        )
    return record


class MicroarchTracer:
    """Collects iteration snapshots from a running core.

    Parameters
    ----------
    features:
        Feature IDs to track (default: all of Table IV).
    keep_raw:
        Feature IDs whose deduplicated raw rows (and per-cycle digest
        sequences) should be retained for feature extraction and
        localization, or True for all tracked features.
    log_commits:
        When True, record every architecturally committed instruction
        inside an open iteration as ``(cycle, pc, mnemonic)``.  Requires
        :meth:`on_commit` to be installed as the core's ``commit_listener``
        (the execution backend does this automatically).
    incremental:
        When True (default), consult each feature's state-version token
        every cycle and replay the memoized previous digest for unchanged
        units instead of resampling and rehashing (change-detection
        sampling).  ``incremental=False`` forces the naive resample-always
        path; both produce bit-identical snapshots (the differential tests
        in ``tests/test_tracer_incremental.py`` lock this in).
    pruned:
        Feature IDs the taint prescreen proved secret-free
        (:mod:`repro.uarch.reachability`).  Pruned features are never
        sampled — zero per-cycle cost, compounding with the version-token
        memo — but still appear in every record as the constant empty
        snapshot, so a single category reaches the statistics (V=0, p=1:
        provably clean, reported as such) and downstream consumers see a
        complete feature set.
    """

    #: Snapshot-level combine-hash memo bound: constant-time workloads
    #: produce few distinct digest sequences, so a small cache absorbs
    #: nearly all finalization SipHash work; the cache is dropped wholesale
    #: if it ever grows past this many entries.
    _COMBINE_CACHE_LIMIT = 4096

    #: Per-feature accumulator constructor; :class:`BatchTracer` swaps in
    #: the run-length-tracking batch variant.
    _accumulator_factory = _FeatureAccumulator

    def __init__(self, features=None, keep_raw=(), log_commits: bool = False,
                 incremental: bool = True, pruned=()):
        ids = tuple(features) if features is not None else FEATURE_ORDER
        unknown = [f for f in ids if f not in FEATURES]
        if unknown:
            raise ValueError(f"unknown feature IDs: {unknown}")
        self.specs: list[FeatureSpec] = [FEATURES[f] for f in ids]
        self.pruned: frozenset = frozenset(pruned) & frozenset(ids)
        if keep_raw is True:
            self.keep_raw = set(ids)
        else:
            self.keep_raw = set(keep_raw)
        self.iterations: list[IterationRecord] = []
        #: Columnar view of the finalized records, grown in lock-step with
        #: ``iterations`` by :meth:`append_record`: per-feature snapshot-hash
        #: columns plus the label/ordinal columns.  Hash and ordinal columns
        #: are C-contiguous ``array`` buffers, so the vectorized analysis
        #: engine lowers them into a
        #: :class:`~repro.sampler.matrix.TraceMatrix` with one memcpy per
        #: column instead of re-walking every record (MicroWalk-style
        #: columnar trace storage).
        self.feature_columns: dict[str, array] = {
            spec.feature_id: array("Q") for spec in self.specs}
        self.feature_columns_notiming: dict[str, array] = {
            spec.feature_id: array("Q") for spec in self.specs}
        self.label_column: list = []
        self.ordinal_column: array = array("q")
        self.roi_active = False
        self.roi_seen = False
        #: bumped by the runner between runs; stamped onto records.
        self.run_index = 0
        self._run_ordinal = 0
        self._open: IterationRecord | None = None
        self._accumulators: dict[str, _FeatureAccumulator] = {}
        self._samplers: list = []
        self.log_commits = bool(log_commits)
        self.incremental = bool(incremental)
        self._commit_log: list = []
        #: packed-digests -> combined hash memo.  Process-wide (see the
        #: module-level ``_COMBINE_CACHE``): outputs are a pure function of
        #: the packed bytes, so sharing across tracer instances only changes
        #: speed, never results.
        self._combine_cache: dict[bytes, int] = _COMBINE_CACHE
        #: packed-dedup-digests -> (notiming hash, values, order) memo,
        #: shared across features, iterations and tracer instances (see
        #: ``_FeatureAccumulator.finalize``).
        self._snapshot_cache: dict[bytes, tuple] = _SNAPSHOT_CACHE
        self.cycles_sampled = 0
        #: When True, time spent sampling (``sample_seconds``, per-cycle) and
        #: finalizing (``finalize_seconds``, at iter.end) is accumulated
        #: separately (used for the Table VI stage breakdown and --profile).
        self.timed = False
        self.sample_seconds = 0.0
        self.finalize_seconds = 0.0

    # -- core callbacks -------------------------------------------------------

    def on_marker(self, mnemonic: str, label: int, cycle: int) -> None:
        if mnemonic == "roi.begin":
            self.roi_active = True
            self.roi_seen = True
        elif mnemonic == "roi.end":
            if self._open is not None:
                raise TraceError("roi.end inside an open iteration")
            self.roi_active = False
        elif mnemonic == "iter.begin":
            if self.roi_seen and not self.roi_active:
                return
            if self._open is not None:
                raise TraceError("nested iter.begin")
            self._open = IterationRecord(
                index=len(self.iterations),
                label=label,
                start_cycle=cycle,
                end_cycle=cycle,
                run_index=self.run_index,
                ordinal=self._run_ordinal,
            )
            self._run_ordinal += 1
            self._commit_log = []
            self._accumulators = {
                spec.feature_id: self._accumulator_factory()
                for spec in self.specs
            }
            # Pre-bound (sampler, version, accumulator, digest-list) tuples:
            # the per-cycle loop in on_cycle is the hottest code in the
            # whole framework, so the memo-hit path must touch nothing but
            # these locals.  A None version means "always resample".
            incremental = self.incremental
            # Taint-pruned features get no sampler at all: their (empty)
            # accumulators finalize to the constant empty snapshot.
            self._samplers = [
                (spec.sample,
                 spec.version if incremental else None,
                 accumulator,
                 accumulator.digests)
                for spec in self.specs
                if spec.feature_id not in self.pruned
                for accumulator in (self._accumulators[spec.feature_id],)
            ]
        elif mnemonic == "iter.end":
            if self._open is None:
                if self.roi_seen and not self.roi_active:
                    return
                raise TraceError("iter.end without iter.begin")
            started = time.perf_counter() if self.timed else 0.0
            record = self._open
            record.end_cycle = cycle
            if self.log_commits:
                record.commits = tuple(self._commit_log)
                self._commit_log = []
            combine = self._combine_cached
            snapshot_cache = self._snapshot_cache
            for spec in self.specs:
                accumulator = self._accumulators[spec.feature_id]
                record.features[spec.feature_id] = accumulator.finalize(
                    spec.feature_id in self.keep_raw, combine, snapshot_cache
                )
            self.append_record(record)
            self._open = None
            self._accumulators = {}
            if self.timed:
                self.finalize_seconds += time.perf_counter() - started

    def _combine_cached(self, digests: list[int]) -> int:
        """`combine_digests` with a bounded exact-input memo.

        The packed byte string *is* the SipHash input, so the memo can never
        alias two different digest sequences.  Iteration snapshots repeat
        heavily in constant-time campaigns, making this a large win on the
        finalize path.
        """
        packed = pack_digests(digests)
        cache = self._combine_cache
        value = cache.get(packed)
        if value is None:
            value = siphash24(packed)
            if len(cache) >= self._COMBINE_CACHE_LIMIT:
                cache.clear()
            cache[packed] = value
        return value

    #: Marker mnemonics excluded from the commit log: they delimit the
    #: window rather than execute inside it (and ``iter.end`` commits after
    #: its record has already been closed).
    _MARKER_MNEMONICS = frozenset(
        {"iter.begin", "iter.end", "roi.begin", "roi.end"})

    def on_commit(self, pc: int, mnemonic: str, rd: int, value: int,
                  cycle: int) -> None:
        """Core ``commit_listener`` hook: log one committed instruction.

        Signature matches :attr:`repro.uarch.core.Core.commit_listener`.
        Only instructions committing inside an open iteration are kept, so
        the log is exactly the architectural instruction stream of the
        snapshot window.
        """
        if (self._open is None or not self.log_commits
                or mnemonic in self._MARKER_MNEMONICS):
            return
        self._commit_log.append((cycle, pc, mnemonic))

    def on_cycle(self, core, cycle: int) -> None:
        if self._open is None:
            return
        started = time.perf_counter() if self.timed else 0.0
        self.cycles_sampled += 1
        for sample, version, accumulator, digests in self._samplers:
            if version is not None:
                token = version(core)
                if token == accumulator.last_token:
                    # Unit untouched since the last sample: the row is
                    # provably identical, so replay its memoized digest.
                    digests.append(digests[-1])
                    continue
                accumulator.last_token = token
            accumulator.add(sample(core))
        if self.timed:
            self.sample_seconds += time.perf_counter() - started

    # -- results ----------------------------------------------------------------

    def append_record(self, record: IterationRecord) -> None:
        """Append a finalized record, keeping the columnar view in sync.

        Re-stamps the record's global iteration index.  Every producer of
        finalized records (the ``iter.end`` handler above, the parallel
        merge in :mod:`repro.sampler.exec_backend`, synthetic campaign
        builders) must go through here so that ``feature_columns`` stays a
        faithful transpose of ``iterations``.
        """
        record.index = len(self.iterations)
        self.iterations.append(record)
        self.label_column.append(record.label)
        self.ordinal_column.append(record.ordinal)
        features = record.features
        for feature_id, column in self.feature_columns.items():
            column.append(features[feature_id].snapshot_hash)
        for feature_id, column in self.feature_columns_notiming.items():
            column.append(features[feature_id].snapshot_hash_notiming)

    def columns_in_sync(self) -> bool:
        """True when the columnar view covers every recorded iteration."""
        return len(self.label_column) == len(self.iterations)

    def begin_run(self, run_index: int) -> None:
        """Mark the start of a new simulation run (called by the runner)."""
        self.run_index = run_index
        self._run_ordinal = 0

    def labels(self) -> list[int]:
        return [record.label for record in self.iterations]

    def iteration_cycle_counts(self) -> list[int]:
        return [record.cycles for record in self.iterations]


class BatchTracer(MicroarchTracer):
    """Tracer for a :class:`~repro.uarch.batch_core.BatchCore` run.

    The shared cycle loop samples each feature exactly once per cycle —
    the whole point of lane batching — and this tracer fans the result
    back out into N per-lane iteration records that are bit-identical to N
    scalar runs.  Almost every sampled row is lane-invariant (addresses,
    PCs, occupancies: all timing state, which the batch core keeps
    scalar); only rows carrying per-lane value tuples (LFB-Data digests)
    and per-lane ``iter.begin`` labels differ, and those are projected per
    lane at ``iter.end`` via run-length replay.

    Results live in :attr:`lane_iterations` (one record list per lane);
    the inherited ``iterations``/columnar views stay empty.
    """

    _accumulator_factory = _BatchFeatureAccumulator

    def __init__(self, n_lanes: int, features=None, keep_raw=(),
                 log_commits: bool = False, incremental: bool = True,
                 pruned=()):
        super().__init__(features=features, keep_raw=keep_raw,
                         log_commits=log_commits, incremental=incremental,
                         pruned=pruned)
        self.n_lanes = n_lanes
        self.lane_iterations: list[list[IterationRecord]] = [
            [] for _ in range(n_lanes)
        ]
        self.lane_run_indices: tuple[int, ...] = (0,) * n_lanes
        self._open_labels: tuple[int, ...] | None = None

    def begin_lane_runs(self, run_indices) -> None:
        """Declare each lane's campaign run index before the shared run.

        The shared cycle loop is *one* run from the base tracer's point of
        view, but every projected per-lane record must carry the lane's own
        run index to stay bit-identical to the scalar run it stands in for.
        """
        self.lane_run_indices = tuple(run_indices)
        if len(self.lane_run_indices) != self.n_lanes:
            raise TraceError("one run index per lane required")
        self.begin_run(self.lane_run_indices[0])

    # -- core callbacks -------------------------------------------------------

    def on_marker(self, mnemonic: str, label, cycle: int) -> None:
        if mnemonic == "iter.end":
            self._close_lane_records(cycle)
            return
        lane_labels = None
        if mnemonic == "iter.begin":
            if isinstance(label, np.ndarray):
                lane_labels = tuple(int(value) for value in label)
                label = lane_labels[0]
            else:
                lane_labels = (int(label),) * self.n_lanes
        was_open = self._open
        super().on_marker(mnemonic, label, cycle)
        if (mnemonic == "iter.begin" and was_open is None
                and self._open is not None):
            self._open_labels = lane_labels

    def on_cycle(self, core, cycle: int) -> None:
        if self._open is None:
            return
        started = time.perf_counter() if self.timed else 0.0
        self.cycles_sampled += 1
        for sample, version, accumulator, digests in self._samplers:
            if version is not None:
                token = version(core)
                if token == accumulator.last_token:
                    digests.append(digests[-1])
                    accumulator.run_lengths[-1] += 1
                    continue
                accumulator.last_token = token
            accumulator.add(sample(core))
        if self.timed:
            self.sample_seconds += time.perf_counter() - started

    # -- per-lane finalization ------------------------------------------------

    def _close_lane_records(self, cycle: int) -> None:
        """``iter.end``: finalize the shared window into per-lane records.

        Lane-invariant features are finalized once and the frozen
        :class:`FeatureIteration` is shared across every lane's record;
        laned features are replayed per lane through fresh scalar
        accumulators (which re-deduplicate exactly as a scalar run would,
        and may use the shared snapshot memo because their digests are
        real).
        """
        if self._open is None:
            if self.roi_seen and not self.roi_active:
                return
            raise TraceError("iter.end without iter.begin")
        started = time.perf_counter() if self.timed else 0.0
        record = self._open
        record.end_cycle = cycle
        commits = None
        if self.log_commits:
            commits = tuple(self._commit_log)
            self._commit_log = []
        combine = self._combine_cached
        snapshot_cache = self._snapshot_cache
        shared: dict[str, FeatureIteration] = {}
        laned: dict[str, _BatchFeatureAccumulator] = {}
        for spec in self.specs:
            accumulator = self._accumulators[spec.feature_id]
            if accumulator.laned:
                laned[spec.feature_id] = accumulator
            else:
                shared[spec.feature_id] = accumulator.finalize(
                    spec.feature_id in self.keep_raw, combine, snapshot_cache
                )
        for lane in range(self.n_lanes):
            features: dict[str, FeatureIteration] = {}
            for spec in self.specs:
                feature_id = spec.feature_id
                if feature_id in laned:
                    features[feature_id] = self._project_lane(
                        laned[feature_id], lane,
                        feature_id in self.keep_raw, combine, snapshot_cache
                    )
                else:
                    features[feature_id] = shared[feature_id]
            records = self.lane_iterations[lane]
            records.append(IterationRecord(
                index=len(records),
                label=self._open_labels[lane],
                start_cycle=record.start_cycle,
                end_cycle=record.end_cycle,
                run_index=self.lane_run_indices[lane],
                ordinal=record.ordinal,
                features=features,
                commits=commits,
            ))
        self._open = None
        self._accumulators = {}
        self._open_labels = None
        if self.timed:
            self.finalize_seconds += time.perf_counter() - started

    @staticmethod
    def _project_lane(accumulator: _BatchFeatureAccumulator, lane: int,
                      keep_raw: bool, combine, cache) -> FeatureIteration:
        """Replay one lane's scalar view of a laned accumulator."""
        replay = _FeatureAccumulator()
        add = replay.add
        digests = replay.digests
        for row, length in zip(accumulator.dedup_rows,
                               accumulator.run_lengths):
            add(tuple(value[lane] if type(value) is tuple else value
                      for value in row))
            if length > 1:
                digests.extend([digests[-1]] * (length - 1))
        return replay.finalize(keep_raw, combine, cache)
