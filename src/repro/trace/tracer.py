"""Per-cycle microarchitectural state tracer.

The tracer is handed to a :class:`~repro.uarch.core.Core` and receives two
callbacks: ``on_marker`` when a ROI/iteration marker instruction commits and
``on_cycle`` at the end of every simulated cycle.  Inside an open iteration
it samples every tracked feature (Table IV) and accumulates one *iteration
snapshot* per feature — the 2D state matrix of Figure 2, stored as one row
digest per cycle plus the run-length-deduplicated raw rows.

At ``iter.end`` the snapshot is finalized into a compact
:class:`FeatureIteration` (hashes, value set, first-occurrence ordering) so
that memory stays bounded even over long campaigns; raw matrices and the
per-cycle row-digest sequence are kept only for features listed in
``keep_raw``.

For leakage *localization* (:mod:`repro.localize`) the tracer can also
record a per-iteration commit log: with ``log_commits=True`` and the
tracer's :meth:`MicroarchTracer.on_commit` installed as the core's
``commit_listener``, every architecturally committed instruction inside an
open iteration is recorded as ``(cycle, pc, mnemonic)``.  Together with the
retained per-cycle digests this is what lets the localization phase map a
leaking cycle window back onto instructions.
"""

from __future__ import annotations

import time
from array import array
from dataclasses import dataclass, field

from repro.trace.features import FEATURE_ORDER, FEATURES, FeatureSpec
from repro.util.hashing import combine_digests, row_digest


class TraceError(RuntimeError):
    """Raised on malformed marker sequences (e.g. unbalanced iter markers)."""


@dataclass(frozen=True)
class FeatureIteration:
    """Finalized per-feature data for one iteration snapshot."""

    snapshot_hash: int
    snapshot_hash_notiming: int
    values: frozenset
    order: tuple
    rows: tuple | None = None  # deduplicated raw rows, when retained
    #: per-cycle row digests in sample order (index = cycle offset from the
    #: iteration's start), retained with ``keep_raw`` — the temporal-scan
    #: input of :mod:`repro.localize`.
    cycle_digests: tuple | None = None


@dataclass
class IterationRecord:
    """One algorithmic iteration: its class label plus per-feature snapshots."""

    index: int
    label: int
    start_cycle: int
    end_cycle: int
    features: dict[str, FeatureIteration] = field(default_factory=dict)
    #: which simulation run produced this iteration, and its ordinal within
    #: that run (used for warm-up exclusion).
    run_index: int = 0
    ordinal: int = 0
    #: committed-instruction log for this iteration — ``(cycle, pc,
    #: mnemonic)`` tuples in commit order — when the tracer ran with
    #: ``log_commits=True``; None otherwise.
    commits: tuple | None = None

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle


class _FeatureAccumulator:
    """Accumulates one feature's rows for the currently open iteration."""

    __slots__ = ("digests", "dedup_digests", "dedup_rows", "prev_row")

    def __init__(self):
        self.digests: list[int] = []
        self.dedup_digests: list[int] = []
        self.dedup_rows: list[tuple] = []
        self.prev_row = None

    def add(self, row: tuple) -> None:
        digest = row_digest(row)
        self.digests.append(digest)
        if row != self.prev_row:
            self.dedup_digests.append(digest)
            self.dedup_rows.append(row)
            self.prev_row = row

    def finalize(self, keep_raw: bool) -> FeatureIteration:
        values = []
        seen = set()
        for row in self.dedup_rows:
            for value in row:
                if value and value not in seen:
                    seen.add(value)
                    values.append(value)
        return FeatureIteration(
            snapshot_hash=combine_digests(self.digests),
            snapshot_hash_notiming=self._notiming_hash(),
            values=frozenset(seen),
            order=tuple(values),
            rows=tuple(self.dedup_rows) if keep_raw else None,
            cycle_digests=tuple(self.digests) if keep_raw else None,
        )

    def _notiming_hash(self) -> int:
        """Hash of the snapshot with timing information removed.

        Following Section VII-B, consecutive occurrences of the same value
        are consolidated *per structure entry* (per snapshot column), so the
        hash reflects which values visited each entry and in what order, but
        not for how long.  Rows of one structure always have equal width
        (entries are sampled by physical slot); if widths ever differ the
        row-level deduplicated sequence is hashed instead.
        """
        rows = self.dedup_rows
        if not rows:
            return combine_digests([])
        width = len(rows[0])
        if any(len(row) != width for row in rows):
            return combine_digests(self.dedup_digests)
        column_digests = []
        for column in zip(*rows):
            consolidated = [column[0]]
            append = consolidated.append
            previous = column[0]
            for value in column:
                if value != previous:
                    append(value)
                    previous = value
            column_digests.append(row_digest(tuple(consolidated)))
        return combine_digests(column_digests)


def build_feature_iteration(rows, keep_raw: bool = True) -> FeatureIteration:
    """Build a :class:`FeatureIteration` from raw per-cycle state rows.

    Utility for constructing snapshots outside a live simulation (tests,
    offline trace analysis).
    """
    accumulator = _FeatureAccumulator()
    for row in rows:
        accumulator.add(tuple(row))
    return accumulator.finalize(keep_raw)


def iteration_to_payload(record: IterationRecord) -> tuple:
    """Flatten an :class:`IterationRecord` into plain tuples.

    The payload contains only ints, strings and tuples, so persisted traces
    (the content-addressed cache in :mod:`repro.sampler.trace_cache`) do not
    depend on the pickle layout of these classes.  Feature order is
    preserved, so a round trip reproduces the record exactly.
    """
    return (
        record.index,
        record.label,
        record.start_cycle,
        record.end_cycle,
        record.run_index,
        record.ordinal,
        tuple(
            (feature_id, fi.snapshot_hash, fi.snapshot_hash_notiming,
             tuple(fi.values), fi.order, fi.rows, fi.cycle_digests)
            for feature_id, fi in record.features.items()
        ),
        record.commits,
    )


def iteration_from_payload(payload: tuple) -> IterationRecord:
    """Rebuild an :class:`IterationRecord` from :func:`iteration_to_payload`."""
    (index, label, start_cycle, end_cycle, run_index, ordinal, features,
     commits) = payload
    record = IterationRecord(
        index=index, label=label, start_cycle=start_cycle,
        end_cycle=end_cycle, run_index=run_index, ordinal=ordinal,
        commits=(tuple(tuple(entry) for entry in commits)
                 if commits is not None else None),
    )
    for (feature_id, digest, digest_notiming, values, order, rows,
         cycle_digests) in features:
        record.features[feature_id] = FeatureIteration(
            snapshot_hash=digest,
            snapshot_hash_notiming=digest_notiming,
            values=frozenset(values),
            order=tuple(order),
            rows=tuple(tuple(row) for row in rows) if rows is not None else None,
            cycle_digests=(tuple(cycle_digests)
                           if cycle_digests is not None else None),
        )
    return record


class MicroarchTracer:
    """Collects iteration snapshots from a running core.

    Parameters
    ----------
    features:
        Feature IDs to track (default: all of Table IV).
    keep_raw:
        Feature IDs whose deduplicated raw rows (and per-cycle digest
        sequences) should be retained for feature extraction and
        localization, or True for all tracked features.
    log_commits:
        When True, record every architecturally committed instruction
        inside an open iteration as ``(cycle, pc, mnemonic)``.  Requires
        :meth:`on_commit` to be installed as the core's ``commit_listener``
        (the execution backend does this automatically).
    """

    def __init__(self, features=None, keep_raw=(), log_commits: bool = False):
        ids = tuple(features) if features is not None else FEATURE_ORDER
        unknown = [f for f in ids if f not in FEATURES]
        if unknown:
            raise ValueError(f"unknown feature IDs: {unknown}")
        self.specs: list[FeatureSpec] = [FEATURES[f] for f in ids]
        if keep_raw is True:
            self.keep_raw = set(ids)
        else:
            self.keep_raw = set(keep_raw)
        self.iterations: list[IterationRecord] = []
        #: Columnar view of the finalized records, grown in lock-step with
        #: ``iterations`` by :meth:`append_record`: per-feature snapshot-hash
        #: columns plus the label/ordinal columns.  Hash and ordinal columns
        #: are C-contiguous ``array`` buffers, so the vectorized analysis
        #: engine lowers them into a
        #: :class:`~repro.sampler.matrix.TraceMatrix` with one memcpy per
        #: column instead of re-walking every record (MicroWalk-style
        #: columnar trace storage).
        self.feature_columns: dict[str, array] = {
            spec.feature_id: array("Q") for spec in self.specs}
        self.feature_columns_notiming: dict[str, array] = {
            spec.feature_id: array("Q") for spec in self.specs}
        self.label_column: list = []
        self.ordinal_column: array = array("q")
        self.roi_active = False
        self.roi_seen = False
        #: bumped by the runner between runs; stamped onto records.
        self.run_index = 0
        self._run_ordinal = 0
        self._open: IterationRecord | None = None
        self._accumulators: dict[str, _FeatureAccumulator] = {}
        self._samplers: list = []
        self.log_commits = bool(log_commits)
        self._commit_log: list = []
        self.cycles_sampled = 0
        #: When True, time spent sampling/finalizing is accumulated in
        #: ``sample_seconds`` (used for the Table VI stage breakdown).
        self.timed = False
        self.sample_seconds = 0.0

    # -- core callbacks -------------------------------------------------------

    def on_marker(self, mnemonic: str, label: int, cycle: int) -> None:
        if mnemonic == "roi.begin":
            self.roi_active = True
            self.roi_seen = True
        elif mnemonic == "roi.end":
            if self._open is not None:
                raise TraceError("roi.end inside an open iteration")
            self.roi_active = False
        elif mnemonic == "iter.begin":
            if self.roi_seen and not self.roi_active:
                return
            if self._open is not None:
                raise TraceError("nested iter.begin")
            self._open = IterationRecord(
                index=len(self.iterations),
                label=label,
                start_cycle=cycle,
                end_cycle=cycle,
                run_index=self.run_index,
                ordinal=self._run_ordinal,
            )
            self._run_ordinal += 1
            self._commit_log = []
            self._accumulators = {
                spec.feature_id: _FeatureAccumulator() for spec in self.specs
            }
            # Pre-bound (sampler, add) pairs: the per-cycle loop below is the
            # hottest code in the whole framework.
            self._samplers = [
                (spec.sample, self._accumulators[spec.feature_id].add)
                for spec in self.specs
            ]
        elif mnemonic == "iter.end":
            if self._open is None:
                if self.roi_seen and not self.roi_active:
                    return
                raise TraceError("iter.end without iter.begin")
            started = time.perf_counter() if self.timed else 0.0
            record = self._open
            record.end_cycle = cycle
            if self.log_commits:
                record.commits = tuple(self._commit_log)
                self._commit_log = []
            for spec in self.specs:
                accumulator = self._accumulators[spec.feature_id]
                record.features[spec.feature_id] = accumulator.finalize(
                    spec.feature_id in self.keep_raw
                )
            self.append_record(record)
            self._open = None
            self._accumulators = {}
            if self.timed:
                self.sample_seconds += time.perf_counter() - started

    #: Marker mnemonics excluded from the commit log: they delimit the
    #: window rather than execute inside it (and ``iter.end`` commits after
    #: its record has already been closed).
    _MARKER_MNEMONICS = frozenset(
        {"iter.begin", "iter.end", "roi.begin", "roi.end"})

    def on_commit(self, pc: int, mnemonic: str, rd: int, value: int,
                  cycle: int) -> None:
        """Core ``commit_listener`` hook: log one committed instruction.

        Signature matches :attr:`repro.uarch.core.Core.commit_listener`.
        Only instructions committing inside an open iteration are kept, so
        the log is exactly the architectural instruction stream of the
        snapshot window.
        """
        if (self._open is None or not self.log_commits
                or mnemonic in self._MARKER_MNEMONICS):
            return
        self._commit_log.append((cycle, pc, mnemonic))

    def on_cycle(self, core, cycle: int) -> None:
        if self._open is None:
            return
        started = time.perf_counter() if self.timed else 0.0
        self.cycles_sampled += 1
        for sample, add in self._samplers:
            add(sample(core))
        if self.timed:
            self.sample_seconds += time.perf_counter() - started

    # -- results ----------------------------------------------------------------

    def append_record(self, record: IterationRecord) -> None:
        """Append a finalized record, keeping the columnar view in sync.

        Re-stamps the record's global iteration index.  Every producer of
        finalized records (the ``iter.end`` handler above, the parallel
        merge in :mod:`repro.sampler.exec_backend`, synthetic campaign
        builders) must go through here so that ``feature_columns`` stays a
        faithful transpose of ``iterations``.
        """
        record.index = len(self.iterations)
        self.iterations.append(record)
        self.label_column.append(record.label)
        self.ordinal_column.append(record.ordinal)
        features = record.features
        for feature_id, column in self.feature_columns.items():
            column.append(features[feature_id].snapshot_hash)
        for feature_id, column in self.feature_columns_notiming.items():
            column.append(features[feature_id].snapshot_hash_notiming)

    def columns_in_sync(self) -> bool:
        """True when the columnar view covers every recorded iteration."""
        return len(self.label_column) == len(self.iterations)

    def begin_run(self, run_index: int) -> None:
        """Mark the start of a new simulation run (called by the runner)."""
        self.run_index = run_index
        self._run_ordinal = 0

    def labels(self) -> list[int]:
        return [record.label for record in self.iterations]

    def iteration_cycle_counts(self) -> list[int]:
        return [record.cycles for record in self.iterations]
