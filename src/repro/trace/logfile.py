"""On-disk trace logs and the offline MicroSampler Parser.

The paper's flow is decoupled: the instrumented RTL simulation emits a
detailed execution log (synthesized ``printf``s under Verilator), and the
*MicroSampler Parser* later turns that log into hashed iteration snapshots
(Fig. 1, steps ① and ②).  This module reproduces that decoupling:

* :class:`TraceLogWriter` attaches to a core like a tracer and streams every
  in-ROI cycle's feature rows plus all marker events to a JSON-lines file
  (gzip-compressed when the path ends in ``.gz``);
* :func:`parse_trace_log` replays a log offline into the same
  :class:`~repro.trace.tracer.IterationRecord` objects the live tracer
  produces, so a simulation can be archived once and re-analyzed many times
  (different feature subsets, thresholds, raw retention) without re-running.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

from repro.trace.features import FEATURE_ORDER, FEATURES
from repro.trace.tracer import IterationRecord, TraceError, _FeatureAccumulator


def _open(path, mode):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


class TraceLogWriter:
    """Streams microarchitectural state to a log file during simulation.

    Implements the tracer interface (``on_marker`` / ``on_cycle``) so it can
    be passed directly as a :class:`~repro.uarch.core.Core`'s tracer.  Rows
    are recorded for every cycle inside the region of interest; marker
    events (including run boundaries) are recorded always.
    """

    def __init__(self, path, features=None):
        ids = tuple(features) if features is not None else FEATURE_ORDER
        unknown = [f for f in ids if f not in FEATURES]
        if unknown:
            raise ValueError(f"unknown feature IDs: {unknown}")
        self.specs = [FEATURES[f] for f in ids]
        self.path = Path(path)
        self._handle = _open(self.path, "w")
        self._handle.write(json.dumps(
            {"t": "header", "version": 1, "features": list(ids)}
        ) + "\n")
        self.roi_active = False
        self.cycles_logged = 0
        self.run_index = 0

    # -- tracer interface -----------------------------------------------------

    def begin_run(self, run_index: int) -> None:
        self.run_index = run_index
        self.roi_active = False
        self._handle.write(json.dumps({"t": "run", "i": run_index}) + "\n")

    def on_marker(self, mnemonic: str, label: int, cycle: int) -> None:
        if mnemonic == "roi.begin":
            self.roi_active = True
        elif mnemonic == "roi.end":
            self.roi_active = False
        self._handle.write(json.dumps(
            {"t": "marker", "m": mnemonic, "l": label, "c": cycle}
        ) + "\n")

    def on_cycle(self, core, cycle: int) -> None:
        if not self.roi_active:
            return
        self.cycles_logged += 1
        rows = {spec.feature_id: list(spec.sample(core)) for spec in self.specs}
        self._handle.write(json.dumps({"t": "cycle", "c": cycle, "f": rows})
                           + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def read_trace_log(path):
    """Yield decoded events from a trace log file."""
    with _open(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def parse_trace_log(path, features=None, keep_raw=()):
    """Offline parse: reconstruct iteration snapshots from a trace log.

    Returns the same list of :class:`IterationRecord` the live
    :class:`~repro.trace.tracer.MicroarchTracer` would have produced —
    verified bit-for-bit (hashes included) by the test suite.

    ``features`` may select a subset of the logged features; ``keep_raw``
    retains deduplicated raw rows for the listed feature IDs (or all, when
    True).
    """
    events = read_trace_log(path)
    header = next(events, None)
    if not header or header.get("t") != "header":
        raise TraceError(f"{path}: not a trace log (missing header)")
    logged = header["features"]
    if features is None:
        selected = list(logged)
    else:
        missing = [f for f in features if f not in logged]
        if missing:
            raise TraceError(f"features not present in log: {missing}")
        selected = list(features)
    if keep_raw is True:
        keep_raw = set(selected)
    else:
        keep_raw = set(keep_raw)

    iterations: list[IterationRecord] = []
    run_index = 0
    run_ordinal = 0
    open_record = None
    accumulators = {}
    for event in events:
        kind = event["t"]
        if kind == "run":
            run_index = event["i"]
            run_ordinal = 0
        elif kind == "marker":
            mnemonic = event["m"]
            if mnemonic == "iter.begin":
                if open_record is not None:
                    raise TraceError("nested iter.begin in log")
                open_record = IterationRecord(
                    index=len(iterations),
                    label=event["l"],
                    start_cycle=event["c"],
                    end_cycle=event["c"],
                    run_index=run_index,
                    ordinal=run_ordinal,
                )
                run_ordinal += 1
                accumulators = {f: _FeatureAccumulator() for f in selected}
            elif mnemonic == "iter.end":
                if open_record is None:
                    raise TraceError("iter.end without iter.begin in log")
                open_record.end_cycle = event["c"]
                for feature_id in selected:
                    open_record.features[feature_id] = \
                        accumulators[feature_id].finalize(
                            feature_id in keep_raw)
                iterations.append(open_record)
                open_record = None
        elif kind == "cycle" and open_record is not None:
            rows = event["f"]
            for feature_id in selected:
                accumulators[feature_id].add(tuple(rows[feature_id]))
    if open_record is not None:
        raise TraceError("log ends inside an open iteration")
    return iterations
