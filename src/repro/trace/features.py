"""Microarchitectural features tracked by MicroSampler (Table IV).

Each :class:`FeatureSpec` names one tracked feature, the unit it belongs to,
and a sampler that extracts the per-cycle state row from a live core.  A row
is a flat tuple of integers; the value 0 denotes an empty/invalid entry,
matching the paper's snapshot convention.

Specs may additionally carry a ``version`` callable returning the sampled
unit's monotonic state-version token.  The change-detection tracer compares
the token against the previous cycle's and, when unchanged, reuses the
memoized row digest instead of rebuilding and rehashing the row.  The
contract (enforced by ``tests/test_tracer_incremental.py``): *the unit must
bump its version on every mutation that can change the sampled row*.
Features without a ``version`` are resampled every cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter
from typing import Callable


@dataclass(frozen=True)
class FeatureSpec:
    """One tracked microarchitectural feature."""

    feature_id: str
    unit: str
    description: str
    sample: Callable[[object], tuple]
    #: Optional change-detection token: ``version(core)`` must change
    #: whenever ``sample(core)`` could return a different row.  ``None``
    #: disables memoization for this feature (always resample).
    version: Callable[[object], object] | None = None


def _sample_sq_addr(core):
    return core.lsu.sq_addresses()


def _sample_sq_pc(core):
    return core.lsu.sq_pcs()


def _sample_lq_addr(core):
    return core.lsu.lq_addresses()


def _sample_lq_pc(core):
    return core.lsu.lq_pcs()


def _sample_rob_occupancy(core):
    return (core.rob_occupancy(),)


def _sample_rob_pc(core):
    return core.rob_pcs()


def _sample_lfb_data(core):
    return core.dcache.lfb_data()


def _sample_lfb_addr(core):
    return core.dcache.lfb_addresses()


def _sample_euu_alu(core):
    return core.unit_busy_pcs("alu")


def _sample_euu_addrgen(core):
    return core.unit_busy_pcs("agu")


def _sample_euu_div(core):
    return core.unit_busy_pcs("div")


def _sample_euu_mul(core):
    return core.unit_busy_pcs("mul")


def _sample_nlp_addr(core):
    return (core.dcache.prefetcher.last_prefetch_line,)


def _sample_cache_addr(core):
    return tuple(core.dcache.requests_this_cycle)


def _sample_tlb_addr(core):
    return core.dcache.tlb.resident_pages()


def _sample_mshr_addr(core):
    return core.dcache.mshr_addresses()


# -- change-detection version tokens ------------------------------------------
# Plain attribute chains use ``operator.attrgetter`` (a C-level callable —
# the tokens are read 16 times per simulated cycle); only the exec-unit
# tokens, which live in the pool's shared per-kind dict, need Python code.

_version_sq = attrgetter("lsu.sq_version")
_version_lq = attrgetter("lsu.lq_version")
_version_rob = attrgetter("rob_version")
_version_lfb = attrgetter("dcache.lfb.version")
_version_nlp = attrgetter("dcache.prefetcher.version")
_version_cache_addr = attrgetter("dcache.request_version")
_version_tlb = attrgetter("dcache.tlb.version")
_version_mshr = attrgetter("dcache.mshr_version")


def _version_euu_alu(core):
    return core.units.versions["alu"]


def _version_euu_agu(core):
    return core.units.versions["agu"]


def _version_euu_div(core):
    return core.units.versions["div"]


def _version_euu_mul(core):
    return core.units.versions["mul"]


#: All tracked features, keyed by feature ID, in Table IV order.
FEATURES: dict[str, FeatureSpec] = {
    spec.feature_id: spec
    for spec in [
        FeatureSpec("SQ-ADDR", "Store Queue", "Store address", _sample_sq_addr,
                    _version_sq),
        FeatureSpec("SQ-PC", "Store Queue", "Program counter", _sample_sq_pc,
                    _version_sq),
        FeatureSpec("LQ-ADDR", "Load Queue", "Load address", _sample_lq_addr,
                    _version_lq),
        FeatureSpec("LQ-PC", "Load Queue", "Program counter", _sample_lq_pc,
                    _version_lq),
        FeatureSpec("ROB-OCPNCY", "ROB", "ROB occupancy", _sample_rob_occupancy,
                    _version_rob),
        FeatureSpec("ROB-PC", "ROB", "Program counter", _sample_rob_pc,
                    _version_rob),
        FeatureSpec("LFB-Data", "LFB", "LFB content", _sample_lfb_data,
                    _version_lfb),
        FeatureSpec("LFB-ADDR", "LFB", "Address", _sample_lfb_addr,
                    _version_lfb),
        FeatureSpec("EUU-ALU", "Execution Units", "ALU busy with PC",
                    _sample_euu_alu, _version_euu_alu),
        FeatureSpec("EUU-ADDRGEN", "Execution Units", "Address generator",
                    _sample_euu_addrgen, _version_euu_agu),
        FeatureSpec("EUU-DIV", "Execution Units", "Div. busy with PC",
                    _sample_euu_div, _version_euu_div),
        FeatureSpec("EUU-MUL", "Execution Units", "Mult. busy with PC",
                    _sample_euu_mul, _version_euu_mul),
        FeatureSpec("NLP-ADDR", "Prefetchers", "Next-line prefetcher address",
                    _sample_nlp_addr, _version_nlp),
        FeatureSpec("Cache-ADDR", "D-Cache", "D-Cache req address",
                    _sample_cache_addr, _version_cache_addr),
        FeatureSpec("TLB-ADDR", "TLB", "TLB entries", _sample_tlb_addr,
                    _version_tlb),
        FeatureSpec("MSHR-ADDR", "MSHRs", "Cache miss address",
                    _sample_mshr_addr, _version_mshr),
    ]
}

#: Table IV ordering, used by reports and plots.  Extensions registered via
#: :func:`register_feature` are tracked only when requested explicitly.
FEATURE_ORDER: tuple[str, ...] = tuple(FEATURES)


def feature_ids() -> tuple[str, ...]:
    """The paper's tracked feature IDs, in Table IV order."""
    return FEATURE_ORDER


def register_feature(spec: FeatureSpec, *, overwrite: bool = False) -> None:
    """Register an additional microarchitectural feature.

    The paper notes that selecting tracked structures "can be automated
    using a compiler pass to identify all sub units"; this registry is the
    hook for extending coverage beyond Table IV.  Registered features become
    available to :class:`~repro.trace.tracer.MicroarchTracer`,
    :class:`~repro.sampler.pipeline.MicroSampler` (via ``features=...``) and
    the trace-log writer, but are not added to the Table IV default set.
    """
    if spec.feature_id in FEATURES and not overwrite:
        raise ValueError(f"feature {spec.feature_id!r} already registered")
    FEATURES[spec.feature_id] = spec


def unregister_feature(feature_id: str) -> None:
    """Remove a registered extension feature (Table IV ones are protected)."""
    if feature_id in FEATURE_ORDER:
        raise ValueError(f"cannot unregister the Table IV feature "
                         f"{feature_id!r}")
    FEATURES.pop(feature_id, None)
