"""Optional extension features beyond the paper's Table IV.

The paper tracks sixteen structures; this module registers additional ones
that are interesting for branch-predictor and front-end side channels:

``BP-GHR``
    The gshare global history register — speculative branch history is a
    classic side channel of its own (BranchScope-style attacks).
``FETCHBUF-PC``
    PCs resident in the fetch buffer, exposing speculative fetch direction
    before instructions even reach the ROB.
``FREELIST-OCPNCY``
    Free physical registers remaining — rename pressure correlates with
    in-flight instruction mix.

Call :func:`install_extra_features` once, then request the IDs explicitly:

    install_extra_features()
    sampler = MicroSampler(config, features=[*feature_ids(), "BP-GHR"])
"""

from __future__ import annotations

from repro.trace.features import FEATURES, FeatureSpec, register_feature

EXTRA_FEATURE_IDS = ("BP-GHR", "FETCHBUF-PC", "FREELIST-OCPNCY")


def _sample_ghr(core):
    return (core.predictor.gshare.ghr,)


def _sample_fetch_buffer(core):
    row = [0] * core.config.fetch_buffer_entries
    for index, uop in enumerate(core.fetch_buffer):
        row[index] = uop.pc
    return tuple(row)


def _sample_free_list(core):
    return (len(core.free_list),)


_SPECS = [
    FeatureSpec("BP-GHR", "Branch Predictor", "Global history register",
                _sample_ghr),
    FeatureSpec("FETCHBUF-PC", "Fetch Buffer", "Fetched PCs awaiting decode",
                _sample_fetch_buffer),
    FeatureSpec("FREELIST-OCPNCY", "Rename", "Free physical registers",
                _sample_free_list),
]


def install_extra_features() -> tuple[str, ...]:
    """Register the extension features (idempotent); returns their IDs."""
    for spec in _SPECS:
        if spec.feature_id not in FEATURES:
            register_feature(spec)
    return EXTRA_FEATURE_IDS
