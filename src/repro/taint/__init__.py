"""Secret-taint publicness engine.

Dynamic byte-granular taint tracking layered on the functional
interpreter: secret input bytes (declared per-workload via
``Workload.secret_regions``) are tainted at ROI entry and propagated
per-mnemonic through registers and memory, producing a per-instruction
:class:`PublicnessMap`.  The map drives three tiers downstream:

* **prune** — the microarchitectural tracer skips units no tainted value
  can reach (``repro.uarch.reachability``);
* **rank** — localization attribution permutation-tests only
  taint-reaching committed PCs;
* **cross-check** — reports compare statistical verdicts against the
  taint verdict per unit (``TAINT-DISAGREE`` when they conflict).
"""

from repro.taint.batch_engine import taint_runs_batch
from repro.taint.engine import (
    FULL,
    TRANSIENT_WINDOW,
    TaintError,
    TaintInterpreter,
    TaintShadow,
    alu_taint,
    propagate_taint,
    spread_up,
    transient_walk,
)
from repro.taint.publicness import (
    MAX_TAINT_STEPS,
    CampaignPublicness,
    PublicnessMap,
    compute_publicness,
    resolve_secret_spans,
    taint_run,
)

__all__ = [
    "FULL",
    "MAX_TAINT_STEPS",
    "TRANSIENT_WINDOW",
    "CampaignPublicness",
    "PublicnessMap",
    "TaintError",
    "TaintInterpreter",
    "TaintShadow",
    "alu_taint",
    "compute_publicness",
    "propagate_taint",
    "resolve_secret_spans",
    "spread_up",
    "taint_run",
    "taint_runs_batch",
    "transient_walk",
]
