"""Lane-parallel taint analysis over the lockstep batch interpreter.

The batch interpreter executes one decoded instruction stream across N
input lanes, so the taint pass can ride along: each still-batched lane
carries its own :class:`~repro.taint.engine.TaintShadow`, stepped by the
*same* :func:`~repro.taint.engine.propagate_taint` rules the scalar engine
uses — lane values are simply read out of the batch register file / memory
matrix instead of a scalar interpreter.  Batch ≡ scalar holds by shared-rule
construction and is locked in by the differential fuzz battery.

Lanes that leave lockstep (the batch splits on divergent control flow or
addresses — itself a leak signal) are re-analyzed from scratch with the
scalar :func:`~repro.taint.publicness.taint_run`; while lanes *are* batched,
their branch directions and memory addresses are provably uniform, so the
shadow walk and all address-indexed taint bookkeeping see exactly what a
scalar run would.
"""

from __future__ import annotations

from repro.isa.interpreter import ExecutionError
from repro.kernel.memory_map import MemoryMap
from repro.kernel.proxy_kernel import ProxyKernel, SyscallError
from repro.taint.engine import (
    TRANSIENT_WINDOW,
    TaintError,
    TaintShadow,
    propagate_taint,
)


def _lane_reader(batch, local):
    def read_reg(num: int) -> int:
        if num == 0:
            return 0
        return int(batch.regs[num, local])
    return read_reg


def _lane_loader(batch, local):
    def load_byte(address: int) -> int:
        return batch.mem.read_bytes(local, address, 1)[0]
    return load_byte


def _shadow_to_map(shadow: TaintShadow, steps: int):
    from repro.taint.publicness import PublicnessMap

    return PublicnessMap(
        executed_pcs=frozenset(shadow.executed_pcs),
        tainted_pcs=frozenset(shadow.tainted_pcs),
        tainted_mem_pcs=frozenset(shadow.tainted_mem_pcs),
        tainted_branch_pcs=frozenset(shadow.tainted_branch_pcs),
        tainted_div_pcs=frozenset(shadow.tainted_div_pcs),
        transient_mem_pcs=frozenset(shadow.transient_mem_pcs),
        escalations=tuple(shadow.escalations),
        steps=steps,
    )


def _taint_chunk(programs, spans, *, memory_map, max_steps,
                 transient_window):
    """Taint-analyze one batch of lanes; returns maps aligned with lanes.

    Lanes that split off mid-run come back as ``None`` placeholders — the
    caller reruns them through the scalar engine.
    """
    from repro.isa.batch_interpreter import BatchInterpreter

    mm = memory_map or MemoryMap()
    kernels = [ProxyKernel(memory_map=mm) for _ in programs]
    batch = BatchInterpreter(programs, memory_map=mm, kernels=kernels)
    program = batch.program
    results: list = [None] * len(programs)

    try:
        # Prologue scout: nothing is tainted before roi.begin, so the lanes
        # run untracked, exactly like the scalar engine's recording=False
        # phase.  Lanes that diverge here fall back to scalar analysis.
        if not batch.run_to_marker("roi.begin", max_steps):
            raise TaintError("program halted or exceeded the step budget "
                             "before roi.begin")
        shadows: dict[int, TaintShadow] = {}
        for lane in batch.lane_ids:
            shadow = TaintShadow(transient_window=transient_window)
            for address, length in spans[lane]:
                shadow.taint_bytes(address, length)
            shadows[lane] = shadow
        roi_start = batch.steps

        while not batch.halted and batch.steps < max_steps:
            inst = program.instruction_at(batch.pc)
            if inst is not None and inst.mnemonic == "roi.end":
                break
            if inst is not None:
                for local, lane in enumerate(batch.lane_ids):
                    propagate_taint(shadows[lane], inst, program,
                                    _lane_reader(batch, local),
                                    _lane_loader(batch, local))
            batch.step()
            if batch.scalar_lanes:
                # While batched, addresses and branch directions were
                # lane-uniform, so the shadows were exact — but a split lane
                # now walks its own path; rerun it scalar from scratch.
                for lane in list(shadows):
                    if lane in batch.scalar_lanes:
                        del shadows[lane]
        if not batch.halted and batch.steps >= max_steps:
            raise TaintError("ROI exceeded the taint step budget")
    except (ExecutionError, SyscallError) as exc:
        raise TaintError(f"taint run trapped: {exc}") from exc

    steps = batch.steps - roi_start
    for lane, shadow in shadows.items():
        results[lane] = _shadow_to_map(shadow, steps)
    return results


def taint_runs_batch(programs, spans, *, memory_map: MemoryMap | None = None,
                     lanes: int, max_steps: int,
                     transient_window: int = TRANSIENT_WINDOW) -> list:
    """Per-input publicness maps via the batch engine, scalar on divergence.

    ``programs`` / ``spans`` are parallel lists (one per campaign input);
    the result list is aligned with them and bit-identical to running
    :func:`~repro.taint.publicness.taint_run` on each input alone.
    """
    from repro.taint.publicness import taint_run

    results: list = []
    for start in range(0, len(programs), lanes):
        chunk = programs[start:start + lanes]
        chunk_spans = spans[start:start + lanes]
        if len(chunk) == 1:
            maps: list = [None]
        else:
            maps = _taint_chunk(chunk, chunk_spans, memory_map=memory_map,
                                max_steps=max_steps,
                                transient_window=transient_window)
        for program, span, found in zip(chunk, chunk_spans, maps):
            if found is None:
                found = taint_run(program, span, memory_map=memory_map,
                                  max_steps=max_steps,
                                  transient_window=transient_window)
            results.append(found)
    return results
