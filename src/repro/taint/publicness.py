"""Per-instruction publicness maps and the campaign-level taint prescreen.

A :class:`PublicnessMap` is the distilled output of one taint run: which
ROI PCs executed, which touched secret-derived data, where secrets reached
memory addresses / branch decisions / the divider, what a bounded transient
shadow walk could dereference, and whether the engine escalated (implicit
flow).  :func:`compute_publicness` produces one map per campaign input —
secret bytes are declared per-workload via ``Workload.secret_regions`` and
seeded when the functional run reaches ``roi.begin`` — plus their
conservative union, which is what the prune/rank/cross-check tiers key off.

Maps are purely architectural: they depend on the program, its input
patches and the declared secret regions, never on a core configuration, so
one prescreen is valid for every config a campaign sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.interpreter import ExecutionError
from repro.kernel.memory_map import MemoryMap
from repro.kernel.proxy_kernel import SyscallError
from repro.taint.engine import TaintError, TaintInterpreter

#: Step budget for one functional taint pass (scout + ROI combined).
MAX_TAINT_STEPS = 10_000_000


@dataclass(frozen=True)
class PublicnessMap:
    """Where secrets actually flowed during one (or a union of) taint runs.

    ``escalations`` records implicit-flow events as ``(pc, kind)`` pairs
    (kind in ``branch`` / ``jump-target`` / ``store-address`` /
    ``syscall``); a non-empty tuple means the explicit sets below are still
    the dynamic data-flow witness but no longer an upper bound — consumers
    must fail conservative (no pruning, no attribution restriction).
    """

    executed_pcs: frozenset = frozenset()
    tainted_pcs: frozenset = frozenset()
    tainted_mem_pcs: frozenset = frozenset()
    tainted_branch_pcs: frozenset = frozenset()
    tainted_div_pcs: frozenset = frozenset()
    transient_mem_pcs: frozenset = frozenset()
    escalations: tuple = ()
    steps: int = 0

    @property
    def escalated(self) -> bool:
        return bool(self.escalations)

    @property
    def secret_free_pcs(self) -> frozenset:
        """Executed PCs provably untouched by secret data (empty once the
        engine escalated — implicit flow voids per-PC exoneration)."""
        if self.escalated:
            return frozenset()
        return self.executed_pcs - self.tainted_pcs

    def to_dict(self) -> dict:
        return {
            "executed_pcs": sorted(self.executed_pcs),
            "tainted_pcs": sorted(self.tainted_pcs),
            "tainted_mem_pcs": sorted(self.tainted_mem_pcs),
            "tainted_branch_pcs": sorted(self.tainted_branch_pcs),
            "tainted_div_pcs": sorted(self.tainted_div_pcs),
            "transient_mem_pcs": sorted(self.transient_mem_pcs),
            "escalations": [[pc, kind] for pc, kind in self.escalations],
            "escalated": self.escalated,
            "steps": self.steps,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PublicnessMap":
        return cls(
            executed_pcs=frozenset(payload["executed_pcs"]),
            tainted_pcs=frozenset(payload["tainted_pcs"]),
            tainted_mem_pcs=frozenset(payload["tainted_mem_pcs"]),
            tainted_branch_pcs=frozenset(payload["tainted_branch_pcs"]),
            tainted_div_pcs=frozenset(payload["tainted_div_pcs"]),
            transient_mem_pcs=frozenset(payload["transient_mem_pcs"]),
            escalations=tuple((pc, kind)
                              for pc, kind in payload["escalations"]),
            steps=payload["steps"],
        )

    @classmethod
    def merge(cls, maps) -> "PublicnessMap":
        """Conservative union: a PC/byte is secret-touched if it was in any
        contributing run."""
        maps = list(maps)
        escalations: list = []
        for m in maps:
            for entry in m.escalations:
                if entry not in escalations:
                    escalations.append(entry)
        return cls(
            executed_pcs=frozenset().union(*(m.executed_pcs for m in maps))
            if maps else frozenset(),
            tainted_pcs=frozenset().union(*(m.tainted_pcs for m in maps))
            if maps else frozenset(),
            tainted_mem_pcs=frozenset().union(
                *(m.tainted_mem_pcs for m in maps)) if maps else frozenset(),
            tainted_branch_pcs=frozenset().union(
                *(m.tainted_branch_pcs for m in maps))
            if maps else frozenset(),
            tainted_div_pcs=frozenset().union(
                *(m.tainted_div_pcs for m in maps)) if maps else frozenset(),
            transient_mem_pcs=frozenset().union(
                *(m.transient_mem_pcs for m in maps))
            if maps else frozenset(),
            escalations=tuple(sorted(escalations)),
            steps=sum(m.steps for m in maps),
        )


@dataclass(frozen=True)
class CampaignPublicness:
    """Per-input publicness maps for one workload plus their union."""

    workload_name: str
    maps: tuple = ()
    merged: PublicnessMap = field(default_factory=PublicnessMap)
    seed_bytes: int = 0


def resolve_secret_spans(program, patches, secret_regions) -> list:
    """Resolve a workload's ``secret_regions`` declarations to byte spans.

    Each region is either a symbol name — the bytes this input patches into
    that symbol — or a ``(symbol, offset, length)`` triple for a fixed
    sub-range (e.g. the key words inside a packed cipher state).
    """
    spans = []
    for region in secret_regions:
        if isinstance(region, str):
            symbol, offset, length = region, 0, None
        else:
            symbol, offset, length = region
        if symbol not in program.symbols:
            raise TaintError(f"secret region {symbol!r} is not a data symbol")
        if length is None:
            blob = patches.get(symbol)
            if blob is None:
                continue  # this input does not exercise the region
            length = len(blob) - offset
        if length > 0:
            spans.append((program.symbols[symbol] + offset, length))
    return spans


def taint_run(program, spans, *, memory_map: MemoryMap | None = None,
              max_steps: int = MAX_TAINT_STEPS,
              transient_window: int | None = None) -> PublicnessMap:
    """One scalar taint pass: functional prologue, seed at ``roi.begin``,
    record through the ROI, stop at ``roi.end`` (or halt)."""
    kwargs = {} if transient_window is None else {
        "transient_window": transient_window}
    engine = TaintInterpreter(program, memory_map=memory_map, **kwargs)
    engine.recording = False
    try:
        # Prologue scout: nothing is tainted yet, so plain stepping is cheap
        # and exactly mirrors the checkpoint scout's roi.begin latch.
        while not engine.halted and engine.steps < max_steps:
            inst = program.instruction_at(engine.pc)
            if inst is not None and inst.mnemonic == "roi.begin":
                break
            engine.step()
        else:
            raise TaintError("program halted or exceeded the step budget "
                             "before roi.begin")
        for address, length in spans:
            engine.taint_bytes(address, length)
        engine.recording = True
        roi_start = engine.steps
        while not engine.halted and engine.steps < max_steps:
            inst = program.instruction_at(engine.pc)
            if inst is not None and inst.mnemonic == "roi.end":
                break
            engine.step()
        if not engine.halted and engine.steps >= max_steps:
            raise TaintError("ROI exceeded the taint step budget")
    except (ExecutionError, SyscallError) as exc:
        raise TaintError(f"taint run trapped: {exc}") from exc
    return PublicnessMap(
        executed_pcs=frozenset(engine.executed_pcs),
        tainted_pcs=frozenset(engine.tainted_pcs),
        tainted_mem_pcs=frozenset(engine.tainted_mem_pcs),
        tainted_branch_pcs=frozenset(engine.tainted_branch_pcs),
        tainted_div_pcs=frozenset(engine.tainted_div_pcs),
        transient_mem_pcs=frozenset(engine.transient_mem_pcs),
        escalations=tuple(engine.escalations),
        steps=engine.steps - roi_start,
    )


def compute_publicness(workload, *, memory_map: MemoryMap | None = None,
                       batch_lanes=None,
                       max_steps: int = MAX_TAINT_STEPS) -> CampaignPublicness:
    """Taint-analyze every input of ``workload`` and merge the maps.

    Requires the workload to declare ``secret_regions``; a workload without
    a declaration has no defined secret and cannot be prescreened (callers
    should surface that rather than silently treating it as public).
    ``batch_lanes`` (``None`` | ``"auto"`` | N) selects the lane-parallel
    engine for the lockstep phases, bit-identical to the scalar path.

    The result is **core-config independent**: taint propagates through the
    functional interpreter, which models no timing.  Only the downstream
    reachability projection (:mod:`repro.uarch.reachability`) consults a
    :class:`CoreConfig` — which is why the cross-config sweep engine
    computes this witness once and projects it per swept config.
    """
    from repro.sampler.runner import patch_program

    secret_regions = getattr(workload, "secret_regions", None) or []
    if not secret_regions:
        raise TaintError(
            f"workload {workload.name!r} declares no secret_regions; "
            "taint analysis needs to know which input bytes are secret")
    base = workload.assemble()
    programs = [patch_program(base, patches) for patches in workload.inputs]
    spans = [resolve_secret_spans(base, patches, secret_regions)
             for patches in workload.inputs]

    from repro.sampler.batch import resolve_batch_lanes
    lanes = resolve_batch_lanes(batch_lanes, len(programs))
    if lanes > 1:
        from repro.taint.batch_engine import taint_runs_batch
        maps = taint_runs_batch(programs, spans, memory_map=memory_map,
                                lanes=lanes, max_steps=max_steps)
    else:
        maps = [taint_run(program, span, memory_map=memory_map,
                          max_steps=max_steps)
                for program, span in zip(programs, spans)]
    return CampaignPublicness(
        workload_name=workload.name,
        maps=tuple(maps),
        merged=PublicnessMap.merge(maps),
        seed_bytes=sum(length for per_input in spans
                       for _, length in per_input),
    )
