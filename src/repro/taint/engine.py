"""Dynamic byte-granular taint engine over the functional interpreter.

A :class:`TaintInterpreter` steps an ordinary
:class:`~repro.isa.interpreter.Interpreter` and mirrors a *shadow state*
alongside it: an 8-bit byte-taint mask per architectural register and a set
of tainted memory byte addresses.  Secret bytes are seeded with
:meth:`TaintInterpreter.taint_bytes`; per-mnemonic propagation rules (one
per class of :data:`~repro.isa.semantics.ALU_OPS` entry) then track which
bytes of which values are secret-derived as the program runs.

The propagation rules are a deliberate over-approximation — a tainted byte
means "may depend on a secret byte", never "is definitely public" — and the
property-fuzz suite (``tests/test_taint_fuzz.py``) holds them to a two-run
oracle: perturbing one seeded byte may only change architectural state that
the engine marked tainted.

Explicit data flow is tracked byte-precisely.  Implicit flow — control flow
or addresses depending on a secret — is handled by *escalation*: a tainted
branch/jalr operand or a tainted store address sets the sticky
:attr:`TaintInterpreter.escalated` flag, after which the engine's explicit
sets are still maintained (they remain the dynamic data-flow witness) but
consumers must treat every value as potentially secret.  Constant-time code
never escalates, which is exactly where the precision matters: the prune
and rank tiers only act on non-escalated maps.

Because the out-of-order core executes *wrong-path* instructions for a
bounded window after a mispredicted branch (``branch_kill_latency``), an
architecturally-dead secret dereference — the Spectre-v1 gadget — is still
microarchitecturally observable.  The engine therefore performs a bounded
*transient shadow walk* at every resolved public branch: it emulates the
direction the program did **not** take for up to :data:`TRANSIENT_WINDOW`
instructions on a throwaway copy of the architectural and taint state, and
records any tainted load/store address reached there in
``transient_mem_pcs``.  The walk mutates nothing persistent.
"""

from __future__ import annotations

from repro.isa.assembler import Program
from repro.isa.instructions import FuncClass
from repro.isa.interpreter import ExecutionError, Interpreter
from repro.isa.semantics import MASK64, branch_taken, compute_alu, to_signed
from repro.kernel.memory_map import MemoryMap
from repro.kernel.proxy_kernel import ProxyKernel, SyscallError

#: Full-register taint mask (all eight bytes).
FULL = 0xFF

#: Wrong-path instructions emulated per resolved public branch.  Sized to
#: cover the deepest transient window any bundled configuration exposes
#: (``branch_kill_latency`` × issue width, plus the slack a late-resolving
#: branch condition buys); kept configuration-independent so publicness
#: maps can be shared across core configs.
TRANSIENT_WINDOW = 32


class TaintError(Exception):
    """Raised when taint analysis cannot be applied to a program."""


def spread_up(mask: int) -> int:
    """Taint closure of carry/borrow propagation: all bytes at or above the
    lowest tainted byte.  ``add``-family results can differ in any byte from
    the lowest tainted input byte upward, never below it."""
    if mask == 0:
        return 0
    low = (mask & -mask).bit_length() - 1
    return (FULL << low) & FULL


def _sext32_mask(mask: int) -> int:
    """Mask adjustment for a 32-bit result sign-extended to 64 bits."""
    mask &= 0x0F
    if mask & 0x08:
        mask |= 0xF0
    return mask


def _shift_left_mask(mask: int, amount: int) -> int:
    """Byte-conservative taint of ``value << amount`` (amount public)."""
    out = 0
    for i in range(8):
        if mask & (1 << i):
            low = (8 * i + amount) // 8
            high = (8 * i + 7 + amount) // 8
            for j in range(low, min(high, 7) + 1):
                out |= 1 << j
    return out


def _shift_right_mask(mask: int, amount: int) -> int:
    """Byte-conservative taint of ``value >> amount`` (amount public)."""
    out = 0
    for i in range(8):
        if mask & (1 << i):
            top = 8 * i + 7 - amount
            if top < 0:
                continue
            low = max(0, 8 * i - amount) // 8
            for j in range(low, top // 8 + 1):
                out |= 1 << j
    return out


def alu_taint(mnemonic: str, ta: int, tb: int, b_value: int) -> int:
    """Result taint mask for one ALU/MUL/DIV mnemonic.

    ``ta``/``tb`` are the operand masks (already 0 for immediates and for
    ``lui``/``auipc``, whose inputs are public constants); ``b_value`` is
    the architectural second operand, needed only to resolve public shift
    amounts.  Sound per class:

    * bitwise ops are byte-local — the union of the input masks is exact;
    * add/sub carry chains only propagate upward — :func:`spread_up`;
    * comparisons produce a 0/1 result — only byte 0 can vary;
    * multiplies/divides mix all input bytes into all output bytes — full
      taint whenever any input byte is tainted;
    * shifts by a public amount relocate the mask conservatively; a secret
      shift amount makes every output byte secret-dependent.
    """
    combined = ta | tb
    if combined == 0:
        return 0
    if mnemonic in ("and", "andi", "or", "ori", "xor", "xori"):
        return combined
    if mnemonic in ("add", "addi", "sub"):
        return spread_up(combined)
    if mnemonic in ("addw", "addiw", "subw"):
        return _sext32_mask(spread_up(combined))
    if mnemonic in ("slt", "slti", "sltu", "sltiu"):
        return 0x01
    if mnemonic in ("sll", "slli", "srl", "srli", "sra", "srai"):
        if tb:
            return FULL
        amount = b_value & 63
        if mnemonic in ("sll", "slli"):
            return _shift_left_mask(ta, amount)
        mask = _shift_right_mask(ta, amount)
        if mnemonic in ("sra", "srai") and ta & 0x80:
            # The (tainted) sign bit replicates into every vacated high bit.
            mask |= (FULL << max(0, (8 * 7 - amount) // 8)) & FULL
        return mask
    if mnemonic in ("sllw", "slliw", "srlw", "srliw", "sraw", "sraiw"):
        if tb:
            return FULL
        amount = b_value & 31
        ta32 = ta & 0x0F
        if mnemonic in ("sllw", "slliw"):
            mask = _shift_left_mask(ta32, amount)
        else:
            mask = _shift_right_mask(ta32, amount)
            if mnemonic in ("sraw", "sraiw") and ta32 & 0x08:
                mask |= (0x0F << max(0, (8 * 3 - amount) // 8)) & 0x0F
        return _sext32_mask(mask)
    # mul/mulh/mulhu/mulhsu/mulw, div/divu/rem/remu and W-forms: any tainted
    # input byte can influence every result byte.
    if mnemonic in ("mulw", "divw", "divuw", "remw", "remuw"):
        return _sext32_mask(0x0F)
    return FULL


class TaintShadow:
    """The taint state mirrored alongside one executing lane.

    Engine-agnostic: :func:`propagate_taint` drives a shadow from any
    source of architectural values (`read_reg`/`load_byte` callables), so
    the scalar :class:`TaintInterpreter` and the lane-parallel batch engine
    share every propagation rule by construction.
    """

    __slots__ = ("reg_taint", "mem_taint", "escalations", "recording",
                 "transient_window", "executed_pcs", "tainted_pcs",
                 "tainted_mem_pcs", "tainted_branch_pcs", "tainted_div_pcs",
                 "transient_mem_pcs")

    def __init__(self, transient_window: int = TRANSIENT_WINDOW):
        self.reg_taint = [0] * 32
        self.mem_taint: set[int] = set()
        self.escalations: list[tuple[int, str]] = []
        self.recording = True
        self.transient_window = transient_window
        self.executed_pcs: set[int] = set()
        self.tainted_pcs: set[int] = set()
        self.tainted_mem_pcs: set[int] = set()
        self.tainted_branch_pcs: set[int] = set()
        self.tainted_div_pcs: set[int] = set()
        self.transient_mem_pcs: set[int] = set()

    @property
    def escalated(self) -> bool:
        return bool(self.escalations)

    def taint_bytes(self, address: int, length: int) -> None:
        """Mark ``length`` memory bytes starting at ``address`` as secret."""
        self.mem_taint.update(range(address, address + length))

    def reset_recording(self) -> None:
        """Clear the recorded PC sets (taint and escalation state is kept)."""
        self.executed_pcs.clear()
        self.tainted_pcs.clear()
        self.tainted_mem_pcs.clear()
        self.tainted_branch_pcs.clear()
        self.tainted_div_pcs.clear()
        self.transient_mem_pcs.clear()

    def escalate(self, pc: int, kind: str) -> None:
        entry = (pc, kind)
        if entry not in self.escalations:
            self.escalations.append(entry)

    def write_taint(self, rd: int, mask: int) -> None:
        if rd != 0:
            self.reg_taint[rd] = mask

    def load_taint(self, address: int, size: int, signed: bool) -> int:
        mask = 0
        mem_taint = self.mem_taint
        for i in range(size):
            if (address + i) in mem_taint:
                mask |= 1 << i
        if signed and mask & (1 << (size - 1)):
            # Sign extension replicates the (tainted) top byte upward.
            mask |= (FULL << size) & FULL
        return mask


def propagate_taint(shadow: TaintShadow, inst, program: Program,
                    read_reg, load_byte) -> None:
    """Apply one instruction's taint-propagation rule to ``shadow``.

    ``read_reg(r)`` / ``load_byte(addr)`` supply the *pre-execution*
    architectural values of whichever lane the shadow mirrors; the caller
    executes the instruction afterwards.
    """
    reg_taint = shadow.reg_taint
    fc = inst.func_class
    pc = inst.pc
    touches = 0

    if fc is FuncClass.ALU or fc is FuncClass.MUL or fc is FuncClass.DIV:
        mnemonic = inst.mnemonic
        ta = 0 if mnemonic in ("lui", "auipc") else reg_taint[inst.rs1]
        if inst.spec.uses_imm:
            tb = 0
            b_value = inst.imm & MASK64
        else:
            tb = reg_taint[inst.rs2]
            b_value = read_reg(inst.rs2)
        result = alu_taint(mnemonic, ta, tb, b_value)
        if fc is FuncClass.DIV and (ta | tb):
            shadow.tainted_div_pcs.add(pc)
        shadow.write_taint(inst.rd, result)
        touches = ta | tb | result
    elif fc is FuncClass.LOAD:
        size, signed = inst.spec.mem
        address = (read_reg(inst.rs1) + inst.imm) & MASK64
        if reg_taint[inst.rs1]:
            shadow.tainted_mem_pcs.add(pc)
            value_taint = FULL
        else:
            value_taint = shadow.load_taint(address, size, signed)
        shadow.write_taint(inst.rd, value_taint)
        touches = reg_taint[inst.rs1] | value_taint
    elif fc is FuncClass.STORE:
        size, _ = inst.spec.mem
        address = (read_reg(inst.rs1) + inst.imm) & MASK64
        data_taint = reg_taint[inst.rs2]
        if reg_taint[inst.rs1]:
            shadow.tainted_mem_pcs.add(pc)
            shadow.escalate(pc, "store-address")
            data_taint = FULL
        mem_taint = shadow.mem_taint
        for i in range(size):
            if data_taint & (1 << i):
                mem_taint.add(address + i)
            else:
                mem_taint.discard(address + i)
        touches = reg_taint[inst.rs1] | (reg_taint[inst.rs2]
                                         & ((1 << size) - 1))
    elif fc is FuncClass.BRANCH:
        ta, tb = reg_taint[inst.rs1], reg_taint[inst.rs2]
        if ta | tb:
            shadow.tainted_branch_pcs.add(pc)
            shadow.escalate(pc, "branch")
            touches = ta | tb
        elif shadow.transient_window:
            transient_walk(shadow, inst, program, read_reg, load_byte)
    elif fc is FuncClass.JUMP:
        if inst.mnemonic == "jalr" and reg_taint[inst.rs1]:
            shadow.tainted_branch_pcs.add(pc)
            shadow.escalate(pc, "jump-target")
            touches = reg_taint[inst.rs1]
        shadow.write_taint(inst.rd, 0)  # link address is a public PC
    elif fc is FuncClass.SYSTEM:
        if inst.mnemonic == "ecall":
            args = 0
            for reg in range(10, 18):  # a0-a7
                args |= reg_taint[reg]
            if args:
                shadow.escalate(pc, "syscall")
                touches = args
            shadow.write_taint(10, FULL if args else 0)
    # Markers only read the class label, which is the iteration's ground
    # truth by construction, not a microarchitectural secret flow.

    if shadow.recording:
        shadow.executed_pcs.add(pc)
        if touches:
            shadow.tainted_pcs.add(pc)


def transient_walk(shadow: TaintShadow, branch, program: Program,
                   read_reg, load_byte) -> None:
    """Emulate the wrong path of a resolved public branch.

    The out-of-order core keeps fetching and executing down the
    mispredicted direction for a bounded window before the squash lands,
    reading current architectural values — so a secret planted in memory
    can be dereferenced *transiently* even though the architectural path
    never touches it (Spectre v1).  This walk runs the not-executed
    direction of ``branch`` for up to ``shadow.transient_window``
    instructions on cloned register/taint state with a store overlay,
    recording any tainted-address load/store reached there into
    ``shadow.transient_mem_pcs``.  Nothing persistent is mutated.
    """
    taken = branch_taken(branch.mnemonic, read_reg(branch.rs1),
                         read_reg(branch.rs2))
    # Walk the direction the program will NOT take.
    pc = ((branch.pc + 4) & MASK64) if taken else branch.branch_target()
    regs = [read_reg(i) for i in range(32)]
    taint = list(shadow.reg_taint)
    overlay: dict[int, tuple[int, int]] = {}  # addr -> (byte, taint bit)
    record = shadow.transient_mem_pcs

    for _ in range(shadow.transient_window):
        inst = program.instruction_at(pc)
        if inst is None:
            return
        fc = inst.func_class
        mnemonic = inst.mnemonic
        try:
            if fc in (FuncClass.ALU, FuncClass.MUL, FuncClass.DIV):
                if mnemonic == "lui":
                    a, ta = 0, 0
                elif mnemonic == "auipc":
                    a, ta = inst.pc, 0
                else:
                    a, ta = regs[inst.rs1], taint[inst.rs1]
                if inst.spec.uses_imm:
                    b, tb = inst.imm & MASK64, 0
                else:
                    b, tb = regs[inst.rs2], taint[inst.rs2]
                if inst.rd != 0:
                    regs[inst.rd] = compute_alu(mnemonic, a, b)
                    taint[inst.rd] = alu_taint(mnemonic, ta, tb, b)
            elif fc is FuncClass.LOAD:
                size, signed = inst.spec.mem
                address = (regs[inst.rs1] + inst.imm) & MASK64
                if taint[inst.rs1]:
                    record.add(inst.pc)
                    value, mask = 0, FULL
                else:
                    value, mask = 0, 0
                    for i in range(size):
                        entry = overlay.get(address + i)
                        if entry is None:
                            entry = (load_byte(address + i),
                                     1 if (address + i) in shadow.mem_taint
                                     else 0)
                        value |= entry[0] << (8 * i)
                        mask |= entry[1] << i
                    if signed:
                        value = to_signed(value, 8 * size) & MASK64
                        if mask & (1 << (size - 1)):
                            mask |= (FULL << size) & FULL
                    # A public-address load of secret data touches the same
                    # line for every secret — not address-observable.  The
                    # taint still propagates, so a dependent dereference
                    # later in the walk records.
                if inst.rd != 0:
                    regs[inst.rd] = value
                    taint[inst.rd] = mask
            elif fc is FuncClass.STORE:
                size, _ = inst.spec.mem
                address = (regs[inst.rs1] + inst.imm) & MASK64
                if taint[inst.rs1]:
                    record.add(inst.pc)
                    return  # secret-addressed transient store: flagged
                value, mask = regs[inst.rs2], taint[inst.rs2]
                for i in range(size):
                    overlay[address + i] = ((value >> (8 * i)) & 0xFF,
                                            (mask >> i) & 1)
            elif fc is FuncClass.BRANCH:
                if taint[inst.rs1] | taint[inst.rs2]:
                    return  # further path depends on the secret; stop
                if branch_taken(mnemonic, regs[inst.rs1], regs[inst.rs2]):
                    pc = inst.branch_target()
                    continue
            elif fc is FuncClass.JUMP:
                if mnemonic == "jal":
                    if inst.rd != 0:
                        regs[inst.rd] = (inst.pc + 4) & MASK64
                        taint[inst.rd] = 0
                    pc = inst.branch_target()
                    continue
                if taint[inst.rs1]:
                    record.add(inst.pc)
                    return
                target = (regs[inst.rs1] + inst.imm) & ~1 & MASK64
                if inst.rd != 0:
                    regs[inst.rd] = (inst.pc + 4) & MASK64
                    taint[inst.rd] = 0
                pc = target
                continue
            elif fc is FuncClass.SYSTEM and mnemonic in ("ecall", "ebreak"):
                return  # the core never transiently retires syscalls
        except (ExecutionError, SyscallError):
            return  # a faulting wrong path is squashed, not observed
        pc = (pc + 4) & MASK64


class TaintInterpreter(TaintShadow):
    """Functional interpreter with a byte-granular taint shadow.

    Wraps a fresh :class:`~repro.isa.interpreter.Interpreter` over
    ``program`` (driving a :class:`~repro.kernel.proxy_kernel.ProxyKernel`
    for syscalls) and maintains, per executed instruction:

    * ``reg_taint[r]`` — 8-bit byte mask of register ``r``'s taint;
    * ``mem_taint`` — the set of tainted memory byte addresses;
    * the recorded PC sets consumed by
      :class:`~repro.taint.publicness.PublicnessMap`.

    Recording can be suspended (``recording = False``) while fast-forwarding
    a public prologue, and :meth:`~TaintShadow.reset_recording` clears the
    PC sets when the region of interest begins.
    """

    __slots__ = ("program", "memory_map", "kernel", "interp", "_load_byte")

    def __init__(self, program: Program, *,
                 memory_map: MemoryMap | None = None,
                 transient_window: int = TRANSIENT_WINDOW):
        super().__init__(transient_window=transient_window)
        self.program = program
        self.memory_map = memory_map or MemoryMap()
        self.kernel = ProxyKernel(memory_map=self.memory_map)
        self.interp = Interpreter(program, memory_map=self.memory_map,
                                  syscall_handler=self.kernel.handle_ecall)
        self._load_byte = lambda address: self.interp.memory.load(address, 1)

    @property
    def halted(self) -> bool:
        return self.interp.halted

    @property
    def pc(self) -> int:
        return self.interp.pc

    @property
    def steps(self) -> int:
        return self.interp.steps

    def step(self) -> bool:
        """Propagate taint for the instruction at ``pc``, then execute it."""
        interp = self.interp
        if interp.halted:
            return False
        inst = self.program.instruction_at(interp.pc)
        if inst is not None:
            propagate_taint(self, inst, self.program, interp.read_reg,
                            self._load_byte)
        return interp.step()

    def run(self, max_steps: int = 10_000_000) -> None:
        while not self.interp.halted and self.interp.steps < max_steps:
            self.step()
        if not self.interp.halted:
            raise TaintError(f"program did not halt within {max_steps} steps")
