"""Command-line interface: ``microsampler <command>``.

Commands
--------
``list-workloads``
    Enumerate the built-in case-study workloads.
``features``
    List the tracked microarchitectural features (Table IV).
``analyze WORKLOAD``
    Run the full MicroSampler pipeline on a built-in workload.
``sweep WORKLOAD``
    Run one workload across several core configurations as a single
    planned job (config-invariant phases paid once).
``localize WORKLOAD``
    Detect leaks, then pin each one to a cycle window and the
    responsible instructions (annotated disassembly).
``simulate FILE``
    Assemble a RISC-V assembly file and run it on the out-of-order core.
``disasm FILE``
    Assemble a file and print its disassembly with addresses.
``cache {stats,prune}``
    Inspect or garbage-collect the trace/checkpoint cache directory.
"""

from __future__ import annotations

import argparse
import sys

from repro.isa import assemble, format_program
from repro.sampler import MicroSampler, render_report
from repro.trace.features import FEATURES
from repro.uarch import MEDIUM_BOOM, MEGA_BOOM, SMALL_BOOM, Core
from repro.workloads.bignum import make_mp_modexp_ct, make_mp_modexp_leaky
from repro.workloads.chacha import make_chacha20
from repro.workloads.cipher import make_sbox_ct, make_sbox_lookup
from repro.workloads.memcmp import (
    make_ct_memcmp,
    make_ct_memcmp_safe,
    make_early_exit_memcmp,
)
from repro.workloads.modexp import (
    make_div_timing,
    make_me_v1_cv,
    make_me_v1_mv,
    make_me_v2_safe,
    make_sam_ct,
    make_sam_ct_window,
    make_sam_leaky,
)
from repro.workloads.openssl import make_primitive_workload, primitive_names
from repro.workloads.spectre import make_spectre_v1

#: name -> (factory(n, seed), description)
WORKLOADS = {
    "sam-leaky": (make_sam_leaky, "square-and-multiply with secret branch"),
    "sam-ct": (make_sam_ct, "constant-time SAM, register cmov"),
    "sam-ct-window": (make_sam_ct_window, "2-bit-window CT exponentiation"),
    "me-v1-cv": (make_me_v1_cv, "libgcrypt CCOPY, compiler vulnerability"),
    "me-v1-mv": (make_me_v1_mv, "branchless CCOPY, address leak"),
    "me-v2-safe": (make_me_v2_safe, "BearSSL CCOPY (safe baseline)"),
    "div-timing": (make_div_timing, "secret divisor on early-exit divider"),
    "mp-modexp-ct": (make_mp_modexp_ct, "128-bit 2-limb CT modexp"),
    "mp-modexp-leaky": (make_mp_modexp_leaky, "128-bit modexp, secret branch"),
    "ct-mem-cmp": (None, "OpenSSL CRYPTO_memcmp + consumer (Listing 7-8)"),
    "ee-mem-cmp": (None, "classic early-exit memcmp (localization demo)"),
    "ct-mem-cmp-safe": (None, "CRYPTO_memcmp + branchless consumer (fixed)"),
    "sbox-lookup": (None, "table-lookup S-box (cache side channel)"),
    "sbox-ct": (None, "constant-time scan S-box"),
    "spectre-v1": (None, "Spectre-PHT bounds-check-bypass litmus"),
    "chacha20": (None, "RFC 7539 ChaCha20 block function (ARX)"),
}


def _resolve_backend(args):
    """(jobs, cache) for the simulation backend from CLI flags.

    Caching is on by default — campaign replays are deterministic, so a
    repeated ``analyze`` skips simulation entirely.  ``--no-cache`` bypasses
    it (do so after modifying the simulator itself: keys cover the program,
    inputs and configuration, not the model's source).
    """
    jobs = getattr(args, "jobs", 1)
    if getattr(args, "no_cache", False):
        return jobs, None
    from repro.sampler.trace_cache import TraceCache

    cache_dir = getattr(args, "cache_dir", None)
    return jobs, TraceCache(cache_dir)


def _jobs_argument(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = one per CPU), got {jobs}")
    return jobs


def _warmup_insts_argument(value: str):
    from repro.sampler.checkpoint import parse_warmup

    try:
        return parse_warmup(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _add_checkpoint_argument(parser) -> None:
    from repro.sampler.checkpoint import DEFAULT_WARMUP_INSTS

    parser.add_argument(
        "--warmup-insts", type=_warmup_insts_argument,
        default=DEFAULT_WARMUP_INSTS, metavar="{none,full,N}",
        help="fast-forward checkpointing: run the pre-ROI prefix on the "
             "functional interpreter and simulate cycle-accurately only "
             "from a checkpoint N instructions before roi.begin (those N "
             "are replayed untraced to warm caches and predictors). "
             "'none' = jump straight to the ROI on a cold core; 'full' = "
             "no checkpointing, simulate everything cycle-accurately "
             f"(default: {DEFAULT_WARMUP_INSTS})")


def _batch_lanes_argument(value: str):
    from repro.sampler.batch import parse_batch_lanes

    try:
        return parse_batch_lanes(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _add_batch_argument(parser) -> None:
    parser.add_argument(
        "--batch-lanes", type=_batch_lanes_argument, default="auto",
        metavar="{auto,off,N}",
        help="lockstep lane width: run several inputs simultaneously as "
             "SIMD lanes — through the functional warm-up passes (one "
             "batch interpreter; needs --warmup-insts) and through the "
             "cycle-accurate core itself (one shared pipeline carrying "
             "per-lane values), splitting (and reporting as a leak "
             "signal) any lane whose control flow, addresses or "
             "timing-relevant state diverge.  Verdicts and per-unit "
             "digests are bit-identical to 'off', which simulates one "
             "input at a time (default: auto)")


def _add_taint_argument(parser) -> None:
    parser.add_argument(
        "--taint", choices=["off", "on"], default="off",
        help="secret-taint publicness prescreen: taint each workload's "
             "declared secret bytes, propagate through the functional "
             "interpreter, then (a) skip tracing units no tainted value "
             "can reach, (b) restrict localization's permutation tests to "
             "taint-reaching PCs, and (c) cross-check taint against the "
             "statistical verdicts (TAINT-DISAGREE on conflict).  "
             "Verdicts are bit-identical to 'off' (default: off)")


def _add_engine_argument(parser) -> None:
    parser.add_argument("--engine", choices=["python", "numpy"],
                        default="numpy",
                        help="statistics engine: 'numpy' scores all units "
                             "with vectorized columnar kernels; 'python' is "
                             "the scalar reference implementation (results "
                             "agree to within 1e-9)")


def _add_profile_argument(parser) -> None:
    parser.add_argument("--profile", action="store_true",
                        help="record a per-stage simulator time breakdown "
                             "(fetch/rename/issue/writeback/commit/memory/"
                             "tracer); runs replayed from the trace cache do "
                             "no simulation work and contribute nothing — "
                             "combine with --no-cache to profile every run")


def _add_backend_arguments(parser) -> None:
    parser.add_argument("--jobs", type=_jobs_argument, default=1,
                        help="simulate this many inputs concurrently "
                             "(0 = one per CPU); results are bit-identical "
                             "to serial execution")
    parser.add_argument("--no-cache", action="store_true",
                        help="always simulate, bypassing the trace cache")
    parser.add_argument("--cache-dir", default=None,
                        help="trace cache directory (default: "
                             "$MICROSAMPLER_CACHE_DIR or "
                             "~/.cache/microsampler)")


#: CLI config name -> base core configuration.
CONFIGS = {"mega": MEGA_BOOM, "medium": MEDIUM_BOOM, "small": SMALL_BOOM}


def _apply_config_overrides(config, args):
    overrides = {}
    if getattr(args, "fast_bypass", False):
        overrides["fast_bypass"] = True
    if getattr(args, "variable_div", False):
        overrides["variable_div_latency"] = True
    return config.with_(**overrides) if overrides else config


def _resolve_config(args):
    return _apply_config_overrides(CONFIGS[args.config], args)


def _resolve_sweep_configs(args):
    """The core configs named by ``--configs mega,medium,small``.

    ``--fast-bypass`` / ``--variable-div`` apply to every leg (sweep legs
    must carry distinct names, which the base trio guarantees)."""
    names = [name.strip() for name in args.configs.split(",") if name.strip()]
    if not names:
        raise SystemExit("--configs needs at least one core config name")
    unknown = [name for name in names if name not in CONFIGS]
    if unknown:
        raise SystemExit(
            f"unknown config(s) {', '.join(unknown)}; "
            f"choose from: {', '.join(CONFIGS)}")
    if len(set(names)) != len(names):
        raise SystemExit(f"duplicate config names in --configs: {names}")
    return [_apply_config_overrides(CONFIGS[name], args) for name in names]


def known_workloads() -> tuple:
    """Every name :func:`build_workload` accepts."""
    return tuple(WORKLOADS) + tuple(primitive_names())


def build_workload(name, *, inputs: int = 8, seed: int = 3):
    """Instantiate a built-in workload by name.

    This is the single name→workload mapping shared by the CLI verbs and
    the campaign service; identical (name, inputs, seed) triples must
    produce identical workloads or cache keys (and therefore service
    dedup and bit-identity with the one-shot CLI) silently break.
    """
    if name == "ct-mem-cmp":
        return make_ct_memcmp(n_pairs=max(4 * inputs, 16),
                              seed=seed, n_runs=2)
    if name == "ee-mem-cmp":
        return make_early_exit_memcmp(n_pairs=max(4 * inputs, 16),
                                      seed=seed, n_runs=2)
    if name == "ct-mem-cmp-safe":
        return make_ct_memcmp_safe(n_pairs=max(4 * inputs, 16),
                                   seed=seed, n_runs=2)
    if name == "sbox-lookup":
        # The secret-dependent address takes 64 distinct values, so the
        # contingency table needs more samples per category for power.
        return make_sbox_lookup(n_sets=16, n_runs=max(inputs, 8),
                                seed=seed)
    if name == "sbox-ct":
        return make_sbox_ct(n_sets=16, n_runs=max(inputs // 2, 2),
                            seed=seed)
    if name == "chacha20":
        return make_chacha20(n_keys=inputs, n_blocks=2, seed=seed)
    if name == "spectre-v1":
        return make_spectre_v1(n_iters=16, n_runs=max(inputs // 2, 2),
                               seed=seed)
    if name in WORKLOADS:
        factory, _ = WORKLOADS[name]
        return factory(n_keys=inputs, seed=seed)
    if name in primitive_names():
        return make_primitive_workload(name, n_sets=16,
                                       n_runs=max(inputs // 4, 1),
                                       seed=seed)
    raise ValueError(f"unknown workload {name!r}")


def _build_workload(name, args):
    try:
        return build_workload(name, inputs=args.inputs, seed=args.seed)
    except ValueError:
        raise SystemExit(
            f"unknown workload {name!r}; see 'microsampler list-workloads'"
        )


def cmd_list_workloads(_args) -> int:
    print("case-study workloads:")
    for name, (_factory, description) in WORKLOADS.items():
        print(f"  {name:<16} {description}")
    print("\nOpenSSL constant-time primitives (Table V):")
    for name in primitive_names():
        print(f"  {name}")
    return 0


def cmd_features(_args) -> int:
    print(f"{'feature id':<14} {'unit':<16} description")
    print("-" * 60)
    for spec in FEATURES.values():
        print(f"{spec.feature_id:<14} {spec.unit:<16} {spec.description}")
    return 0


def cmd_analyze(args) -> int:
    config = _resolve_config(args)
    workload = _build_workload(args.workload, args)
    jobs, cache = _resolve_backend(args)
    sampler = MicroSampler(
        config,
        warmup_iterations=args.warmup,
        analyze_timing_removed=not args.no_timing_removed,
        jobs=jobs,
        cache=cache,
        warmup_insts=getattr(args, "warmup_insts", None),
        batch_lanes=getattr(args, "batch_lanes", None),
        engine=args.engine,
        measure_mi=getattr(args, "mi", False),
        profile=getattr(args, "profile", False),
        taint=getattr(args, "taint", "off") == "on",
    )
    print(f"analyzing {workload.name!r} on {config.name}"
          f"{' +fast-bypass' if config.fast_bypass else ''}"
          f"{' +variable-div' if config.variable_div_latency else ''} ...",
          file=sys.stderr)
    report = sampler.analyze(workload)
    localization = None
    if getattr(args, "localize", False) and report.leakage_detected:
        from repro.localize import localize as run_localize

        print(f"localizing {len(report.leaky_units)} leaky unit(s) ...",
              file=sys.stderr)
        localization = run_localize(workload, sampler=sampler, report=report)
    if args.json:
        import json

        from repro.sampler.report import report_to_dict

        payload = report_to_dict(report)
        if localization is not None:
            from repro.localize import localization_to_dict

            payload["localization"] = localization_to_dict(localization)
        print(json.dumps(payload, indent=2))
    else:
        print(render_report(report, show_notiming=not args.no_timing_removed))
        if localization is not None:
            from repro.localize import render_localization

            print()
            print(render_localization(localization,
                                      program=workload.assemble()))
    return 1 if report.leakage_detected else 0


def cmd_sweep(args) -> int:
    """Cross-config sweep: one campaign, N core configurations."""
    from repro.sampler import sweep_configs, sweep_to_dict

    configs = _resolve_sweep_configs(args)
    workload = _build_workload(args.workload, args)
    jobs, cache = _resolve_backend(args)
    print(f"sweeping {workload.name!r} across "
          f"{', '.join(config.name for config in configs)} ...",
          file=sys.stderr)
    result = sweep_configs(
        workload, configs,
        warmup_iterations=args.warmup,
        analyze_timing_removed=not args.no_timing_removed,
        jobs=jobs,
        cache=cache,
        warmup_insts=getattr(args, "warmup_insts", None),
        batch_lanes=getattr(args, "batch_lanes", None),
        engine=args.engine,
        profile=getattr(args, "profile", False),
        taint=getattr(args, "taint", "off") == "on",
    )
    if args.json:
        import json

        print(json.dumps(sweep_to_dict(result), indent=2))
    else:
        print(result.render())
    return 1 if result.leakage_detected else 0


def cmd_localize(args) -> int:
    """Phase-2 localization: cycle windows + instruction attribution."""
    from repro.localize import (
        localization_to_dict,
        localize,
        render_localization,
    )

    config = _resolve_config(args)
    workload = _build_workload(args.workload, args)
    jobs, cache = _resolve_backend(args)
    sampler = MicroSampler(
        config,
        warmup_iterations=args.warmup,
        jobs=jobs,
        cache=cache,
        warmup_insts=getattr(args, "warmup_insts", None),
        batch_lanes=getattr(args, "batch_lanes", None),
        engine=args.engine,
        profile=getattr(args, "profile", False),
        taint=getattr(args, "taint", "off") == "on",
    )
    print(f"localizing {workload.name!r} on {config.name}"
          f"{' +fast-bypass' if config.fast_bypass else ''}"
          f"{' +variable-div' if config.variable_div_latency else ''} ...",
          file=sys.stderr)
    localization = localize(workload, sampler=sampler,
                            features=args.features or None,
                            permutations=args.permutations)
    if args.json:
        import json

        print(json.dumps(localization_to_dict(localization), indent=2))
    else:
        print(render_localization(localization, program=workload.assemble(),
                                  top=args.top))
    return 1 if localization.leakage_localized else 0


def cmd_simulate(args) -> int:
    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()
    program = assemble(source, entry=args.entry)
    config = _resolve_config(args)
    core = Core(program, config)
    result = core.run(max_cycles=args.max_cycles)
    stats = result.stats
    print(f"exit code:    {result.exit_code}")
    print(f"cycles:       {stats.cycles}")
    print(f"instructions: {stats.committed}  (IPC {stats.ipc:.2f})")
    print(f"branches:     {stats.branches}  "
          f"(mispredicts {stats.mispredicts})")
    print(f"squashed:     {stats.squashed_uops}")
    if result.console:
        print(f"console:      {result.console!r}")
    return result.exit_code


#: default audit suite: every built-in with its expected verdict.
AUDIT_EXPECTATIONS = {
    "sam-leaky": True,
    "sam-ct": False,
    "sam-ct-window": False,
    "me-v1-cv": True,
    "me-v1-mv": True,
    "me-v2-safe": False,
    "div-timing": False,  # clean on the default fixed-latency divider
    "mp-modexp-ct": False,
    "mp-modexp-leaky": True,
    "ct-mem-cmp": True,
    "ee-mem-cmp": True,
    "ct-mem-cmp-safe": False,
    "sbox-lookup": True,
    "sbox-ct": False,
    "spectre-v1": True,
    "chacha20": False,
}

#: expected taint-escalation verdicts under ``audit --taint on``: True
#: means the workload's secret steers control or address flow (the taint
#: engine must escalate), False means it must be proven data-only.  Only
#: the litmus pair with a known-stable answer is pinned; the rest are
#: cross-checked via the per-unit agreement statuses alone.
AUDIT_TAINT_EXPECTATIONS = {
    "ee-mem-cmp": True,        # early-exit branch on secret bytes
    "ct-mem-cmp-safe": False,  # branchless compare + consumer
}


def cmd_audit(args) -> int:
    from repro.sampler.audit import run_audit

    config = _resolve_config(args)
    names = args.workloads or list(AUDIT_EXPECTATIONS)
    workloads = [_build_workload(name, args) for name in names]
    expectations = {name: AUDIT_EXPECTATIONS[name]
                    for name in names if name in AUDIT_EXPECTATIONS}
    jobs, cache = _resolve_backend(args)
    taint = getattr(args, "taint", "off") == "on"
    taint_expectations = {name: AUDIT_TAINT_EXPECTATIONS[name]
                          for name in names
                          if name in AUDIT_TAINT_EXPECTATIONS} if taint else {}
    result = run_audit(workloads, config=config, expectations=expectations,
                       jobs=jobs, cache=cache,
                       warmup_insts=getattr(args, "warmup_insts", None),
                       batch_lanes=getattr(args, "batch_lanes", None),
                       engine=args.engine,
                       profile=getattr(args, "profile", False),
                       taint=taint, taint_expectations=taint_expectations)
    print(result.render())
    return 0 if result.passed else 1


def cmd_serve(args) -> int:
    """Run the campaign service (see ``repro.service``)."""
    import asyncio

    from repro.service.server import ServiceServer

    async def _serve():
        server = ServiceServer(host=args.host, port=args.port,
                               workers=args.workers,
                               cache_dir=args.cache_dir,
                               max_active=args.max_active,
                               shard_size=args.shard_size)
        await server.start()
        # Scripts (CI, tests) wait for this line before submitting.
        print(f"microsampler service listening on "
              f"http://{server.host}:{server.port} "
              f"({server.pool.n_workers} workers)",
              file=sys.stderr, flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_submit(args) -> int:
    """Submit a job to a running campaign service and await its result."""
    import asyncio
    import json

    from repro.service.client import (
        ServiceClient,
        ServiceError,
        submit_and_wait,
    )

    spec = {"kind": args.kind, "config": args.config, "inputs": args.inputs,
            "seed": args.seed, "engine": args.engine,
            "priority": args.priority, "tenant": args.tenant}
    if args.fast_bypass:
        spec["fast_bypass"] = True
    if args.variable_div:
        spec["variable_div"] = True
    if getattr(args, "taint", "off") == "on":
        spec["taint"] = True
    if getattr(args, "batch_lanes", "auto") != "auto":
        spec["batch_lanes"] = args.batch_lanes
    if args.kind == "audit":
        spec["workloads"] = args.workloads
    else:
        if len(args.workloads) != 1:
            raise SystemExit(f"'submit {args.kind}' takes exactly one "
                             f"workload, got {len(args.workloads)}")
        spec["workload"] = args.workloads[0]
    if args.permutations is not None:
        spec["permutations"] = args.permutations

    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    try:
        final = asyncio.run(
            submit_and_wait(client, spec, timeout=args.timeout))
    except (ServiceError, TimeoutError) as error:
        print(f"submit failed: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"cannot reach service at {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 2
    result = final.get("result") or {}
    print(json.dumps(final if args.verbose else result, indent=2))
    if final["state"] != "done":
        print(f"job {final['id']} ended {final['state']}", file=sys.stderr)
        return 2
    # Exit codes mirror the one-shot verbs.
    if args.kind == "analyze":
        return 1 if result.get("leakage_detected") else 0
    if args.kind == "localize":
        return 1 if result.get("leakage_localized") else 0
    return 0 if result.get("passed") else 1


def _format_bytes(count: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return (f"{count} {unit}" if unit == "B"
                    else f"{count:.1f} {unit}")
        count /= 1024
    return f"{count} B"  # pragma: no cover - unreachable


def cmd_cache(args) -> int:
    """Inspect or garbage-collect the trace/checkpoint cache."""
    from repro.sampler.trace_cache import cache_stats, prune_cache

    if args.action == "stats":
        stats = cache_stats(args.cache_dir)
        print(f"cache root: {stats['root']}")
        for kind in ("trace", "checkpoint"):
            bucket = stats[kind]
            print(f"  {kind:<11} {bucket['entries']:>6} entries "
                  f"({_format_bytes(bucket['bytes'])}), "
                  f"{bucket['stale_entries']} stale "
                  f"({_format_bytes(bucket['stale_bytes'])})")
        per_config = stats.get("per_config") or {}
        if per_config:
            print("  trace entries by core config:")
            for digest, bucket in sorted(
                    per_config.items(),
                    key=lambda item: (item[1]["name"] or "~", item[0])):
                label = bucket["name"] or "(unrecorded)"
                print(f"    {label:<12} digest={digest[:12]:<12} "
                      f"{bucket['entries']:>6} entries "
                      f"({_format_bytes(bucket['bytes'])})")
        total_stale = (stats["trace"]["stale_entries"]
                       + stats["checkpoint"]["stale_entries"])
        if total_stale:
            print(f"  run 'microsampler cache prune' to delete the "
                  f"{total_stale} stale entr"
                  f"{'y' if total_stale == 1 else 'ies'}")
        return 0
    result = prune_cache(args.cache_dir, all_entries=args.all)
    removed = result["removed"]
    print(f"pruned {result['removed_entries']} entries "
          f"({_format_bytes(result['removed_bytes'])}) "
          f"from {result['root']}")
    print(f"  {removed['trace']} stale trace, "
          f"{removed['checkpoint']} stale checkpoint, "
          f"{removed['orphan']} orphaned checkpoint "
          f"(no surviving trace references them)")
    return 0


def cmd_pipeview(args) -> int:
    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()
    from repro.uarch.pipeview import record_pipeline

    program = assemble(source, entry=args.entry)
    trace, result = record_pipeline(program, _resolve_config(args))
    print(trace.render(start=args.start, count=args.count))
    print(f"\n(exit code {result.exit_code}, "
          f"{result.stats.committed} instructions, "
          f"{result.stats.cycles} cycles)")
    return 0


def cmd_trace(args) -> int:
    """Record a workload campaign to a trace-log archive."""
    from repro.sampler.runner import patch_program
    from repro.trace.logfile import TraceLogWriter

    config = _resolve_config(args)
    workload = _build_workload(args.workload, args)
    program = workload.assemble()
    with TraceLogWriter(args.output) as writer:
        for run_index, patches in enumerate(workload.inputs):
            writer.begin_run(run_index)
            core = Core(patch_program(program, patches), config,
                        tracer=writer)
            for symbol, length in workload.warm_regions:
                base = program.symbols[symbol]
                for address in range(base, base + length, 64):
                    core.dcache.warm_line(address)
            core.run()
    print(f"wrote {writer.cycles_logged} traced cycles over "
          f"{len(workload.inputs)} runs to {args.output}")
    return 0


def cmd_reanalyze(args) -> int:
    """Re-run the statistical analysis over an archived trace log."""
    from repro.sampler import build_contingency_table, measure_association
    from repro.sampler.matrix import TraceMatrix
    from repro.sampler.stats_vec import batched_association
    from repro.trace.logfile import parse_trace_log

    iterations = parse_trace_log(args.log, features=args.features or None)
    if not iterations:
        print("no iterations in log", file=sys.stderr)
        return 2
    labels = [record.label for record in iterations]
    feature_ids = sorted(iterations[0].features)
    if args.engine == "numpy":
        matrix = TraceMatrix.from_iterations(iterations, feature_ids,
                                             notiming=False)
        associations = batched_association(matrix)
    else:
        associations = {
            feature_id: measure_association(build_contingency_table(
                labels,
                [r.features[feature_id].snapshot_hash for r in iterations],
            ))
            for feature_id in feature_ids
        }
    print(f"{len(iterations)} iterations, {len(set(labels))} classes")
    print(f"{'unit':<14} {'V':>6} {'p-value':>10} {'flag':>6}")
    leaky = False
    for feature_id in feature_ids:
        a = associations[feature_id]
        print(f"{feature_id:<14} {a.cramers_v:>6.3f} {a.p_value:>10.3g} "
              f"{'LEAK' if a.leaky else '-':>6}")
        leaky = leaky or a.leaky
    return 1 if leaky else 0


def cmd_disasm(args) -> int:
    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()
    program = assemble(source)
    print(format_program(program.instructions))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="microsampler",
        description="MicroSampler: microarchitecture-level leakage "
                    "detection for constant-time code",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads", help="list built-in workloads") \
        .set_defaults(func=cmd_list_workloads)
    sub.add_parser("features", help="list tracked features (Table IV)") \
        .set_defaults(func=cmd_features)

    analyze = sub.add_parser("analyze", help="run the verification pipeline")
    analyze.add_argument("workload", help="workload name (see list-workloads)")
    analyze.add_argument("--config", choices=["mega", "medium", "small"],
                         default="mega")
    analyze.add_argument("--fast-bypass", action="store_true",
                         help="enable the Section VII-B optimization")
    analyze.add_argument("--variable-div", action="store_true",
                         help="model an early-exit (operand-dependent) divider")
    analyze.add_argument("--inputs", type=int, default=8,
                         help="number of secret inputs (keys/runs)")
    analyze.add_argument("--seed", type=int, default=3)
    analyze.add_argument("--warmup", type=int, default=0,
                         help="iterations to drop per run before analysis")
    analyze.add_argument("--no-timing-removed", action="store_true",
                         help="skip the timing-removed re-analysis")
    analyze.add_argument("--json", action="store_true",
                         help="emit the verdict as JSON (for CI)")
    analyze.add_argument("--mi", action="store_true",
                         help="also score every unit with MicroWalk-style "
                              "mutual information (adds MI columns)")
    analyze.add_argument("--localize", action="store_true",
                         help="after detection, localize every leaky unit "
                              "to a cycle window and the responsible "
                              "instructions")
    _add_engine_argument(analyze)
    _add_backend_arguments(analyze)
    _add_checkpoint_argument(analyze)
    _add_batch_argument(analyze)
    _add_profile_argument(analyze)
    _add_taint_argument(analyze)
    analyze.set_defaults(func=cmd_analyze)

    sweep = sub.add_parser(
        "sweep",
        help="analyze one workload across several core configs, paying "
             "the config-invariant phases once")
    sweep.add_argument("workload", help="workload name (see list-workloads)")
    sweep.add_argument("--configs", default="mega,small",
                       help="comma-separated core configs to sweep "
                            "(from: mega, medium, small; "
                            "default: mega,small)")
    sweep.add_argument("--fast-bypass", action="store_true",
                       help="enable the Section VII-B optimization on "
                            "every swept config")
    sweep.add_argument("--variable-div", action="store_true",
                       help="model an early-exit divider on every "
                            "swept config")
    sweep.add_argument("--inputs", type=int, default=8,
                       help="number of secret inputs (keys/runs)")
    sweep.add_argument("--seed", type=int, default=3)
    sweep.add_argument("--warmup", type=int, default=0,
                       help="iterations to drop per run before analysis")
    sweep.add_argument("--no-timing-removed", action="store_true",
                       help="skip the timing-removed re-analysis")
    sweep.add_argument("--json", action="store_true",
                       help="emit the per-(unit, config) verdict matrix "
                            "as commit-stamped JSON (each leg's report is "
                            "byte-identical to 'analyze --json' on that "
                            "config)")
    _add_engine_argument(sweep)
    _add_backend_arguments(sweep)
    _add_checkpoint_argument(sweep)
    _add_batch_argument(sweep)
    _add_profile_argument(sweep)
    _add_taint_argument(sweep)
    sweep.set_defaults(func=cmd_sweep)

    localize = sub.add_parser(
        "localize",
        help="pin detected leaks to cycle windows and instructions")
    localize.add_argument("workload",
                          help="workload name (see list-workloads)")
    localize.add_argument("--config", choices=["mega", "medium", "small"],
                          default="mega")
    localize.add_argument("--fast-bypass", action="store_true",
                          help="enable the Section VII-B optimization")
    localize.add_argument("--variable-div", action="store_true",
                          help="model an early-exit divider")
    localize.add_argument("--inputs", type=int, default=8,
                          help="number of secret inputs (keys/runs)")
    localize.add_argument("--seed", type=int, default=3)
    localize.add_argument("--warmup", type=int, default=0,
                          help="iterations to drop per run before analysis")
    localize.add_argument("--features", nargs="*",
                          help="localize these units directly, skipping "
                               "the detection phase")
    localize.add_argument("--permutations", type=int, default=199,
                          help="label permutations for the attribution "
                               "significance test")
    localize.add_argument("--top", type=int, default=5,
                          help="ranked instructions to print per unit")
    localize.add_argument("--json", action="store_true",
                          help="emit the localization as JSON (for CI)")
    _add_engine_argument(localize)
    _add_backend_arguments(localize)
    _add_checkpoint_argument(localize)
    _add_batch_argument(localize)
    _add_profile_argument(localize)
    _add_taint_argument(localize)
    localize.set_defaults(func=cmd_localize)

    simulate = sub.add_parser("simulate",
                              help="run an assembly file on the OoO core")
    simulate.add_argument("file")
    simulate.add_argument("--entry", default=None)
    simulate.add_argument("--config", choices=["mega", "medium", "small"],
                          default="mega")
    simulate.add_argument("--fast-bypass", action="store_true")
    simulate.add_argument("--variable-div", action="store_true")
    simulate.add_argument("--max-cycles", type=int, default=5_000_000)
    simulate.set_defaults(func=cmd_simulate)

    disasm = sub.add_parser("disasm", help="assemble and disassemble a file")
    disasm.add_argument("file")
    disasm.set_defaults(func=cmd_disasm)

    pipeview = sub.add_parser(
        "pipeview", help="render per-instruction pipeline timelines")
    pipeview.add_argument("file")
    pipeview.add_argument("--entry", default=None)
    pipeview.add_argument("--config", choices=["mega", "medium", "small"],
                          default="mega")
    pipeview.add_argument("--fast-bypass", action="store_true")
    pipeview.add_argument("--variable-div", action="store_true")
    pipeview.add_argument("--start", type=int, default=0,
                          help="first committed instruction to show")
    pipeview.add_argument("--count", type=int, default=40,
                          help="number of instructions to show")
    pipeview.set_defaults(func=cmd_pipeview)

    audit = sub.add_parser(
        "audit", help="run the full verification suite with expectations")
    audit.add_argument("workloads", nargs="*",
                       help="workload names (default: the full suite)")
    audit.add_argument("--config", choices=["mega", "medium", "small"], default="mega")
    audit.add_argument("--fast-bypass", action="store_true")
    audit.add_argument("--variable-div", action="store_true")
    audit.add_argument("--inputs", type=int, default=8)
    audit.add_argument("--seed", type=int, default=3)
    _add_engine_argument(audit)
    _add_backend_arguments(audit)
    _add_checkpoint_argument(audit)
    _add_batch_argument(audit)
    _add_profile_argument(audit)
    _add_taint_argument(audit)
    audit.set_defaults(func=cmd_audit)

    trace = sub.add_parser(
        "trace", help="record a workload campaign to a trace-log archive")
    trace.add_argument("workload")
    trace.add_argument("output", help="log path (.jsonl or .jsonl.gz)")
    trace.add_argument("--config", choices=["mega", "medium", "small"], default="mega")
    trace.add_argument("--fast-bypass", action="store_true")
    trace.add_argument("--variable-div", action="store_true")
    trace.add_argument("--inputs", type=int, default=8)
    trace.add_argument("--seed", type=int, default=3)
    trace.set_defaults(func=cmd_trace)

    cache = sub.add_parser(
        "cache", help="inspect or prune the trace/checkpoint cache")
    cache.add_argument("action", choices=["stats", "prune"],
                       help="'stats' inventories entries by kind and "
                            "staleness; 'prune' deletes stale (pre-format-"
                            "bump or unreadable) entries")
    cache.add_argument("--cache-dir", default=None,
                       help="cache directory (default: "
                            "$MICROSAMPLER_CACHE_DIR or "
                            "~/.cache/microsampler)")
    cache.add_argument("--all", action="store_true",
                       help="prune every entry, not just stale ones")
    cache.set_defaults(func=cmd_cache)

    serve = sub.add_parser(
        "serve", help="run the campaign service (async job API over a "
                      "persistent worker pool)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="listen port (0 = pick a free port)")
    serve.add_argument("--workers", type=_jobs_argument, default=0,
                       help="persistent simulation workers "
                            "(0 = one per CPU)")
    serve.add_argument("--max-active", type=int, default=2,
                       help="jobs executing concurrently; the rest wait "
                            "on the priority queue")
    serve.add_argument("--shard-size", type=int, default=None,
                       help="inputs per worker shard (default: sized from "
                            "the pool width)")
    serve.add_argument("--cache-dir", default=None,
                       help="trace cache directory shared by all jobs "
                            "(default: $MICROSAMPLER_CACHE_DIR or "
                            "~/.cache/microsampler)")
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a job to a running campaign service")
    submit.add_argument("kind", choices=["analyze", "localize", "audit"])
    submit.add_argument("workloads", nargs="*",
                        help="one workload (analyze/localize) or an audit "
                             "suite (default: the full suite)")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8765)
    submit.add_argument("--config", choices=["mega", "medium", "small"],
                        default="mega")
    submit.add_argument("--fast-bypass", action="store_true")
    submit.add_argument("--variable-div", action="store_true")
    submit.add_argument("--inputs", type=int, default=8)
    submit.add_argument("--seed", type=int, default=3)
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs first; FIFO within a level")
    submit.add_argument("--tenant", default="",
                        help="client label recorded on the job")
    submit.add_argument("--permutations", type=int, default=None,
                        help="attribution permutations (localize only)")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="seconds to wait for the job to finish")
    submit.add_argument("--verbose", action="store_true",
                        help="print the full job record (state, stats, "
                             "events) instead of just the result")
    _add_engine_argument(submit)
    _add_taint_argument(submit)
    _add_batch_argument(submit)
    submit.set_defaults(func=cmd_submit)

    reanalyze = sub.add_parser(
        "reanalyze", help="statistical analysis over an archived trace log")
    reanalyze.add_argument("log")
    reanalyze.add_argument("--features", nargs="*",
                           help="feature subset (default: all in the log)")
    _add_engine_argument(reanalyze)
    reanalyze.set_defaults(func=cmd_reanalyze)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
