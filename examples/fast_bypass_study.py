#!/usr/bin/env python3
"""Microarchitectural audit: does an optimization break constant-time code?

Reproduces Section VII-B.  BearSSL's branchless conditional copy
(ME-V2-Safe) verifies clean on the baseline MegaBoom.  We then enable the
"fast bypass" trivial-computation optimization — an AND whose available
operand is zero is eliminated at rename — and re-verify the *same binary*.
The optimization is only triggered when the key bit is 0, so the previously
safe code now leaks: the ALU executes the AND only for key bit 1, and the
bypassed AND shares a ROB entry with its dependent XOR.

This is the paper's central argument: hardware optimizations that look
benign must be verified jointly with the constant-time software they run.

Run:  python examples/fast_bypass_study.py
"""

from repro import MEGA_BOOM, MicroSampler, make_me_v2_safe, render_bar_chart


def verify(config, workload, title):
    sampler = MicroSampler(config)
    report = sampler.analyze(workload)
    print(render_bar_chart(report.cramers_v_by_unit(), title=title))
    verdict = ("LEAKAGE in " + ", ".join(report.leaky_units)
               if report.leakage_detected else "clean")
    print(f"verdict: {verdict}\n")
    return report


def main():
    workload = make_me_v2_safe(n_keys=6, seed=3)

    print("Step 1 — baseline MegaBoom:\n")
    baseline = verify(MEGA_BOOM, workload,
                      "ME-V2-Safe, baseline core (Cramér's V per unit)")
    assert not baseline.leakage_detected

    print("Step 2 — MegaBoom with the fast-bypass optimization:\n")
    bypass_core = MEGA_BOOM.with_(fast_bypass=True)
    flagged = verify(bypass_core, workload,
                     "ME-V2-Safe, fast-bypass core (Cramér's V per unit)")

    print("Step 3 — separate timing effects from content effects")
    print("(snapshots re-hashed with per-entry consecutive values "
          "consolidated):\n")
    print(render_bar_chart(flagged.cramers_v_by_unit_notiming(),
                           title="timing-removed Cramér's V"))

    print("\nStep 4 — root-cause extraction on the flagged units:\n")
    for unit_id in ("EUU-ALU", "ROB-PC"):
        cause = flagged.units[unit_id].root_cause
        if cause is not None:
            print(cause.summary())
            print()

    program = workload.assemble()
    ccopy = program.symbols["ccopy_bear"]
    print(f"(ccopy_bear starts at {ccopy:#x}; the class-1-only ALU PC above "
          f"is its AND instruction,")
    print(" exactly the instruction the fast bypass skips when the key bit "
          "is 0.)")


if __name__ == "__main__":
    main()
