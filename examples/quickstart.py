#!/usr/bin/env python3
"""Quickstart: detect a compiler-introduced constant-time violation.

Runs the ME-V1-CV case study (Section VII-A1): a libgcrypt-style modular
exponentiation whose conditional copy *looks* constant-time in C, but whose
compiled code preloads the destination pointer before checking the secret
control bit.  MicroSampler runs it on the cycle-accurate MegaBoom model and
flags the microarchitectural units whose state correlates with the key bits.

Run:  python examples/quickstart.py
"""

from repro import MEGA_BOOM, MicroSampler, make_me_v1_cv, render_report


def main():
    workload = make_me_v1_cv(n_keys=6, seed=3)
    print(f"Verifying workload {workload.name!r}: {workload.description}")
    print(f"inputs: {len(workload.inputs)} random 32-bit keys "
          f"(32 key-bit iterations each)\n")

    sampler = MicroSampler(MEGA_BOOM)
    report = sampler.analyze(workload)

    print(render_report(report))
    print()
    if report.leakage_detected:
        print("=> The 'constant-time' code is NOT constant time on this "
              "microarchitecture.")
        print("   See the root-cause extraction above for the responsible "
              "PCs/addresses.")
    else:
        print("=> No statistically significant secret correlation found.")


if __name__ == "__main__":
    main()
