#!/usr/bin/env python3
"""End-to-end exploit demo: turning the ME-V1-MV finding into key recovery.

MicroSampler flags ME-V1-MV's secret-dependent memmove destination
(Figure 4/5) even though no timing difference is measurable under normal
conditions (Figure 6a).  This demo plays the attacker of the paper's
"possible exploit path": prime the ``dst`` region into the L1D, then recover
every key bit purely from per-iteration execution time — bit=1 iterations
(stores hit the cached dst) run much faster than bit=0 iterations (stores
miss on the uncached dummy).

Run:  python examples/timing_attack_demo.py
"""

from statistics import mean

from repro import MEGA_BOOM, run_campaign
from repro.workloads.modexp import make_me_v1_mv

N_KEYS = 4


def main():
    print("Victim: ME-V1-MV modular exponentiation "
          "(branchless conditional copy, secret-selected store target)")
    print(f"Attacker: primes dst into the L1D, times each of the 32 "
          f"key-bit iterations.\n")

    workload = make_me_v1_mv(n_keys=N_KEYS, seed=42, warm_dst=True)
    campaign = run_campaign(workload, MEGA_BOOM)

    # The attacker sees only timings; labels are ground truth for scoring.
    timings = [record.cycles for record in campaign.iterations]
    truth = [record.label for record in campaign.iterations]

    # Classic two-cluster threshold: midpoint between the distribution modes.
    threshold = (min(timings) + max(timings)) / 2
    guesses = [1 if cycles < threshold else 0 for cycles in timings]

    correct = sum(int(g == t) for g, t in zip(guesses, truth))
    print(f"iterations timed:    {len(timings)}")
    print(f"fast-cluster mean:   "
          f"{mean(c for c in timings if c < threshold):.1f} cycles")
    print(f"slow-cluster mean:   "
          f"{mean(c for c in timings if c >= threshold):.1f} cycles")
    print(f"decision threshold:  {threshold:.1f} cycles")
    print(f"bits recovered:      {correct}/{len(timings)} "
          f"({100 * correct / len(timings):.1f}%)\n")

    # Reassemble the recovered keys, MSB-first per 32-bit exponent.
    for key_index in range(N_KEYS):
        bits = guesses[32 * key_index:32 * (key_index + 1)]
        recovered = 0
        for bit in bits:
            recovered = (recovered << 1) | bit
        actual = int.from_bytes(workload.inputs[key_index]["key"], "little")
        status = "RECOVERED" if recovered == actual else "partial"
        print(f"key {key_index}: actual={actual:#010x} "
              f"recovered={recovered:#010x}  [{status}]")

    assert correct == len(timings), "expected full key recovery in this demo"
    print("\nAll key bits recovered from timing alone — the address leak "
          "MicroSampler flagged is a real, exploitable channel.")


if __name__ == "__main__":
    main()
