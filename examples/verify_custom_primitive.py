#!/usr/bin/env python3
"""Verify your own constant-time primitive with the public API.

This example shows the full user workflow on a *new* primitive that is not
part of the paper's case studies: a constant-time conditional negation,
written twice — once correctly (branchless) and once with a subtle bug (an
early-exit branch on the secret sign bit).  MicroSampler clears the first
and flags the second, pinpointing the guilty branch's PC in the ROB.

Run:  python examples/verify_custom_primitive.py
"""

import random

from repro import MEGA_BOOM, MicroSampler, Workload, render_report

_TEMPLATE = """
.data
values:  .zero {arr}
signs:   .zero {arr}
labels:  .zero {arr}
results: .zero {arr}

.text
main:
    li   s6, 0
    la   s1, values
    la   s2, signs
    la   s3, labels
    la   s4, results
    roi.begin
driver:
    slli s7, s6, 3
    add  t0, s1, s7
    ld   a0, 0(t0)
    add  t0, s2, s7
    ld   a1, 0(t0)          # secret: 1 -> negate, 0 -> keep
    add  t0, s3, s7
    ld   s9, 0(t0)
    iter.begin s9
    call cond_negate
    iter.end
    add  t0, s4, s7
    sd   a0, 0(t0)
    addi s6, s6, 1
    li   t0, {n}
    blt  s6, t0, driver
    roi.end
    li   a0, 0
    li   a7, 93
    ecall

{body}
"""

BRANCHLESS = """
cond_negate:                 # a0 = value, a1 = flag (0/1)
    neg  t0, a1              # mask
    xor  a0, a0, t0
    add  a0, a0, a1          # two's complement when flag set
    ret
"""

BRANCHY = """
cond_negate:                 # BUGGY: early exit on the secret flag
    beqz a1, 1f
    neg  a0, a0
1:
    ret
"""


def make_workload(name, body, n_sets=24, n_runs=2, seed=7):
    rng = random.Random(seed)
    inputs = []
    for _ in range(n_runs):
        values, signs, labels = [], [], []
        for _ in range(n_sets):
            values.append(rng.getrandbits(32))
            flag = rng.randrange(2)
            signs.append(flag)
            labels.append(flag)
        pack = lambda xs: b"".join(x.to_bytes(8, "little") for x in xs)
        inputs.append({"values": pack(values), "signs": pack(signs),
                       "labels": pack(labels)})
    return Workload(
        name=name,
        source=_TEMPLATE.format(arr=8 * n_sets, n=n_sets, body=body),
        inputs=inputs,
        description="user-supplied conditional negation",
    )


def main():
    sampler = MicroSampler(MEGA_BOOM)

    print("Verifying the branchless conditional negation...\n")
    clean = sampler.analyze(make_workload("cond-negate-branchless",
                                          BRANCHLESS))
    print(render_report(clean))

    print("\n\nVerifying the branchy (buggy) version...\n")
    buggy = sampler.analyze(make_workload("cond-negate-branchy", BRANCHY))
    print(render_report(buggy))

    assert not clean.leakage_detected
    assert buggy.leakage_detected
    print("\n=> branchless version verified; branchy version flagged, as "
          "expected.")


if __name__ == "__main__":
    main()
