#!/usr/bin/env python3
"""Flush+Reload attack against a table-driven S-box — and its CT fix.

MicroSampler flags the ``sbox-lookup`` workload's secret-dependent load
addresses (LQ-ADDR / Cache-ADDR).  This demo validates that finding with
the attacker of the paper's threat model: a Flush+Reload adversary who
evicts the S-box's four cache lines before every victim operation and
checks which line came back afterwards.

Against the lookup version the attacker recovers the top index bit of every
single substitution; against the constant-time scan the observation is the
same for every class, and accuracy collapses to majority-class guessing.

Run:  python examples/flush_reload_attack.py
"""

from collections import Counter

from repro.attacks import flush_reload_attack, lowest_touched_line
from repro.sampler.runner import patch_program
from repro.uarch import MEGA_BOOM
from repro.workloads.cipher import make_sbox_ct, make_sbox_lookup

N_OPS = 32


def attack(make, title):
    workload = make(n_sets=N_OPS, n_runs=1, seed=77)
    program = patch_program(workload.assemble(), workload.inputs[0])
    sbox = program.symbols["sbox"]
    monitored = [sbox + 64 * i for i in range(4)]
    result = flush_reload_attack(program, MEGA_BOOM, monitored)

    def predict(touched):
        line = lowest_touched_line(touched)
        return -1 if line is None else int(line >= sbox + 128)

    accuracy = result.accuracy(predict)
    print(f"{title}")
    print(f"  victim operations observed: {len(result.observations)}")
    patterns = Counter(
        tuple(int(v) for v in obs.touched.values())
        for obs in result.observations
    )
    for pattern, count in sorted(patterns.items()):
        print(f"  touched-lines pattern {pattern}: {count}x")
    print(f"  secret-bit recovery accuracy: {100 * accuracy:.1f}%\n")
    return accuracy, result


def main():
    print("Attacker: flush the S-box's 4 cache lines before each victim "
          "substitution,\nthen check which lines are resident afterwards.\n")
    lookup_acc, _ = attack(make_sbox_lookup,
                           "Victim 1: table-lookup S-box (sbox[x ^ k])")
    ct_acc, ct_result = attack(make_sbox_ct,
                               "Victim 2: constant-time scan S-box")

    assert lookup_acc == 1.0
    # The CT version's observations carry no information: identical pattern
    # for every class.
    patterns = {tuple(obs.touched.values())
                for obs in ct_result.observations}
    assert len(patterns) == 1
    print("=> The lookup S-box leaks every secret index bit at cache-line")
    print("   granularity; the constant-time scan shows the attacker the")
    print("   same picture regardless of the secret — exactly matching")
    print("   MicroSampler's verdicts on the two implementations.")


if __name__ == "__main__":
    main()
