#!/usr/bin/env python3
"""Archive-once, analyze-many: the decoupled trace-log workflow.

The paper's flow separates simulation (expensive: RTL under Verilator) from
analysis (cheap: statistics over logs).  This example simulates the
ME-V1-MV campaign once while streaming every in-ROI cycle to a compressed
trace log, then answers three different questions *offline* from the same
archive — without touching the simulator again.

Run:  python examples/trace_archive_workflow.py
"""

import os
import tempfile

from repro.sampler import (
    MicroSampler,
    build_contingency_table,
    measure_association,
    mutual_information_by_unit,
)
from repro.sampler.runner import patch_program
from repro.trace.logfile import parse_trace_log, TraceLogWriter
from repro.uarch import MEGA_BOOM, Core
from repro.workloads.modexp import make_me_v1_mv


def main():
    workload = make_me_v1_mv(n_keys=4, seed=3)
    program = workload.assemble()

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "me-v1-mv.jsonl.gz")

        print(f"1. Simulating {len(workload.inputs)} runs, streaming traces "
              f"to {os.path.basename(path)} ...")
        with TraceLogWriter(path) as writer:
            for run_index, patches in enumerate(workload.inputs):
                writer.begin_run(run_index)
                core = Core(patch_program(program, patches), MEGA_BOOM,
                            tracer=writer)
                core.run()
        size_kib = os.path.getsize(path) / 1024
        print(f"   archive size: {size_kib:.0f} KiB "
              f"({writer.cycles_logged} cycles logged)\n")

        print("2. Offline question A: which units correlate? "
              "(chi-squared / Cramér's V)")
        iterations = parse_trace_log(path)
        labels = [record.label for record in iterations]
        for feature_id in ("SQ-ADDR", "Cache-ADDR", "ROB-PC", "EUU-ALU"):
            hashes = [r.features[feature_id].snapshot_hash
                      for r in iterations]
            a = measure_association(build_contingency_table(labels, hashes))
            flag = "LEAK" if a.leaky else "ok"
            print(f"   {feature_id:<12} V={a.cramers_v:.3f} "
                  f"p={a.p_value:<9.3g} {flag}")

        print("\n3. Offline question B: mutual information "
              "(MicroWalk-style cross-check)")
        mi = mutual_information_by_unit(iterations,
                                        ["SQ-ADDR", "EUU-ALU"],
                                        permutations=100)
        for feature_id, result in mi.items():
            print(f"   {feature_id:<12} "
                  f"I={result.mutual_information_bits:.2f} bits "
                  f"({100 * result.leakage_fraction:.0f}% of the label) "
                  f"p={result.p_value:.3f}")

        print("\n4. Offline question C: re-analysis of one feature subset "
              "with raw rows retained")
        subset = parse_trace_log(path, features=["SQ-ADDR"], keep_raw=True)
        first = subset[0].features["SQ-ADDR"]
        print(f"   iteration 0: {len(first.rows)} distinct SQ states, "
              f"{len(first.values)} distinct addresses")

    print("\nDone: one simulation, three analyses, no re-runs.")


if __name__ == "__main__":
    main()
