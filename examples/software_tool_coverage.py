#!/usr/bin/env python3
"""Coverage comparison: MicroSampler vs a software-level tool (Table I).

Runs a DATA-style address-trace differential analysis (binary-instrumentation
view: architecturally visible control flow and memory addresses only) and
MicroSampler (full microarchitectural state at cycle granularity) over four
case studies:

* sam-leaky   — secret-dependent branch               (both should detect)
* me-v1-mv    — secret-dependent store address        (both should detect)
* me-v2-safe  — sound constant-time code              (both should pass)
* me-v2-safe on a fast-bypass core — a leak that exists ONLY
  microarchitecturally: the software view is provably identical for both
  key-bit classes, so the software tool cannot see it.  MicroSampler can.

Run:  python examples/software_tool_coverage.py
"""

from repro import MEGA_BOOM, MicroSampler
from repro.baselines import run_data_tool
from repro.workloads.modexp import make_me_v1_mv, make_me_v2_safe, make_sam_leaky


def main():
    cases = [
        ("sam-leaky (secret branch)", make_sam_leaky(n_keys=4, seed=8),
         MEGA_BOOM),
        ("me-v1-mv (secret store addr)", make_me_v1_mv(n_keys=4, seed=8),
         MEGA_BOOM),
        ("me-v2-safe (sound)", make_me_v2_safe(n_keys=4, seed=8), MEGA_BOOM),
        ("me-v2-safe on fast-bypass core", make_me_v2_safe(n_keys=4, seed=8),
         MEGA_BOOM.with_(fast_bypass=True)),
    ]
    print(f"{'case':<34} {'DATA (software)':>16} {'MicroSampler':>14}")
    print("-" * 66)
    for name, workload, config in cases:
        data_report = run_data_tool(workload)
        micro_report = MicroSampler(config).analyze(workload)
        data_verdict = "DETECTED" if data_report.leakage_detected else "clean"
        micro_verdict = ("DETECTED" if micro_report.leakage_detected
                         else "clean")
        print(f"{name:<34} {data_verdict:>16} {micro_verdict:>14}")
    print()
    print("The last row is the paper's Table I gap: the fast-bypass leak is")
    print("architecturally invisible, so no binary-instrumentation tool can")
    print("observe it — it only manifests in microarchitectural state.")


if __name__ == "__main__":
    main()
