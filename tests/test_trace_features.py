"""Direct tests of every Table IV feature sampler against a live core."""

import pytest

from repro.isa import assemble
from repro.trace import FEATURES, FEATURE_ORDER
from repro.uarch import MEGA_BOOM, Core

_SOURCE = """
.data
buf: .zero 128
.text
main:
    la   s0, buf
    li   s1, 5
loop:
    lw   t0, 0(s0)
    addi t0, t0, 3
    mul  t1, t0, t0
    div  t2, t1, s1
    sw   t2, 8(s0)
    addi s1, s1, -1
    bgtz s1, loop
    li   a0, 0
    li   a7, 93
    ecall
"""


@pytest.fixture(scope="module")
def sampled_rows():
    """Run a mixed workload, sampling every feature every cycle."""
    program = assemble(_SOURCE, entry="main")
    core = Core(program, MEGA_BOOM)
    rows = {feature_id: [] for feature_id in FEATURE_ORDER}
    while not core.halted:
        core.step()
        for feature_id in FEATURE_ORDER:
            rows[feature_id].append(FEATURES[feature_id].sample(core))
    return program, rows


@pytest.mark.parametrize("feature_id", FEATURE_ORDER)
def test_rows_are_integer_tuples(sampled_rows, feature_id):
    _, rows = sampled_rows
    for row in rows[feature_id]:
        assert isinstance(row, tuple)
        assert all(isinstance(v, int) and v >= 0 for v in row)


@pytest.mark.parametrize("feature_id", [
    "SQ-ADDR", "SQ-PC", "LQ-ADDR", "LQ-PC", "ROB-PC",
    "EUU-ALU", "EUU-ADDRGEN", "EUU-DIV", "EUU-MUL",
])
def test_fixed_width_features(sampled_rows, feature_id):
    _, rows = sampled_rows
    widths = {len(row) for row in rows[feature_id]}
    assert len(widths) == 1  # per-slot sampling: constant row width


def test_queue_widths_match_config(sampled_rows):
    _, rows = sampled_rows
    assert len(rows["SQ-ADDR"][0]) == MEGA_BOOM.stq_entries
    assert len(rows["LQ-ADDR"][0]) == MEGA_BOOM.ldq_entries
    assert len(rows["ROB-PC"][0]) == MEGA_BOOM.rob_entries
    assert len(rows["EUU-ALU"][0]) == MEGA_BOOM.alu_count
    assert len(rows["EUU-MUL"][0]) == MEGA_BOOM.mul_count * 3  # pipeline depth


def test_sq_contains_store_addresses(sampled_rows):
    program, rows = sampled_rows
    buf = program.symbols["buf"]
    seen = {v for row in rows["SQ-ADDR"] for v in row if v}
    assert buf + 8 in seen  # the sw target


def test_lq_contains_load_addresses(sampled_rows):
    program, rows = sampled_rows
    buf = program.symbols["buf"]
    seen = {v for row in rows["LQ-ADDR"] for v in row if v}
    assert buf in seen


def test_rob_contains_program_pcs(sampled_rows):
    program, rows = sampled_rows
    pcs = {inst.pc for inst in program.instructions}
    seen = {v for row in rows["ROB-PC"] for v in row if v}
    assert seen & pcs


def test_execution_units_show_pcs(sampled_rows):
    program, rows = sampled_rows
    mul_pc = next(i.pc for i in program.instructions if i.mnemonic == "mul")
    div_pc = next(i.pc for i in program.instructions if i.mnemonic == "div")
    assert any(mul_pc in row for row in rows["EUU-MUL"])
    assert any(div_pc in row for row in rows["EUU-DIV"])


def test_div_occupancy_reflects_latency(sampled_rows):
    _, rows = sampled_rows
    busy_cycles = sum(1 for row in rows["EUU-DIV"] if any(row))
    # Five divides at 12-cycle latency: the divider is busy for a while.
    assert busy_cycles >= 5 * MEGA_BOOM.div_latency


def test_rob_occupancy_bounded(sampled_rows):
    _, rows = sampled_rows
    for row in rows["ROB-OCPNCY"]:
        assert 0 <= row[0] <= MEGA_BOOM.rob_entries


def test_cache_addr_records_requests(sampled_rows):
    program, rows = sampled_rows
    buf = program.symbols["buf"]
    requests = {v for row in rows["Cache-ADDR"] for v in row}
    assert buf in requests


def test_tlb_tracks_pages(sampled_rows):
    program, rows = sampled_rows
    buf_page = program.symbols["buf"] // 4096
    final_pages = set(rows["TLB-ADDR"][-1])
    assert buf_page in final_pages


def test_mshr_and_lfb_saw_the_cold_miss(sampled_rows):
    program, rows = sampled_rows
    buf_line = program.symbols["buf"] >> 6
    mshr_lines = {v for row in rows["MSHR-ADDR"] for v in row}
    lfb_lines = {v for row in rows["LFB-ADDR"] for v in row}
    assert buf_line in mshr_lines
    assert buf_line in lfb_lines


def test_nlp_prefetched_next_line(sampled_rows):
    program, rows = sampled_rows
    buf_line = program.symbols["buf"] >> 6
    nlp = {v for row in rows["NLP-ADDR"] for v in row}
    assert buf_line + 1 in nlp


def test_lfb_data_digests_nonzero_line(sampled_rows):
    _, rows = sampled_rows
    digests = {v for row in rows["LFB-Data"] for v in row}
    assert digests  # fills carried content digests
