"""Lockstep co-simulation checker tests."""

import pytest

from repro.isa import assemble
from repro.sampler.runner import patch_program
from repro.uarch import MEGA_BOOM, SMALL_BOOM, LockstepMismatch, run_lockstep
from repro.workloads import fuzz
from repro.workloads.modexp import make_me_v2_safe
from tests.conftest import SUM_PROGRAM_EXIT


def test_lockstep_sum_program(sum_program):
    result = run_lockstep(sum_program, MEGA_BOOM)
    assert result.exit_code == SUM_PROGRAM_EXIT
    assert result.instructions_checked > 0
    assert result.cycles > 0


@pytest.mark.parametrize("seed", range(40, 48))
def test_lockstep_random_programs(seed):
    result = run_lockstep(fuzz.generate(seed), MEGA_BOOM)
    assert result.instructions_checked > 50


@pytest.mark.parametrize("config", [SMALL_BOOM, MEGA_BOOM.with_(fast_bypass=True)],
                         ids=["small", "mega+fb"])
def test_lockstep_workload(config):
    workload = make_me_v2_safe(n_keys=1, seed=41)
    program = patch_program(workload.assemble(), workload.inputs[0])
    result = run_lockstep(program, config)
    assert result.exit_code == 0


def test_lockstep_checks_every_instruction(sum_program):
    from repro.isa import Interpreter
    steps = Interpreter(sum_program).run().steps
    result = run_lockstep(sum_program, MEGA_BOOM)
    assert result.instructions_checked == steps


def test_lockstep_detects_injected_corruption(sum_program):
    """Corrupt the PRF mid-run and verify the checker catches it."""
    from repro.isa.interpreter import Interpreter
    from repro.kernel import ProxyKernel
    from repro.uarch import Core
    from repro.uarch.checker import _GoldenStream, LockstepMismatch

    golden = _GoldenStream(sum_program)
    core = Core(sum_program, MEGA_BOOM)
    failures = []

    def on_commit(pc, mnemonic, rd, value, cycle):
        expected = golden.next_commit()
        exp_pc, exp_rd, exp_value = expected
        if rd and value != exp_value:
            failures.append((pc, value, exp_value))

    core.commit_listener = on_commit
    # Inject a fault: flip a bit in a physical register feeding the sum.
    for _ in range(40):
        core.step()
    victim = core.committed_map[9]  # s1 accumulator mapping
    core.prf_value[victim] ^= 0x10
    while not core.halted:
        core.step()
    assert failures  # divergence reported at commit granularity
