"""Tests for the extension workloads and the fuzz generator."""

import pytest

from repro.isa import Interpreter, assemble
from repro.sampler import MicroSampler
from repro.sampler.runner import patch_program
from repro.uarch import MEGA_BOOM
from repro.workloads import fuzz
from repro.workloads.modexp import (
    expected_div_timing_results,
    expected_results,
    make_div_timing,
    make_sam_ct_window,
)


class TestWindowedExponentiation:
    def test_functional_matches_pow(self):
        workload = make_sam_ct_window(n_keys=2, seed=5)
        program = workload.assemble()
        for patches, expected in zip(workload.inputs,
                                     expected_results(workload)):
            patched = patch_program(program, patches)
            interp = Interpreter(patched)
            assert interp.run().exit_code == 0
            value = int.from_bytes(
                interp.memory.read_bytes(patched.symbols["result"], 8),
                "little")
            assert value == expected

    def test_labels_are_two_bit_windows(self):
        workload = make_sam_ct_window(n_keys=1, seed=5)
        program = workload.assemble()
        patched = patch_program(program, workload.inputs[0])
        result = Interpreter(patched).run()
        labels = [m.label for m in result.markers
                  if m.mnemonic == "iter.begin"]
        key = int.from_bytes(workload.inputs[0]["key"], "little")
        assert labels == [(key >> (2 * w)) & 3 for w in range(15, -1, -1)]
        assert len(set(labels)) > 2  # multi-class campaign

    def test_verifies_clean_with_four_classes(self):
        report = MicroSampler(MEGA_BOOM).analyze(
            make_sam_ct_window(n_keys=6, seed=5))
        assert report.n_classes == 4
        assert not report.leakage_detected


class TestDivTimingAblation:
    def test_functional(self):
        workload = make_div_timing(n_keys=2, seed=5)
        program = workload.assemble()
        for patches, expected in zip(workload.inputs,
                                     expected_div_timing_results(workload)):
            patched = patch_program(program, patches)
            interp = Interpreter(patched)
            assert interp.run().exit_code == 0
            value = int.from_bytes(
                interp.memory.read_bytes(patched.symbols["result"], 8),
                "little")
            assert value == expected

    def test_clean_on_fixed_latency_divider(self):
        report = MicroSampler(MEGA_BOOM).analyze(
            make_div_timing(n_keys=4, seed=5))
        assert not report.leakage_detected

    def test_leaks_on_early_exit_divider(self):
        config = MEGA_BOOM.with_(variable_div_latency=True)
        report = MicroSampler(config).analyze(make_div_timing(n_keys=4,
                                                              seed=5))
        assert report.leakage_detected
        assert "EUU-DIV" in report.leaky_units


class TestFuzzGenerator:
    def test_deterministic_per_seed(self):
        assert fuzz.generate_program(1) == fuzz.generate_program(1)
        assert fuzz.generate_program(1) != fuzz.generate_program(2)

    def test_programs_assemble_and_terminate(self):
        for seed in range(3):
            program = fuzz.generate(seed)
            result = Interpreter(program).run(max_steps=500_000)
            assert result.exit_code == 0

    def test_scratch_accesses_stay_in_bounds(self):
        program = fuzz.generate(7)
        interp = Interpreter(program, record_arch_trace=True)
        interp.run()
        scratch = program.symbols["scratch"]
        for event in interp.arch_trace:
            if event.kind in ("load", "store"):
                if event.address >= program.data_base:
                    assert event.address < scratch + 512

    def test_block_parameters_respected(self):
        text = fuzz.generate_program(3, blocks=2, block_len=4)
        assert "block0:" in text and "block1:" in text
        assert "block2:" not in text


class TestFuzzProperties:
    """Hypothesis-driven checks over the program generators."""

    def test_all_generated_instructions_encode(self):
        from repro.isa import decode, encode
        for seed in range(4):
            program = fuzz.generate(seed)
            for inst in program.instructions:
                decoded = decode(encode(inst), pc=inst.pc)
                assert decoded.mnemonic == inst.mnemonic

    def test_torture_programs_terminate(self):
        for seed in range(4):
            program = fuzz.generate_torture(seed)
            result = Interpreter(program).run(max_steps=100_000)
            assert result.exit_code == 0

    def test_torture_determinism(self):
        assert fuzz.generate_memory_torture(9) == fuzz.generate_memory_torture(9)
