"""Load/store-unit unit tests (driven directly, with a real cache port)."""

import pytest

from repro.isa import Instruction
from repro.isa.interpreter import FlatMemory
from repro.uarch.config import CacheConfig
from repro.uarch.lsu import FORWARD_LATENCY, LoadStoreUnit
from repro.uarch.memsys import DataCachePort
from repro.uarch.uop import MicroOp


def _port():
    return DataCachePort(
        CacheConfig(sets=8, ways=2, mshrs=4, hit_latency=3),
        tlb_entries=8, page_size=4096, tlb_miss_latency=0,
        memory_latency=20, lfb_entries=4, prefetcher_enabled=False,
    )


def _lsu(memory=None):
    memory = memory or FlatMemory(1 << 16)
    return LoadStoreUnit(ldq_entries=4, stq_entries=4, dcache=_port(),
                         memory=memory, memory_size=1 << 16,
                         store_miss_drain_penalty=10), memory


def _store(seq, addr, data, size="sd"):
    uop = MicroOp(Instruction(size, rs1=1, rs2=2, imm=0, pc=0x100 + seq), seq)
    uop.mem_addr = addr
    uop.store_data = data
    uop.addr_ready = True
    uop.data_ready = True
    return uop


def _load(seq, addr, mnemonic="ld"):
    uop = MicroOp(Instruction(mnemonic, rd=3, rs1=1, imm=0, pc=0x200 + seq), seq)
    uop.mem_addr = addr
    uop.addr_ready = True
    return uop


class TestAllocation:
    def test_capacity_limits(self):
        lsu, _ = _lsu()
        for seq in range(4):
            store = _store(seq, 0x100 + 8 * seq, seq)
            assert lsu.can_allocate(store)
            lsu.allocate(store)
        assert not lsu.can_allocate(_store(9, 0x900, 0))
        assert lsu.can_allocate(_load(10, 0x100))  # LQ independent

    def test_slots_are_circular_and_stable(self):
        lsu, _ = _lsu()
        stores = [_store(seq, 0x100, 0) for seq in range(3)]
        for store in stores:
            store.committed = True
            lsu.allocate(store)
        assert [s.sq_slot for s in stores] == [0, 1, 2]
        # Drain one and allocate another: wraps forward, no reuse of live.
        lsu.dcache.warm_line(0x100)
        drained = any(lsu.drain_committed_store(cycle) for cycle in range(1, 6))
        assert drained
        late = _store(5, 0x100, 0)
        lsu.allocate(late)
        assert late.sq_slot == 3


class TestForwarding:
    def test_exact_forward(self):
        lsu, _ = _lsu()
        store = _store(1, 0x400, 0xDEADBEEF)
        lsu.allocate(store)
        load = _load(2, 0x400)
        lsu.allocate(load)
        started = lsu.issue_loads(cycle=5, max_ports=2)
        assert started == [load]
        assert load.forwarded
        assert load.result == 0xDEADBEEF
        assert load.mem_complete_cycle == 5 + FORWARD_LATENCY

    def test_contained_byte_forward(self):
        lsu, _ = _lsu()
        lsu.allocate(_store(1, 0x400, 0x11223344AABBCCDD))
        load = _load(2, 0x402, "lbu")
        lsu.allocate(load)
        lsu.issue_loads(cycle=5, max_ports=2)
        assert load.forwarded and load.result == 0xBB

    def test_signed_forward_extends(self):
        lsu, _ = _lsu()
        lsu.allocate(_store(1, 0x400, 0xFF))
        load = _load(2, 0x400, "lb")
        lsu.allocate(load)
        lsu.issue_loads(cycle=5, max_ports=2)
        assert load.result == 0xFFFFFFFFFFFFFFFF

    def test_unknown_older_address_stalls(self):
        lsu, _ = _lsu()
        pending = _store(1, 0, 0)
        pending.addr_ready = False
        lsu.allocate(pending)
        load = _load(2, 0x400)
        lsu.allocate(load)
        assert lsu.issue_loads(cycle=5, max_ports=2) == []
        pending.mem_addr = 0x900  # disjoint; now the load may go
        pending.addr_ready = True
        assert lsu.issue_loads(cycle=6, max_ports=2) == [load]

    def test_partial_overlap_stalls_until_drain(self):
        lsu, memory = _lsu()
        wide = _store(1, 0x400, 0x1122334455667788)
        narrow_load = _load(2, 0x3FC, "ld")  # overlaps low half only
        lsu.allocate(wide)
        lsu.allocate(narrow_load)
        assert lsu.issue_loads(cycle=5, max_ports=2) == []
        wide.committed = True
        lsu.dcache.warm_line(0x400)
        assert any(lsu.drain_committed_store(cycle) for cycle in range(6, 12))
        started = lsu.issue_loads(cycle=12, max_ports=2)
        assert started == [narrow_load]
        assert memory.load(0x400, 8) == 0x1122334455667788

    def test_younger_store_not_forwarded(self):
        lsu, _ = _lsu()
        load = _load(1, 0x400)
        younger = _store(2, 0x400, 0x999)
        lsu.allocate(younger)
        lsu.allocate(load)
        started = lsu.issue_loads(cycle=5, max_ports=2)
        assert started == [load]
        assert not load.forwarded  # younger store is invisible to the load


class TestDrain:
    def test_in_order_drain_writes_memory(self):
        lsu, memory = _lsu()
        first = _store(1, 0x400, 0xAA, "sb")
        second = _store(2, 0x401, 0xBB, "sb")
        lsu.dcache.warm_line(0x400)
        for store in (first, second):
            store.committed = True
            lsu.allocate(store)
        drain_cycles = [cycle for cycle in range(1, 10)
                        if lsu.drain_committed_store(cycle)]
        assert len(drain_cycles) == 2
        assert drain_cycles[0] < drain_cycles[1]  # in order, head first
        assert memory.load(0x400, 1) == 0xAA
        assert memory.load(0x401, 1) == 0xBB

    def test_uncommitted_head_blocks(self):
        lsu, _ = _lsu()
        lsu.allocate(_store(1, 0x400, 1))
        assert not lsu.drain_committed_store(cycle=1)

    def test_miss_pays_drain_penalty(self):
        lsu, _ = _lsu()
        store = _store(1, 0x400, 1)
        store.committed = True
        lsu.allocate(store)
        assert not lsu.drain_committed_store(cycle=1)  # miss: blocked
        # store_miss_drain_penalty=10 -> drains once the penalty elapses
        drained = False
        for cycle in range(2, 40):
            if lsu.drain_committed_store(cycle):
                drained = True
                assert cycle >= 11
                break
        assert drained

    def test_probe_marks_hit_state(self):
        lsu, _ = _lsu()
        lsu.dcache.warm_line(0x400)
        store = _store(1, 0x400, 1)
        lsu.allocate(store)
        assert lsu.probe_stores(cycle=3) == 1
        assert store.probed and store.dcache_hit


class TestSquash:
    def test_squash_keeps_committed_stores(self):
        lsu, _ = _lsu()
        done = _store(1, 0x400, 1)
        done.committed = True
        speculative = _store(2, 0x500, 2)
        lsu.allocate(done)
        lsu.allocate(speculative)
        lsu.squash(lambda u: u.seq > 1)
        assert list(lsu.store_queue) == [done]

    def test_squash_clears_loads(self):
        lsu, _ = _lsu()
        lsu.allocate(_load(5, 0x100))
        lsu.squash(lambda u: u.seq > 2)
        assert list(lsu.load_queue) == []


class TestTracerRows:
    def test_fixed_width_rows(self):
        lsu, _ = _lsu()
        assert lsu.sq_addresses() == (0, 0, 0, 0)
        lsu.allocate(_store(1, 0x123, 0))
        assert lsu.sq_addresses() == (0x123, 0, 0, 0)
        assert lsu.sq_pcs()[0] == 0x101
        lsu.allocate(_load(2, 0x456))
        assert lsu.lq_addresses() == (0x456, 0, 0, 0)

    def test_reset_slots_only_when_empty(self):
        lsu, _ = _lsu()
        store = _store(1, 0x100, 0)
        store.committed = True
        lsu.allocate(store)
        lsu.dcache.warm_line(0x100)
        for cycle in range(1, 6):
            lsu.drain_committed_store(cycle)
        assert not lsu.store_queue
        lsu.reset_slots()
        follow = _store(2, 0x100, 0)
        lsu.allocate(follow)
        assert follow.sq_slot == 0
