"""Integration tests: the paper's case-study results, end to end.

These are the headline reproductions — each test asserts the *shape* of one
published result (which units flag, which stay clean, which root causes are
extracted), at reduced input sizes to keep the suite fast.
"""

import pytest

from repro.sampler import MicroSampler, run_campaign
from repro.uarch import MEGA_BOOM
from repro.workloads.memcmp import make_ct_memcmp
from repro.workloads.modexp import (
    make_me_v1_cv,
    make_me_v1_mv,
    make_me_v2_safe,
    make_sam_ct,
    make_sam_leaky,
)
from repro.workloads.openssl import make_primitive_workload

MEMORY_UNITS = {"SQ-ADDR", "NLP-ADDR", "Cache-ADDR", "TLB-ADDR", "MSHR-ADDR"}


@pytest.fixture(scope="module")
def sampler():
    return MicroSampler(MEGA_BOOM)


@pytest.fixture(scope="module")
def fb_sampler():
    return MicroSampler(MEGA_BOOM.with_(fast_bypass=True))


def test_leaky_square_and_multiply_detected(sampler):
    report = sampler.analyze(make_sam_leaky(n_keys=4, seed=3))
    assert report.leakage_detected
    # The secret-gated multiply/divide must be flagged with the exact PCs.
    assert "EUU-MUL" in report.leaky_units
    assert "EUU-DIV" in report.leaky_units
    mul = report.units["EUU-MUL"].root_cause
    assert mul is not None and mul.uniqueness.has_unique_features


def test_constant_time_sam_is_clean(sampler):
    report = sampler.analyze(make_sam_ct(n_keys=6, seed=3))
    assert not report.leakage_detected


def test_me_v1_cv_flags_most_units(sampler):
    """Figure 3: compiler-introduced control flow correlates broadly."""
    report = sampler.analyze(make_me_v1_cv(n_keys=6, seed=3))
    assert len(report.leaky_units) >= 10
    assert "ROB-PC" in report.leaky_units
    assert "EUU-ALU" in report.leaky_units


def test_me_v1_mv_flags_memory_units_only(sampler):
    """Figure 4: high V confined to memory-access units."""
    report = sampler.analyze(make_me_v1_mv(n_keys=6, seed=3))
    flagged = set(report.leaky_units)
    assert MEMORY_UNITS <= flagged
    assert "EUU-ALU" not in flagged
    assert "ROB-PC" not in flagged


def test_me_v1_mv_uniqueness_pinpoints_dst_dummy(sampler):
    """Figure 5: per-class unique store addresses are dst vs dummy."""
    workload = make_me_v1_mv(n_keys=6, seed=3)
    program = workload.assemble()
    report = sampler.analyze(workload)
    dst = program.symbols["dst_buf"]
    dummy = program.symbols["dummy_buf"]
    for unit in ("SQ-ADDR", "Cache-ADDR"):
        cause = report.units[unit].root_cause
        unique1 = cause.uniqueness.unique_values[1]
        unique0 = cause.uniqueness.unique_values[0]
        assert all(dst <= v < dst + 64 for v in unique1) and unique1
        assert all(dummy <= v < dummy + 64 for v in unique0) and unique0


def test_me_v1_mv_timing_channel_needs_warm_dst():
    """Figure 6: overlapping distributions cold, separable with dst warm."""
    from statistics import mean
    cold = run_campaign(make_me_v1_mv(n_keys=4, seed=3), MEGA_BOOM)
    cold0 = mean(r.cycles for r in cold.iterations if r.label == 0)
    cold1 = mean(r.cycles for r in cold.iterations if r.label == 1)
    assert abs(cold0 - cold1) / max(cold0, cold1) < 0.05

    warm = run_campaign(make_me_v1_mv(n_keys=4, seed=3, warm_dst=True),
                        MEGA_BOOM)
    warm0 = mean(r.cycles for r in warm.iterations if r.label == 0)
    warm1 = mean(r.cycles for r in warm.iterations if r.label == 1)
    assert warm1 < warm0 * 0.7  # dst-writing iterations clearly faster


def test_me_v2_safe_is_clean(sampler):
    """Figure 7: no statistically significant correlation anywhere."""
    report = sampler.analyze(make_me_v2_safe(n_keys=6, seed=3))
    assert not report.leakage_detected
    assert max(v for v in report.cramers_v_by_unit().values()) < 0.5


def test_me_v2_fb_fast_bypass_breaks_constant_time(fb_sampler):
    """Figure 9: the same safe code leaks on the fast-bypass core."""
    report = fb_sampler.analyze(make_me_v2_safe(n_keys=6, seed=3))
    assert report.leakage_detected
    assert "EUU-ALU" in report.leaky_units


def test_me_v2_fb_timing_removal_isolates_alu_and_rob(fb_sampler):
    """Figure 9, orange bars: SQ drops to ~0 with timing removed, while the
    ALU (skipped AND) and ROB (shared entry) stay perfectly correlated."""
    report = fb_sampler.analyze(make_me_v2_safe(n_keys=6, seed=3))
    v_nt = report.cramers_v_by_unit_notiming()
    assert v_nt["SQ-ADDR"] < 0.1
    assert v_nt["EUU-ALU"] > 0.9
    assert v_nt["ROB-PC"] > 0.9


def test_me_v2_fb_alu_uniqueness_finds_the_and(fb_sampler):
    workload = make_me_v2_safe(n_keys=6, seed=3)
    report = fb_sampler.analyze(workload)
    cause = report.units["EUU-ALU"].root_cause
    assert cause is not None
    # The AND executes on the ALU only for key bit 1.
    program = workload.assemble()
    start = program.symbols["ccopy_bear"]
    unique1 = cause.uniqueness.unique_values[1]
    assert any(start <= pc < start + 4 * 16 for pc in unique1)


def test_ct_memcmp_rob_flags_with_timing_removed(sampler):
    """Figure 10: with timing effects removed, the ROB stands out."""
    report = sampler.analyze(make_ct_memcmp(n_pairs=24, seed=2, n_runs=2))
    assert "ROB-PC" in report.leaky_units
    v_nt = report.cramers_v_by_unit_notiming()
    assert v_nt["ROB-PC"] > 0.9
    assert v_nt["SQ-ADDR"] < 0.3
    assert v_nt["MSHR-ADDR"] < 0.5


def test_ct_memcmp_speculative_double_calls(sampler):
    """Section VII-C1: wrong-path (in)equal calls appear in the ROB."""
    workload = make_ct_memcmp(n_pairs=24, seed=2, n_runs=2)
    campaign = run_campaign(workload, MEGA_BOOM)
    program = workload.assemble()
    eq = program.symbols["equal"]
    ineq = program.symbols["inequal"]
    double_calls = 0
    for record in campaign.iterations:
        values = record.features["ROB-PC"].values
        has_eq = any(eq <= v < eq + 12 for v in values)
        has_ineq = any(ineq <= v < ineq + 12 for v in values)
        if has_eq and has_ineq:
            double_calls += 1
        # equal-class runs must always (eventually) reach equal.
        if record.label == 1:
            assert has_eq
    assert double_calls > 0


@pytest.mark.parametrize("name", [
    "constant_time_eq", "constant_time_select_64",
    "constant_time_lookup", "constant_time_cond_swap_buff",
    "constant_time_is_zero",
])
def test_table5_sample_primitives_clean(sampler, name):
    """Table V: the OpenSSL constant-time primitives show no leakage."""
    report = sampler.analyze(
        make_primitive_workload(name, n_sets=12, n_runs=2, seed=11)
    )
    assert not report.leakage_detected
