"""Integration tests: the paper's case-study results, end to end.

These are the headline reproductions — each test asserts the *shape* of one
published result (which units flag, which stay clean, which root causes are
extracted), at reduced input sizes to keep the suite fast.

Each case-study campaign is simulated once per module (the report fixtures
below) and shared by every test that reads it; the same reports are also
checked against the golden-value fixtures in ``tests/golden/``, which pin
the exact statistics produced by the scalar reference engine.
"""

import pytest

from repro.sampler import MicroSampler, run_campaign
from repro.uarch import MEGA_BOOM

from tests.golden import (
    GOLDEN_FIELDS,
    GOLDEN_TOLERANCE,
    case_workloads,
    load_golden,
)

MEMORY_UNITS = {"SQ-ADDR", "NLP-ADDR", "Cache-ADDR", "TLB-ADDR", "MSHR-ADDR"}

_CASES = case_workloads()


def _analyze(name):
    """Simulate and analyze one case study; returns (workload, report)."""
    workload, config = _CASES[name]
    return workload, MicroSampler(config).analyze(workload)


@pytest.fixture(scope="module")
def sam_leaky():
    return _analyze("sam_leaky")


@pytest.fixture(scope="module")
def sam_ct():
    return _analyze("sam_ct")


@pytest.fixture(scope="module")
def me_v1_cv():
    return _analyze("me_v1_cv")


@pytest.fixture(scope="module")
def me_v1_mv():
    return _analyze("me_v1_mv")


@pytest.fixture(scope="module")
def me_v2_safe():
    return _analyze("me_v2_safe")


@pytest.fixture(scope="module")
def me_v2_fb():
    return _analyze("me_v2_fb")


@pytest.fixture(scope="module")
def ct_memcmp():
    return _analyze("ct_memcmp")


def test_leaky_square_and_multiply_detected(sam_leaky):
    _, report = sam_leaky
    assert report.leakage_detected
    # The secret-gated multiply/divide must be flagged with the exact PCs.
    assert "EUU-MUL" in report.leaky_units
    assert "EUU-DIV" in report.leaky_units
    mul = report.units["EUU-MUL"].root_cause
    assert mul is not None and mul.uniqueness.has_unique_features


def test_constant_time_sam_is_clean(sam_ct):
    _, report = sam_ct
    assert not report.leakage_detected


def test_me_v1_cv_flags_most_units(me_v1_cv):
    """Figure 3: compiler-introduced control flow correlates broadly."""
    _, report = me_v1_cv
    assert len(report.leaky_units) >= 10
    assert "ROB-PC" in report.leaky_units
    assert "EUU-ALU" in report.leaky_units


def test_me_v1_mv_flags_memory_units_only(me_v1_mv):
    """Figure 4: high V confined to memory-access units."""
    _, report = me_v1_mv
    flagged = set(report.leaky_units)
    assert MEMORY_UNITS <= flagged
    assert "EUU-ALU" not in flagged
    assert "ROB-PC" not in flagged


def test_me_v1_mv_uniqueness_pinpoints_dst_dummy(me_v1_mv):
    """Figure 5: per-class unique store addresses are dst vs dummy."""
    workload, report = me_v1_mv
    program = workload.assemble()
    dst = program.symbols["dst_buf"]
    dummy = program.symbols["dummy_buf"]
    for unit in ("SQ-ADDR", "Cache-ADDR"):
        cause = report.units[unit].root_cause
        unique1 = cause.uniqueness.unique_values[1]
        unique0 = cause.uniqueness.unique_values[0]
        assert all(dst <= v < dst + 64 for v in unique1) and unique1
        assert all(dummy <= v < dummy + 64 for v in unique0) and unique0


@pytest.mark.slow
def test_me_v1_mv_timing_channel_needs_warm_dst():
    """Figure 6: overlapping distributions cold, separable with dst warm."""
    from statistics import mean

    from repro.workloads.modexp import make_me_v1_mv
    cold = run_campaign(make_me_v1_mv(n_keys=4, seed=3), MEGA_BOOM)
    cold0 = mean(r.cycles for r in cold.iterations if r.label == 0)
    cold1 = mean(r.cycles for r in cold.iterations if r.label == 1)
    assert abs(cold0 - cold1) / max(cold0, cold1) < 0.05

    warm = run_campaign(make_me_v1_mv(n_keys=4, seed=3, warm_dst=True),
                        MEGA_BOOM)
    warm0 = mean(r.cycles for r in warm.iterations if r.label == 0)
    warm1 = mean(r.cycles for r in warm.iterations if r.label == 1)
    assert warm1 < warm0 * 0.7  # dst-writing iterations clearly faster


def test_me_v2_safe_is_clean(me_v2_safe):
    """Figure 7: no statistically significant correlation anywhere."""
    _, report = me_v2_safe
    assert not report.leakage_detected
    assert max(v for v in report.cramers_v_by_unit().values()) < 0.5


def test_me_v2_fb_fast_bypass_breaks_constant_time(me_v2_fb):
    """Figure 9: the same safe code leaks on the fast-bypass core."""
    _, report = me_v2_fb
    assert report.leakage_detected
    assert "EUU-ALU" in report.leaky_units


def test_me_v2_fb_timing_removal_isolates_alu_and_rob(me_v2_fb):
    """Figure 9, orange bars: SQ drops to ~0 with timing removed, while the
    ALU (skipped AND) and ROB (shared entry) stay perfectly correlated."""
    _, report = me_v2_fb
    v_nt = report.cramers_v_by_unit_notiming()
    assert v_nt["SQ-ADDR"] < 0.1
    assert v_nt["EUU-ALU"] > 0.9
    assert v_nt["ROB-PC"] > 0.9


def test_me_v2_fb_alu_uniqueness_finds_the_and(me_v2_fb):
    workload, report = me_v2_fb
    cause = report.units["EUU-ALU"].root_cause
    assert cause is not None
    # The AND executes on the ALU only for key bit 1.
    program = workload.assemble()
    start = program.symbols["ccopy_bear"]
    unique1 = cause.uniqueness.unique_values[1]
    assert any(start <= pc < start + 4 * 16 for pc in unique1)


def test_ct_memcmp_rob_flags_with_timing_removed(ct_memcmp):
    """Figure 10: with timing effects removed, the ROB stands out."""
    _, report = ct_memcmp
    assert "ROB-PC" in report.leaky_units
    v_nt = report.cramers_v_by_unit_notiming()
    assert v_nt["ROB-PC"] > 0.9
    assert v_nt["SQ-ADDR"] < 0.3
    assert v_nt["MSHR-ADDR"] < 0.5


@pytest.mark.slow
def test_ct_memcmp_speculative_double_calls(ct_memcmp):
    """Section VII-C1: wrong-path (in)equal calls appear in the ROB."""
    workload, _ = ct_memcmp
    campaign = run_campaign(workload, MEGA_BOOM)
    program = workload.assemble()
    eq = program.symbols["equal"]
    ineq = program.symbols["inequal"]
    double_calls = 0
    for record in campaign.iterations:
        values = record.features["ROB-PC"].values
        has_eq = any(eq <= v < eq + 12 for v in values)
        has_ineq = any(ineq <= v < ineq + 12 for v in values)
        if has_eq and has_ineq:
            double_calls += 1
        # equal-class runs must always (eventually) reach equal.
        if record.label == 1:
            assert has_eq
    assert double_calls > 0


@pytest.mark.parametrize("name", sorted(_CASES))
def test_golden_values(name, request):
    """Every case-study report must match its pinned golden fixture.

    Goldens are generated by the scalar reference engine (see
    ``tests/golden/regenerate.py``); the reports here come from the default
    (numpy) engine, so this doubles as an engine-differential check on the
    real campaigns.
    """
    golden = load_golden(name)
    _, report = request.getfixturevalue(name)
    assert report.workload_name == golden["workload"]
    assert report.config_name == golden["config"]
    assert sorted(report.leaky_units) == golden["leaky_units"]
    assert set(report.units) == set(golden["units"])
    for feature_id, expected in golden["units"].items():
        unit = report.units[feature_id]
        for field in GOLDEN_FIELDS:
            assert getattr(unit.association, field) == pytest.approx(
                expected[field], abs=GOLDEN_TOLERANCE), (feature_id, field)
        if "cramers_v_notiming" in expected:
            assert unit.association_notiming.cramers_v == pytest.approx(
                expected["cramers_v_notiming"], abs=GOLDEN_TOLERANCE), feature_id


@pytest.mark.parametrize("name", [
    "constant_time_eq", "constant_time_select_64",
    "constant_time_lookup", "constant_time_cond_swap_buff",
    "constant_time_is_zero",
])
def test_table5_sample_primitives_clean(name):
    """Table V: the OpenSSL constant-time primitives show no leakage."""
    from repro.workloads.openssl import make_primitive_workload
    report = MicroSampler(MEGA_BOOM).analyze(
        make_primitive_workload(name, n_sets=12, n_runs=2, seed=11)
    )
    assert not report.leakage_detected
