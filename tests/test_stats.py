"""Statistics tests: contingency tables, chi-squared, Cramér's V, p-values."""

import math

import pytest
from hypothesis import given, strategies as st
from scipy import stats as scipy_stats

from repro.sampler import (
    ContingencyTable,
    build_contingency_table,
    chi_squared_p_value,
    chi_squared_statistic,
    cramers_v,
    hash_frequency,
    measure_association,
)
from repro.sampler.stats import cramers_v_corrected


def _table(counts, classes=None, hashes=None):
    classes = classes or tuple(range(len(counts)))
    hashes = hashes or tuple(range(len(counts[0])))
    return ContingencyTable(classes=tuple(classes), hashes=tuple(hashes),
                            counts=tuple(tuple(r) for r in counts))


class TestContingencyTable:
    def test_build_from_observations(self):
        labels = [0, 0, 1, 1, 0]
        hashes = [10, 20, 10, 10, 10]
        table = build_contingency_table(labels, hashes)
        assert table.classes == (0, 1)
        assert table.hashes == (10, 20)
        assert table.counts == ((2, 1), (2, 0))
        assert table.total == 5

    def test_row_and_column_totals(self):
        table = _table([[1, 2], [3, 4]])
        assert table.row_totals() == (3, 7)
        assert table.column_totals() == (4, 6)

    def test_degenerate_detection(self):
        assert _table([[1, 2]]).is_degenerate()
        assert _table([[1], [2]]).is_degenerate()
        assert not _table([[1, 2], [3, 4]]).is_degenerate()

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            build_contingency_table([0, 1], [1])

    def test_render_is_textual(self):
        text = _table([[1, 2], [3, 4]]).render()
        assert "class" in text and "1" in text

    def test_hash_frequency(self):
        freq = hash_frequency([0, 0, 1], [5, 5, 6])
        assert freq[0][5] == 2
        assert freq[1][6] == 1


class TestChiSquared:
    def test_independent_table_is_zero(self):
        statistic, dof = chi_squared_statistic(_table([[10, 10], [10, 10]]))
        assert statistic == pytest.approx(0.0)
        assert dof == 1

    def test_known_value(self):
        # Classic 2x2 example: chi2 = N (ad - bc)^2 / (row/col products)
        table = _table([[20, 30], [30, 20]])
        statistic, dof = chi_squared_statistic(table)
        expected = 100 * (20 * 20 - 30 * 30) ** 2 / (50 * 50 * 50 * 50)
        assert statistic == pytest.approx(expected)

    def test_matches_scipy(self):
        import numpy as np
        counts = [[12, 7, 3], [5, 9, 14]]
        statistic, dof = chi_squared_statistic(_table(counts))
        ref = scipy_stats.chi2_contingency(np.array(counts), correction=False)
        assert statistic == pytest.approx(ref.statistic)
        assert dof == ref.dof

    def test_p_value_matches_scipy_sf(self):
        for statistic, dof in [(0.5, 1), (3.84, 1), (10.0, 4), (100.0, 20)]:
            assert chi_squared_p_value(statistic, dof) == pytest.approx(
                scipy_stats.chi2.sf(statistic, dof))

    def test_p_value_degenerate_dof(self):
        assert chi_squared_p_value(5.0, 0) == 1.0


class TestCramersV:
    def test_perfect_association(self):
        assert cramers_v(_table([[10, 0], [0, 10]])) == pytest.approx(1.0)

    def test_no_association(self):
        assert cramers_v(_table([[5, 5], [5, 5]])) == pytest.approx(0.0)

    def test_degenerate_is_zero(self):
        assert cramers_v(_table([[3, 4]])) == 0.0
        assert cramers_v(_table([[3], [4]])) == 0.0

    def test_intermediate_value(self):
        value = cramers_v(_table([[20, 30], [30, 20]]))
        assert 0.15 < value < 0.25  # chi2=4, N=100, V=0.2
        assert value == pytest.approx(0.2)

    def test_rectangular_table_uses_min_dimension(self):
        # 2 classes x 4 hashes, perfectly separable -> V = 1
        table = _table([[5, 5, 0, 0], [0, 0, 5, 5]])
        assert cramers_v(table) == pytest.approx(1.0)


class TestMeasureAssociation:
    def test_leaky_requires_strong_and_significant(self):
        strong = measure_association(_table([[50, 0], [0, 50]]))
        assert strong.leaky and strong.strong and strong.significant

    def test_small_sample_high_v_not_significant(self):
        """The paper's false-positive control: V high but p above alpha."""
        result = measure_association(_table([[1, 0], [0, 1]]))
        assert result.cramers_v == pytest.approx(1.0)
        assert not result.significant
        assert not result.leaky

    def test_clean_table_not_flagged(self):
        result = measure_association(_table([[25, 25], [25, 25]]))
        assert not result.leaky
        assert result.cramers_v == pytest.approx(0.0)

    def test_fields_populated(self):
        result = measure_association(_table([[10, 5], [5, 10]]))
        assert result.n_observations == 30
        assert result.n_classes == 2
        assert result.n_categories == 2
        assert result.dof == 1


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 5)),
                min_size=2, max_size=200))
def test_property_v_bounded(observations):
    labels = [o[0] for o in observations]
    hashes = [o[1] for o in observations]
    value = cramers_v(build_contingency_table(labels, hashes))
    assert 0.0 <= value <= 1.0 + 1e-9


@given(st.lists(st.integers(0, 1), min_size=4, max_size=100))
def test_property_identical_hashes_give_zero_v(labels):
    hashes = [42] * len(labels)
    table = build_contingency_table(labels, hashes)
    assert cramers_v(table) == 0.0


@given(st.integers(2, 30))
def test_property_perfect_separation_gives_v_one(n):
    labels = [0] * n + [1] * n
    hashes = [100] * n + [200] * n
    assert cramers_v(build_contingency_table(labels, hashes)) == pytest.approx(1.0)


@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 8)),
                min_size=2, max_size=100))
def test_property_p_value_in_unit_interval(observations):
    labels = [o[0] for o in observations]
    hashes = [o[1] for o in observations]
    result = measure_association(build_contingency_table(labels, hashes))
    assert 0.0 <= result.p_value <= 1.0


#: Random contingency tables: 2-4 classes x 2-6 categories, cell counts 0-40.
_random_counts = st.integers(2, 4).flatmap(
    lambda rows: st.integers(2, 6).flatmap(
        lambda cols: st.lists(
            st.lists(st.integers(0, 40), min_size=cols, max_size=cols),
            min_size=rows, max_size=rows,
        )
    )
)


@given(_random_counts)
def test_fuzz_chi_squared_matches_scipy(counts):
    """Eq. 3/4 against scipy's reference, over random tables.

    scipy requires strictly positive marginals, so tables with an empty row
    or column are filtered out here; our implementation's behaviour on those
    is locked in by the explicit edge-case tests below.
    """
    import numpy as np
    array = np.array(counts)
    if (array.sum(axis=0) == 0).any() or (array.sum(axis=1) == 0).any():
        return
    statistic, dof = chi_squared_statistic(_table(counts))
    ref = scipy_stats.chi2_contingency(array, correction=False)
    assert statistic == pytest.approx(ref.statistic, abs=1e-9)
    assert dof == ref.dof
    assert chi_squared_p_value(statistic, dof) == pytest.approx(
        ref.pvalue, abs=1e-9)


@given(_random_counts)
def test_fuzz_corrected_v_bounded_by_plain_v(counts):
    """Bergsma's correction only ever shrinks V, and stays in [0, 1]."""
    table = _table(counts)
    plain = cramers_v(table)
    corrected = cramers_v_corrected(table)
    assert 0.0 <= corrected <= plain + 1e-9
    assert corrected <= 1.0 + 1e-9


class TestCramersVCorrected:
    def test_sparse_perfect_table_clamps_to_zero(self):
        """V = 1 on [[1,0],[0,1]], but the bias correction eats all of it."""
        table = _table([[1, 0], [0, 1]])
        assert cramers_v(table) == pytest.approx(1.0)
        assert cramers_v_corrected(table) == 0.0

    def test_large_perfect_table_stays_near_one(self):
        table = _table([[500, 0], [0, 500]])
        assert cramers_v_corrected(table) == pytest.approx(1.0, abs=1e-2)

    def test_independent_table_is_zero(self):
        assert cramers_v_corrected(_table([[25, 25], [25, 25]])) == 0.0

    def test_degenerate_single_row(self):
        assert cramers_v_corrected(_table([[3, 4]])) == 0.0

    def test_degenerate_single_column(self):
        assert cramers_v_corrected(_table([[3], [4]])) == 0.0

    def test_single_observation(self):
        # n <= 1 leaves the shrunk dimensions undefined; defined as 0.
        assert cramers_v_corrected(_table([[1, 0], [0, 0]])) == 0.0

    def test_empty_table(self):
        assert cramers_v_corrected(_table([[0, 0], [0, 0]])) == 0.0

    def test_measure_association_populates_both(self):
        result = measure_association(_table([[50, 0], [0, 50]]))
        assert result.cramers_v == pytest.approx(1.0)
        assert 0.9 < result.cramers_v_corrected <= result.cramers_v


class TestChiSquaredEdgeCases:
    def test_empty_row_contributes_nothing(self):
        # scipy rejects zero marginals; ours skips expected == 0 cells.
        statistic, dof = chi_squared_statistic(_table([[5, 5], [0, 0]]))
        assert statistic == pytest.approx(0.0)
        assert dof == 1

    def test_empty_column_contributes_nothing(self):
        statistic, dof = chi_squared_statistic(_table([[5, 0], [5, 0]]))
        assert statistic == pytest.approx(0.0)
        assert dof == 1

    def test_all_zero_table(self):
        statistic, dof = chi_squared_statistic(_table([[0, 0], [0, 0]]))
        assert statistic == 0.0
        assert dof == 0

    def test_single_cell_table(self):
        statistic, dof = chi_squared_statistic(_table([[7]]))
        assert statistic == 0.0
        assert dof == 0
