"""Mutual-information analysis tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sampler import (
    measure_mutual_information,
    mutual_information,
    mutual_information_by_unit,
)
from repro.trace.tracer import FeatureIteration, IterationRecord


def test_independent_variables_have_zero_mi():
    labels = [0, 0, 1, 1] * 10
    hashes = [7] * 40
    assert mutual_information(labels, hashes) == pytest.approx(0.0)


def test_perfect_dependence_reaches_label_entropy():
    labels = [0, 1] * 20
    hashes = [100 if l == 0 else 200 for l in labels]
    assert mutual_information(labels, hashes) == pytest.approx(1.0)


def test_four_way_labels():
    labels = [0, 1, 2, 3] * 10
    hashes = [l * 11 for l in labels]
    assert mutual_information(labels, hashes) == pytest.approx(2.0)


def test_partial_information():
    # hash reveals the label only half the time
    labels = [0, 0, 1, 1] * 25
    hashes = []
    for index, label in enumerate(labels):
        hashes.append(label if index % 2 == 0 else 9)
    mi = mutual_information(labels, hashes)
    assert 0.3 < mi < 0.8


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        mutual_information([0, 1], [1])


def test_empty_is_zero():
    assert mutual_information([], []) == 0.0


def test_measure_flags_real_leak():
    labels = [0, 1] * 32
    hashes = [100 if l == 0 else 200 for l in labels]
    result = measure_mutual_information(labels, hashes, permutations=100)
    assert result.leaky
    assert result.leakage_fraction == pytest.approx(1.0)
    assert result.p_value < 0.05


def test_measure_controls_small_sample_false_positive():
    """Two observations always have max empirical MI; the permutation test
    must refuse to call it significant — same role as the paper's p gate."""
    result = measure_mutual_information([0, 1], [5, 6], permutations=100)
    assert result.leakage_fraction == pytest.approx(1.0)
    assert not result.leaky


def test_measure_clean_noise():
    import random
    rng = random.Random(1)
    labels = [rng.randrange(2) for _ in range(100)]
    hashes = [rng.randrange(4) for _ in range(100)]
    result = measure_mutual_information(labels, hashes, permutations=150)
    assert not result.leaky


def test_by_unit_over_iteration_records():
    def record(index, label, h):
        data = FeatureIteration(snapshot_hash=h, snapshot_hash_notiming=0,
                                values=frozenset(), order=())
        return IterationRecord(index=index, label=label, start_cycle=0,
                               end_cycle=1, features={"F": data})

    records = [record(i, i % 2, 100 + (i % 2)) for i in range(40)]
    results = mutual_information_by_unit(records, ["F"], permutations=50)
    assert results["F"].leaky
    results_nt = mutual_information_by_unit(records, ["F"], permutations=50,
                                            use_timing=False)
    assert not results_nt["F"].leaky  # no-timing hashes are all equal


@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 4)),
                min_size=1, max_size=150))
def test_property_mi_bounds(observations):
    labels = [o[0] for o in observations]
    hashes = [o[1] for o in observations]
    mi = mutual_information(labels, hashes)
    assert -1e-9 <= mi <= math.log2(max(len(set(labels)), 1)) + 1e-9


@given(st.lists(st.integers(0, 3), min_size=2, max_size=60))
def test_property_mi_symmetry(values):
    other = list(reversed(values))
    assert mutual_information(values, other) == pytest.approx(
        mutual_information(other, values))
