"""CLI tests (argument handling and end-to-end command runs)."""

import pytest

from repro.cli import WORKLOADS, build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_workloads(capsys):
    assert main(["list-workloads"]) == 0
    out = capsys.readouterr().out
    for name in WORKLOADS:
        assert name in out
    assert "constant_time_eq" in out


def test_features(capsys):
    assert main(["features"]) == 0
    out = capsys.readouterr().out
    assert "SQ-ADDR" in out and "MSHR-ADDR" in out
    assert "Store Queue" in out


def test_analyze_leaky_returns_one(capsys):
    code = main(["analyze", "sam-leaky", "--inputs", "2",
                 "--config", "small", "--no-timing-removed"])
    out = capsys.readouterr().out
    assert code == 1
    assert "LEAKAGE DETECTED" in out


def test_analyze_clean_returns_zero(capsys):
    code = main(["analyze", "sam-ct", "--inputs", "3", "--config", "small"])
    out = capsys.readouterr().out
    assert code == 0
    assert "No statistically significant correlation" in out


def test_analyze_unknown_workload():
    with pytest.raises(SystemExit):
        main(["analyze", "not-a-workload"])


def test_analyze_primitive_by_name(capsys):
    code = main(["analyze", "constant_time_is_zero", "--inputs", "4",
                 "--config", "small"])
    assert code == 0


def test_simulate_and_disasm(tmp_path, capsys):
    source = tmp_path / "prog.S"
    source.write_text("""
.text
main:
    li a0, 7
    li a7, 93
    ecall
""")
    code = main(["simulate", str(source), "--entry", "main"])
    out = capsys.readouterr().out
    assert code == 7
    assert "cycles" in out

    assert main(["disasm", str(source)]) == 0
    out = capsys.readouterr().out
    assert "addi a0, zero, 7" in out


def test_simulate_fast_bypass_flag(tmp_path, capsys):
    source = tmp_path / "prog.S"
    source.write_text("""
.text
main:
    li t0, 0
    li t1, 9
    nop
    nop
    nop
    nop
    nop
    and a0, t1, t0
    li a7, 93
    ecall
""")
    code = main(["simulate", str(source), "--entry", "main",
                 "--fast-bypass"])
    assert code == 0
