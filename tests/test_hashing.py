"""Hashing utility tests: SipHash-2-4 vectors and digest helpers."""

from hypothesis import given, strategies as st

from repro.util.hashing import DEFAULT_KEY, combine_digests, row_digest, siphash24

#: Official SipHash-2-4 test vectors (key 000102...0f, inputs 00..0e).
_REFERENCE_VECTORS = {
    0: 0x726FDB47DD0E0E31,
    1: 0x74F839C593DC67FD,
    2: 0x0D6C8009D9A94F5A,
    7: 0xAB0200F58B01D137,
    8: 0x93F5F5799A932462,
    15: 0xA129CA6149BE45E5,
}


def test_siphash_reference_vectors():
    key = (0x0706050403020100, 0x0F0E0D0C0B0A0908)
    for length, expected in _REFERENCE_VECTORS.items():
        assert siphash24(bytes(range(length)), key) == expected


def test_siphash_empty_input():
    assert siphash24(b"") == siphash24(b"")
    assert siphash24(b"") != siphash24(b"\x00")


def test_siphash_key_sensitivity():
    assert siphash24(b"data", (1, 2)) != siphash24(b"data", (2, 1))


def test_row_digest_deterministic_for_ints():
    row = (1, 2, 3, 0xFFFFFFFFFFFFFFFF)
    assert row_digest(row) == row_digest((1, 2, 3, 0xFFFFFFFFFFFFFFFF))


def test_row_digest_distinguishes_order():
    assert row_digest((1, 2)) != row_digest((2, 1))


def test_combine_digests_empty_vs_nonempty():
    assert combine_digests([]) != combine_digests([0])


def test_combine_digests_order_sensitive():
    assert combine_digests([1, 2]) != combine_digests([2, 1])


@given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=20))
def test_combine_digests_in_range(digests):
    value = combine_digests(digests)
    assert 0 <= value < 2**64


@given(st.binary(max_size=64))
def test_siphash_in_range_and_stable(data):
    value = siphash24(data)
    assert 0 <= value < 2**64
    assert siphash24(data) == value


@given(st.binary(min_size=1, max_size=32))
def test_siphash_bit_flip_changes_hash(data):
    flipped = bytes([data[0] ^ 1]) + data[1:]
    assert siphash24(data) != siphash24(flipped)
